//! Integration tests for the artifact-carrying scenario pipeline (PR 4):
//!
//! * a counting test-double proves a timed, model-checked sweep performs
//!   **exactly one** typecheck and **exactly one** compile per scenario —
//!   the artifact built by the compile stage is borrowed by the model check
//!   and consumed by execution, never rebuilt;
//! * sweep digests under the artifact-threaded pipeline are byte-identical
//!   to a reference runner that recompiles per stage (the pre-PR shape:
//!   run recompiles, model check recompiles, `--time` adds a dedicated
//!   compile), across all three case studies, all four [`GenProfile`]
//!   presets, and every model-check × time flag combination — a perf-only
//!   change: same scenarios, same outcomes, fewer redundant stages.

use proptest::prelude::*;
use semint::harness::cases::{AnyCase, AnyCompiled, AnyProgram, AnyReport, AnyTy};
use semint::harness::engine::{run_scenario, sweep_case, SweepConfig};
use semint::harness::source::SeedRange;
use semint::harness::CaseStudy;
use semint_core::case::{CheckFailure, GenProfile, Scenario};
use semint_core::stats::{CaseReport, FailStage, FailureRecord, RunStats, ScenarioRecord};
use semint_core::Fuel;
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// The counting test-double: a real case study with stage odometers.

struct CountingCase {
    inner: AnyCase,
    typechecks: AtomicUsize,
    compiles: AtomicUsize,
    executes: AtomicUsize,
    model_checks: AtomicUsize,
}

impl CountingCase {
    fn new(inner: AnyCase) -> Self {
        CountingCase {
            inner,
            typechecks: AtomicUsize::new(0),
            compiles: AtomicUsize::new(0),
            executes: AtomicUsize::new(0),
            model_checks: AtomicUsize::new(0),
        }
    }

    fn counts(&self) -> (usize, usize, usize, usize) {
        (
            self.typechecks.load(Ordering::SeqCst),
            self.compiles.load(Ordering::SeqCst),
            self.executes.load(Ordering::SeqCst),
            self.model_checks.load(Ordering::SeqCst),
        )
    }
}

impl CaseStudy for CountingCase {
    type Program = AnyProgram;
    type Ty = AnyTy;
    type Report = AnyReport;
    type Compiled = AnyCompiled;

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn generate(&self, seed: u64, profile: &GenProfile) -> Scenario<AnyProgram, AnyTy> {
        self.inner.generate(seed, profile)
    }

    fn typecheck(&self, program: &AnyProgram) -> Result<AnyTy, String> {
        self.typechecks.fetch_add(1, Ordering::SeqCst);
        self.inner.typecheck(program)
    }

    fn compile(&self, program: &AnyProgram) -> Result<AnyCompiled, String> {
        self.compiles.fetch_add(1, Ordering::SeqCst);
        self.inner.compile(program)
    }

    fn execute(&self, compiled: AnyCompiled, fuel: Fuel) -> AnyReport {
        self.executes.fetch_add(1, Ordering::SeqCst);
        self.inner.execute(compiled, fuel)
    }

    fn stats(&self, report: &AnyReport) -> RunStats {
        self.inner.stats(report)
    }

    fn model_check_compiled(
        &self,
        program: &AnyProgram,
        ty: &AnyTy,
        compiled: &AnyCompiled,
    ) -> Result<(), CheckFailure> {
        self.model_checks.fetch_add(1, Ordering::SeqCst);
        self.inner.model_check_compiled(program, ty, compiled)
    }

    fn shrink(&self, program: &AnyProgram) -> Vec<AnyProgram> {
        self.inner.shrink(program)
    }

    fn boundary_count(&self, program: &AnyProgram) -> usize {
        self.inner.boundary_count(program)
    }
}

#[test]
fn timed_model_checked_sweep_typechecks_once_and_compiles_once_per_scenario() {
    for name in ["sharedmem", "affine", "memgc"] {
        let case = CountingCase::new(AnyCase::by_name(name, false).expect("known case"));
        let cfg = SweepConfig {
            jobs: 1,
            profile: GenProfile::standard(),
            model_check: true,
            time: true,
            ..SweepConfig::default()
        };
        const SEEDS: usize = 25;
        for seed in 0..SEEDS as u64 {
            let record = run_scenario(&case, seed, &cfg);
            assert!(record.failure.is_none(), "{name} seed {seed} failed");
        }
        let (typechecks, compiles, executes, model_checks) = case.counts();
        assert_eq!(typechecks, SEEDS, "{name}: one typecheck per scenario");
        assert_eq!(compiles, SEEDS, "{name}: one compile per scenario");
        assert_eq!(executes, SEEDS, "{name}: one execution per scenario");
        assert_eq!(model_checks, SEEDS, "{name}: one model check per scenario");
    }
}

#[test]
fn untimed_sweep_also_compiles_exactly_once_and_skipped_model_check_stays_skipped() {
    let case = CountingCase::new(AnyCase::by_name("memgc", false).expect("known case"));
    let cfg = SweepConfig {
        jobs: 1,
        profile: GenProfile::standard(),
        model_check: false,
        time: false,
        ..SweepConfig::default()
    };
    for seed in 0..10u64 {
        let record = run_scenario(&case, seed, &cfg);
        assert!(record.failure.is_none(), "seed {seed} failed");
    }
    let (typechecks, compiles, executes, model_checks) = case.counts();
    assert_eq!((typechecks, compiles, executes), (10, 10, 10));
    assert_eq!(
        model_checks, 0,
        "--no-model-check must not pay for the stage"
    );
}

// ---------------------------------------------------------------------------
// The reference runner: the pre-PR per-stage-recompile pipeline, built on
// the same public trait (`run` and `model_check` compile their own).

fn recompiling_record(case: &AnyCase, seed: u64, cfg: &SweepConfig) -> ScenarioRecord {
    let scenario = case.generate(seed, &cfg.profile);
    let rendered = scenario.program.to_string();
    let mut record = ScenarioRecord {
        seed,
        ty: scenario.ty.to_string(),
        program_chars: rendered.chars().count(),
        boundaries: case.boundary_count(&scenario.program),
        stats: None,
        failure: None,
        timings: None,
    };
    let plain_failure = |stage: FailStage, reason: String| FailureRecord {
        seed,
        stage,
        reason,
        witness: rendered.clone(),
        shrunk: rendered.clone(),
        shrink_steps: 0,
    };

    // Stage 1: typecheck.
    match case.typecheck(&scenario.program) {
        Ok(checked) if checked == scenario.ty => {}
        Ok(checked) => {
            record.failure = Some(plain_failure(
                FailStage::Typecheck,
                format!("claimed {}, checked {}", scenario.ty, checked),
            ));
            return record;
        }
        Err(err) => {
            record.failure = Some(plain_failure(FailStage::Typecheck, err));
            return record;
        }
    }

    // The old timed pipeline's dedicated compile stage (its artifact was
    // dropped on the floor; the run below compiled again).
    if cfg.time {
        if let Err(err) = case.compile(&scenario.program) {
            record.failure = Some(plain_failure(FailStage::Compile, err));
            return record;
        }
    }

    // Run, compiling internally.
    match case.run(&scenario.program, cfg.profile.fuel) {
        Ok(report) => {
            let stats = case.stats(&report);
            record.stats = Some(stats);
            if !stats.outcome.is_safe() {
                record.failure = Some(plain_failure(
                    FailStage::Run,
                    format!("unsafe outcome {}", stats.outcome),
                ));
                return record;
            }
        }
        Err(err) => {
            record.failure = Some(plain_failure(FailStage::Compile, err));
            return record;
        }
    }

    // Model check, compiling yet again.
    if cfg.model_check {
        if let Err(check) = case.model_check(&scenario.program, &scenario.ty) {
            record.failure = Some(plain_failure(FailStage::ModelCheck, check.to_string()));
        }
    }
    record
}

fn recompiling_digest(case: &AnyCase, start: u64, len: u64, cfg: &SweepConfig) -> String {
    let mut report = CaseReport::new(case.name());
    for seed in start..start + len {
        report.absorb(&recompiling_record(case, seed, cfg));
    }
    report.digest()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole's perf-only guarantee: for every case study, every
    /// preset, and every model-check × time combination, the artifact-
    /// threaded engine produces byte-identical digests to the reference
    /// runner that recompiles per stage.
    #[test]
    fn artifact_threaded_digests_equal_per_stage_recompilation(start in 0u64..2_000) {
        const LEN: u64 = 6;
        for profile in GenProfile::presets() {
            for model_check in [false, true] {
                for time in [false, true] {
                    let cfg = SweepConfig { jobs: 2, profile, model_check, time, ..SweepConfig::default() };
                    let source = SeedRange::new(start, start + LEN).expect("non-empty");
                    for case in AnyCase::all(false) {
                        let threaded = sweep_case(&case, &source, &cfg).digest();
                        let reference = recompiling_digest(&case, start, LEN, &cfg);
                        prop_assert_eq!(
                            &threaded,
                            &reference,
                            "{} profile={} model_check={} time={}",
                            case.name(),
                            profile.name,
                            model_check,
                            time
                        );
                    }
                }
            }
        }
    }
}
