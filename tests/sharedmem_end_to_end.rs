//! Cross-crate integration tests for case study 1 (§3), including the
//! randomized instantiations of the Fundamental Property (Thm 3.2) and the
//! type-safety theorems (Thm 3.3/3.4).

use proptest::prelude::*;
use semint::core::Fuel;
use semint::reflang::syntax::{HlExpr, HlType, LlExpr, LlType};
use semint::sharedmem::convert::{RefStrategy, SharedMemConversions};
use semint::sharedmem::gen::{GenConfig, ProgramGen};
use semint::sharedmem::model::{ModelChecker, SemType};
use semint::sharedmem::multilang::MultiLang;
use semint::stacklang::Value;

fn system() -> MultiLang {
    MultiLang::new(SharedMemConversions::standard()).with_fuel(Fuel::steps(200_000))
}

#[test]
fn the_paper_running_example_bool_int_roundtrip() {
    // RefHL booleans cross into RefLL, get arithmetic applied, and come back.
    let sys = system();
    let e = HlExpr::if_(
        HlExpr::boundary(
            LlExpr::add(
                LlExpr::boundary(HlExpr::bool_(true), LlType::Int),
                LlExpr::int(0),
            ),
            HlType::Bool,
        ),
        HlExpr::bool_(false),
        HlExpr::bool_(true),
    );
    // true compiles to 0; 0 + 0 = 0; 0 is true; so the first branch (false) runs.
    let r = sys.run_hl(&e).unwrap();
    assert_eq!(r.outcome.value(), Some(Value::Num(1)));
}

#[test]
fn aliasing_through_nested_boundaries_is_preserved() {
    // A RefLL reference crosses into RefHL, gets written, and the update is
    // observed by RefLL through the original alias — with zero copies.
    let sys = system();
    let program = LlExpr::app(
        LlExpr::lam(
            "cell",
            LlType::ref_(LlType::Int),
            LlExpr::add(
                LlExpr::boundary(
                    HlExpr::assign(
                        HlExpr::boundary(LlExpr::var("cell"), HlType::ref_(HlType::Bool)),
                        HlExpr::bool_(false),
                    ),
                    LlType::Int,
                ),
                LlExpr::deref(LlExpr::var("cell")),
            ),
        ),
        LlExpr::ref_(LlExpr::int(0)),
    );
    let r = sys.run_ll(&program).unwrap();
    // assignment contributes 0 (unit), the cell now holds false = 1.
    assert_eq!(r.outcome.value(), Some(Value::Num(1)));
    assert_eq!(r.heap.len(), 1, "sharing allocates exactly one cell");
}

#[test]
fn convertibility_soundness_holds_for_every_derivable_rule_in_a_catalogue() {
    let checker = ModelChecker::default();
    let hl_types = [
        HlType::Bool,
        HlType::Unit,
        HlType::ref_(HlType::Bool),
        HlType::ref_(HlType::ref_(HlType::Bool)),
        HlType::sum(HlType::Bool, HlType::Bool),
        HlType::sum(HlType::Unit, HlType::Bool),
        HlType::prod(HlType::Bool, HlType::Unit),
        HlType::prod(HlType::Bool, HlType::Bool),
    ];
    let ll_types = [
        LlType::Int,
        LlType::ref_(LlType::Int),
        LlType::ref_(LlType::ref_(LlType::Int)),
        LlType::array(LlType::Int),
    ];
    let conversions = SharedMemConversions::standard();
    let mut derivable = 0;
    for hl in &hl_types {
        for ll in &ll_types {
            if conversions.derive(hl, ll).is_some() {
                derivable += 1;
                checker
                    .check_convertibility(hl, ll)
                    .unwrap_or_else(|ce| panic!("Lemma 3.1 failed for {hl} ∼ {ll}: {ce}"));
            }
        }
    }
    assert!(
        derivable >= 8,
        "the catalogue should exercise plenty of rules, got {derivable}"
    );
}

#[test]
fn copy_strategy_breaks_aliasing_but_stays_sound() {
    let copy = MultiLang::new(SharedMemConversions::with_ref_strategy(RefStrategy::Copy));
    let program = LlExpr::app(
        LlExpr::lam(
            "cell",
            LlType::ref_(LlType::Int),
            LlExpr::add(
                LlExpr::boundary(
                    HlExpr::assign(
                        HlExpr::boundary(LlExpr::var("cell"), HlType::ref_(HlType::Bool)),
                        HlExpr::bool_(false),
                    ),
                    LlType::Int,
                ),
                LlExpr::deref(LlExpr::var("cell")),
            ),
        ),
        LlExpr::ref_(LlExpr::int(0)),
    );
    let r = copy.run_ll(&program).unwrap();
    // The write went to the copy: RefLL still sees 0 — different behaviour,
    // still type safe.
    assert_eq!(r.outcome.value(), Some(Value::Num(0)));
    assert_eq!(r.heap.len(), 2, "the copy strategy allocates a second cell");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 3.4 (type safety for RefHL), instantiated on random well-typed
    /// multi-language programs: they compile, and running the compiled code
    /// never reaches `fail Type`.
    #[test]
    fn generated_refhl_programs_are_type_safe(seed in any::<u64>()) {
        let sys = system();
        let mut generator = ProgramGen::new(seed);
        let ty = generator.gen_hl_type(2);
        let program = generator.gen_hl(&ty);
        let checked = sys.typecheck_hl(&program).expect("generated programs typecheck");
        prop_assert_eq!(checked, ty);
        let result = sys.run_hl(&program).expect("generated programs compile");
        prop_assert!(result.outcome.is_safe(), "unsafe outcome {:?} for {}", result.outcome, program);
    }

    /// Theorem 3.3 for RefLL programs.
    #[test]
    fn generated_refll_programs_are_type_safe(seed in any::<u64>()) {
        let sys = system();
        let mut generator = ProgramGen::new(seed);
        let program = generator.gen_ll(&LlType::Int);
        sys.typecheck_ll(&program).expect("generated programs typecheck");
        let result = sys.run_ll(&program).expect("generated programs compile");
        prop_assert!(result.outcome.is_safe(), "unsafe outcome {:?} for {}", result.outcome, program);
    }

    /// The Fundamental Property, executably: compiled well-typed programs
    /// inhabit the expression relation at their own type.
    #[test]
    fn generated_programs_inhabit_their_expression_relation(seed in any::<u64>()) {
        let sys = system();
        let checker = ModelChecker::default();
        let mut generator = ProgramGen::with_config(seed, GenConfig { max_depth: 4, boundary_bias: 30, ..GenConfig::default() });
        let ty = generator.gen_hl_type(1);
        let program = generator.gen_hl(&ty);
        let compiled = sys.compile_hl(&program).expect("compiles");
        let world = semint::sharedmem::model::World::new(20_000);
        prop_assert!(
            checker.expr_in(&world, semint::stacklang::Heap::new(), &compiled.program, &SemType::Hl(ty.clone())),
            "compiled program not in E⟦{}⟧: {}", ty, program
        );
    }

    /// Boundary-free generated programs behave identically under the sharing
    /// and copying rule sets (the strategies only differ at boundaries).
    #[test]
    fn conversion_strategy_is_unobservable_without_boundaries(seed in any::<u64>()) {
        let cfg = GenConfig { max_depth: 4, boundary_bias: 0, ..GenConfig::default() };
        let mut g1 = ProgramGen::with_config(seed, cfg);
        let ty = g1.gen_hl_type(2);
        let program = g1.gen_hl(&ty);
        let share = MultiLang::new(SharedMemConversions::standard());
        let copy = MultiLang::new(SharedMemConversions::with_ref_strategy(RefStrategy::Copy));
        let r1 = share.run_hl(&program).expect("runs");
        let r2 = copy.run_hl(&program).expect("runs");
        prop_assert_eq!(r1.outcome, r2.outcome);
    }
}
