//! Integration tests for the first-class scenario-supply API (PR 3):
//!
//! * every generation profile — including `deep` — produces 100%-well-typed
//!   scenarios in all three case studies (proptest over seeds);
//! * the `deep` profile actually reaches source types of depth ≥ 4 in every
//!   case study, and its sweeps stay deterministic across thread counts;
//! * [`Shard`] sources partition a seed range exactly (disjoint, covering),
//!   and the merged per-shard reports reproduce the unsharded digests;
//! * a [`Corpus`] saved to disk and reloaded replays the identical sweep
//!   digest, with its generation profile pinned.

use proptest::prelude::*;
use semint::affine::harness::AffSourceType;
use semint::affine::{AffiType, MlType};
use semint::harness::cases::{AnyCase, AnyTy};
use semint::harness::engine::{sweep_all, SweepConfig};
use semint::harness::source::{Corpus, ScenarioSource, SeedRange, Shard};
use semint::harness::CaseStudy;
use semint::memgc::harness::MgSourceType;
use semint::memgc::{L3Type, PolyType};
use semint::reflang::syntax::{HlType, LlType};
use semint::sharedmem::multilang::SourceType;
use semint_core::case::GenProfile;
use semint_core::stats::SweepReport;

// ---------------------------------------------------------------------------
// Source-type depth measures (one per source language).

fn hl_depth(ty: &HlType) -> usize {
    match ty {
        HlType::Bool | HlType::Unit => 0,
        HlType::Sum(a, b) | HlType::Prod(a, b) | HlType::Fun(a, b) => {
            1 + hl_depth(a).max(hl_depth(b))
        }
        HlType::Ref(a) => 1 + hl_depth(a),
    }
}

fn ll_depth(ty: &LlType) -> usize {
    match ty {
        LlType::Int => 0,
        LlType::Array(a) | LlType::Ref(a) => 1 + ll_depth(a),
        LlType::Fun(a, b) => 1 + ll_depth(a).max(ll_depth(b)),
    }
}

fn affi_depth(ty: &AffiType) -> usize {
    match ty {
        AffiType::Int | AffiType::Bool | AffiType::Unit => 0,
        AffiType::Tensor(a, b) | AffiType::With(a, b) | AffiType::Lolli(_, a, b) => {
            1 + affi_depth(a).max(affi_depth(b))
        }
        AffiType::Bang(a) => 1 + affi_depth(a),
    }
}

fn ml_depth(ty: &MlType) -> usize {
    match ty {
        MlType::Unit | MlType::Int => 0,
        MlType::Prod(a, b) | MlType::Sum(a, b) | MlType::Fun(a, b) => {
            1 + ml_depth(a).max(ml_depth(b))
        }
        MlType::Ref(a) => 1 + ml_depth(a),
    }
}

fn poly_depth(ty: &PolyType) -> usize {
    match ty {
        PolyType::Unit | PolyType::Int | PolyType::Var(_) | PolyType::Foreign(_) => 0,
        PolyType::Prod(a, b) | PolyType::Sum(a, b) | PolyType::Fun(a, b) => {
            1 + poly_depth(a).max(poly_depth(b))
        }
        PolyType::Ref(a) | PolyType::Forall(_, a) => 1 + poly_depth(a),
    }
}

fn l3_depth(ty: &L3Type) -> usize {
    match ty {
        L3Type::Bool | L3Type::Unit => 0,
        L3Type::Tensor(a, b) | L3Type::Lolli(a, b) => 1 + l3_depth(a).max(l3_depth(b)),
        L3Type::Bang(a) => 1 + l3_depth(a),
        other => match semint::memgc::typecheck::ref_like_payload(other) {
            Some(payload) => 1 + l3_depth(&payload),
            None => 0,
        },
    }
}

fn any_ty_depth(ty: &AnyTy) -> usize {
    match ty {
        AnyTy::SharedMem(SourceType::Hl(t)) => hl_depth(t),
        AnyTy::SharedMem(SourceType::Ll(t)) => ll_depth(t),
        AnyTy::Affine(AffSourceType::Affi(t)) => affi_depth(t),
        AnyTy::Affine(AffSourceType::Ml(t)) => ml_depth(t),
        AnyTy::MemGc(MgSourceType::Ml(t)) => poly_depth(t),
        AnyTy::MemGc(MgSourceType::L3(t)) => l3_depth(t),
    }
}

// ---------------------------------------------------------------------------
// Profiles generate well-typed scenarios, at their advertised depth.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every preset profile generates scenarios whose claimed type
    /// re-checks, in all three case studies, at any seed.
    #[test]
    fn every_profile_generates_well_typed_scenarios(
        seed in 0u64..5_000,
        profile_idx in 0usize..GenProfile::PRESET_NAMES.len(),
    ) {
        let profile = GenProfile::by_name(GenProfile::PRESET_NAMES[profile_idx])
            .expect("preset");
        for case in AnyCase::all(false) {
            let scenario = case.generate(seed, &profile);
            let checked = case.typecheck(&scenario.program);
            prop_assert!(
                checked.is_ok(),
                "{} seed {} profile {}: ill-typed: {:?}",
                case.name(), seed, profile.name, checked
            );
            prop_assert_eq!(
                checked.unwrap(), scenario.ty,
                "{} seed {} profile {}: claimed type does not re-check",
                case.name(), seed, profile.name
            );
        }
    }

    /// Shards of any range are pairwise disjoint and jointly covering.
    #[test]
    fn shards_partition_any_range_exactly(
        start in 0u64..10_000,
        len in 1u64..300,
        of in 1u64..9,
    ) {
        let range = SeedRange::new(start, start + len).expect("non-empty");
        let mut combined = Vec::new();
        for index in 0..of {
            let shard = Shard::new(range, index, of).expect("valid shard");
            for seed in shard.seeds("any") {
                prop_assert!(
                    !combined.contains(&seed),
                    "seed {} appears in two shards", seed
                );
                combined.push(seed);
            }
        }
        combined.sort_unstable();
        prop_assert_eq!(combined, range.seeds("any"), "shards must cover the range");
    }
}

/// The acceptance bar for the `deep` profile: source types of depth ≥ 4
/// appear in all three case studies.
#[test]
fn deep_profile_reaches_type_depth_four_in_every_case_study() {
    let profile = GenProfile::deep();
    for case in AnyCase::all(false) {
        let max_depth = (0..80)
            .map(|seed| any_ty_depth(&case.generate(seed, &profile).ty))
            .max()
            .expect("non-empty seed range");
        assert!(
            max_depth >= 4,
            "{}: deep profile peaked at type depth {max_depth} over 80 seeds",
            case.name()
        );
    }
}

fn digests(report: &SweepReport) -> Vec<String> {
    report.cases.iter().map(|c| c.digest()).collect()
}

/// Deep-profile sweeps are deterministic for any thread count (the
/// acceptance criterion extends PR 1's determinism guarantee to the new
/// profiles).
#[test]
fn deep_profile_sweeps_are_deterministic_across_jobs() {
    let source = SeedRange::new(0, 24).unwrap();
    let sweep = |jobs: usize| {
        let cfg = SweepConfig {
            jobs,
            profile: GenProfile::deep(),
            ..SweepConfig::default()
        };
        sweep_all(&AnyCase::all(false), &source, &cfg)
    };
    let base = sweep(4);
    assert_eq!(base.failure_count(), 0, "deep sweep must stay clean");
    assert_eq!(digests(&base), digests(&sweep(1)));
    assert_eq!(digests(&base), digests(&sweep(7)));
}

/// Merging the reports of a full shard partition reproduces the unsharded
/// sweep digests — the property that makes cross-process sweeps compose.
#[test]
fn sharded_sweeps_merge_into_the_unsharded_digests() {
    let cases = AnyCase::all(false);
    let range = SeedRange::new(0, 45).unwrap();
    let cfg = SweepConfig {
        jobs: 3,
        model_check: false,
        ..SweepConfig::default()
    };
    let whole = sweep_all(&cases, &range, &cfg);
    let mut merged: Option<SweepReport> = None;
    for index in 0..3 {
        let shard = Shard::new(range, index, 3).unwrap();
        let part = sweep_all(&cases, &shard, &cfg);
        match &mut merged {
            None => merged = Some(part),
            Some(acc) => acc.merge(&part),
        }
    }
    let merged = merged.expect("three shards");
    assert_eq!(digests(&whole), digests(&merged));
}

/// A corpus records exactly the scenario set a source supplies, survives a
/// disk round trip, and replays the identical sweep digest — even under a
/// differently-configured sweep, because the corpus pins its profile.
#[test]
fn corpus_round_trip_reproduces_the_sweep_digest() {
    let cases = AnyCase::all(false);
    let range = SeedRange::new(0, 20).unwrap();
    let profile = GenProfile::deep();
    let cfg = SweepConfig {
        jobs: 2,
        profile,
        model_check: false,
        ..SweepConfig::default()
    };
    let original = sweep_all(&cases, &range, &cfg);

    let corpus = Corpus::record(&cases, &range, profile).expect("valid profile");
    assert_eq!(corpus.len(), 60, "20 seeds × 3 cases");
    let path =
        std::env::temp_dir().join(format!("semint-corpus-test-{}.corpus", std::process::id()));
    corpus.save(&path).expect("corpus saves");
    let reloaded = Corpus::load(&path).expect("corpus loads");
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.pinned_profile(), Some(profile));

    // Replay under a *different* configured profile: the pinned one wins.
    let mismatched_cfg = SweepConfig {
        jobs: 5,
        profile: GenProfile::smoke(),
        model_check: false,
        ..SweepConfig::default()
    };
    let replayed = sweep_all(&cases, &reloaded, &mismatched_cfg);
    assert_eq!(digests(&original), digests(&replayed));
}

/// Boundary counts in sweep reports come from the structural counters and
/// agree with the rendered `⦇` half-brackets.
#[test]
fn structural_boundary_counts_agree_with_the_rendering() {
    let profile = GenProfile::boundary_heavy();
    for case in AnyCase::all(false) {
        for seed in 0..30 {
            let scenario = case.generate(seed, &profile);
            let structural = case.boundary_count(&scenario.program);
            let rendered = scenario.program.to_string().matches('⦇').count();
            assert_eq!(
                structural,
                rendered,
                "{} seed {seed}: structural count {structural} != rendered {rendered}",
                case.name()
            );
        }
    }
}
