//! Properties of the shared conversion layer (PR 2): memoized glue
//! derivation must be **observably identical** to cold derivation for deep
//! compound types in all three case studies, and the generic
//! [`ConvertibilityRegistry`] must look up flipped/symmetric rules
//! coherently.

use proptest::prelude::*;
use semint::affine::convert::AffineConversions;
use semint::affine::{AffiType, MlType};
use semint::core::convert::{ConversionPair, ConvertibilityRegistry};
use semint::memgc::convert::MemGcConversions;
use semint::memgc::{L3Type, PolyType};
use semint::reflang::syntax::{HlType, LlType};
use semint::sharedmem::convert::SharedMemConversions;

/// A §3 type pair that is derivable at any nesting depth: products (and,
/// innermost, optionally a sum) over the base rules `bool ∼ int` /
/// `unit ∼ int`.  Sums require their payloads to convert to `int`, so the
/// sum sits at the innermost wrap only.
fn sharedmem_pair(depth: u8, use_sum: bool) -> (HlType, LlType) {
    let (mut hl, mut ll) = (HlType::Bool, LlType::Int);
    for level in 0..depth {
        if level == 0 && use_sum {
            hl = HlType::sum(hl, HlType::Unit);
        } else {
            hl = HlType::prod(hl.clone(), hl);
        }
        ll = LlType::array(ll);
    }
    (hl, ll)
}

/// A §4 type pair derivable at any depth: tensors/lollis over `int ∼ int`.
fn affine_pair(depth: u8, lolli: bool) -> (AffiType, MlType) {
    let mut affi = AffiType::Int;
    let mut ml = MlType::Int;
    for level in 0..depth {
        if lolli && level == depth - 1 {
            ml = MlType::fun(MlType::fun(MlType::Unit, ml.clone()), ml);
            affi = AffiType::lolli(affi.clone(), affi);
        } else {
            affi = AffiType::tensor(affi.clone(), affi);
            ml = MlType::prod(ml.clone(), ml);
        }
    }
    (affi, ml)
}

/// A §5 type pair derivable at any depth: products/functions over
/// `int ∼ bool`.
fn memgc_pair(depth: u8, fun: bool) -> (PolyType, L3Type) {
    let mut ml = PolyType::Int;
    let mut l3 = L3Type::Bool;
    for level in 0..depth {
        if fun && level == depth - 1 {
            l3 = L3Type::bang(L3Type::lolli(L3Type::bang(l3.clone()), l3));
            ml = PolyType::fun(ml.clone(), ml);
        } else {
            ml = PolyType::prod(ml.clone(), ml);
            l3 = L3Type::tensor(l3.clone(), l3);
        }
    }
    (ml, l3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharedmem_cached_derivation_is_identical_to_cold(
        depth in 0u8..6,
        use_unit in any::<bool>(),
    ) {
        let (hl, ll) = sharedmem_pair(depth, use_unit);
        let warm = SharedMemConversions::standard();
        let first = warm.derive(&hl, &ll);
        prop_assert!(first.is_some(), "{hl} ∼ {ll} must be derivable");
        // Asking again answers from the cache…
        let misses_after_first = warm.cache().stats().misses;
        let second = warm.derive(&hl, &ll);
        prop_assert_eq!(warm.cache().stats().misses, misses_after_first);
        // …and both the cached and a cold derivation agree, glue for glue.
        let cold = SharedMemConversions::standard().derive(&hl, &ll);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&first, &cold);
    }

    #[test]
    fn affine_cached_derivation_is_identical_to_cold(
        depth in 1u8..6,
        lolli in any::<bool>(),
    ) {
        let (affi, ml) = affine_pair(depth, lolli);
        let warm = AffineConversions::standard();
        let first = warm.derive(&affi, &ml);
        prop_assert!(first.is_some(), "{affi} ∼ {ml} must be derivable");
        let misses_after_first = warm.cache().stats().misses;
        let second = warm.derive(&affi, &ml);
        prop_assert_eq!(warm.cache().stats().misses, misses_after_first);
        let cold = AffineConversions::standard().derive(&affi, &ml);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&first, &cold);
    }

    #[test]
    fn memgc_cached_derivation_is_identical_to_cold(
        depth in 1u8..6,
        fun in any::<bool>(),
    ) {
        let (ml, l3) = memgc_pair(depth, fun);
        let warm = MemGcConversions::standard();
        let first = warm.derive(&ml, &l3);
        prop_assert!(first.is_some(), "{ml} ∼ {l3} must be derivable");
        let misses_after_first = warm.cache().stats().misses;
        let second = warm.derive(&ml, &l3);
        prop_assert_eq!(warm.cache().stats().misses, misses_after_first);
        let cold = MemGcConversions::standard().derive(&ml, &l3);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&first, &cold);
    }

    #[test]
    fn registry_flipped_lookup_is_symmetric(depth in 0u8..5, use_unit in any::<bool>()) {
        // Load the derived §3 glue into the generic registry both ways round
        // (HL→LL and, flipped, LL→HL) and check the two views agree rule by
        // rule: `flipped` must swap directions, and flipping twice must be
        // the identity.
        let derived = SharedMemConversions::standard();
        let (hl, ll) = sharedmem_pair(depth, use_unit);
        let (to_ll, to_hl) = derived.derive(&hl, &ll).expect("derivable");

        let mut forward: ConvertibilityRegistry<HlType, LlType, semint::stacklang::Program> =
            ConvertibilityRegistry::new();
        let mut backward: ConvertibilityRegistry<LlType, HlType, semint::stacklang::Program> =
            ConvertibilityRegistry::new();
        forward.register(hl.clone(), ll.clone(), ConversionPair::new(to_ll, to_hl));
        for ((a, b), pair) in forward.iter() {
            backward.register(b.clone(), a.clone(), pair.clone().flipped());
        }

        prop_assert!(forward.convertible(&hl, &ll));
        prop_assert!(backward.convertible(&ll, &hl), "flipped rule must be found");
        let fwd = forward.conversion(&hl, &ll).expect("registered").clone();
        let bwd = backward.conversion(&ll, &hl).expect("registered").clone();
        prop_assert_eq!(&fwd.a_to_b, &bwd.b_to_a);
        prop_assert_eq!(&fwd.b_to_a, &bwd.a_to_b);
        prop_assert_eq!(fwd.clone(), bwd.flipped());
        prop_assert_eq!(fwd.clone().flipped().flipped(), fwd);
    }
}

/// The §4 higher-order wrapper is the most allocation-heavy glue; make sure
/// the cache returns the same wrapper the cold path builds even when the
/// sub-derivations were cached in a different order.
#[test]
fn affine_out_of_order_subderivations_agree_with_cold() {
    let warm = AffineConversions::standard();
    let (inner_affi, inner_ml) = affine_pair(2, false);
    // Warm the cache bottom-up first…
    let _ = warm.derive(&inner_affi, &inner_ml);
    // …then derive a lolli over the warmed components.
    let affi = AffiType::lolli(inner_affi.clone(), inner_affi.clone());
    let ml = MlType::fun(
        MlType::fun(MlType::Unit, inner_ml.clone()),
        inner_ml.clone(),
    );
    let warm_result = warm.derive(&affi, &ml);
    let cold_result = AffineConversions::standard().derive(&affi, &ml);
    assert_eq!(warm_result, cold_result);
    assert!(warm_result.is_some());
}
