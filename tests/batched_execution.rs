//! Integration tests for batch-oriented execution (PR 5):
//!
//! * sweeps that group compiled artifacts into `--batch N` chunks and drive
//!   each chunk through **one** reused machine produce digests byte-identical
//!   to the unbatched sweep, across all three case studies, all four
//!   [`GenProfile`] presets, and batch sizes {1, 2, 7, 64} (sizes chosen so
//!   batches divide the seed range unevenly, cover it with one chunk, and
//!   degenerate to the per-scenario engine);
//! * a reused machine — `stacklang::Machine` or `lcvm::Machine` reset in
//!   place between programs — is observationally identical to a fresh
//!   machine on proptest-selected generated programs: same outcome, same
//!   final heap, same step count, for every case study's compiled artifacts.

use proptest::prelude::*;
use semint::core::case::{CaseStudy, GenProfile};
use semint::harness::cases::AnyCase;
use semint::harness::engine::{sweep_all, sweep_case, SweepConfig};
use semint::harness::source::SeedRange;

// ---------------------------------------------------------------------------
// Batched ≡ unbatched digests.

const BATCH_SIZES: [usize; 3] = [2, 7, 64];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole guarantee: batching changes amortisation, never results.
    /// For every case study, every preset, and batch sizes that tile the
    /// range unevenly (2, 7) or swallow it whole (64), the batched sweep's
    /// digest equals the `--batch 1` digest byte for byte.
    #[test]
    fn batched_digests_equal_unbatched_digests(start in 0u64..2_000) {
        // 9 seeds: not a multiple of 2 or 7, so final chunks are ragged.
        const LEN: u64 = 9;
        let source = SeedRange::new(start, start + LEN).expect("non-empty");
        for profile in GenProfile::presets() {
            for case in AnyCase::all(false) {
                let cfg = |batch: usize| SweepConfig {
                    jobs: 2,
                    profile,
                    model_check: true,
                    time: false,
                    batch,
                };
                let unbatched = sweep_case(&case, &source, &cfg(1)).digest();
                for batch in BATCH_SIZES {
                    let batched = sweep_case(&case, &source, &cfg(batch)).digest();
                    prop_assert_eq!(
                        &batched,
                        &unbatched,
                        "{} profile={} batch={}",
                        case.name(),
                        profile.name,
                        batch
                    );
                }
            }
        }
    }

    /// Batching composes with the interleaved all-cases pool and with timed
    /// sweeps: `sweep_all` digests are batch-invariant whether or not the
    /// stopwatch is on (timings are measurement-only and excluded from
    /// digests).
    #[test]
    fn batched_sweep_all_is_digest_invariant_timed_or_not(start in 0u64..2_000) {
        const LEN: u64 = 8;
        let source = SeedRange::new(start, start + LEN).expect("non-empty");
        let cases = AnyCase::all(false);
        let digests = |batch: usize, time: bool| {
            let cfg = SweepConfig {
                jobs: 3,
                profile: GenProfile::standard(),
                model_check: false,
                time,
                batch,
            };
            sweep_all(&cases, &source, &cfg)
                .cases
                .iter()
                .map(|c| c.digest())
                .collect::<Vec<_>>()
        };
        let unbatched = digests(1, false);
        for batch in BATCH_SIZES {
            prop_assert_eq!(&digests(batch, false), &unbatched, "batch={}", batch);
            prop_assert_eq!(&digests(batch, true), &unbatched, "timed batch={}", batch);
        }
    }
}

// ---------------------------------------------------------------------------
// Machine reuse ≡ fresh machines, on generated programs.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One `stacklang::Machine`, reset between the compiled artifacts of
    /// proptest-selected sharedmem scenarios, produces run results equal to
    /// a fresh machine per artifact (outcome, final heap, final stack and
    /// step count all compared via `RunResult`'s `PartialEq`).
    #[test]
    fn reused_stacklang_machine_matches_fresh_machines(
        seeds in proptest::collection::vec(0u64..10_000, 1..10)
    ) {
        let case = sharedmem::harness::SharedMemCase::standard();
        let profile = GenProfile::standard();
        let mut reused = stacklang::Machine::new(stacklang::Program::empty());
        for seed in seeds {
            let scenario = case.generate(seed, &profile);
            let compiled = case.compile(&scenario.program).expect("well-typed");
            let fresh = stacklang::Machine::run_program(compiled.clone(), profile.fuel);
            reused.reset(compiled);
            let batched = reused.run_mut(profile.fuel);
            prop_assert_eq!(batched, fresh, "seed {}", seed);
        }
    }

    /// One `lcvm::Machine`, reset between the compiled artifacts of
    /// proptest-selected affine and memgc scenarios (both case studies
    /// target LCVM), matches fresh machines the same way.
    #[test]
    fn reused_lcvm_machine_matches_fresh_machines(
        seeds in proptest::collection::vec(0u64..10_000, 1..10)
    ) {
        let affine = semint::affine::harness::AffineCase::standard();
        let memgc = semint::memgc::harness::MemGcCase::standard();
        let profile = GenProfile::standard();
        let mut reused = lcvm::Machine::new(lcvm::Expr::Unit);
        for seed in seeds {
            let scenario = affine.generate(seed, &profile);
            let compiled = affine.compile(&scenario.program).expect("well-typed");
            let fresh = lcvm::Machine::run_expr(compiled.expr.clone(), profile.fuel);
            reused.reset(compiled.expr);
            prop_assert_eq!(reused.run_mut(profile.fuel), fresh, "affine seed {}", seed);

            let scenario = memgc.generate(seed, &profile);
            let compiled = memgc.compile(&scenario.program).expect("well-typed");
            let fresh = lcvm::Machine::run_expr(compiled.clone(), profile.fuel);
            reused.reset(compiled);
            prop_assert_eq!(reused.run_mut(profile.fuel), fresh, "memgc seed {}", seed);
        }
    }
}

// ---------------------------------------------------------------------------
// The batch dispatcher itself.

/// `AnyCase::execute_batch` unwraps erased artifacts, drives them through
/// the case study's reused machine, and returns reports in input order —
/// equal, report for report, to executing one at a time.
#[test]
fn any_case_batches_match_one_at_a_time_execution() {
    let profile = GenProfile::standard();
    for case in AnyCase::all(false) {
        let compiled: Vec<_> = (0..10u64)
            .map(|seed| {
                let scenario = case.generate(seed, &profile);
                case.compile(&scenario.program).expect("well-typed")
            })
            .collect();
        let singly: Vec<_> = compiled
            .iter()
            .cloned()
            .map(|artifact| case.stats(&case.execute(artifact, profile.fuel)))
            .collect();
        let batched: Vec<_> = case
            .execute_batch(compiled, profile.fuel)
            .iter()
            .map(|report| case.stats(report))
            .collect();
        assert_eq!(batched, singly, "{}", case.name());
    }
}

/// An empty batch is legal and produces no reports (a batch whose scenarios
/// all failed before the run stage executes nothing).
#[test]
fn empty_batches_execute_nothing() {
    for case in AnyCase::all(false) {
        assert!(case
            .execute_batch(Vec::new(), GenProfile::standard().fuel)
            .is_empty());
    }
}
