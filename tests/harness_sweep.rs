//! Integration tests for the unified scenario engine: a fixed-seed sweep
//! over all three case studies must be deterministic (same seeds → same
//! report, for any thread count) and clean (zero model-check failures), and
//! a deliberately broken conversion must be reported with a shrunk
//! counterexample.

use semint::harness::cases::AnyCase;
use semint::harness::engine::{run_scenario, sweep_all, sweep_case, SweepConfig};
use semint::harness::report::render_sweep;
use semint::harness::source::SeedRange;
use semint::harness::CaseStudy;
use semint_core::stats::{FailStage, SweepReport};

fn fixed_source() -> SeedRange {
    SeedRange::new(0, 60).expect("well-formed")
}

fn fixed_config(jobs: usize) -> SweepConfig {
    SweepConfig {
        jobs,
        ..SweepConfig::default()
    }
}

#[test]
fn fixed_seed_sweep_covers_all_cases_with_zero_failures() {
    let report = sweep_all(&AnyCase::all(false), &fixed_source(), &fixed_config(4));
    assert_eq!(report.cases.len(), 3);
    let names: Vec<&str> = report.cases.iter().map(|c| c.case.as_str()).collect();
    assert_eq!(names, ["sharedmem", "affine", "memgc"]);
    for case in &report.cases {
        assert_eq!(case.scenarios, 60, "{}", case.case);
        assert!(
            case.is_clean(),
            "{} failures: {:?}",
            case.case,
            case.failures
        );
        // Every scenario ran: the histogram accounts for all of them.
        let runs: u64 = case.outcome_histogram.values().sum();
        assert_eq!(runs, 60, "{}", case.case);
        // All outcomes are safe classes (unsafe ones become failures).
        for label in case.outcome_histogram.keys() {
            assert!(
                label == "value" || label == "out-of-fuel" || label.starts_with("fail-"),
                "{label}"
            );
            assert_ne!(label, "fail-Type", "{}", case.case);
        }
        // Boundaries were actually exercised.
        assert!(
            case.total_boundaries > 0,
            "{} swept no boundaries",
            case.case
        );
    }
}

#[test]
fn sweep_is_deterministic_across_runs_and_thread_counts() {
    let digests = |jobs: usize| -> Vec<String> {
        sweep_all(&AnyCase::all(false), &fixed_source(), &fixed_config(jobs))
            .cases
            .iter()
            .map(|c| c.digest())
            .collect()
    };
    let base = digests(4);
    assert_eq!(base, digests(4), "same configuration must reproduce");
    assert_eq!(base, digests(1), "single-threaded sweep must agree");
    assert_eq!(base, digests(9), "oversubscribed sweep must agree");
}

#[test]
fn single_case_sweep_agrees_with_the_combined_sweep() {
    let combined = sweep_all(&AnyCase::all(false), &fixed_source(), &fixed_config(3));
    for case in AnyCase::all(false) {
        let solo = sweep_case(&case, &fixed_source(), &fixed_config(2));
        let from_combined = combined
            .cases
            .iter()
            .find(|c| c.case == case.name())
            .expect("case present");
        assert_eq!(solo.digest(), from_combined.digest());
    }
}

#[test]
fn broken_conversion_is_reported_with_a_shrunk_counterexample() {
    let report = sweep_all(&AnyCase::all(true), &fixed_source(), &fixed_config(4));
    let sharedmem = &report.cases[0];
    assert!(
        !sharedmem.failures.is_empty(),
        "the broken bool ∼ [int] rule must be caught by the model check"
    );
    for failure in &sharedmem.failures {
        assert_eq!(failure.stage, FailStage::ModelCheck);
        assert!(!failure.shrunk.is_empty());
        assert!(
            failure.shrunk.chars().count() <= failure.witness.chars().count(),
            "shrunk witness must not grow: {} vs {}",
            failure.shrunk,
            failure.witness
        );
    }
    // At least one counterexample shrinks to a strict subterm.
    assert!(
        sharedmem.failures.iter().any(|f| f.shrink_steps > 0),
        "no counterexample shrank: {:?}",
        sharedmem.failures
    );
    // The catalogue-level check (Lemma 3.1) also refutes the broken rule.
    let broken_case = AnyCase::by_name("sharedmem", true).expect("known case");
    let err = broken_case
        .check_conversions()
        .expect_err("broken rule must be refuted");
    assert!(err.claim.contains("broken"), "{}", err.claim);
}

#[test]
fn sweeps_reuse_glue_through_the_shared_cache() {
    let cases = AnyCase::all(false);
    let report = sweep_all(&cases, &fixed_source(), &fixed_config(4));
    for case in &report.cases {
        assert!(
            case.glue_hits > 0,
            "{}: repeated boundary crossings must hit the glue cache \
             (hits {}, misses {})",
            case.case,
            case.glue_hits,
            case.glue_misses
        );
        assert!(
            case.glue_misses > 0,
            "{}: a cold cache must record the first derivations",
            case.case
        );
        assert!(
            case.glue_hits > case.glue_misses,
            "{}: the cache should answer most lookups after warm-up \
             (hits {}, misses {})",
            case.case,
            case.glue_hits,
            case.glue_misses
        );
    }
    // A second sweep over the same cases re-uses the warm cache: no new
    // derivations at all.
    let again = sweep_all(&cases, &fixed_source(), &fixed_config(4));
    for case in &again.cases {
        assert_eq!(
            case.glue_misses, 0,
            "{}: warm-cache sweep must not re-derive anything",
            case.case
        );
    }
    // The counters survive the save/report round trip and are rendered.
    let parsed = SweepReport::from_tsv(&report.to_tsv()).expect("tsv round trip");
    for (orig, parsed) in report.cases.iter().zip(&parsed.cases) {
        assert_eq!(orig.glue_hits, parsed.glue_hits);
        assert_eq!(orig.glue_misses, parsed.glue_misses);
    }
    assert!(render_sweep(&parsed).contains("glue cache"));
}

#[test]
fn timed_sweep_reports_per_stage_wall_clock() {
    let cfg = SweepConfig {
        time: true,
        ..fixed_config(2)
    };
    let report = sweep_all(&AnyCase::all(false), &fixed_source(), &cfg);
    for case in &report.cases {
        let timings = case.timings.expect("--time collects stage totals");
        assert!(timings.run_ns > 0, "{}", case.case);
        assert!(timings.total_ns() >= timings.run_ns, "{}", case.case);
    }
    // Timed and untimed sweeps agree on everything the digest covers.
    let untimed = sweep_all(&AnyCase::all(false), &fixed_source(), &fixed_config(2));
    let digests = |r: &SweepReport| r.cases.iter().map(|c| c.digest()).collect::<Vec<_>>();
    assert_eq!(digests(&report), digests(&untimed));
}

#[test]
fn run_scenario_records_the_pipeline_outcome() {
    let case = AnyCase::by_name("memgc", false).expect("known case");
    let cfg = fixed_config(1);
    for seed in 0..10 {
        let record = run_scenario(&case, seed, &cfg);
        assert_eq!(record.seed, seed);
        assert!(
            record.failure.is_none(),
            "seed {seed}: {:?}",
            record.failure
        );
        let stats = record.stats.expect("pipeline reached the run stage");
        assert!(stats.outcome.is_safe());
        assert!(record.program_chars > 0);
    }
}
