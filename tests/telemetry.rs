//! Integration tests for deterministic telemetry (PR 6):
//!
//! * telemetry is strictly observational — a traced sweep's per-case
//!   digests are byte-identical to an untraced sweep's, across all three
//!   case studies and all four [`GenProfile`] presets;
//! * the Tier-A [`VmCounters`] are digest-grade facts: byte-identical
//!   across every `--jobs` × `--batch` combination, and they survive the
//!   shard-merge path ([`CaseReport::merge`]) exactly;
//! * the Tier-B JSONL trace round-trips: aggregating a sweep's `--trace`
//!   stream through the `semint profile` machinery reproduces the sweep
//!   report's own counter totals.

use semint::core::case::GenProfile;
use semint::core::stats::CaseReport;
use semint::core::VmCounters;
use semint::harness::cases::AnyCase;
use semint::harness::engine::{sweep_all, sweep_all_observed, sweep_case, SweepConfig};
use semint::harness::profile::{absorb_trace, render_profile, TraceProfile};
use semint::harness::source::{SeedRange, Shard};
use semint::harness::trace::SweepObserver;

fn cfg(jobs: usize, batch: usize, profile: GenProfile) -> SweepConfig {
    SweepConfig {
        jobs,
        profile,
        model_check: true,
        time: false,
        batch,
    }
}

// ---------------------------------------------------------------------------
// Telemetry on ≡ telemetry off.

/// The headline guarantee: tracing a sweep (observer attached, trace file
/// streaming, timing forced on as `--trace` does) changes no digest, for
/// every case study and every generation preset.
#[test]
fn traced_sweeps_produce_byte_identical_digests() {
    let source = SeedRange::new(0, 24).expect("non-empty");
    let cases = AnyCase::all(false);
    for profile in GenProfile::presets() {
        let plain = sweep_all(&cases, &source, &cfg(2, 4, profile));
        let path = std::env::temp_dir().join(format!(
            "semint-telemetry-{}-{}.jsonl",
            std::process::id(),
            profile.name
        ));
        let observer = SweepObserver::new(72, Some(&path), false).expect("trace file");
        let traced_cfg = SweepConfig {
            time: true, // `--trace` implies `--time`
            ..cfg(2, 4, profile)
        };
        let traced = sweep_all_observed(&cases, &source, &traced_cfg, Some(&observer));
        observer.finish().expect("trace writer");
        let _ = std::fs::remove_file(&path);
        for (a, b) in plain.cases.iter().zip(&traced.cases) {
            assert_eq!(
                a.digest(),
                b.digest(),
                "case {} profile {}: tracing changed the digest",
                a.case,
                profile.name
            );
            assert_eq!(
                a.counters, b.counters,
                "case {} profile {}: tracing changed the counters",
                a.case, profile.name
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Counter determinism across scheduling knobs.

/// Counters are identical across every jobs × batch combination — the
/// aggregation rules (counts add, peaks max) are commutative and
/// associative, so scheduling cannot be observed.
#[test]
fn counters_are_identical_across_jobs_and_batch() {
    let source = SeedRange::new(0, 30).expect("non-empty");
    let cases = AnyCase::all(false);
    let reference = sweep_all(&cases, &source, &cfg(1, 1, GenProfile::standard()));
    assert!(
        reference.cases.iter().any(|c| !c.counters.is_zero()),
        "the reference sweep must retire instructions"
    );
    for jobs in [1, 4] {
        for batch in [1, 8, 64] {
            let swept = sweep_all(&cases, &source, &cfg(jobs, batch, GenProfile::standard()));
            for (a, b) in reference.cases.iter().zip(&swept.cases) {
                assert_eq!(
                    a.counters, b.counters,
                    "case {}: counters drifted at jobs={jobs} batch={batch}",
                    a.case
                );
                assert_eq!(a.digest(), b.digest(), "case {}", a.case);
            }
        }
    }
}

/// Shard reports merged through [`CaseReport::merge`] reproduce the
/// unsharded sweep's counters exactly — including the high-water marks,
/// which take the max rather than adding.
#[test]
fn counters_survive_shard_merge_exactly() {
    let range = SeedRange::new(0, 30).expect("non-empty");
    let cases = AnyCase::all(false);
    let whole = sweep_all(&cases, &range, &cfg(2, 4, GenProfile::standard()));
    let mut merged: Option<Vec<CaseReport>> = None;
    for index in 0..3 {
        let shard = Shard::new(range, index, 3).expect("valid shard");
        let part = sweep_all(&cases, &shard, &cfg(2, 4, GenProfile::standard()));
        match &mut merged {
            None => merged = Some(part.cases),
            Some(acc) => {
                for (a, b) in acc.iter_mut().zip(&part.cases) {
                    a.merge(b);
                }
            }
        }
    }
    let merged = merged.expect("three shards");
    for (whole_case, merged_case) in whole.cases.iter().zip(&merged) {
        assert_eq!(
            whole_case.counters, merged_case.counters,
            "case {}: merge changed the counters",
            whole_case.case
        );
        assert_eq!(whole_case.digest(), merged_case.digest());
    }
}

// ---------------------------------------------------------------------------
// Trace → profile round trip.

/// A sweep's `--trace` stream, aggregated by the `semint profile`
/// machinery, reproduces the sweep report's own per-case counter totals and
/// scenario counts — the JSONL round trip loses nothing the profile needs.
#[test]
fn trace_round_trips_through_profile_aggregation() {
    let source = SeedRange::new(0, 18).expect("non-empty");
    let cases = AnyCase::all(false);
    let path = std::env::temp_dir().join(format!(
        "semint-telemetry-roundtrip-{}.jsonl",
        std::process::id()
    ));
    let observer = SweepObserver::new(54, Some(&path), false).expect("trace file");
    let swept_cfg = SweepConfig {
        time: true,
        ..cfg(4, 8, GenProfile::standard())
    };
    let report = sweep_all_observed(&cases, &source, &swept_cfg, Some(&observer));
    observer.finish().expect("trace writer");
    let text = std::fs::read_to_string(&path).expect("trace written");
    let _ = std::fs::remove_file(&path);

    let mut profile = TraceProfile::default();
    absorb_trace(&mut profile, &text).expect("well-formed trace");
    assert_eq!(profile.scenarios, report.scenarios());
    assert!(profile.heartbeats >= 1, "finish emits a final heartbeat");
    for case in &report.cases {
        let profiled = &profile.cases[&case.case];
        assert_eq!(
            profiled.counters, case.counters,
            "case {}: profile counters diverge from the sweep report",
            case.case
        );
        assert_eq!(profiled.scenarios, case.scenarios, "case {}", case.case);
        assert_eq!(profiled.steps, case.total_steps, "case {}", case.case);
    }
    let rendered = render_profile(&profile);
    assert!(rendered.contains("trace profile:"), "{rendered}");
    assert!(rendered.contains("hottest seeds"), "{rendered}");
}

// ---------------------------------------------------------------------------
// The counters themselves are live.

/// Sanity on counter content: one retired instruction per machine step
/// (`total_instrs == total_steps` per case), and the engine stamps boundary
/// crossings from the scenarios' static counts.
#[test]
fn counters_account_for_every_step_and_boundary() {
    let source = SeedRange::new(0, 20).expect("non-empty");
    for case in AnyCase::all(false) {
        let report = sweep_case(&case, &source, &cfg(2, 4, GenProfile::standard()));
        assert_eq!(
            report.counters.total_instrs(),
            report.total_steps,
            "case {}: each machine step retires exactly one classified instruction",
            report.case
        );
        assert_eq!(
            report.counters.boundary_crossings, report.total_boundaries,
            "case {}: boundary crossings come from the static per-scenario counts",
            report.case
        );
    }
}

/// A report absorbed from zero-counter legacy data merges with a live one
/// without disturbing it (absent counters behave as zero everywhere).
#[test]
fn legacy_zero_counters_merge_neutrally() {
    let source = SeedRange::new(0, 10).expect("non-empty");
    let case = AnyCase::by_name("sharedmem", false).expect("known case");
    let live = sweep_case(&case, &source, &cfg(1, 1, GenProfile::standard()));
    let mut merged = live.clone();
    merged.merge(&CaseReport::new("sharedmem"));
    assert_eq!(merged.counters, live.counters);
    let mut from_legacy = CaseReport::new("sharedmem");
    from_legacy.merge(&live);
    assert_eq!(from_legacy.counters, live.counters);
    assert_eq!(VmCounters::default(), CaseReport::new("sharedmem").counters);
}
