//! Cross-cutting framework properties (paper §2) exercised across all three
//! case studies at once: the convertibility registry, world laws, the
//! `interp_equal` decision procedure, and the uniform treatment of dynamic
//! error codes.

use proptest::prelude::*;
use semint::core::convert::{ConversionPair, ConvertibilityRegistry};
use semint::core::world::check_world_laws;
use semint::core::{ErrorCode, Fuel, Outcome, StepIndex};
use semint::reflang::syntax::{HlType, LlType};
use semint::sharedmem::convert::SharedMemConversions;
use semint::sharedmem::model::{interp_equal, SemType, World};
use semint::stacklang::Loc;

#[test]
fn the_generic_registry_can_host_the_fig4_rules() {
    // The case-study crates derive rules structurally, but the paper's step
    // 2.2 describes a declarative rule table; show the two presentations
    // agree on the base rules by loading the derived glue into the generic
    // registry from semint-core.
    let derived = SharedMemConversions::standard();
    let mut registry: ConvertibilityRegistry<HlType, LlType, semint::stacklang::Program> =
        ConvertibilityRegistry::new();
    let pairs = [
        (HlType::Bool, LlType::Int),
        (HlType::Unit, LlType::Int),
        (HlType::ref_(HlType::Bool), LlType::ref_(LlType::Int)),
        (
            HlType::sum(HlType::Bool, HlType::Bool),
            LlType::array(LlType::Int),
        ),
    ];
    for (hl, ll) in pairs {
        let (to_ll, to_hl) = derived.derive(&hl, &ll).expect("derivable");
        registry.register(hl, ll, ConversionPair::new(to_ll, to_hl));
    }
    assert_eq!(registry.len(), 4);
    assert!(registry.convertible(&HlType::Bool, &LlType::Int));
    assert!(!registry.convertible(&HlType::Bool, &LlType::array(LlType::Int)));
    // The no-op rules really are no-ops in the registry view as well.
    let pair = registry.conversion(&HlType::Bool, &LlType::Int).unwrap();
    assert!(pair.a_to_b.is_empty() && pair.b_to_a.is_empty());
}

#[test]
fn all_case_study_worlds_satisfy_the_world_laws() {
    // §3 world.
    let w = World::new(64)
        .with_loc(Loc(0), HlType::Bool)
        .with_loc(Loc(1), LlType::Int);
    check_world_laws(&w).unwrap();
    // Lowering the index is an extension; raising it is not; forgetting a
    // location is not.
    assert!(w.extended_by(&World {
        k: StepIndex::new(10),
        heap_typing: w.heap_typing.clone()
    }));
    assert!(!w.extended_by(&World::new(64)));
}

#[test]
fn error_codes_have_a_consistent_benignness_story_across_targets() {
    // The type-safety theorems allow exactly the non-Type codes.
    for code in [ErrorCode::Idx, ErrorCode::Conv, ErrorCode::Ptr] {
        assert!(code.is_benign());
        assert!(Outcome::<i32>::Fail(code).is_safe());
        assert!(lcvm::Halt::Fail(code).is_safe());
    }
    assert!(!ErrorCode::Type.is_benign());
    assert!(!Outcome::<i32>::Fail(ErrorCode::Type).is_safe());
    assert!(!lcvm::Halt::Fail(ErrorCode::Type).is_safe());
}

fn hl_type_strategy() -> impl Strategy<Value = HlType> {
    let leaf = prop_oneof![Just(HlType::Bool), Just(HlType::Unit)];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| HlType::sum(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| HlType::prod(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| HlType::fun(a, b)),
            inner.prop_map(HlType::ref_),
        ]
    })
}

fn ll_type_strategy() -> impl Strategy<Value = LlType> {
    let leaf = Just(LlType::Int);
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(LlType::array),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| LlType::fun(a, b)),
            inner.prop_map(LlType::ref_),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `interp_equal` is reflexive on both languages' types.
    #[test]
    fn interp_equal_is_reflexive(hl in hl_type_strategy(), ll in ll_type_strategy()) {
        prop_assert!(interp_equal(&SemType::Hl(hl.clone()), &SemType::Hl(hl)));
        prop_assert!(interp_equal(&SemType::Ll(ll.clone()), &SemType::Ll(ll)));
    }

    /// `interp_equal` is symmetric across the two languages.
    #[test]
    fn interp_equal_is_symmetric(hl in hl_type_strategy(), ll in ll_type_strategy()) {
        let a = SemType::Hl(hl);
        let b = SemType::Ll(ll);
        prop_assert_eq!(interp_equal(&a, &b), interp_equal(&b, &a));
    }

    /// Pointer sharing is admitted exactly when the interpretations are equal
    /// — the derivation rule and the model-level question coincide.
    #[test]
    fn sharing_iff_equal_interpretations(hl in hl_type_strategy(), ll in ll_type_strategy()) {
        let conv = SharedMemConversions::standard();
        let shared_ref_rule = conv.derive(&HlType::ref_(hl.clone()), &LlType::ref_(ll.clone()));
        let equal = interp_equal(&SemType::Hl(hl.clone()), &SemType::Ll(ll.clone()));
        match shared_ref_rule {
            Some((to_ll, to_hl)) => {
                prop_assert!(to_ll.is_empty() && to_hl.is_empty(), "sharing glue must be a no-op");
                prop_assert!(equal, "sharing admitted although interpretations differ");
            }
            None => prop_assert!(!equal || conv.derive(&hl, &ll).is_none(),
                "equal interpretations with a derivable payload rule should allow sharing"),
        }
    }

    /// Fuel is well-behaved: consuming never increases the remaining budget
    /// and unlimited fuel never exhausts.
    #[test]
    fn fuel_accounting(n in 0u64..10_000) {
        let mut fuel = Fuel::steps(n);
        let mut consumed = 0;
        while fuel.consume() {
            consumed += 1;
            prop_assert!(consumed <= n);
        }
        prop_assert_eq!(consumed, n);
        prop_assert!(fuel.is_exhausted() || n == 0);
    }
}
