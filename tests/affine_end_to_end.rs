//! Cross-crate integration tests for case study 2 (§4): dynamic vs static
//! affine enforcement, the Fig. 9 conversions, and the erasure/agreement
//! property of the phantom-flag semantics.

use proptest::prelude::*;
use semint::affine::compile::thunk_guard;
use semint::affine::model::{AffineModelChecker, AffineSemType};
use semint::affine::multilang::AffineMultiLang;
use semint::affine::syntax::{AffiExpr, AffiType, MlExpr, MlType};
use semint::core::ErrorCode;
use semint::lcvm::{Expr, Halt, Machine, Value};

fn thunked_fun(arg: MlType, res: MlType) -> MlType {
    MlType::fun(MlType::fun(MlType::Unit, arg), res)
}

#[test]
fn an_affine_pipeline_across_three_boundaries() {
    // Affi builds a one-shot adder, MiniML partially applies it through the
    // boundary, and the final result crosses back into Affi.
    let sys = AffineMultiLang::new();
    let affi_adder = AffiExpr::lam(
        "a",
        AffiType::Int,
        AffiExpr::boundary(
            MlExpr::add(
                MlExpr::boundary(AffiExpr::avar("a"), MlType::Int),
                MlExpr::int(10),
            ),
            AffiType::Int,
        ),
    );
    let ml_user = MlExpr::app(
        MlExpr::boundary(affi_adder, thunked_fun(MlType::Int, MlType::Int)),
        MlExpr::lam("_", MlType::Unit, MlExpr::int(32)),
    );
    let whole = AffiExpr::boundary(ml_user, AffiType::Int);
    let r = sys.run_affi(&whole).unwrap();
    assert_eq!(r.halt, Halt::Value(Value::Int(42)));
}

#[test]
fn the_two_enforcement_regimes_have_observably_different_costs() {
    // Count the dynamic guards the compiler inserts: none for a chain of
    // static applications, one per dynamic application.
    let sys = AffineMultiLang::new();
    let static_chain = AffiExpr::app(
        AffiExpr::lam_static(
            "x",
            AffiType::Int,
            AffiExpr::app(
                AffiExpr::lam_static("y", AffiType::Int, AffiExpr::avar_static("y")),
                AffiExpr::avar_static("x"),
            ),
        ),
        AffiExpr::int(5),
    );
    let dynamic_chain = AffiExpr::app(
        AffiExpr::lam(
            "x",
            AffiType::Int,
            AffiExpr::app(
                AffiExpr::lam("y", AffiType::Int, AffiExpr::avar("y")),
                AffiExpr::avar("x"),
            ),
        ),
        AffiExpr::int(5),
    );
    let static_out = sys.compile_affi(&static_chain).unwrap();
    let dynamic_out = sys.compile_affi(&dynamic_chain).unwrap();
    assert_eq!(static_out.dynamic_guards, 0);
    assert_eq!(dynamic_out.dynamic_guards, 2);
    // Both compute the same answer, but the dynamic version runs strictly
    // more machine steps (guard allocation + forcing).
    let rs = sys.run(&static_out);
    let rd = sys.run(&dynamic_out);
    assert_eq!(rs.halt, Halt::Value(Value::Int(5)));
    assert_eq!(rd.halt, Halt::Value(Value::Int(5)));
    assert!(
        rd.steps > rs.steps,
        "dynamic {} should exceed static {}",
        rd.steps,
        rs.steps
    );
}

#[test]
fn convertibility_soundness_for_a_catalogue_of_rules() {
    let checker = AffineModelChecker::new();
    let thunked = thunked_fun(MlType::Int, MlType::Int);
    let catalogue = vec![
        (AffiType::Unit, MlType::Unit),
        (AffiType::Bool, MlType::Int),
        (AffiType::Int, MlType::Int),
        (AffiType::bang(AffiType::Int), MlType::Int),
        (
            AffiType::tensor(AffiType::Bool, AffiType::Bool),
            MlType::prod(MlType::Int, MlType::Int),
        ),
        (
            AffiType::tensor(
                AffiType::Int,
                AffiType::tensor(AffiType::Bool, AffiType::Unit),
            ),
            MlType::prod(MlType::Int, MlType::prod(MlType::Int, MlType::Unit)),
        ),
        (
            AffiType::lolli(AffiType::Int, AffiType::Int),
            thunked.clone(),
        ),
        (
            AffiType::lolli(AffiType::Bool, AffiType::Int),
            MlType::fun(MlType::fun(MlType::Unit, MlType::Int), MlType::Int),
        ),
    ];
    for (affi, ml) in catalogue {
        checker
            .check_convertibility(&affi, &ml)
            .unwrap_or_else(|ce| panic!("Lemma 3.1 (§4) failed for {affi} ∼ {ml}: {ce}"));
    }
}

#[test]
fn static_arrow_stays_inside_affi_and_phantom_agrees_with_standard() {
    let sys = AffineMultiLang::new();
    let checker = AffineModelChecker::new();
    let programs = vec![
        AffiExpr::let_tensor(
            "l",
            "r",
            AffiExpr::tensor(AffiExpr::int(1), AffiExpr::int(2)),
            AffiExpr::app(
                AffiExpr::lam_static("x", AffiType::Int, AffiExpr::avar_static("x")),
                AffiExpr::boundary(
                    MlExpr::add(
                        MlExpr::boundary(AffiExpr::avar_static("l"), MlType::Int),
                        MlExpr::boundary(AffiExpr::avar_static("r"), MlType::Int),
                    ),
                    AffiType::Int,
                ),
            ),
        ),
        AffiExpr::proj2(AffiExpr::with_pair(
            AffiExpr::boundary(MlExpr::int(1), AffiType::Int),
            AffiExpr::boundary(MlExpr::int(2), AffiType::Int),
        )),
    ];
    for e in programs {
        match sys.compile_affi(&e) {
            Ok(compiled) => {
                checker
                    .check_safety(&compiled.expr, &compiled.static_binders)
                    .unwrap_or_else(|ce| panic!("safety failed for {e}: {ce}"));
            }
            Err(err) => {
                // Static resources crossing a boundary are *rejected*, which
                // is also a correct outcome for the first program shape.
                assert!(
                    format!("{err}").contains("escape"),
                    "unexpected error {err} for {e}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The dynamic guard is a faithful one-shot cell: forcing it once yields
    /// the protected value; any additional force fails Conv, never Type.
    #[test]
    fn guards_are_one_shot_for_any_payload_and_force_count(payload in -1000i64..1000, forces in 1usize..5) {
        let mut body = Expr::app(Expr::var("t"), Expr::unit());
        for _ in 1..forces {
            body = Expr::seq(body.clone(), Expr::app(Expr::var("t"), Expr::unit()));
        }
        let prog = Expr::let_("t", thunk_guard(Expr::int(payload)), body);
        let halt = Machine::run_expr(prog, semint::core::Fuel::default()).halt;
        if forces == 1 {
            prop_assert_eq!(halt, Halt::Value(Value::Int(payload)));
        } else {
            prop_assert_eq!(halt, Halt::Fail(ErrorCode::Conv));
        }
    }

    /// Converting an arbitrary MiniML integer to an Affi boolean always lands
    /// in {0, 1}, and converting back is the identity on {0, 1}.
    #[test]
    fn int_bool_conversions_normalise(n in any::<i64>()) {
        let checker = AffineModelChecker::new();
        let conv = semint::affine::convert::AffineConversions::standard();
        let (to_ml, to_affi) = conv.derive(&AffiType::Bool, &MlType::Int).unwrap();
        let to_bool = Machine::run_expr(Expr::app(to_affi, Expr::int(n)), semint::core::Fuel::default()).halt;
        let v = to_bool.value().expect("conversion terminates");
        prop_assert!(checker.value_in(&v, &AffineSemType::Affi(AffiType::Bool)), "got {v}");
        // Round-tripping a canonical boolean through MiniML is the identity.
        let b = if n == 0 { 0 } else { 1 };
        let round = Machine::run_expr(
            Expr::app(to_ml, Expr::int(b)),
            semint::core::Fuel::default(),
        )
        .halt;
        prop_assert_eq!(round, Halt::Value(Value::Int(b)));
    }

    /// Compiled well-typed Affi expressions built from a small random shape
    /// grammar are safe under both semantics and the two runs agree.
    #[test]
    fn random_affine_pipelines_are_safe(xs in proptest::collection::vec(-50i64..50, 1..5), use_static in any::<bool>()) {
        let sys = AffineMultiLang::new();
        // Build  f (f (… (lit) …))  where f is an affine identity, freshly
        // abstracted at each layer so no variable is ever reused.
        let mut expr = AffiExpr::int(xs[0]);
        for (i, _) in xs.iter().enumerate() {
            let name = format!("v{i}");
            expr = if use_static {
                AffiExpr::app(
                    AffiExpr::lam_static(name.as_str(), AffiType::Int, AffiExpr::avar_static(name.as_str())),
                    expr,
                )
            } else {
                AffiExpr::app(
                    AffiExpr::lam(name.as_str(), AffiType::Int, AffiExpr::avar(name.as_str())),
                    expr,
                )
            };
        }
        let compiled = sys.compile_affi(&expr).expect("typechecks and compiles");
        let standard = sys.run(&compiled);
        let phantom = sys.run_phantom(&compiled);
        prop_assert!(standard.halt.is_safe());
        prop_assert!(phantom.halt.is_safe());
        prop_assert_eq!(standard.halt.value_ref(), phantom.halt.value_ref());
        prop_assert_eq!(standard.halt.value_ref(), Some(&Value::Int(xs[0])));
    }
}
