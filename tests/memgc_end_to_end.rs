//! Cross-crate integration tests for case study 3 (§5): ownership transfer
//! between manual and GC'd memory, and polymorphism over foreign types.

use proptest::prelude::*;
use semint::lcvm::{Halt, Value};
use semint::memgc::model::MemGcModelChecker;
use semint::memgc::multilang::MemGcMultiLang;
use semint::memgc::syntax::{L3Expr, L3Type, PolyExpr, PolyType};

fn sys() -> MemGcMultiLang {
    MemGcMultiLang::new()
}

#[test]
fn a_full_tour_allocate_in_l3_mutate_in_miniml_collect() {
    // L3 allocates, MiniML takes ownership, mutates, drops the reference and
    // allocates more; the transferred cell becomes garbage and is collected
    // the next time L3 allocates (which calls the GC).
    let tour = PolyExpr::snd(PolyExpr::pair(
        // First transfer: mutate then discard.
        PolyExpr::app(
            PolyExpr::lam(
                "r",
                PolyType::ref_(PolyType::Int),
                PolyExpr::assign(PolyExpr::var("r"), PolyExpr::int(99)),
            ),
            PolyExpr::boundary(
                L3Expr::new(L3Expr::bool_(true)),
                PolyType::ref_(PolyType::Int),
            ),
        ),
        // Second transfer: its `new` runs callgc, reclaiming the first cell.
        PolyExpr::deref(PolyExpr::boundary(
            L3Expr::new(L3Expr::bool_(false)),
            PolyType::ref_(PolyType::Int),
        )),
    ));
    let r = sys().run_ml(&tour).unwrap();
    assert_eq!(r.halt, Halt::Value(Value::Int(1)));
    assert_eq!(r.heap.stats().manual_allocs, 2);
    assert_eq!(r.heap.stats().gcmovs, 2);
    assert!(r.heap.stats().gc_runs >= 2);
    assert!(
        r.heap.stats().collected >= 1,
        "the discarded transferred cell should have been reclaimed (collected {})",
        r.heap.stats().collected
    );
}

#[test]
fn l3_uses_a_miniml_generic_library() {
    // MiniML exports a polymorphic "swap" on pairs; L3 instantiates it at
    // ⟨bool⟩ and runs its own booleans through it.
    let swap_pair = PolyExpr::tylam(
        "α",
        PolyExpr::lam(
            "p",
            PolyType::prod(PolyType::tvar("α"), PolyType::tvar("α")),
            PolyExpr::pair(
                PolyExpr::snd(PolyExpr::var("p")),
                PolyExpr::fst(PolyExpr::var("p")),
            ),
        ),
    );
    let fb = PolyType::foreign(L3Type::Bool);
    let swapped = PolyExpr::app(
        PolyExpr::tyapp(swap_pair, fb.clone()),
        PolyExpr::pair(
            PolyExpr::boundary(L3Expr::bool_(true), fb.clone()),
            PolyExpr::boundary(L3Expr::bool_(false), fb.clone()),
        ),
    );
    // Take the first component of the swapped pair back into L3 and branch.
    let use_in_l3 = L3Expr::if_(
        L3Expr::boundary(PolyExpr::fst(swapped), L3Type::Bool),
        L3Expr::bool_(false),
        L3Expr::bool_(true),
    );
    let r = sys().run_l3(&use_in_l3).unwrap();
    // fst of the swapped pair is the original second component: false (1), so
    // the else-branch returns true (0).
    assert_eq!(r.halt, Halt::Value(Value::Int(0)));
}

#[test]
fn transfer_soundness_over_a_payload_catalogue() {
    let checker = MemGcModelChecker::new();
    let catalogue = vec![
        (PolyType::Int, L3Type::Bool, Value::Int(0)),
        (PolyType::Int, L3Type::Bool, Value::Int(1)),
        (PolyType::Unit, L3Type::Unit, Value::Unit),
        (PolyType::foreign(L3Type::Bool), L3Type::Bool, Value::Int(1)),
        (
            PolyType::prod(PolyType::Int, PolyType::Unit),
            L3Type::tensor(L3Type::Bool, L3Type::Unit),
            Value::Pair(Box::new(Value::Int(0)), Box::new(Value::Unit)),
        ),
    ];
    for (ml, l3, v) in catalogue {
        checker
            .check_transfer_soundness(&ml, &l3, v)
            .unwrap_or_else(|ce| panic!("transfer soundness failed for ref {ml} ∼ REF {l3}: {ce}"));
    }
}

#[test]
fn double_transfer_keeps_the_same_location_alive() {
    // L3 → MiniML → L3 → MiniML: the first hop moves, the second copies, the
    // third moves again; contents survive every hop.
    let sysm = sys();
    let hop1 = PolyExpr::boundary(
        L3Expr::new(L3Expr::bool_(true)),
        PolyType::ref_(PolyType::Int),
    );
    let hop2 = L3Expr::boundary(hop1, L3Type::ref_like(L3Type::Bool));
    let hop3 = PolyExpr::boundary(hop2, PolyType::ref_(PolyType::Int));
    let read = PolyExpr::deref(hop3);
    let r = sysm.run_ml(&read).unwrap();
    assert_eq!(r.halt, Halt::Value(Value::Int(0)));
    assert_eq!(r.heap.stats().gcmovs, 2, "two L3→MiniML hops");
    assert_eq!(
        r.heap.stats().manual_allocs,
        2,
        "the initial new plus one copy"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any integer stored by MiniML and handed to L3 as a boolean is
    /// normalised to {0,1}; handing it back preserves it exactly.
    #[test]
    fn reference_payload_normalisation(n in any::<i64>()) {
        let sysm = sys();
        let e = L3Expr::free(L3Expr::boundary(
            PolyExpr::ref_(PolyExpr::int(n)),
            L3Type::ref_like(L3Type::Bool),
        ));
        let r = sysm.run_l3(&e).unwrap();
        let expected = if n == 0 { 0 } else { 1 };
        prop_assert_eq!(r.halt, Halt::Value(Value::Int(expected)));
    }

    /// Transferring a cell L3 → MiniML and reading it gives exactly the L3
    /// boolean that was stored, for either boolean.
    #[test]
    fn transfer_preserves_contents(b in any::<bool>(), write_back in proptest::option::of(-100i64..100)) {
        let sysm = sys();
        let read_or_update = match write_back {
            None => PolyExpr::deref(PolyExpr::boundary(
                L3Expr::new(L3Expr::bool_(b)),
                PolyType::ref_(PolyType::Int),
            )),
            Some(n) => PolyExpr::app(
                PolyExpr::lam(
                    "r",
                    PolyType::ref_(PolyType::Int),
                    PolyExpr::snd(PolyExpr::pair(
                        PolyExpr::assign(PolyExpr::var("r"), PolyExpr::int(n)),
                        PolyExpr::deref(PolyExpr::var("r")),
                    )),
                ),
                PolyExpr::boundary(L3Expr::new(L3Expr::bool_(b)), PolyType::ref_(PolyType::Int)),
            ),
        };
        let r = sysm.run_ml(&read_or_update).unwrap();
        let expected = match write_back {
            None => {
                if b {
                    0
                } else {
                    1
                }
            }
            Some(n) => n,
        };
        prop_assert_eq!(r.halt, Halt::Value(Value::Int(expected)));
        prop_assert_eq!(r.heap.stats().gc_allocs, 0, "transfers never copy");
    }

    /// Well-typed L3 allocation/deallocation pipelines of arbitrary depth
    /// leave no manual memory behind and never fail.
    #[test]
    fn nested_new_free_pipelines_are_leak_free(depth in 1usize..8) {
        // free (new (free (new ( … bool … ))))
        let mut e = L3Expr::bool_(true);
        for _ in 0..depth {
            e = L3Expr::free(L3Expr::new(e));
        }
        let sysm = sys();
        sysm.typecheck_l3(&e).expect("typechecks");
        let r = sysm.run_l3(&e).unwrap();
        prop_assert_eq!(r.halt, Halt::Value(Value::Int(0)));
        prop_assert_eq!(r.heap.manual_len(), 0);
        prop_assert_eq!(r.heap.stats().manual_allocs as usize, depth);
        prop_assert_eq!(r.heap.stats().frees as usize, depth);
    }
}
