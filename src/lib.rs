//! # semint — semantic soundness for language interoperability, executably
//!
//! This is the facade crate of the `semint` workspace, a Rust reproduction of
//! *"Semantic Soundness for Language Interoperability"* (Patterson, Mushtak,
//! Wagner, Ahmed — PLDI 2022).  It re-exports the workspace crates under one
//! roof so that examples, integration tests and downstream users can depend
//! on a single package:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the framework vocabulary: convertibility registries, boundaries, fuel, step indices, the [`core::case::CaseStudy`] trait and shared sweep statistics |
//! | [`stacklang`] | the untyped stack-machine target of case study 1 (Fig. 2) |
//! | [`lcvm`] | the Scheme-like target of case studies 2–3, with GC'd + manual memory and the phantom-flag augmented semantics |
//! | [`reflang`] | RefHL and RefLL, their type systems and compilers (Fig. 1, 3) |
//! | [`sharedmem`] | case study 1: shared-memory interoperability, Fig. 4 conversions, Fig. 5 executable model |
//! | [`affine`] | case study 2: Affi ⊸ MiniML, thunk guards, Fig. 9 conversions, Fig. 10 phantom-flag model |
//! | [`memgc`] | case study 3: MiniML ⊸ L3, `gcmov` ownership transfer, polymorphism over foreign types, Fig. 14 model |
//! | [`harness`] | the unified scenario engine: a parallel, work-stealing batch runner with counterexample shrinking over every case study, and the `semint` CLI |
//!
//! ## The `CaseStudy` abstraction and the `semint` CLI
//!
//! Each case-study crate implements [`core::case::CaseStudy`] (associated
//! `Program`/`Ty`/`Report`/`Compiled` types; `generate`, `typecheck`,
//! `compile`, `execute`, `model_check_compiled`), and the [`harness`] engine
//! drives any implementation — including all three at once, interleaved on
//! one thread pool — typechecking and compiling each scenario exactly once
//! and threading the compiled artifact through every consuming stage:
//!
//! ```
//! use semint::harness::cases::AnyCase;
//! use semint::harness::engine::{sweep_all, SweepConfig};
//! use semint::harness::source::SeedRange;
//!
//! let report = sweep_all(
//!     &AnyCase::all(false),
//!     &SeedRange::new(0, 8).unwrap(),
//!     &SweepConfig { jobs: 2, ..SweepConfig::default() },
//! );
//! assert_eq!(report.failure_count(), 0);
//! ```
//!
//! Workloads are supplied by a [`harness::source::ScenarioSource`] — a seed
//! range, a deterministic k-of-n shard of one, or a persisted corpus — and
//! shaped by a [`core::case::GenProfile`] (presets `smoke`, `default`,
//! `deep`, `boundary-heavy`).  The same engine backs the `semint` binary:
//!
//! ```text
//! semint sweep --seeds 0..200 --jobs 4          # parallel sweep, aggregate report
//! semint sweep --profile deep                   # deep source types (glue on the hot path)
//! semint sweep --profile deep --batch 8         # 8 artifacts per reused machine, same digests
//! semint sweep --seeds 0..200 --shard 0/2       # half the range; digests merge via report
//! semint sweep --corpus-save pop.corpus         # persist + replay scenario populations
//! semint bench --profile deep --repeat 3        # per-stage timing mode (E9/E11)
//! semint check --case sharedmem --seeds 0..50   # Lemma 3.1 catalogue + model checks
//! semint run --case memgc --seed 7              # one scenario, verbosely
//! semint sweep --seeds 0..50 --broken           # sabotaged rule → shrunk counterexamples
//! ```
//!
//! ## Quick start
//!
//! ```
//! use semint::sharedmem::{convert::SharedMemConversions, multilang::MultiLang};
//! use semint::reflang::syntax::{HlExpr, HlType, LlExpr};
//!
//! // A RefHL program that embeds RefLL arithmetic as a boolean:
//! //     if ⦇ 1 + 1 ⦈bool then false else true
//! let prog = HlExpr::if_(
//!     HlExpr::boundary(LlExpr::add(LlExpr::int(1), LlExpr::int(1)), HlType::Bool),
//!     HlExpr::bool_(false),
//!     HlExpr::bool_(true),
//! );
//! let system = MultiLang::new(SharedMemConversions::standard());
//! let result = system.run_hl(&prog).unwrap();
//! assert!(result.outcome.is_safe());
//! ```
//!
//! See the `examples/` directory for one runnable scenario per case study and
//! `EXPERIMENTS.md` for the benchmark harness that reproduces the paper's
//! performance trade-off discussion.

#![forbid(unsafe_code)]

pub use affine_interop as affine;
pub use lcvm;
pub use memgc_interop as memgc;
pub use reflang;
pub use semint_core as core;
pub use semint_harness as harness;
pub use sharedmem;
pub use stacklang;
