//! A small, dependency-free, **offline** stand-in for the subset of the
//! crates.io `criterion` API this workspace's benchmark suite uses.
//!
//! The build environment has no network access, so the real Criterion cannot
//! be fetched.  This crate keeps the same structure — groups, parameterised
//! benchmark IDs, `Bencher::iter`, `criterion_main!` — and measures each
//! benchmark with a warm-up phase followed by timed batches, reporting the
//! median nanoseconds per iteration to stdout.  There are no HTML reports,
//! statistical regressions, or plots; the point is that `cargo bench`
//! compiles, runs, and prints comparable relative numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies command-line arguments (`cargo bench -- <filter>`); only the
    /// positional filter is honoured, Criterion-specific flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--exact" | "--nocapture" => {}
                "--sample-size" | "--warm-up-time" | "--measurement-time" | "--save-baseline"
                | "--baseline" => {
                    let _ = args.next();
                }
                other if other.starts_with('-') => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id().id;
        self.run_one(&id, f);
        self
    }

    /// Prints the closing line (kept for API compatibility).
    pub fn final_summary(&mut self) {
        println!("criterion-lite: done");
    }

    fn run_one<F>(&self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up: run until the warm-up budget is spent.
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut bencher = Bencher::default();
        while Instant::now() < warm_up_end {
            f(&mut bencher);
            if bencher.iterations == 0 {
                break; // the closure never called iter(); nothing to time
            }
        }
        // Sampling: split the measurement budget into `sample_size` samples.
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let per_sample = self.measurement_time / self.sample_size as u32;
        for _ in 0..self.sample_size {
            let sample_end = Instant::now() + per_sample;
            let mut iters: u64 = 0;
            let mut elapsed = Duration::ZERO;
            loop {
                bencher.reset();
                f(&mut bencher);
                iters += bencher.iterations;
                elapsed += bencher.elapsed;
                if bencher.iterations == 0 || Instant::now() >= sample_end {
                    break;
                }
            }
            if iters > 0 {
                samples_ns.push(elapsed.as_nanos() as f64 / iters as f64);
            }
        }
        match median(&mut samples_ns) {
            Some(ns) => println!(
                "bench: {id:<60} {:>14} ns/iter ({} samples)",
                fmt_ns(ns),
                samples_ns.len()
            ),
            None => println!("bench: {id:<60} (no iterations)"),
        }
    }
}

fn median(xs: &mut [f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
    Some(xs[xs.len() / 2])
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.1}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let criterion: &Criterion = self.criterion;
        criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        let criterion: &Criterion = self.criterion;
        criterion.run_one(&full, |b| f(b));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Times the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` in a timed loop.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        const BATCH: u64 = 16;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += BATCH;
    }

    fn reset(&mut self) {
        self.iterations = 0;
        self.elapsed = Duration::ZERO;
    }
}

/// A benchmark identifier with a parameter, rendered as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so benchmark names can be given as plain
/// strings or as parameterised ids.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Generates `fn main` running the given benchmark entry points.
#[macro_export]
macro_rules! criterion_main {
    ($($entry:path),+ $(,)?) => {
        fn main() {
            $($entry();)+
        }
    };
}

/// Groups benchmark functions under one entry point (upstream-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}
