//! A tiny, dependency-free, **offline** stand-in for the subset of the
//! crates.io `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched.  The generators in `sharedmem::gen`, `affine_interop::gen` and
//! `memgc_interop::gen` only need a seedable deterministic RNG with
//! `gen_range`/`gen_bool`; this crate provides exactly that with the same
//! names and signatures, backed by SplitMix64.  Determinism is the only
//! contract the workspace relies on (property tests shrink on the seed);
//! statistical quality beyond "well mixed" is not required.

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable RNG.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let x = (rng.next_u64() as u128) % span;
                ((self.start as i128) + (x as i128)) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let x = (rng.next_u64() as u128) % span;
                ((lo as i128) + (x as i128)) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniformly samples from `range`.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random bits give a uniform float in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): full-period, well mixed,
            // trivially seedable — exactly what deterministic tests need.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5..50);
            assert!((-5..50).contains(&x));
            let y: usize = r.gen_range(1..4);
            assert!((1..4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
