//! A small, dependency-free, **offline** stand-in for the subset of the
//! crates.io `proptest` API this workspace uses.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched.  The property suites here need: the [`proptest!`]
//! macro, `Strategy` with `prop_map`/`prop_recursive`/`boxed`, integer-range
//! and tuple strategies, [`prelude::any`], [`strategy::Just`],
//! [`prop_oneof!`], `collection::vec`, `option::of`, configurable case
//! counts, and the `prop_assert*` macros.  All of that is provided with the
//! same names and shapes, deterministically: each test case derives its RNG
//! seed from the test name and the case index, so failures are reproducible
//! run-over-run.  Shrinking is input-level only (the failure report carries
//! the offending input; no automatic minimisation) — the workspace's own
//! `semint-harness` provides structural counterexample shrinking where it
//! matters.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors of `elem` values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below_range(self.len.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// A strategy producing `None` or `Some` of the inner strategy.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` about a quarter of the time, `Some(inner)` otherwise
    /// (matching upstream's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (with the
/// generated inputs attached) rather than unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Uniformly chooses between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` that runs the body over `Config::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let runner = $crate::test_runner::TestRunner::new(config);
                runner.run(
                    stringify!($name),
                    ($($strategy,)+),
                    |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}
