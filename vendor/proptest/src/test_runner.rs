//! Deterministic case execution for the [`proptest!`](crate::proptest) macro.

use crate::strategy::Strategy;
use std::fmt::Debug;
use std::ops::Range;

/// The deterministic RNG threaded through strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from an arbitrary 64-bit value.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `usize` drawn from `range`.
    pub fn below_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

/// Why a single test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Executes the cases of one property.
#[derive(Debug, Clone)]
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: Config) -> Self {
        TestRunner { config }
    }

    /// Runs `body` over `config.cases` inputs drawn from `strategy`.
    ///
    /// Seeds are derived from the test name and the case index, so a failing
    /// case reproduces on every run and is reported with its input attached.
    pub fn run<S, F>(&self, name: &str, strategy: S, mut body: F)
    where
        S: Strategy,
        S::Value: Debug,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name.as_bytes());
        for case in 0..self.config.cases {
            let mut rng =
                TestRng::new(base ^ (u64::from(case)).wrapping_mul(0xA076_1D64_78BD_642F));
            let input = strategy.generate(&mut rng);
            let rendered = format!("{input:?}");
            if let Err(err) = body(input) {
                panic!(
                    "proptest property `{name}` failed at case {case}/{total}\n\
                     input: {rendered}\n{err}",
                    total = self.config.cases,
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
