//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value-tree/shrinking machinery: a
/// strategy simply draws a value from a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `f` wraps an
    /// inner strategy into the branch case, nested at most `depth` levels.
    ///
    /// `desired_size` and `expected_branch_size` are accepted for signature
    /// compatibility; tree size is governed by `depth` alone here.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // At each level, half the mass stays on leaves so expected tree
            // size stays bounded.
            strat = Union::new(vec![leaf.clone(), f(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    T: Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice between strategies of the same value type (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// A union over the given options; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug + 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<A> {
    _marker: std::marker::PhantomData<A>,
}

/// A strategy for any value of `A`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let x = (rng.next_u64() as u128) % span;
                ((self.start as i128) + (x as i128)) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name,)+> Strategy for ($($name,)+)
        where
            $($name: Strategy,)+
            $($name::Value: Debug,)+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
