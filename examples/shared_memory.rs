//! Case study 1 (§3): sharing mutable memory across languages without
//! proxies or copies.
//!
//! Run with `cargo run --example shared_memory`.
//!
//! A RefLL "data layer" allocates a buffer of counters (as `ref int`), and
//! RefHL "business logic" receives one of the references at type `ref bool`
//! and toggles it.  Because `V⟦bool⟧ = V⟦int⟧`, the pointer is passed across
//! the boundary as-is: both sides alias the same cell and neither pays any
//! conversion cost per access.

use semint::reflang::syntax::{HlExpr, HlType, LlExpr, LlType};
use semint::sharedmem::convert::{RefStrategy, SharedMemConversions};
use semint::sharedmem::multilang::MultiLang;

/// A RefHL function `ref bool → bool` that inverts the referenced flag and
/// returns the old value.
fn refhl_toggle() -> HlExpr {
    HlExpr::lam(
        "flag",
        HlType::ref_(HlType::Bool),
        // let old = !flag in (flag := if old then false else true ; old)
        HlExpr::app(
            HlExpr::lam(
                "old",
                HlType::Bool,
                HlExpr::snd(HlExpr::pair(
                    HlExpr::assign(
                        HlExpr::var("flag"),
                        HlExpr::if_(
                            HlExpr::var("old"),
                            HlExpr::bool_(false),
                            HlExpr::bool_(true),
                        ),
                    ),
                    HlExpr::var("old"),
                )),
            ),
            HlExpr::deref(HlExpr::var("flag")),
        ),
    )
}

fn main() {
    // RefLL program:
    //   let cell = ref 0 in
    //   let _ = ⦇ toggle ⦇cell⦈(ref bool) ⦈int in
    //   !cell
    let program = LlExpr::app(
        LlExpr::lam(
            "cell",
            LlType::ref_(LlType::Int),
            LlExpr::app(
                LlExpr::lam("ignored", LlType::Int, LlExpr::deref(LlExpr::var("cell"))),
                LlExpr::boundary(
                    HlExpr::app(
                        refhl_toggle(),
                        HlExpr::boundary(LlExpr::var("cell"), HlType::ref_(HlType::Bool)),
                    ),
                    LlType::Int,
                ),
            ),
        ),
        LlExpr::ref_(LlExpr::int(0)),
    );

    println!("RefLL program with a RefHL toggle applied to a shared reference:\n  {program}\n");

    let sharing = MultiLang::new(SharedMemConversions::standard());
    let result = sharing.run_ll(&program).expect("well-typed program runs");
    println!("[pointer-sharing conversions]");
    println!(
        "  result (contents seen by RefLL after RefHL's write): {}",
        result.outcome
    );
    println!("  heap cells allocated: {}", result.heap.len());
    println!("  machine steps: {}", result.steps);

    // The same program under the copy-convert strategy from the paper's
    // Discussion: it still runs, but RefHL writes into a *copy*, so RefLL
    // does not observe the update — the aliasing behaviour differs, which is
    // exactly why the paper requires identical interpretations for sharing.
    let copying = MultiLang::new(SharedMemConversions::with_ref_strategy(RefStrategy::Copy));
    let result = copying
        .run_ll(&program)
        .expect("still well-typed under copying");
    println!("\n[copy-convert conversions (ablation)]");
    println!("  result: {}", result.outcome);
    println!("  heap cells allocated: {}", result.heap.len());
    println!("  machine steps: {}", result.steps);

    // Finally: a boundary the pointer-sharing rule set rejects statically,
    // because the pointed-to types do not have identical interpretations.
    let rejected = HlExpr::boundary(
        LlExpr::ref_(LlExpr::array([LlExpr::int(1)], LlType::Int)),
        HlType::ref_(HlType::sum(HlType::Bool, HlType::Bool)),
    );
    match sharing.typecheck_hl(&rejected) {
        Err(err) => println!("\nAs expected, rejected unsound boundary: {err}"),
        Ok(ty) => unreachable!("should not typecheck at {ty}"),
    }
}
