//! Case study 3 (§5): handing manually-managed memory to a garbage-collected
//! language without copying, and using MiniML generics from L3.
//!
//! Run with `cargo run --example gc_linear_transfer`.

use semint::lcvm::{Halt, Value};
use semint::memgc::multilang::MemGcMultiLang;
use semint::memgc::syntax::{L3Expr, L3Type, PolyExpr, PolyType};

fn main() {
    let sys = MemGcMultiLang::new();

    // --- Ownership transfer: L3 → MiniML ------------------------------------
    // L3 allocates a cell manually (`new true`), then the whole package
    // (capability + pointer) crosses the boundary at `ref int`.  The glue code
    // converts the contents in place and `gcmov`s the *same* location into
    // the GC'd heap — no copy.
    let transfer = PolyExpr::app(
        PolyExpr::lam(
            "r",
            PolyType::ref_(PolyType::Int),
            PolyExpr::snd(PolyExpr::pair(
                PolyExpr::assign(
                    PolyExpr::var("r"),
                    PolyExpr::add(PolyExpr::deref(PolyExpr::var("r")), PolyExpr::int(41)),
                ),
                PolyExpr::deref(PolyExpr::var("r")),
            )),
        ),
        PolyExpr::boundary(
            L3Expr::new(L3Expr::bool_(true)),
            PolyType::ref_(PolyType::Int),
        ),
    );
    let r = sys.run_ml(&transfer).unwrap();
    println!("L3 → MiniML transfer:");
    println!("  result                    = {:?}", r.halt);
    println!(
        "  manual allocations        = {}",
        r.heap.stats().manual_allocs
    );
    println!("  GC allocations            = {}", r.heap.stats().gc_allocs);
    println!("  gcmov transfers           = {}", r.heap.stats().gcmovs);
    println!("  live manual cells at exit = {}", r.heap.manual_len());
    assert_eq!(r.halt, Halt::Value(Value::Int(41)));
    assert_eq!(r.heap.stats().gc_allocs, 0, "moved, not copied");

    // --- The other direction: MiniML → L3 copies ----------------------------
    let copy_back = L3Expr::free(L3Expr::boundary(
        PolyExpr::ref_(PolyExpr::int(7)),
        L3Type::ref_like(L3Type::Bool),
    ));
    let r = sys.run_l3(&copy_back).unwrap();
    println!("\nMiniML → L3 conversion (must copy, aliases may exist):");
    println!("  result            = {:?}", r.halt);
    println!("  GC allocations    = {}", r.heap.stats().gc_allocs);
    println!("  manual allocations= {}", r.heap.stats().manual_allocs);

    // --- Polymorphism over foreign types ------------------------------------
    // The paper's example (1): a MiniML polymorphic function instantiated at
    // the foreign type ⟨bool⟩ and applied to two embedded L3 booleans.
    let second = PolyExpr::tylam(
        "α",
        PolyExpr::lam(
            "x",
            PolyType::tvar("α"),
            PolyExpr::lam("y", PolyType::tvar("α"), PolyExpr::var("y")),
        ),
    );
    let example1 = PolyExpr::app(
        PolyExpr::app(
            PolyExpr::tyapp(second, PolyType::foreign(L3Type::Bool)),
            PolyExpr::boundary(L3Expr::bool_(true), PolyType::foreign(L3Type::Bool)),
        ),
        PolyExpr::boundary(L3Expr::bool_(false), PolyType::foreign(L3Type::Bool)),
    );
    let r = sys.run_ml(&example1).unwrap();
    println!(
        "\npaper example (1), (Λα. λx:α. λy:α. y) [⟨bool⟩] ⦇true⦈ ⦇false⦈ = {:?}",
        r.halt
    );

    // The paper's example (2): converting actual values through Church
    // booleans, then branching on the result back in L3.
    let example2 = L3Expr::if_(
        L3Expr::boundary(
            PolyExpr::app(
                PolyExpr::lam("x", PolyType::church_bool(), PolyExpr::var("x")),
                PolyExpr::boundary(L3Expr::bool_(true), PolyType::church_bool()),
            ),
            L3Type::Bool,
        ),
        L3Expr::bool_(true),
        L3Expr::bool_(false),
    );
    let r = sys.run_l3(&example2).unwrap();
    println!(
        "paper example (2), Church-boolean round trip            = {:?}",
        r.halt
    );

    // Linear capabilities cannot be laundered through foreign types.
    let smuggle = PolyExpr::boundary(
        L3Expr::new(L3Expr::bool_(true)),
        PolyType::foreign(L3Type::ref_like(L3Type::Bool)),
    );
    match sys.typecheck_ml(&smuggle) {
        Err(err) => println!("\ncapability smuggling rejected statically: {err}"),
        Ok(ty) => unreachable!("should not typecheck at {ty}"),
    }
}
