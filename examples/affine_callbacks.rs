//! Case study 2 (§4): passing affine callbacks to an unrestricted language.
//!
//! Run with `cargo run --example affine_callbacks`.
//!
//! An Affi "resource layer" hands MiniML a one-shot callback (think: a file
//! handle finaliser, a session token consumer).  MiniML is free to call it
//! through the converted type `(unit → int) → int`; if it behaves, everything
//! works, and if it forces the protected argument twice, the inserted guard
//! stops it with the well-defined `Conv` error rather than corrupting the
//! resource.  Affi-internal code using the *static* arrow pays no runtime
//! cost at all.

use semint::affine::multilang::AffineMultiLang;
use semint::affine::syntax::{AffiExpr, AffiType, MlExpr, MlType};
use semint::lcvm::Halt;

fn thunked(ty: MlType, res: MlType) -> MlType {
    MlType::fun(MlType::fun(MlType::Unit, ty), res)
}

fn main() {
    let sys = AffineMultiLang::new();

    // The affine callback: int ⊸ int, usable at most once.
    let callback = AffiExpr::lam("token", AffiType::Int, AffiExpr::avar("token"));

    // A polite MiniML consumer: forces the token once and adds 1.
    let polite = MlExpr::app(
        MlExpr::lam(
            "cb",
            thunked(MlType::Int, MlType::Int),
            MlExpr::app(
                MlExpr::var("cb"),
                MlExpr::lam("_", MlType::Unit, MlExpr::int(41)),
            ),
        ),
        MlExpr::boundary(callback.clone(), thunked(MlType::Int, MlType::Int)),
    );
    let result = sys.run_ml(&MlExpr::add(polite, MlExpr::int(1))).unwrap();
    println!("polite MiniML consumer:   {:?}", result.halt);
    assert_eq!(result.halt, Halt::Value(semint::lcvm::Value::Int(42)));

    // A rude MiniML consumer: squirrels the guarded thunk away and forces it
    // twice. The second force hits the dynamic guard inserted by the Fig. 9
    // conversion and fails Conv — the affine invariant survives.
    let rude_body = MlExpr::lam(
        "t",
        MlType::fun(MlType::Unit, MlType::Int),
        MlExpr::add(
            MlExpr::app(MlExpr::var("t"), MlExpr::unit()),
            MlExpr::app(MlExpr::var("t"), MlExpr::unit()),
        ),
    );
    let rude = AffiExpr::app(
        AffiExpr::boundary(rude_body, AffiType::lolli(AffiType::Int, AffiType::Int)),
        AffiExpr::int(7),
    );
    let result = sys.run_affi(&rude).unwrap();
    println!("rude MiniML consumer:     {:?}", result.halt);
    assert!(result.halt.is_fail_with(semint::core::ErrorCode::Conv));

    // Affi-internal code with the static arrow: no guards, no thunks, and the
    // compiler reports which binders the *model* protects instead.
    let internal = AffiExpr::app(
        AffiExpr::lam_static("x", AffiType::Int, AffiExpr::avar_static("x")),
        AffiExpr::int(10),
    );
    let compiled = sys.compile_affi(&internal).unwrap();
    println!(
        "static-arrow call:        dynamic guards inserted = {}, statically-protected binders = {:?}",
        compiled.dynamic_guards, compiled.static_binders
    );
    let standard = sys.run(&compiled);
    let phantom = sys.run_phantom(&compiled);
    println!("  standard semantics:  {:?}", standard.halt);
    println!(
        "  augmented semantics: {:?} (flags consumed: {})",
        phantom.halt, phantom.flags_consumed
    );

    // And the boundary that would leak a static resource is rejected
    // statically (no•(Ω) in the typing rule).
    let leak = MlExpr::boundary(
        AffiExpr::lam_static("x", AffiType::Int, AffiExpr::avar_static("x")),
        thunked(MlType::Int, MlType::Int),
    );
    match sys.typecheck_ml(&leak) {
        Err(err) => println!("static arrow cannot cross:  {err}"),
        Ok(ty) => unreachable!("should not typecheck at {ty}"),
    }
}
