//! Quickstart: the paper's framework in five steps, on case study 1.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example walks the framework of §2 end to end:
//! 1. boundary syntax — a RefHL program embeds RefLL code (and vice versa),
//! 2. convertibility rules — `bool ∼ int`, `ref bool ∼ ref int`, …,
//! 3. realizability model — we ask whether `V⟦bool⟧ = V⟦int⟧`,
//! 4. soundness of conversions — checked executably (Lemma 3.1),
//! 5. soundness of the languages — the compiled program never hits `fail Type`.

use semint::reflang::syntax::{HlExpr, HlType, LlExpr, LlType};
use semint::sharedmem::convert::SharedMemConversions;
use semint::sharedmem::model::{interp_equal, ModelChecker, SemType};
use semint::sharedmem::multilang::MultiLang;

fn main() {
    // Step 1+2: a multi-language program. RefLL computes an index into an
    // array; RefHL treats the result as a boolean and branches on it.
    let refll_part = LlExpr::index(
        LlExpr::array([LlExpr::int(0), LlExpr::int(7)], LlType::Int),
        LlExpr::int(1),
    );
    let program = HlExpr::if_(
        HlExpr::boundary(refll_part, HlType::Bool),
        HlExpr::pair(HlExpr::bool_(true), HlExpr::unit()),
        HlExpr::pair(HlExpr::bool_(false), HlExpr::unit()),
    );
    println!("source program:\n  {program}\n");

    let system = MultiLang::new(SharedMemConversions::standard());
    let ty = system
        .typecheck_hl(&program)
        .expect("the program type checks");
    println!("type: {ty}");

    let compiled = system.compile_hl(&program).expect("compiles");
    println!(
        "compiled StackLang program ({} instructions):\n  {}\n",
        compiled.program.len(),
        compiled.program
    );

    let result = system.run_hl(&program).expect("runs");
    println!("result: {}", result.outcome);
    println!("machine steps: {}", result.steps);
    assert!(
        result.outcome.is_safe(),
        "well-typed programs never fail Type"
    );

    // Step 3: the realizability model lets us ask the question the paper
    // highlights: is V⟦bool⟧ the same set of target terms as V⟦int⟧?
    let bool_eq_int = interp_equal(&SemType::Hl(HlType::Bool), &SemType::Ll(LlType::Int));
    let unit_eq_int = interp_equal(&SemType::Hl(HlType::Unit), &SemType::Ll(LlType::Int));
    println!("\nV⟦bool⟧ = V⟦int⟧ ?  {bool_eq_int}");
    println!("V⟦unit⟧ = V⟦int⟧ ?  {unit_eq_int}");

    // Step 4: convertibility soundness, checked executably for a few rules.
    let checker = ModelChecker::default();
    for (hl, ll) in [
        (HlType::Bool, LlType::Int),
        (HlType::ref_(HlType::Bool), LlType::ref_(LlType::Int)),
        (
            HlType::sum(HlType::Bool, HlType::Unit),
            LlType::array(LlType::Int),
        ),
    ] {
        match checker.check_convertibility(&hl, &ll) {
            Ok(()) => println!("Lemma 3.1 holds for  {hl} ∼ {ll}"),
            Err(ce) => println!("COUNTEREXAMPLE for {hl} ∼ {ll}: {ce}"),
        }
    }

    // Step 5: type safety on the compiled program.
    checker
        .check_type_safety(&compiled.program, semint::core::Fuel::default())
        .expect("Theorem 3.4: the compiled program is safe");
    println!("\nType safety check passed.");
}
