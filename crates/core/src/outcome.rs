//! Machine outcomes and dynamic error codes.
//!
//! Both target languages can terminate in a *well-defined* dynamic error:
//! `fail c` for an error code `c`.  The paper's type-safety theorems
//! (Thm 3.3 / 3.4) allow well-typed programs to end in `Conv` (a conversion
//! found a value outside the expected set), `Idx` (array index out of
//! bounds, RefLL only) or `Ptr` (use of a freed manual location, §5 target),
//! but never in `Type` (a stuck machine / dynamic type error).

use std::fmt;

/// Dynamic error codes raised by the target machines (`fail c`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorCode {
    /// A dynamic type error: the machine was about to get stuck.
    ///
    /// Semantic type soundness guarantees well-typed multi-language programs
    /// never fail with this code.
    Type,
    /// Array index out of bounds (StackLang `idx`).
    Idx,
    /// A conversion was asked to convert a value outside the expected set, or
    /// a dynamically-enforced affine resource was used twice.
    Conv,
    /// A manually-managed location was used after being freed (LCVM §5).
    Ptr,
}

impl ErrorCode {
    /// The codes the type-safety theorems permit for well-typed programs.
    ///
    /// `Type` is never benign; `Idx`, `Conv` and `Ptr` are "well-defined
    /// errors" in the sense of the paper.
    pub fn is_benign(self) -> bool {
        !matches!(self, ErrorCode::Type)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Type => "Type",
            ErrorCode::Idx => "Idx",
            ErrorCode::Conv => "Conv",
            ErrorCode::Ptr => "Ptr",
        };
        write!(f, "{s}")
    }
}

/// The result of running a target machine under a step budget.
///
/// `OutOfFuel` corresponds to the step-index escape clause of the expression
/// relations: an execution longer than the budget imposes no constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<V> {
    /// Terminated with a value.
    Value(V),
    /// Terminated with a well-defined dynamic error `fail c`.
    Fail(ErrorCode),
    /// The step budget was exhausted before termination.
    OutOfFuel,
}

impl<V> Outcome<V> {
    /// Returns the value if the outcome is `Value`, otherwise `None`.
    pub fn value(self) -> Option<V> {
        match self {
            Outcome::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Returns a reference to the value if the outcome is `Value`.
    pub fn value_ref(&self) -> Option<&V> {
        match self {
            Outcome::Value(v) => Some(v),
            _ => None,
        }
    }

    /// True if the outcome is a value.
    pub fn is_value(&self) -> bool {
        matches!(self, Outcome::Value(_))
    }

    /// True if the outcome is `Fail(code)`.
    pub fn is_fail_with(&self, code: ErrorCode) -> bool {
        matches!(self, Outcome::Fail(c) if *c == code)
    }

    /// True if the outcome is permitted by semantic type safety: a value, a
    /// benign failure, or running out of budget.
    pub fn is_safe(&self) -> bool {
        match self {
            Outcome::Value(_) | Outcome::OutOfFuel => true,
            Outcome::Fail(c) => c.is_benign(),
        }
    }

    /// Maps the carried value, preserving failures.
    pub fn map<W>(self, f: impl FnOnce(V) -> W) -> Outcome<W> {
        match self {
            Outcome::Value(v) => Outcome::Value(f(v)),
            Outcome::Fail(c) => Outcome::Fail(c),
            Outcome::OutOfFuel => Outcome::OutOfFuel,
        }
    }
}

impl<V: fmt::Display> fmt::Display for Outcome<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Value(v) => write!(f, "value {v}"),
            Outcome::Fail(c) => write!(f, "fail {c}"),
            Outcome::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_errors_are_never_benign() {
        assert!(!ErrorCode::Type.is_benign());
        assert!(ErrorCode::Idx.is_benign());
        assert!(ErrorCode::Conv.is_benign());
        assert!(ErrorCode::Ptr.is_benign());
    }

    #[test]
    fn safety_classification() {
        assert!(Outcome::Value(1).is_safe());
        assert!(Outcome::<i32>::OutOfFuel.is_safe());
        assert!(Outcome::<i32>::Fail(ErrorCode::Conv).is_safe());
        assert!(!Outcome::<i32>::Fail(ErrorCode::Type).is_safe());
    }

    #[test]
    fn map_preserves_shape() {
        assert_eq!(Outcome::Value(2).map(|x| x * 10), Outcome::Value(20));
        assert_eq!(
            Outcome::<i32>::Fail(ErrorCode::Idx).map(|x| x * 10),
            Outcome::Fail(ErrorCode::Idx)
        );
        assert_eq!(
            Outcome::<i32>::OutOfFuel.map(|x| x * 10),
            Outcome::OutOfFuel
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Outcome::Value(7).value(), Some(7));
        assert_eq!(Outcome::<i32>::OutOfFuel.value(), None);
        assert!(Outcome::<i32>::Fail(ErrorCode::Conv).is_fail_with(ErrorCode::Conv));
        assert!(!Outcome::<i32>::Fail(ErrorCode::Conv).is_fail_with(ErrorCode::Idx));
        assert_eq!(Outcome::Value(3).value_ref(), Some(&3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Outcome::Value(1).to_string(), "value 1");
        assert_eq!(Outcome::<i32>::Fail(ErrorCode::Ptr).to_string(), "fail Ptr");
        assert_eq!(Outcome::<i32>::OutOfFuel.to_string(), "out of fuel");
    }
}
