//! The generic interop boundary pipeline: typecheck → compile-with-glue →
//! run under fuel.
//!
//! Every case study in the paper instantiates the same driver shape: a
//! multi-language program is type checked (consulting the convertibility
//! rules at boundaries), compiled to the common target (emitting glue code at
//! boundaries), and run on the target machine under a step budget.  The seed
//! repo told that story three times with three hand-rolled `multilang.rs`
//! drivers and three structurally identical error enums; this module captures
//! it once:
//!
//! * [`InteropSystem`] is what a language pair provides — the two stages that
//!   differ per pair (typecheck, compile) plus target execution;
//! * [`InteropPipeline`] is the driver everybody shares — it sequences the
//!   stages, owns the default fuel budget, and reports failures through the
//!   single [`PipelineError`] shape.
//!
//! The per-case `MultiLang` types remain as thin, ergonomically typed facades
//! over an `InteropPipeline` (see `sharedmem::multilang`, `affine_interop::
//! multilang`, `memgc_interop::multilang`).

use crate::fuel::Fuel;
use std::fmt;

/// What a multi-language system provides to the shared pipeline: the paper's
/// three designer artifacts (rules + compilers + target) behind two fallible
/// stages and one execution step.
pub trait InteropSystem {
    /// Closed multi-language programs (either host language at the top).
    type Program;
    /// Source types (of either language).
    type Ty;
    /// The compiled target artifact (a target program plus whatever metadata
    /// the case study's runner needs).
    type Artifact;
    /// Type-checking errors, including `NotConvertible` boundary rejections.
    type TypeError: fmt::Display;
    /// Compilation errors (missing conversion glue).
    type CompileError: fmt::Display;
    /// The result of one target-machine run.
    type Exec;

    /// Type checks a closed program, consulting the convertibility rules at
    /// boundaries.
    fn typecheck(&self, program: &Self::Program) -> Result<Self::Ty, Self::TypeError>;

    /// Compiles a (type-correct) program to the target, emitting conversion
    /// glue at boundaries.
    fn compile(&self, program: &Self::Program) -> Result<Self::Artifact, Self::CompileError>;

    /// Runs a compiled artifact on the target machine under `fuel`.
    ///
    /// The artifact is taken by value so the common compile-and-run path
    /// never copies a compiled program; callers that want to re-run a kept
    /// artifact clone explicitly (see [`InteropPipeline::execute`]).
    fn execute(&self, artifact: Self::Artifact, fuel: Fuel) -> Self::Exec;

    /// Runs a whole batch of compiled artifacts under the same `fuel`
    /// budget, returning one result per artifact **in input order**.
    ///
    /// The default executes one artifact at a time.  Systems whose target
    /// machine is resettable override this to reuse **one** machine for the
    /// entire batch (clear-in-place between programs), amortising machine
    /// setup; overrides must be observationally equivalent to the default.
    fn execute_batch(&self, artifacts: Vec<Self::Artifact>, fuel: Fuel) -> Vec<Self::Exec> {
        artifacts
            .into_iter()
            .map(|artifact| self.execute(artifact, fuel))
            .collect()
    }
}

/// The one error shape shared by every case study's pipeline, generic over
/// the per-stage error types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError<T, C> {
    /// The program did not type check.
    Type(T),
    /// Compilation failed (a boundary had no registered conversion).
    ///
    /// With a sound rule set this cannot happen for programs that type
    /// check, because the type checker consults the same rules.
    Compile(C),
}

impl<T: fmt::Display, C: fmt::Display> fmt::Display for PipelineError<T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Type(e) => write!(f, "type error: {e}"),
            PipelineError::Compile(e) => write!(f, "compile error: {e}"),
        }
    }
}

impl<T, C> std::error::Error for PipelineError<T, C>
where
    T: fmt::Display + fmt::Debug,
    C: fmt::Display + fmt::Debug,
{
}

/// The result type of the fallible pipeline stages over a system `S`.
pub type PipelineResult<T, S> =
    Result<T, PipelineError<<S as InteropSystem>::TypeError, <S as InteropSystem>::CompileError>>;

/// A compiled multi-language program: the checked source type plus the
/// target artifact, ready to run or inspect.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram<Ty, A> {
    /// The source-level type the checker assigned to the program.
    pub ty: Ty,
    /// The compiled target artifact.
    pub artifact: A,
}

/// The shared driver: typecheck → compile-with-glue → run under fuel.
#[derive(Debug, Clone, Default)]
pub struct InteropPipeline<S> {
    system: S,
    fuel: Fuel,
}

impl<S: InteropSystem> InteropPipeline<S> {
    /// A pipeline over `system` with the default fuel budget.
    pub fn new(system: S) -> Self {
        InteropPipeline {
            system,
            fuel: Fuel::default(),
        }
    }

    /// Overrides the fuel used by [`InteropPipeline::run`].
    pub fn with_fuel(mut self, fuel: Fuel) -> Self {
        self.fuel = fuel;
        self
    }

    /// The underlying system.
    pub fn system(&self) -> &S {
        &self.system
    }

    /// The configured fuel budget.
    pub fn fuel(&self) -> Fuel {
        self.fuel
    }

    /// Stage 1: type check.
    pub fn typecheck(&self, program: &S::Program) -> Result<S::Ty, S::TypeError> {
        self.system.typecheck(program)
    }

    /// Stages 1–2: type check, then compile with glue — the artifact-first
    /// entry point.  Callers keep the returned [`CompiledProgram`] and feed
    /// its artifact to [`InteropPipeline::execute_with_fuel`] (or borrow it
    /// for inspection/model checking) instead of re-running the early stages
    /// per consumer.
    pub fn check_and_compile(
        &self,
        program: &S::Program,
    ) -> PipelineResult<CompiledProgram<S::Ty, S::Artifact>, S> {
        let ty = self
            .system
            .typecheck(program)
            .map_err(PipelineError::Type)?;
        let artifact = self
            .system
            .compile(program)
            .map_err(PipelineError::Compile)?;
        Ok(CompiledProgram { ty, artifact })
    }

    /// Stages 1–3 under the pipeline's own fuel budget.
    pub fn run(&self, program: &S::Program) -> PipelineResult<S::Exec, S> {
        self.run_with_fuel(program, self.fuel)
    }

    /// Stages 1–3 under an explicit fuel budget (for per-program budgets
    /// without cloning the system).  One-shot callers only; anything that
    /// runs *and* inspects the same program should
    /// [`InteropPipeline::check_and_compile`] once and execute the kept
    /// artifact.
    pub fn run_with_fuel(&self, program: &S::Program, fuel: Fuel) -> PipelineResult<S::Exec, S> {
        let compiled = self.check_and_compile(program)?;
        Ok(self.execute_with_fuel(compiled.artifact, fuel))
    }

    /// Stage 3 alone: runs an owned artifact under an explicit fuel budget
    /// without copying it — the execution half of the compile-once flow.
    pub fn execute_with_fuel(&self, artifact: S::Artifact, fuel: Fuel) -> S::Exec {
        self.system.execute(artifact, fuel)
    }

    /// Stage 3 over a whole batch: runs the owned artifacts under one fuel
    /// budget (the same for each), in input order, letting the system reuse
    /// a single machine across the batch when it supports doing so (see
    /// [`InteropSystem::execute_batch`]).
    pub fn execute_batch(&self, artifacts: Vec<S::Artifact>, fuel: Fuel) -> Vec<S::Exec> {
        self.system.execute_batch(artifacts, fuel)
    }

    /// Runs an already-compiled artifact under the pipeline's fuel, keeping
    /// the artifact (one clone — the price of re-runnability).
    pub fn execute(&self, artifact: &S::Artifact) -> S::Exec
    where
        S::Artifact: Clone,
    {
        self.system.execute(artifact.clone(), self.fuel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy system: programs are integers, "compilation" doubles them,
    /// negative programs are type errors and odd ones compile errors.
    struct Toy;

    impl InteropSystem for Toy {
        type Program = i64;
        type Ty = &'static str;
        type Artifact = i64;
        type TypeError = String;
        type CompileError = String;
        type Exec = (i64, Fuel);

        fn typecheck(&self, program: &i64) -> Result<&'static str, String> {
            if *program < 0 {
                Err(format!("{program} is negative"))
            } else {
                Ok("nat")
            }
        }

        fn compile(&self, program: &i64) -> Result<i64, String> {
            if program % 2 == 1 {
                Err(format!("{program} is odd"))
            } else {
                Ok(program * 2)
            }
        }

        fn execute(&self, artifact: i64, fuel: Fuel) -> (i64, Fuel) {
            (artifact, fuel)
        }
    }

    #[test]
    fn pipeline_sequences_the_stages() {
        let p = InteropPipeline::new(Toy).with_fuel(Fuel::steps(7));
        let compiled = p.check_and_compile(&4).unwrap();
        assert_eq!(compiled.ty, "nat");
        assert_eq!(compiled.artifact, 8);
        let (out, fuel) = p.run(&4).unwrap();
        assert_eq!(out, 8);
        assert_eq!(fuel, Fuel::steps(7));
        let (_, fuel) = p.run_with_fuel(&4, Fuel::steps(3)).unwrap();
        assert_eq!(fuel, Fuel::steps(3));
    }

    #[test]
    fn kept_artifacts_execute_without_recompiling() {
        let p = InteropPipeline::new(Toy).with_fuel(Fuel::steps(9));
        let kept = p.check_and_compile(&6).unwrap();
        assert_eq!(kept.ty, "nat");
        assert_eq!(kept.artifact, 12);
        // The artifact is consumed by value and runs under the explicit
        // budget — no clone, no second typecheck/compile.
        let (out, fuel) = p.execute_with_fuel(kept.artifact, Fuel::steps(2));
        assert_eq!(out, 12);
        assert_eq!(fuel, Fuel::steps(2));
    }

    #[test]
    fn batch_execution_preserves_order_and_matches_one_at_a_time() {
        let p = InteropPipeline::new(Toy).with_fuel(Fuel::steps(5));
        let artifacts: Vec<i64> = vec![8, 2, 12, 4];
        let one_at_a_time: Vec<_> = artifacts
            .iter()
            .map(|&a| p.execute_with_fuel(a, Fuel::steps(5)))
            .collect();
        let batched = p.execute_batch(artifacts, Fuel::steps(5));
        assert_eq!(batched, one_at_a_time);
        assert_eq!(batched[2], (12, Fuel::steps(5)));
        assert!(p.execute_batch(Vec::new(), Fuel::steps(5)).is_empty());
    }

    #[test]
    fn stage_errors_keep_their_stage() {
        let p = InteropPipeline::new(Toy);
        match p.run(&-3) {
            Err(PipelineError::Type(e)) => assert!(e.contains("negative")),
            other => panic!("expected a type error, got {other:?}"),
        }
        match p.check_and_compile(&5) {
            Err(PipelineError::Compile(e)) => assert!(e.contains("odd")),
            other => panic!("expected a compile error, got {other:?}"),
        }
        assert_eq!(
            PipelineError::<String, String>::Type("t".into()).to_string(),
            "type error: t"
        );
        assert_eq!(
            PipelineError::<String, String>::Compile("c".into()).to_string(),
            "compile error: c"
        );
    }
}
