//! The convertibility judgment `τA ∼ τB` and its registry.
//!
//! Paper §2.2: the designer of an interoperability system must *explicitly*
//! declare which pairs of source types are interconvertible, and provide
//! target-level glue code witnessing each direction.  The judgment is
//! deliberately **declarative and extensible** — new conversions can be added
//! later by implementers or end users — so we model it as a runtime registry
//! rather than a closed inductive definition.
//!
//! The registry is generic over the two source type representations and over
//! the representation of glue code (a `stacklang` program for case study 1, an
//! `lcvm` expression-to-expression wrapper for case studies 2 and 3).

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A pair of target-level conversions witnessing `τA ∼ τB`.
///
/// `a_to_b` is the glue code `C_{τA ↦ τB}`; `b_to_a` is `C_{τB ↦ τA}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConversionPair<G> {
    /// Glue code converting (target representations of) `τA` into `τB`.
    pub a_to_b: G,
    /// Glue code converting (target representations of) `τB` into `τA`.
    pub b_to_a: G,
}

impl<G> ConversionPair<G> {
    /// Creates a conversion pair from its two directions.
    pub fn new(a_to_b: G, b_to_a: G) -> Self {
        ConversionPair { a_to_b, b_to_a }
    }

    /// Swaps the two directions (useful when looking a rule up "backwards").
    pub fn flipped(self) -> ConversionPair<G> {
        ConversionPair {
            a_to_b: self.b_to_a,
            b_to_a: self.a_to_b,
        }
    }
}

/// A registry of convertibility rules `τA ∼ τB` with their glue code.
///
/// Lookups are *structural* on the type pair: rules for compound types (e.g.
/// `τ1 + τ2 ∼ [int]`) are typically registered by the case-study crates via a
/// derivation function that recursively consults the registry, mirroring the
/// inference-rule presentation in the paper (Fig. 4, Fig. 9).
#[derive(Debug, Clone)]
pub struct ConvertibilityRegistry<TA, TB, G> {
    rules: HashMap<(TA, TB), ConversionPair<G>>,
}

impl<TA, TB, G> Default for ConvertibilityRegistry<TA, TB, G>
where
    TA: Eq + Hash + Clone,
    TB: Eq + Hash + Clone,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<TA, TB, G> ConvertibilityRegistry<TA, TB, G>
where
    TA: Eq + Hash + Clone,
    TB: Eq + Hash + Clone,
{
    /// Creates an empty registry (no types are convertible).
    pub fn new() -> Self {
        ConvertibilityRegistry {
            rules: HashMap::new(),
        }
    }

    /// Declares `a ∼ b`, witnessed by `glue`.
    ///
    /// Returns the previously-registered pair for this type pair, if any, so
    /// callers can detect (and decide how to handle) redefinition.
    pub fn register(&mut self, a: TA, b: TB, glue: ConversionPair<G>) -> Option<ConversionPair<G>> {
        self.rules.insert((a, b), glue)
    }

    /// Is `a ∼ b` declared?
    pub fn convertible(&self, a: &TA, b: &TB) -> bool {
        self.rules.contains_key(&(a.clone(), b.clone()))
    }

    /// The glue pair registered for `a ∼ b`, if any.
    pub fn conversion(&self, a: &TA, b: &TB) -> Option<&ConversionPair<G>> {
        self.rules.get(&(a.clone(), b.clone()))
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over all registered rules.
    pub fn iter(&self) -> impl Iterator<Item = (&(TA, TB), &ConversionPair<G>)> {
        self.rules.iter()
    }
}

/// Error raised when a boundary mentions a type pair with no registered rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotConvertible<TA, TB> {
    /// The language-A side of the attempted boundary.
    pub ty_a: TA,
    /// The language-B side of the attempted boundary.
    pub ty_b: TB,
}

impl<TA: fmt::Display, TB: fmt::Display> fmt::Display for NotConvertible<TA, TB> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no convertibility rule {} ∼ {}", self.ty_a, self.ty_b)
    }
}

impl<TA, TB> std::error::Error for NotConvertible<TA, TB>
where
    TA: fmt::Display + fmt::Debug,
    TB: fmt::Display + fmt::Debug,
{
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_rejects_everything() {
        let reg: ConvertibilityRegistry<&str, &str, ()> = ConvertibilityRegistry::new();
        assert!(reg.is_empty());
        assert!(!reg.convertible(&"bool", &"int"));
        assert!(reg.conversion(&"bool", &"int").is_none());
    }

    #[test]
    fn registered_rules_are_found() {
        let mut reg = ConvertibilityRegistry::new();
        reg.register("bool", "int", ConversionPair::new("noop", "noop"));
        reg.register("sum", "array", ConversionPair::new("tagenc", "tagdec"));
        assert_eq!(reg.len(), 2);
        assert!(reg.convertible(&"bool", &"int"));
        assert_eq!(reg.conversion(&"sum", &"array").unwrap().a_to_b, "tagenc");
        assert!(
            !reg.convertible(&"int", &"bool"),
            "registry is directional on the pair key"
        );
    }

    #[test]
    fn reregistration_returns_old_pair() {
        let mut reg = ConvertibilityRegistry::new();
        assert!(reg.register("a", "b", ConversionPair::new(1, 2)).is_none());
        let old = reg.register("a", "b", ConversionPair::new(3, 4)).unwrap();
        assert_eq!(old, ConversionPair::new(1, 2));
        assert_eq!(
            reg.conversion(&"a", &"b").unwrap(),
            &ConversionPair::new(3, 4)
        );
    }

    #[test]
    fn flipping_swaps_directions() {
        let p = ConversionPair::new("fwd", "bwd");
        assert_eq!(p.flipped(), ConversionPair::new("bwd", "fwd"));
    }

    #[test]
    fn not_convertible_displays_both_types() {
        let e = NotConvertible {
            ty_a: "bool",
            ty_b: "array",
        };
        assert_eq!(e.to_string(), "no convertibility rule bool ∼ array");
    }
}
