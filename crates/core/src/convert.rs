//! The convertibility judgment `τA ∼ τB` and its registry.
//!
//! Paper §2.2: the designer of an interoperability system must *explicitly*
//! declare which pairs of source types are interconvertible, and provide
//! target-level glue code witnessing each direction.  The judgment is
//! deliberately **declarative and extensible** — new conversions can be added
//! later by implementers or end users — so we model it as a runtime registry
//! rather than a closed inductive definition.
//!
//! The registry is generic over the two source type representations and over
//! the representation of glue code (a `stacklang` program for case study 1, an
//! `lcvm` expression-to-expression wrapper for case studies 2 and 3).

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A pair of target-level conversions witnessing `τA ∼ τB`.
///
/// `a_to_b` is the glue code `C_{τA ↦ τB}`; `b_to_a` is `C_{τB ↦ τA}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConversionPair<G> {
    /// Glue code converting (target representations of) `τA` into `τB`.
    pub a_to_b: G,
    /// Glue code converting (target representations of) `τB` into `τA`.
    pub b_to_a: G,
}

impl<G> ConversionPair<G> {
    /// Creates a conversion pair from its two directions.
    pub fn new(a_to_b: G, b_to_a: G) -> Self {
        ConversionPair { a_to_b, b_to_a }
    }

    /// Swaps the two directions (useful when looking a rule up "backwards").
    pub fn flipped(self) -> ConversionPair<G> {
        ConversionPair {
            a_to_b: self.b_to_a,
            b_to_a: self.a_to_b,
        }
    }
}

/// A registry of convertibility rules `τA ∼ τB` with their glue code.
///
/// Lookups are *structural* on the type pair: rules for compound types (e.g.
/// `τ1 + τ2 ∼ [int]`) are typically registered by the case-study crates via a
/// derivation function that recursively consults the registry, mirroring the
/// inference-rule presentation in the paper (Fig. 4, Fig. 9).
#[derive(Debug, Clone)]
pub struct ConvertibilityRegistry<TA, TB, G> {
    rules: HashMap<(TA, TB), ConversionPair<G>>,
}

impl<TA, TB, G> Default for ConvertibilityRegistry<TA, TB, G>
where
    TA: Eq + Hash + Clone,
    TB: Eq + Hash + Clone,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<TA, TB, G> ConvertibilityRegistry<TA, TB, G>
where
    TA: Eq + Hash + Clone,
    TB: Eq + Hash + Clone,
{
    /// Creates an empty registry (no types are convertible).
    pub fn new() -> Self {
        ConvertibilityRegistry {
            rules: HashMap::new(),
        }
    }

    /// Declares `a ∼ b`, witnessed by `glue`.
    ///
    /// Returns the previously-registered pair for this type pair, if any, so
    /// callers can detect (and decide how to handle) redefinition.
    pub fn register(&mut self, a: TA, b: TB, glue: ConversionPair<G>) -> Option<ConversionPair<G>> {
        self.rules.insert((a, b), glue)
    }

    /// Is `a ∼ b` declared?
    pub fn convertible(&self, a: &TA, b: &TB) -> bool {
        self.rules.contains_key(&(a.clone(), b.clone()))
    }

    /// The glue pair registered for `a ∼ b`, if any.
    pub fn conversion(&self, a: &TA, b: &TB) -> Option<&ConversionPair<G>> {
        self.rules.get(&(a.clone(), b.clone()))
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over all registered rules.
    pub fn iter(&self) -> impl Iterator<Item = (&(TA, TB), &ConversionPair<G>)> {
        self.rules.iter()
    }
}

/// A snapshot of a [`GlueCache`]'s effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlueCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the structural derivation.
    pub misses: u64,
    /// Distinct type pairs currently memoized (including non-derivable ones).
    pub entries: usize,
}

impl GlueCacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// The counter difference `self - earlier` (entries taken from `self`),
    /// used by sweep drivers to report per-sweep figures from a shared cache.
    pub fn since(&self, earlier: &GlueCacheStats) -> GlueCacheStats {
        GlueCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
        }
    }
}

/// A memoization table for structural glue derivation, keyed on the type
/// pair `(τA, τB)`.
///
/// Deriving compound glue (`τ1 + τ2 ∼ [int]`, nested products, higher-order
/// wrappers) is recursive and allocates fresh target code at every level, so
/// repeated boundary crossings at the same type pair — the common case in a
/// `semint sweep` — pay the full derivation cost every time without a cache.
/// `GlueCache` makes every derivation after the first O(1): both successful
/// derivations **and** refutations (`None`) are memoized, so a type checker
/// probing many inconvertible pairs benefits as much as a compiler emitting
/// glue.
///
/// Cloning a `GlueCache` is cheap and **shares** the underlying table and
/// counters (the storage sits behind an [`Arc`]); a conversion scheme cloned
/// per scenario therefore keeps one warm cache per sweep.
///
/// The hot path is engineered for the sweep engine's access pattern — many
/// parallel workers, ~99% hits after warm-up:
///
/// * the table sits behind an [`RwLock`], so concurrent hits never serialize
///   against each other (only the rare miss takes the write lock);
/// * the table is a *nested* map (`TA → TB → entry`), so a hit needs **no**
///   key clone — looking up a deep compound type pair allocates nothing;
/// * cached pairs are stored behind an [`Arc`], so a hit returns a pointer
///   clone of the glue, not a deep copy ([`GlueCache::is_derivable`] answers
///   the type checker's yes/no queries without touching the glue at all);
/// * derivations run *outside* the lock — recursive sub-derivations re-enter
///   the cache without deadlocking, at the price of occasional duplicated
///   work under contention (harmless: derivation is deterministic).
#[derive(Debug)]
pub struct GlueCache<TA, TB, G> {
    entries: Arc<RwLock<GlueTable<TA, TB, G>>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

/// The memoization table of a [`GlueCache`]: a nested map so lookups borrow
/// the query types instead of cloning them into a tuple key.  `None` entries
/// record refutations.
type GlueTable<TA, TB, G> = HashMap<TA, HashMap<TB, Option<Arc<ConversionPair<G>>>>>;

impl<TA, TB, G> Clone for GlueCache<TA, TB, G> {
    /// Clones share the table and counters; see the type-level docs.
    fn clone(&self) -> Self {
        GlueCache {
            entries: Arc::clone(&self.entries),
            hits: Arc::clone(&self.hits),
            misses: Arc::clone(&self.misses),
        }
    }
}

impl<TA, TB, G> Default for GlueCache<TA, TB, G> {
    fn default() -> Self {
        GlueCache {
            entries: Arc::new(RwLock::new(HashMap::new())),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl<TA, TB, G> GlueCache<TA, TB, G>
where
    TA: Eq + Hash + Clone,
    TB: Eq + Hash + Clone,
{
    /// Creates an empty cache.
    pub fn new() -> Self {
        GlueCache::default()
    }

    /// Returns the memoized derivation for `(a, b)` behind its shared
    /// pointer, running `derive` (and memoizing its answer, derivable or
    /// not) on the first lookup.
    pub fn get_or_derive(
        &self,
        a: &TA,
        b: &TB,
        derive: impl FnOnce() -> Option<ConversionPair<G>>,
    ) -> Option<Arc<ConversionPair<G>>> {
        if let Some(found) = self
            .entries
            .read()
            .expect("glue cache poisoned")
            .get(a)
            .and_then(|by_b| by_b.get(b))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // The lock is released while deriving: structural derivations recurse
        // back into this cache for their sub-pairs.
        let derived = derive().map(Arc::new);
        self.entries
            .write()
            .expect("glue cache poisoned")
            .entry(a.clone())
            .or_default()
            .entry(b.clone())
            .or_insert(derived)
            .clone()
    }

    /// Whether `a ∼ b` is derivable, **if** the answer is already memoized
    /// (`None` means "not cached yet").  This is the type checker's fast
    /// path: a convertibility oracle query on a warm cache costs one map
    /// probe and never touches the glue.
    pub fn is_derivable(&self, a: &TA, b: &TB) -> Option<bool> {
        let cached = self
            .entries
            .read()
            .expect("glue cache poisoned")
            .get(a)
            .and_then(|by_b| by_b.get(b))
            .map(|entry| entry.is_some());
        if cached.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        cached
    }

    /// Number of memoized type pairs.
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .expect("glue cache poisoned")
            .values()
            .map(|by_b| by_b.len())
            .sum()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the hit/miss counters and table size.
    pub fn stats(&self) -> GlueCacheStats {
        GlueCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// A structural derivation of conversion pairs over a type pair, memoized
/// through a [`GlueCache`].
///
/// This is the paper's step 2 (declare `τA ∼ τB`, witness it with glue)
/// factored out of the three case studies: each conversion rule set
/// implements [`ConversionScheme::derive_uncached`] with its inference-rule
/// `match` and exposes its cache via [`ConversionScheme::glue_cache`]; the
/// provided [`ConversionScheme::derive_pair`] entry point then memoizes every
/// query.  Recursive rules should recurse through the *cached* entry point so
/// compound glue is assembled from memoized parts.
pub trait ConversionScheme {
    /// Language-A source types (`τA`).
    type TyA: Clone + Eq + Hash;
    /// Language-B source types (`τB`).
    type TyB: Clone + Eq + Hash;
    /// The target-level glue representation (a `stacklang` program, an
    /// `lcvm` wrapper function, …).
    type Glue: Clone;

    /// One structural derivation of `a ∼ b`, mirroring the paper's
    /// inference rules.  Sub-derivations should go through
    /// [`ConversionScheme::derive_pair`] (or an inherent wrapper around it)
    /// so they are memoized too.
    fn derive_uncached(&self, a: &Self::TyA, b: &Self::TyB) -> Option<ConversionPair<Self::Glue>>;

    /// The memoization table threaded through every derivation.
    fn glue_cache(&self) -> &GlueCache<Self::TyA, Self::TyB, Self::Glue>;

    /// Memoized derivation of `a ∼ b` with its witnessing glue pair (shared
    /// with the cache — clone out of the [`Arc`] only when glue must be
    /// owned).
    fn derive_pair(&self, a: &Self::TyA, b: &Self::TyB) -> Option<Arc<ConversionPair<Self::Glue>>> {
        self.glue_cache()
            .get_or_derive(a, b, || self.derive_uncached(a, b))
    }

    /// Is `a ∼ b` derivable?  On a warm cache this is one map probe with no
    /// glue traffic — the path every convertibility oracle query takes.
    /// (Named to avoid clashing with the per-case `convertible` oracle
    /// traits, which are implemented in terms of this.)
    fn derivable(&self, a: &Self::TyA, b: &Self::TyB) -> bool {
        match self.glue_cache().is_derivable(a, b) {
            Some(answer) => answer,
            None => self.derive_pair(a, b).is_some(),
        }
    }
}

/// Error raised when a boundary mentions a type pair with no registered rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotConvertible<TA, TB> {
    /// The language-A side of the attempted boundary.
    pub ty_a: TA,
    /// The language-B side of the attempted boundary.
    pub ty_b: TB,
}

impl<TA: fmt::Display, TB: fmt::Display> fmt::Display for NotConvertible<TA, TB> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no convertibility rule {} ∼ {}", self.ty_a, self.ty_b)
    }
}

impl<TA, TB> std::error::Error for NotConvertible<TA, TB>
where
    TA: fmt::Display + fmt::Debug,
    TB: fmt::Display + fmt::Debug,
{
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_rejects_everything() {
        let reg: ConvertibilityRegistry<&str, &str, ()> = ConvertibilityRegistry::new();
        assert!(reg.is_empty());
        assert!(!reg.convertible(&"bool", &"int"));
        assert!(reg.conversion(&"bool", &"int").is_none());
    }

    #[test]
    fn registered_rules_are_found() {
        let mut reg = ConvertibilityRegistry::new();
        reg.register("bool", "int", ConversionPair::new("noop", "noop"));
        reg.register("sum", "array", ConversionPair::new("tagenc", "tagdec"));
        assert_eq!(reg.len(), 2);
        assert!(reg.convertible(&"bool", &"int"));
        assert_eq!(reg.conversion(&"sum", &"array").unwrap().a_to_b, "tagenc");
        assert!(
            !reg.convertible(&"int", &"bool"),
            "registry is directional on the pair key"
        );
    }

    #[test]
    fn reregistration_returns_old_pair() {
        let mut reg = ConvertibilityRegistry::new();
        assert!(reg.register("a", "b", ConversionPair::new(1, 2)).is_none());
        let old = reg.register("a", "b", ConversionPair::new(3, 4)).unwrap();
        assert_eq!(old, ConversionPair::new(1, 2));
        assert_eq!(
            reg.conversion(&"a", &"b").unwrap(),
            &ConversionPair::new(3, 4)
        );
    }

    #[test]
    fn flipping_swaps_directions() {
        let p = ConversionPair::new("fwd", "bwd");
        assert_eq!(p.flipped(), ConversionPair::new("bwd", "fwd"));
    }

    #[test]
    fn glue_cache_memoizes_hits_and_refutations() {
        let cache: GlueCache<&str, &str, u32> = GlueCache::new();
        let mut derivations = 0;
        let mut derive_once = |out: Option<ConversionPair<u32>>| {
            derivations += 1;
            out
        };
        let first = cache.get_or_derive(&"bool", &"int", || {
            derive_once(Some(ConversionPair::new(1, 2)))
        });
        assert_eq!(first.as_deref(), Some(&ConversionPair::new(1, 2)));
        let second = cache.get_or_derive(&"bool", &"int", || unreachable!("must be cached"));
        assert_eq!(second.as_deref(), Some(&ConversionPair::new(1, 2)));
        // A hit is a pointer clone of the memoized glue, not a deep copy.
        assert!(Arc::ptr_eq(
            first.as_ref().unwrap(),
            second.as_ref().unwrap()
        ));
        // Refutations are memoized too.
        assert!(cache.get_or_derive(&"bool", &"array", || None).is_none());
        assert!(cache
            .get_or_derive(&"bool", &"array", || unreachable!("must be cached"))
            .is_none());
        assert_eq!(derivations, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 2, 2));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
        // The derivable fast path answers from the cache without glue.
        assert_eq!(cache.is_derivable(&"bool", &"int"), Some(true));
        assert_eq!(cache.is_derivable(&"bool", &"array"), Some(false));
        assert_eq!(cache.is_derivable(&"bool", &"ref"), None);
        assert_eq!(cache.stats().hits, stats.hits + 2);
    }

    #[test]
    fn glue_cache_clones_share_storage() {
        let cache: GlueCache<u8, u8, u8> = GlueCache::new();
        let clone = cache.clone();
        clone.get_or_derive(&1, &2, || Some(ConversionPair::new(3, 4)));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache
                .get_or_derive(&1, &2, || unreachable!("shared with the clone"))
                .as_deref(),
            Some(&ConversionPair::new(3, 4))
        );
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cache_stats_since_reports_the_difference() {
        let before = GlueCacheStats {
            hits: 3,
            misses: 2,
            entries: 2,
        };
        let after = GlueCacheStats {
            hits: 10,
            misses: 5,
            entries: 4,
        };
        let delta = after.since(&before);
        assert_eq!((delta.hits, delta.misses, delta.entries), (7, 3, 4));
        assert_eq!(GlueCacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn conversion_scheme_default_methods_memoize() {
        struct Doubling {
            cache: GlueCache<u32, u32, u32>,
        }
        impl ConversionScheme for Doubling {
            type TyA = u32;
            type TyB = u32;
            type Glue = u32;
            fn derive_uncached(&self, a: &u32, b: &u32) -> Option<ConversionPair<u32>> {
                (*b == a * 2).then(|| ConversionPair::new(*a, *b))
            }
            fn glue_cache(&self) -> &GlueCache<u32, u32, u32> {
                &self.cache
            }
        }
        let scheme = Doubling {
            cache: GlueCache::new(),
        };
        assert!(scheme.derivable(&2, &4));
        assert!(scheme.derivable(&2, &4));
        assert!(!scheme.derivable(&2, &5));
        let stats = scheme.glue_cache().stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    #[test]
    fn not_convertible_displays_both_types() {
        let e = NotConvertible {
            ty_a: "bool",
            ty_b: "array",
        };
        assert_eq!(e.to_string(), "no convertibility rule bool ∼ array");
    }
}
