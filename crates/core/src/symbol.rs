//! Variables and symbols shared by every language in the workspace.
//!
//! All five source languages and both target languages use the same notion of
//! variable: an interned, human-readable name.  Keeping a single type here
//! means compilers can pass source variable names straight through to the
//! target (as the paper's compilers do, e.g. Fig. 3 and Fig. 8) without any
//! conversion layer.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A variable name.
///
/// `Var` is a thin wrapper over an [`Arc<str>`] so that cloning during
/// substitution-heavy interpretation is cheap and the type stays `Send + Sync`.
///
/// ```
/// use semint_core::Var;
/// let x = Var::new("x");
/// assert_eq!(x.as_str(), "x");
/// assert_eq!(x, Var::from("x"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Arc<str>);

impl Var {
    /// Creates a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns a derived variable name with the given suffix appended.
    ///
    /// Used by compilers that need related helper names (`x`, `x_thnk`, …).
    pub fn suffixed(&self, suffix: &str) -> Var {
        Var::new(format!("{}{}", self.0, suffix))
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

impl From<String> for Var {
    fn from(s: String) -> Self {
        Var::new(s)
    }
}

impl Borrow<str> for Var {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Var {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_is_by_name() {
        assert_eq!(Var::new("x"), Var::new("x"));
        assert_ne!(Var::new("x"), Var::new("y"));
    }

    #[test]
    fn display_is_bare_name() {
        assert_eq!(Var::new("foo").to_string(), "foo");
    }

    #[test]
    fn suffixed_builds_related_names() {
        assert_eq!(Var::new("x").suffixed("_thnk"), Var::new("x_thnk"));
    }

    #[test]
    fn usable_as_hash_set_element_and_str_borrow() {
        let mut set = HashSet::new();
        set.insert(Var::new("a"));
        assert!(set.contains("a"));
        assert!(!set.contains("b"));
    }

    #[test]
    fn send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Var>();
    }
}
