//! Boundary descriptors.
//!
//! Paper §2.1: to include code from language B, language A adds a boundary
//! form `⦇e⦈τA`, well-typed when `e : 𝜏B` and `τA ∼ 𝜏B`.  The AST node itself
//! lives in each source language (it must carry the foreign expression), but
//! the *direction* of a boundary and the bookkeeping for reporting boundary
//! positions are shared.

use std::fmt;

/// Which way a boundary crosses between the two interoperating languages.
///
/// Following the paper we call the two languages `A` and `B`; each case-study
/// crate documents which concrete language plays which role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryDirection {
    /// `⦇e⦈τA`: a language-B term used in a language-A context (`AB` boundary).
    IntoA,
    /// `⦇e⦈𝜏B`: a language-A term used in a language-B context (`BA` boundary).
    IntoB,
}

impl BoundaryDirection {
    /// The opposite direction.
    pub fn flipped(self) -> Self {
        match self {
            BoundaryDirection::IntoA => BoundaryDirection::IntoB,
            BoundaryDirection::IntoB => BoundaryDirection::IntoA,
        }
    }
}

impl fmt::Display for BoundaryDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundaryDirection::IntoA => write!(f, "B↪A"),
            BoundaryDirection::IntoB => write!(f, "A↪B"),
        }
    }
}

/// A record of one boundary crossing discovered during multi-language type
/// checking — useful for diagnostics and for the benchmarks, which count
/// crossings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryCrossing {
    /// Direction of the crossing.
    pub direction: BoundaryDirection,
    /// Rendered type on the A side.
    pub ty_a: String,
    /// Rendered type on the B side.
    pub ty_b: String,
}

impl fmt::Display for BoundaryCrossing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : {} ∼ {}", self.direction, self.ty_a, self.ty_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flipping_is_an_involution() {
        assert_eq!(BoundaryDirection::IntoA.flipped(), BoundaryDirection::IntoB);
        assert_eq!(
            BoundaryDirection::IntoA.flipped().flipped(),
            BoundaryDirection::IntoA
        );
    }

    #[test]
    fn crossings_render_readably() {
        let c = BoundaryCrossing {
            direction: BoundaryDirection::IntoA,
            ty_a: "bool".into(),
            ty_b: "int".into(),
        };
        assert_eq!(c.to_string(), "B↪A : bool ∼ int");
    }
}
