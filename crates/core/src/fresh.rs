//! Fresh-name generation.
//!
//! Compilers (Fig. 3, Fig. 8, Fig. 13) and conversion glue code (Fig. 4,
//! Fig. 9, §5) frequently need fresh target variables (`x_fresh`), fresh heap
//! locations and fresh phantom flags.  [`FreshGen`] is a tiny counter-based
//! supply shared across the workspace so generated names never collide with
//! user-written ones (they always contain a `%`).

use crate::symbol::Var;

/// A deterministic supply of fresh names.
///
/// ```
/// use semint_core::FreshGen;
/// let mut gen = FreshGen::new();
/// let a = gen.fresh("x");
/// let b = gen.fresh("x");
/// assert_ne!(a, b);
/// assert!(a.as_str().starts_with("x%"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FreshGen {
    next: u64,
}

impl FreshGen {
    /// Creates a fresh-name supply starting at zero.
    pub fn new() -> Self {
        FreshGen { next: 0 }
    }

    /// Creates a supply whose first index is `start`.
    ///
    /// Useful when a pass must continue a numbering started by another pass.
    pub fn starting_at(start: u64) -> Self {
        FreshGen { next: start }
    }

    /// Returns a fresh variable whose name begins with `hint`.
    ///
    /// The generated name contains a `%`, which none of the surface languages
    /// accept in identifiers, so it can never capture a user variable.
    pub fn fresh(&mut self, hint: &str) -> Var {
        let n = self.next;
        self.next += 1;
        Var::new(format!("{hint}%{n}"))
    }

    /// Returns a fresh numeric identifier (for locations, flags, …).
    pub fn fresh_id(&mut self) -> u64 {
        let n = self.next;
        self.next += 1;
        n
    }

    /// How many names have been generated so far.
    pub fn count(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_hinted() {
        let mut g = FreshGen::new();
        let xs: Vec<_> = (0..10).map(|_| g.fresh("tmp")).collect();
        for (i, x) in xs.iter().enumerate() {
            assert!(x.as_str().starts_with("tmp%"));
            for y in &xs[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn ids_increment() {
        let mut g = FreshGen::starting_at(5);
        assert_eq!(g.fresh_id(), 5);
        assert_eq!(g.fresh_id(), 6);
        assert_eq!(g.count(), 7);
    }
}
