//! Step indices and the shared vocabulary of Kripke worlds.
//!
//! Every case study builds a different world (heap typings only in §3; heap
//! typing + affine flag store Θ in §4; GC'd heap typing + owned manual
//! fragments in §5), but all of them are step-indexed and all of them use
//! *approximation*: `⌊R⌋_j` restricts a relation to worlds with index `< j`.
//! This module provides the index arithmetic and a small trait capturing the
//! common "future world" notion so that the executable models can share
//! driver code.

/// A step index `k` (the "budget" component of a world).
///
/// ```
/// use semint_core::StepIndex;
/// let k = StepIndex::new(5);
/// assert!(StepIndex::new(3).within(k));
/// assert_eq!(k.decremented(), StepIndex::new(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StepIndex(pub u64);

impl StepIndex {
    /// Creates a step index.
    pub fn new(k: u64) -> Self {
        StepIndex(k)
    }

    /// The raw index.
    pub fn get(self) -> u64 {
        self.0
    }

    /// `self < other` — is this index a valid approximation level inside a
    /// world with budget `other`?
    pub fn within(self, other: StepIndex) -> bool {
        self.0 < other.0
    }

    /// The index lowered by one step, saturating at zero.
    pub fn decremented(self) -> StepIndex {
        StepIndex(self.0.saturating_sub(1))
    }

    /// The smaller of two indices (used when combining approximations).
    pub fn min(self, other: StepIndex) -> StepIndex {
        StepIndex(self.0.min(other.0))
    }
}

impl From<u64> for StepIndex {
    fn from(k: u64) -> Self {
        StepIndex(k)
    }
}

/// The common interface of Kripke worlds used by the executable models.
///
/// A future world may lower the step budget and must preserve whatever
/// invariants the case study demands (heap typings grow, affine flags only
/// move from "unused" to "used", pinned GC locations survive, …).  The trait
/// only exposes what the generic model-checking drivers need: the budget and
/// the *reflexive* extension check used in sanity assertions.
pub trait World: Clone {
    /// The current step budget `W.k`.
    fn step_index(&self) -> StepIndex;

    /// Is `future` a legal extension of `self` (`self ⊑ future`)?
    fn extended_by(&self, future: &Self) -> bool;

    /// The same world with its budget lowered to `k` (world approximation).
    fn with_step_index(&self, k: StepIndex) -> Self;
}

/// Checks the two world-extension laws every case-study world must satisfy:
/// reflexivity and "lowering the budget is an extension".  Used by the tests
/// of each concrete world type.
pub fn check_world_laws<W: World>(w: &W) -> Result<(), String> {
    if !w.extended_by(w) {
        return Err("world extension is not reflexive".to_string());
    }
    let lowered = w.with_step_index(w.step_index().decremented());
    if !w.extended_by(&lowered) {
        return Err("lowering the step budget must be a world extension".to_string());
    }
    if lowered.step_index().get() > w.step_index().get() {
        return Err("with_step_index must not raise the budget".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct TrivialWorld {
        k: StepIndex,
    }

    impl World for TrivialWorld {
        fn step_index(&self) -> StepIndex {
            self.k
        }
        fn extended_by(&self, future: &Self) -> bool {
            future.k.get() <= self.k.get()
        }
        fn with_step_index(&self, k: StepIndex) -> Self {
            TrivialWorld { k }
        }
    }

    #[test]
    fn index_arithmetic() {
        let k = StepIndex::new(3);
        assert!(StepIndex::new(2).within(k));
        assert!(!StepIndex::new(3).within(k));
        assert_eq!(StepIndex::new(0).decremented(), StepIndex::new(0));
        assert_eq!(StepIndex::new(7).min(StepIndex::new(4)), StepIndex::new(4));
        assert_eq!(StepIndex::from(9u64).get(), 9);
    }

    #[test]
    fn trivial_world_satisfies_laws() {
        check_world_laws(&TrivialWorld {
            k: StepIndex::new(10),
        })
        .unwrap();
    }

    #[test]
    fn law_checker_detects_violations() {
        #[derive(Clone)]
        struct BadWorld;
        impl World for BadWorld {
            fn step_index(&self) -> StepIndex {
                StepIndex::new(1)
            }
            fn extended_by(&self, _f: &Self) -> bool {
                false
            }
            fn with_step_index(&self, _k: StepIndex) -> Self {
                BadWorld
            }
        }
        assert!(check_world_laws(&BadWorld).is_err());
    }
}
