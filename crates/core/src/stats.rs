//! Shared run/sweep statistics and report types.
//!
//! Every case study's machine reports outcomes in its own shape (StackLang's
//! [`Outcome`](crate::outcome::Outcome) over stack values, LCVM's `Halt`);
//! the harness projects them all into [`OutcomeClass`] so sweeps over
//! different language pairs aggregate into one histogram.  These types live
//! in `semint-core` (not in the engine crate) so the case-study crates can
//! produce them without depending on the engine.

use crate::outcome::ErrorCode;
use crate::telemetry::VmCounters;
use std::collections::BTreeMap;
use std::fmt;

/// A machine outcome reduced to its safety-relevant class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OutcomeClass {
    /// Terminated with a value.
    Value,
    /// Exhausted the step budget (the step-index escape clause — benign).
    OutOfFuel,
    /// Terminated with `fail c`.
    Fail(ErrorCode),
    /// Stuck under an augmented semantics (LCVM's phantom-flag mode); never
    /// safe.
    Stuck,
}

impl OutcomeClass {
    /// True if the class is permitted by semantic type safety.
    pub fn is_safe(self) -> bool {
        match self {
            OutcomeClass::Value | OutcomeClass::OutOfFuel => true,
            OutcomeClass::Fail(c) => c.is_benign(),
            OutcomeClass::Stuck => false,
        }
    }

    /// A short stable label, used as histogram key.
    pub fn label(self) -> String {
        match self {
            OutcomeClass::Value => "value".into(),
            OutcomeClass::OutOfFuel => "out-of-fuel".into(),
            OutcomeClass::Fail(c) => format!("fail-{c}"),
            OutcomeClass::Stuck => "stuck".into(),
        }
    }
}

impl fmt::Display for OutcomeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The shared projection of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// How the machine halted.
    pub outcome: OutcomeClass,
    /// Machine steps consumed (== fuel consumed; both machines charge one
    /// fuel unit per step).
    pub steps: u64,
    /// Deterministic VM telemetry for the run: instructions by opcode class,
    /// allocation totals, and high-water marks.
    pub counters: VmCounters,
}

/// Per-stage wall-clock totals for one scenario or one whole sweep, in
/// nanoseconds.  Collected only when the sweep asks for timing (`semint
/// sweep --time`); wall-clock is inherently nondeterministic, so timings are
/// excluded from [`CaseReport::digest`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Scenario generation.
    pub generate_ns: u64,
    /// Type checking (including boundary convertibility queries).
    pub typecheck_ns: u64,
    /// Compilation with glue emission (each scenario compiles exactly once;
    /// the artifact is then shared by the model-check and run stages).
    pub compile_ns: u64,
    /// Target-machine execution of the already-compiled artifact.
    pub run_ns: u64,
    /// Realizability-model checking.
    pub model_check_ns: u64,
}

impl StageTimings {
    /// Adds another timing record into this one, stage by stage.
    pub fn absorb(&mut self, other: &StageTimings) {
        self.generate_ns += other.generate_ns;
        self.typecheck_ns += other.typecheck_ns;
        self.compile_ns += other.compile_ns;
        self.run_ns += other.run_ns;
        self.model_check_ns += other.model_check_ns;
    }

    /// Total wall-clock across all stages.
    pub fn total_ns(&self) -> u64 {
        self.generate_ns + self.typecheck_ns + self.compile_ns + self.run_ns + self.model_check_ns
    }

    /// The stages as `(label, nanoseconds)` pairs, in pipeline order.
    pub fn stages(&self) -> [(&'static str, u64); 5] {
        [
            ("generate", self.generate_ns),
            ("typecheck", self.typecheck_ns),
            ("compile", self.compile_ns),
            ("run", self.run_ns),
            ("model-check", self.model_check_ns),
        ]
    }

    /// Sets the stage named `label` (the names from
    /// [`StageTimings::stages`]); unknown labels are rejected.
    pub fn set_stage(&mut self, label: &str, ns: u64) -> Result<(), String> {
        match label {
            "generate" => self.generate_ns = ns,
            "typecheck" => self.typecheck_ns = ns,
            "compile" => self.compile_ns = ns,
            "run" => self.run_ns = ns,
            "model-check" => self.model_check_ns = ns,
            other => return Err(format!("unknown stage {other:?}")),
        }
        Ok(())
    }
}

/// The full record of one swept scenario.
#[derive(Debug, Clone)]
pub struct ScenarioRecord {
    /// The scenario seed.
    pub seed: u64,
    /// The claimed (and re-checked) source type, rendered.
    pub ty: String,
    /// Rendered length of the program — a cheap, stable size proxy.
    pub program_chars: usize,
    /// Syntactic language-boundary count of the program.
    pub boundaries: usize,
    /// The run projection, if the pipeline reached the run stage.
    pub stats: Option<RunStats>,
    /// The stage that failed, if any.
    pub failure: Option<FailureRecord>,
    /// Per-stage wall-clock, when the sweep collects timing.
    pub timings: Option<StageTimings>,
}

/// Which pipeline stage rejected a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailStage {
    /// The generator's claimed type did not re-check.
    Typecheck,
    /// Compilation failed.
    Compile,
    /// The run halted unsafely (`fail Type`).
    Run,
    /// The realizability model rejected the program.
    ModelCheck,
}

impl fmt::Display for FailStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailStage::Typecheck => "typecheck",
            FailStage::Compile => "compile",
            FailStage::Run => "run",
            FailStage::ModelCheck => "model-check",
        };
        f.write_str(s)
    }
}

/// A failed scenario, with its shrunk counterexample when the engine could
/// produce one.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// The scenario seed.
    pub seed: u64,
    /// The stage that failed.
    pub stage: FailStage,
    /// Why it failed.
    pub reason: String,
    /// The original failing program, rendered.
    pub witness: String,
    /// The shrunk failing program, rendered (equals `witness` when no
    /// smaller failing program was found).
    pub shrunk: String,
    /// How many shrinking steps were applied.
    pub shrink_steps: usize,
}

impl fmt::Display for FailureRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {}: {} failure: {}\n  witness: {}\n  shrunk ({} steps): {}",
            self.seed, self.stage, self.reason, self.witness, self.shrink_steps, self.shrunk
        )
    }
}

/// Aggregate report for one case study over one seed range.
#[derive(Debug, Clone, Default)]
pub struct CaseReport {
    /// Case-study name.
    pub case: String,
    /// Number of scenarios swept.
    pub scenarios: u64,
    /// Outcome-class histogram over all runs.
    pub outcome_histogram: BTreeMap<String, u64>,
    /// Total machine steps (== fuel consumed) across all runs.
    pub total_steps: u64,
    /// Total syntactic boundary crossings across all generated programs.
    pub total_boundaries: u64,
    /// Total rendered program size (characters) across all scenarios.
    pub total_program_chars: u64,
    /// Glue-cache hits during the sweep (see
    /// [`crate::convert::GlueCache`]); filled in by the sweep engine.
    pub glue_hits: u64,
    /// Glue-cache misses (full structural derivations) during the sweep.
    pub glue_misses: u64,
    /// Aggregated VM counters across all runs: counts add, high-water marks
    /// take the per-scenario maximum (see [`VmCounters::absorb`]), so shard
    /// merge and batch grouping reproduce the unsharded aggregate exactly.
    /// Zero for reports read from files written before counters existed.
    pub counters: VmCounters,
    /// Per-stage wall-clock totals, when the sweep collected timing.
    pub timings: Option<StageTimings>,
    /// Scenarios that failed some pipeline stage.
    pub failures: Vec<FailureRecord>,
}

impl CaseReport {
    /// An empty report for a named case study.
    pub fn new(case: impl Into<String>) -> Self {
        CaseReport {
            case: case.into(),
            ..CaseReport::default()
        }
    }

    /// Folds one scenario record into the aggregate.
    pub fn absorb(&mut self, record: &ScenarioRecord) {
        self.scenarios += 1;
        self.total_boundaries += record.boundaries as u64;
        self.total_program_chars += record.program_chars as u64;
        if let Some(stats) = &record.stats {
            *self
                .outcome_histogram
                .entry(stats.outcome.label())
                .or_insert(0) += 1;
            self.total_steps += stats.steps;
            self.counters.absorb(&stats.counters);
        }
        if let Some(failure) = &record.failure {
            self.failures.push(failure.clone());
        }
        if let Some(timings) = &record.timings {
            self.timings
                .get_or_insert_with(StageTimings::default)
                .absorb(timings);
        }
    }

    /// Merges another report over the *same* case study into this one:
    /// every aggregate folds associatively and commutatively (counts add,
    /// counter high-water marks take the max), so merging the per-shard
    /// reports of a partitioned seed range reproduces the unsharded report
    /// — its [`CaseReport::digest`] *and* its [`VmCounters`] — exactly.
    pub fn merge(&mut self, other: &CaseReport) {
        debug_assert_eq!(self.case, other.case, "merging reports of different cases");
        self.scenarios += other.scenarios;
        self.total_steps += other.total_steps;
        self.total_boundaries += other.total_boundaries;
        self.total_program_chars += other.total_program_chars;
        self.glue_hits += other.glue_hits;
        self.glue_misses += other.glue_misses;
        self.counters.absorb(&other.counters);
        for (label, count) in &other.outcome_histogram {
            *self.outcome_histogram.entry(label.clone()).or_insert(0) += count;
        }
        self.failures.extend(other.failures.iter().cloned());
        if let Some(timings) = &other.timings {
            self.timings
                .get_or_insert_with(StageTimings::default)
                .absorb(timings);
        }
    }

    /// Fraction of glue-cache lookups answered from the cache, in `[0, 1]`.
    pub fn glue_hit_rate(&self) -> f64 {
        crate::convert::GlueCacheStats {
            hits: self.glue_hits,
            misses: self.glue_misses,
            entries: 0,
        }
        .hit_rate()
    }

    /// True if no scenario failed any stage.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// A deterministic digest of the aggregate (used by determinism tests
    /// and by `semint sweep` to print a comparable fingerprint).
    pub fn digest(&self) -> String {
        let mut parts: Vec<String> = vec![
            format!("case={}", self.case),
            format!("scenarios={}", self.scenarios),
            format!("steps={}", self.total_steps),
            format!("boundaries={}", self.total_boundaries),
            format!("chars={}", self.total_program_chars),
            format!("failures={}", self.failures.len()),
        ];
        for (label, count) in &self.outcome_histogram {
            parts.push(format!("{label}={count}"));
        }
        parts.join(" ")
    }
}

/// A whole-sweep report: one [`CaseReport`] per case study.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Reports in sweep order.
    pub cases: Vec<CaseReport>,
}

impl SweepReport {
    /// Total scenarios across all cases.
    pub fn scenarios(&self) -> u64 {
        self.cases.iter().map(|c| c.scenarios).sum()
    }

    /// Total failures across all cases.
    pub fn failure_count(&self) -> usize {
        self.cases.iter().map(|c| c.failures.len()).sum()
    }

    /// Merges another sweep report into this one, matching case reports by
    /// name (cases only in `other` are appended).  Sharded sweeps merge
    /// into the digests of the unsharded sweep — the property `semint
    /// report a.tsv b.tsv` and the CI shard smoke rely on.
    pub fn merge(&mut self, other: &SweepReport) {
        for incoming in &other.cases {
            match self.cases.iter_mut().find(|c| c.case == incoming.case) {
                Some(existing) => existing.merge(incoming),
                None => self.cases.push(incoming.clone()),
            }
        }
    }

    /// Serialises the aggregate (not the failure witnesses) to a simple
    /// line-oriented `key<TAB>value` format that [`SweepReport::from_tsv`]
    /// reads back; used by `semint sweep --save` / `semint report`.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for case in &self.cases {
            out.push_str(&format!("case\t{}\n", case.case));
            out.push_str(&format!("scenarios\t{}\n", case.scenarios));
            out.push_str(&format!("total_steps\t{}\n", case.total_steps));
            out.push_str(&format!("total_boundaries\t{}\n", case.total_boundaries));
            out.push_str(&format!(
                "total_program_chars\t{}\n",
                case.total_program_chars
            ));
            out.push_str(&format!("glue_hits\t{}\n", case.glue_hits));
            out.push_str(&format!("glue_misses\t{}\n", case.glue_misses));
            for (key, value) in case.counters.fields() {
                out.push_str(&format!("counter\t{key}\t{value}\n"));
            }
            if let Some(timings) = &case.timings {
                for (label, ns) in timings.stages() {
                    out.push_str(&format!("stage_ns\t{label}\t{ns}\n"));
                }
            }
            out.push_str(&format!("failures\t{}\n", case.failures.len()));
            for (label, count) in &case.outcome_histogram {
                out.push_str(&format!("outcome\t{label}\t{count}\n"));
            }
        }
        out
    }

    /// Parses the format produced by [`SweepReport::to_tsv`].
    ///
    /// Failure counts are restored as placeholder records (witnesses are not
    /// serialised), which is enough for `semint report` rendering.
    pub fn from_tsv(text: &str) -> Result<SweepReport, String> {
        let mut report = SweepReport::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split('\t');
            let key = fields.next().unwrap_or_default();
            let value = fields
                .next()
                .ok_or_else(|| format!("line {}: missing value", lineno + 1))?;
            let parse = |v: &str| -> Result<u64, String> {
                v.parse::<u64>()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))
            };
            match key {
                "case" => report.cases.push(CaseReport::new(value)),
                _ => {
                    let case = report
                        .cases
                        .last_mut()
                        .ok_or_else(|| format!("line {}: field before any case", lineno + 1))?;
                    match key {
                        "scenarios" => case.scenarios = parse(value)?,
                        "total_steps" => case.total_steps = parse(value)?,
                        "total_boundaries" => case.total_boundaries = parse(value)?,
                        "total_program_chars" => case.total_program_chars = parse(value)?,
                        "glue_hits" => case.glue_hits = parse(value)?,
                        "glue_misses" => case.glue_misses = parse(value)?,
                        // Counter rows are optional: files written before
                        // telemetry existed simply leave every field zero.
                        "counter" => {
                            let count = fields
                                .next()
                                .ok_or_else(|| format!("line {}: missing count", lineno + 1))?;
                            if !case.counters.set_field(value, parse(count)?) {
                                return Err(format!(
                                    "line {}: unknown counter {value:?}",
                                    lineno + 1
                                ));
                            }
                        }
                        "stage_ns" => {
                            let ns = fields.next().ok_or_else(|| {
                                format!("line {}: missing stage time", lineno + 1)
                            })?;
                            case.timings
                                .get_or_insert_with(StageTimings::default)
                                .set_stage(value, parse(ns)?)
                                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                        }
                        "failures" => {
                            for _ in 0..parse(value)? {
                                case.failures.push(FailureRecord {
                                    seed: 0,
                                    stage: FailStage::ModelCheck,
                                    reason: "(not serialised)".into(),
                                    witness: String::new(),
                                    shrunk: String::new(),
                                    shrink_steps: 0,
                                });
                            }
                        }
                        "outcome" => {
                            let count = fields
                                .next()
                                .ok_or_else(|| format!("line {}: missing count", lineno + 1))?;
                            case.outcome_histogram
                                .insert(value.to_string(), parse(count)?);
                        }
                        other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
                    }
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: u64, outcome: OutcomeClass, steps: u64) -> ScenarioRecord {
        ScenarioRecord {
            seed,
            ty: "bool".into(),
            program_chars: 10,
            boundaries: 2,
            stats: Some(RunStats {
                outcome,
                steps,
                counters: VmCounters {
                    instr_data: steps,
                    heap_allocs: 1,
                    heap_peak_live: seed + 1,
                    stack_peak: 2,
                    ..VmCounters::default()
                },
            }),
            failure: None,
            timings: None,
        }
    }

    #[test]
    fn absorb_accumulates() {
        let mut r = CaseReport::new("sharedmem");
        r.absorb(&record(0, OutcomeClass::Value, 5));
        r.absorb(&record(1, OutcomeClass::Fail(ErrorCode::Conv), 7));
        assert_eq!(r.scenarios, 2);
        assert_eq!(r.total_steps, 12);
        assert_eq!(r.total_boundaries, 4);
        assert_eq!(r.outcome_histogram.get("value"), Some(&1));
        assert_eq!(r.outcome_histogram.get("fail-Conv"), Some(&1));
        assert!(r.is_clean());
        assert_eq!(r.counters.instr_data, 12, "counts add across scenarios");
        assert_eq!(r.counters.heap_allocs, 2);
        assert_eq!(r.counters.heap_peak_live, 2, "peaks take the max");
    }

    #[test]
    fn safety_classes() {
        assert!(OutcomeClass::Value.is_safe());
        assert!(OutcomeClass::OutOfFuel.is_safe());
        assert!(OutcomeClass::Fail(ErrorCode::Conv).is_safe());
        assert!(!OutcomeClass::Fail(ErrorCode::Type).is_safe());
    }

    #[test]
    fn tsv_round_trip() {
        let mut case = CaseReport::new("affine");
        case.absorb(&record(3, OutcomeClass::Value, 11));
        case.glue_hits = 9;
        case.glue_misses = 4;
        case.timings = Some(StageTimings {
            generate_ns: 1,
            typecheck_ns: 2,
            compile_ns: 3,
            run_ns: 4,
            model_check_ns: 5,
        });
        let report = SweepReport { cases: vec![case] };
        let parsed = SweepReport::from_tsv(&report.to_tsv()).unwrap();
        assert_eq!(parsed.cases.len(), 1);
        assert_eq!(parsed.cases[0].case, "affine");
        assert_eq!(parsed.cases[0].scenarios, 1);
        assert_eq!(parsed.cases[0].total_steps, 11);
        assert_eq!(parsed.cases[0].outcome_histogram.get("value"), Some(&1));
        assert_eq!(parsed.cases[0].glue_hits, 9);
        assert_eq!(parsed.cases[0].glue_misses, 4);
        assert_eq!(parsed.cases[0].timings, report.cases[0].timings);
        assert_eq!(parsed.cases[0].counters, report.cases[0].counters);
    }

    #[test]
    fn tsv_without_counter_rows_parses_to_zeroed_counters() {
        // A file written before telemetry existed: no `counter` rows at all.
        let legacy = "case\tsharedmem\nscenarios\t3\ntotal_steps\t7\n";
        let parsed = SweepReport::from_tsv(legacy).unwrap();
        assert_eq!(parsed.cases[0].scenarios, 3);
        assert!(parsed.cases[0].counters.is_zero());
        // Unknown counter names are still rejected, like unknown keys.
        let bad = "case\tsharedmem\ncounter\tnope\t1\n";
        assert!(SweepReport::from_tsv(bad).is_err());
    }

    #[test]
    fn timings_absorb_and_total() {
        let mut report = CaseReport::new("memgc");
        let mut rec = record(0, OutcomeClass::Value, 1);
        rec.timings = Some(StageTimings {
            generate_ns: 10,
            typecheck_ns: 20,
            compile_ns: 30,
            run_ns: 40,
            model_check_ns: 50,
        });
        report.absorb(&rec);
        report.absorb(&rec);
        let timings = report.timings.expect("collected");
        assert_eq!(timings.generate_ns, 20);
        assert_eq!(timings.total_ns(), 300);
        assert!((report.glue_hit_rate() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn merged_shards_reproduce_the_unsharded_digest() {
        let mut whole = CaseReport::new("sharedmem");
        let mut even = CaseReport::new("sharedmem");
        let mut odd = CaseReport::new("sharedmem");
        for seed in 0..10u64 {
            let rec = record(
                seed,
                if seed % 3 == 0 {
                    OutcomeClass::Value
                } else {
                    OutcomeClass::OutOfFuel
                },
                seed + 1,
            );
            whole.absorb(&rec);
            if seed % 2 == 0 {
                even.absorb(&rec);
            } else {
                odd.absorb(&rec);
            }
        }
        let mut merged = SweepReport { cases: vec![even] };
        merged.merge(&SweepReport { cases: vec![odd] });
        assert_eq!(merged.cases.len(), 1);
        assert_eq!(merged.cases[0].digest(), whole.digest());
        assert_eq!(
            merged.cases[0].counters, whole.counters,
            "VmCounters survive shard merge exactly"
        );
    }

    #[test]
    fn digest_is_deterministic_and_informative() {
        let mut a = CaseReport::new("memgc");
        a.absorb(&record(0, OutcomeClass::Value, 3));
        let mut b = CaseReport::new("memgc");
        b.absorb(&record(0, OutcomeClass::Value, 3));
        assert_eq!(a.digest(), b.digest());
        assert!(a.digest().contains("case=memgc"));
    }
}
