//! The [`CaseStudy`] abstraction: one interface over every language pair.
//!
//! The paper's framework is instantiated once per language pair — each case
//! study ships its own convertibility rules, compilers and realizability
//! model.  The executable reproduction mirrors that, but the *driver* logic
//! (generate a well-typed program, type check it, compile it, run it under a
//! budget, check it against the model) is identical everywhere.  This module
//! captures that driver shape as a trait so the `semint-harness` engine can
//! sweep seed ranges over all case studies — present and future — with one
//! batch runner, one statistics pipeline and one counterexample shrinker.
//!
//! Implementations live with their case studies (`sharedmem::harness`,
//! `affine_interop::harness`, `memgc_interop::harness`); only the vocabulary
//! lives here so the case-study crates need not depend on the engine.

use crate::convert::GlueCacheStats;
use crate::fuel::Fuel;
use crate::stats::RunStats;
use std::fmt;

/// Tuning knobs shared by every case study's scenario generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioConfig {
    /// Maximum expression depth of generated programs.
    pub max_depth: usize,
    /// Probability (0–100) of inserting a language boundary where a
    /// convertibility rule permits one.
    pub boundary_bias: u32,
    /// Step budget for each run.
    pub fuel: Fuel,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            max_depth: 4,
            boundary_bias: 35,
            fuel: Fuel::steps(200_000),
        }
    }
}

/// One generated workload: a closed, well-typed multi-language program
/// together with the type the generator claims for it.
#[derive(Debug, Clone)]
pub struct Scenario<P, T> {
    /// The seed the program was generated from.
    pub seed: u64,
    /// The generated program.
    pub program: P,
    /// The type the generator claims the program has; the engine re-checks
    /// this claim through [`CaseStudy::typecheck`].
    pub ty: T,
}

/// A model-check counterexample in the shared vocabulary all three case
/// studies' checkers can be projected into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckFailure {
    /// The judgment that failed (e.g. `Lemma 3.1 for bool ∼ int`).
    pub claim: String,
    /// The offending program or value, rendered.
    pub witness: String,
    /// Why the check rejected it.
    pub reason: String,
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} refuted by {}: {}",
            self.claim, self.witness, self.reason
        )
    }
}

/// A language pair packaged as one *interface + behaviour* instance, in the
/// FunTAL "language as interface" sense: everything the generic engine needs
/// to generate, check, compile, run and model-check workloads for one case
/// study.
pub trait CaseStudy {
    /// Closed multi-language programs of this case study (either host
    /// language at the top level).
    type Program: Clone + fmt::Display + Send + 'static;
    /// Source types of this case study.
    type Ty: Clone + fmt::Display + PartialEq + Send + 'static;
    /// The full, case-study-specific result of one run (machine outcome plus
    /// whatever the pair's machine exposes: heaps, stacks, guard counts).
    type Report: Send + 'static;

    /// A short stable name (`sharedmem`, `affine`, `memgc`).
    fn name(&self) -> &'static str;

    /// Deterministically generates a well-typed scenario from `seed`.
    fn generate(&self, seed: u64, cfg: &ScenarioConfig) -> Scenario<Self::Program, Self::Ty>;

    /// Type checks a program, returning its type.
    fn typecheck(&self, program: &Self::Program) -> Result<Self::Ty, String>;

    /// Compiles a program to its target language, discarding the output
    /// (compilation failures are what the engine cares about).
    fn compile(&self, program: &Self::Program) -> Result<(), String>;

    /// Compiles and runs a program under the given step budget.
    fn run(&self, program: &Self::Program, fuel: Fuel) -> Result<Self::Report, String>;

    /// Projects a case-study-specific report into the shared statistics
    /// vocabulary.
    fn stats(&self, report: &Self::Report) -> RunStats;

    /// Checks the program against the case study's realizability model at
    /// the claimed type (type safety and, where the model supports it,
    /// membership in the expression relation).
    fn model_check(&self, program: &Self::Program, ty: &Self::Ty) -> Result<(), CheckFailure>;

    /// Candidate one-step shrinks of `program`: structurally smaller
    /// programs (typically immediate subterms) that may reproduce a failure.
    /// Candidates need not be well-typed; the shrinker filters through
    /// [`CaseStudy::typecheck`].
    fn shrink(&self, program: &Self::Program) -> Vec<Self::Program> {
        let _ = program;
        Vec::new()
    }

    /// The number of syntactic language boundaries in `program`, used for
    /// the boundary-crossing aggregate statistics.
    ///
    /// All three case studies render boundaries as `⦇e⦈τ`, so the default
    /// counts the opening half-brackets in the rendered program.
    fn boundary_count(&self, program: &Self::Program) -> usize {
        program.to_string().matches('⦇').count()
    }

    /// Checks Lemma 3.1 (convertibility soundness) over the case study's
    /// registered rule catalogue, independent of any generated program.
    /// Cases without an executable conversion checker return `Ok(())`.
    fn check_conversions(&self) -> Result<(), CheckFailure> {
        Ok(())
    }

    /// A snapshot of the case study's glue-derivation cache counters
    /// (see [`crate::convert::GlueCache`]), if its conversion scheme is
    /// memoized.  The sweep engine diffs two snapshots to report per-sweep
    /// hit/miss figures.
    fn glue_cache_stats(&self) -> Option<GlueCacheStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_bounded() {
        let cfg = ScenarioConfig::default();
        assert!(cfg.fuel.remaining().is_some());
        assert!(cfg.boundary_bias <= 100);
    }

    #[test]
    fn check_failure_displays_all_parts() {
        let f = CheckFailure {
            claim: "bool ∼ int".into(),
            witness: "true".into(),
            reason: "output not in E⟦int⟧".into(),
        };
        let s = f.to_string();
        assert!(s.contains("bool ∼ int") && s.contains("true") && s.contains("E⟦int⟧"));
    }
}
