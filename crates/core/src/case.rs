//! The [`CaseStudy`] abstraction: one interface over every language pair.
//!
//! The paper's framework is instantiated once per language pair — each case
//! study ships its own convertibility rules, compilers and realizability
//! model.  The executable reproduction mirrors that, but the *driver* logic
//! (generate a well-typed program, type check it, compile it, run it under a
//! budget, check it against the model) is identical everywhere.  This module
//! captures that driver shape as a trait so the `semint-harness` engine can
//! sweep seed ranges over all case studies — present and future — with one
//! batch runner, one statistics pipeline and one counterexample shrinker.
//!
//! Implementations live with their case studies (`sharedmem::harness`,
//! `affine_interop::harness`, `memgc_interop::harness`); only the vocabulary
//! lives here so the case-study crates need not depend on the engine.

use crate::convert::GlueCacheStats;
use crate::fuel::Fuel;
use crate::stats::RunStats;
use std::fmt;

/// Relative weights for the generators' choice among goal-type constructor
/// classes.  All three case studies' type generators draw from the same
/// three shapes: base types (`leaf`), binary constructors such as sums,
/// products, functions and tensors (`branch`), and unary wrappers such as
/// references, arrays and `!` (`wrap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstructorWeights {
    /// Weight of base types (bool, int, unit, …).
    pub leaf: u32,
    /// Weight of binary constructors (sum, product, function, tensor, …).
    pub branch: u32,
    /// Weight of unary wrappers (ref, array, `!`, …).
    pub wrap: u32,
}

impl ConstructorWeights {
    /// The weights every preset except `deep` uses: an even split between
    /// stopping and recursing, with wrappers rarer than branches.
    pub const STANDARD: ConstructorWeights = ConstructorWeights {
        leaf: 3,
        branch: 3,
        wrap: 1,
    };

    /// Branch-heavy weights for the `deep` preset: goal types keep
    /// recursing most of the time, so deep pairs/functions/refs dominate.
    pub const DEEP: ConstructorWeights = ConstructorWeights {
        leaf: 1,
        branch: 4,
        wrap: 2,
    };

    /// The largest sum of weights [`GenProfile::validate`] accepts; keeps
    /// every arithmetic path comfortably inside `u32`.
    pub const MAX_TOTAL: u32 = 1_000_000;

    /// Sum of the three weights (saturating, so hand-built weights beyond
    /// [`ConstructorWeights::MAX_TOTAL`] cannot overflow — validation
    /// rejects them before they matter).
    pub fn total(&self) -> u32 {
        self.leaf
            .saturating_add(self.branch)
            .saturating_add(self.wrap)
    }

    /// Maps a uniform roll in `0..total()` to a constructor class; the
    /// generators draw the roll from their seeded RNG so this type needs no
    /// randomness of its own.
    pub fn class_for(&self, roll: u32) -> ConstructorClass {
        let roll = roll % self.total().max(1);
        if roll < self.leaf {
            ConstructorClass::Leaf
        } else if roll < self.leaf + self.branch {
            ConstructorClass::Branch
        } else {
            ConstructorClass::Wrap
        }
    }
}

/// One of the three goal-type constructor classes weighted by
/// [`ConstructorWeights`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstructorClass {
    /// A base type.
    Leaf,
    /// A binary constructor.
    Branch,
    /// A unary wrapper.
    Wrap,
}

impl Default for ConstructorWeights {
    fn default() -> Self {
        ConstructorWeights::STANDARD
    }
}

/// A named generation profile: every knob the scenario generators honor.
///
/// Profiles are the engine's first-class notion of a workload *population*
/// (replacing the old flat `ScenarioConfig`): four presets cover the common
/// sweeps, and every knob is independently overridable (`semint sweep
/// --profile deep --boundary-bias 60 …`).  Construct presets via
/// [`GenProfile::by_name`] or the named constructors; after mutating knobs,
/// re-check with [`GenProfile::validate`] — the engine and CLI reject
/// invalid profiles instead of silently clamping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenProfile {
    /// The preset this profile started from (`custom` once knobs diverge in
    /// the CLI; informational only — never affects generation).
    pub name: &'static str,
    /// Maximum structural depth of generated goal *types* (source-type
    /// depth).  Depths above 2 put compound-glue derivation on the sweep's
    /// critical path, which is where the glue cache shows up in wall-clock.
    pub type_depth: usize,
    /// Maximum expression depth of generated programs.
    pub max_depth: usize,
    /// Probability (0–100) of inserting a language boundary where a
    /// convertibility rule permits one.
    pub boundary_bias: u32,
    /// Constructor-class weights for goal-type generation.
    pub weights: ConstructorWeights,
    /// Step budget for each run.
    pub fuel: Fuel,
}

impl GenProfile {
    /// The four preset names, in the order `semint --help` lists them.
    pub const PRESET_NAMES: [&'static str; 4] = ["smoke", "default", "deep", "boundary-heavy"];

    /// Tiny population for CI smokes: shallow types, shallow programs,
    /// small budget.
    pub fn smoke() -> GenProfile {
        GenProfile {
            name: "smoke",
            type_depth: 1,
            max_depth: 2,
            boundary_bias: 25,
            weights: ConstructorWeights::STANDARD,
            fuel: Fuel::steps(50_000),
        }
    }

    /// The standard population (the pre-profile engine's behavior):
    /// source-type depth 2, expression depth 4, 35% boundary bias.
    pub fn standard() -> GenProfile {
        GenProfile {
            name: "default",
            type_depth: 2,
            max_depth: 4,
            boundary_bias: 35,
            weights: ConstructorWeights::STANDARD,
            fuel: Fuel::steps(200_000),
        }
    }

    /// Deep population: source types of depth up to 4 with branch-heavy
    /// constructor weights, so compound-glue derivation sits on the sweep's
    /// critical path.
    pub fn deep() -> GenProfile {
        GenProfile {
            name: "deep",
            type_depth: 4,
            max_depth: 6,
            boundary_bias: 45,
            weights: ConstructorWeights::DEEP,
            fuel: Fuel::steps(400_000),
        }
    }

    /// Boundary-stress population: standard depths, but boundaries are
    /// inserted at (almost) every opportunity.
    pub fn boundary_heavy() -> GenProfile {
        GenProfile {
            name: "boundary-heavy",
            type_depth: 2,
            max_depth: 5,
            boundary_bias: 85,
            weights: ConstructorWeights::STANDARD,
            fuel: Fuel::steps(200_000),
        }
    }

    /// Looks a preset up by name.
    pub fn by_name(name: &str) -> Option<GenProfile> {
        match name {
            "smoke" => Some(GenProfile::smoke()),
            "default" => Some(GenProfile::standard()),
            "deep" => Some(GenProfile::deep()),
            "boundary-heavy" => Some(GenProfile::boundary_heavy()),
            _ => None,
        }
    }

    /// All four presets.
    pub fn presets() -> Vec<GenProfile> {
        GenProfile::PRESET_NAMES
            .iter()
            .map(|name| GenProfile::by_name(name).expect("preset names are exhaustive"))
            .collect()
    }

    /// Checks every knob, returning a human-readable complaint for the
    /// first invalid one.  Presets always validate; mutated profiles must
    /// be re-checked before use (the CLI turns the complaint into a usage
    /// error instead of silently clamping).
    pub fn validate(&self) -> Result<(), String> {
        if self.type_depth == 0 {
            return Err("type depth must be at least 1".into());
        }
        if self.max_depth == 0 {
            return Err("expression depth must be at least 1".into());
        }
        if self.boundary_bias > 100 {
            return Err(format!(
                "boundary bias is a percentage: {} is not in 0-100",
                self.boundary_bias
            ));
        }
        if self.fuel.remaining() == Some(0) {
            return Err("fuel budget must be nonzero (a zero-step budget can run nothing)".into());
        }
        if self.weights.total() == 0 {
            return Err("constructor weights must not all be zero".into());
        }
        let exact_total = [self.weights.leaf, self.weights.branch, self.weights.wrap]
            .iter()
            .try_fold(0u32, |acc, w| acc.checked_add(*w));
        if !matches!(exact_total, Some(total) if total <= ConstructorWeights::MAX_TOTAL) {
            return Err(format!(
                "constructor weights are relative; keep their sum at or below {}",
                ConstructorWeights::MAX_TOTAL
            ));
        }
        Ok(())
    }

    /// Validates and returns `self` (builder-style sugar over
    /// [`GenProfile::validate`]).
    pub fn validated(self) -> Result<GenProfile, String> {
        self.validate()?;
        Ok(self)
    }
}

impl Default for GenProfile {
    fn default() -> Self {
        GenProfile::standard()
    }
}

impl fmt::Display for GenProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fuel = match self.fuel.remaining() {
            Some(steps) => steps.to_string(),
            None => "unlimited".into(),
        };
        write!(
            f,
            "{} (type depth {}, expr depth {}, boundary bias {}%, weights {}/{}/{}, fuel {})",
            self.name,
            self.type_depth,
            self.max_depth,
            self.boundary_bias,
            self.weights.leaf,
            self.weights.branch,
            self.weights.wrap,
            fuel
        )
    }
}

/// One generated workload: a closed, well-typed multi-language program
/// together with the type the generator claims for it.
#[derive(Debug, Clone)]
pub struct Scenario<P, T> {
    /// The seed the program was generated from.
    pub seed: u64,
    /// The generated program.
    pub program: P,
    /// The type the generator claims the program has; the engine re-checks
    /// this claim through [`CaseStudy::typecheck`].
    pub ty: T,
}

/// A model-check counterexample in the shared vocabulary all three case
/// studies' checkers can be projected into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckFailure {
    /// The judgment that failed (e.g. `Lemma 3.1 for bool ∼ int`).
    pub claim: String,
    /// The offending program or value, rendered.
    pub witness: String,
    /// Why the check rejected it.
    pub reason: String,
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} refuted by {}: {}",
            self.claim, self.witness, self.reason
        )
    }
}

/// A language pair packaged as one *interface + behaviour* instance, in the
/// FunTAL "language as interface" sense: everything the generic engine needs
/// to generate, check, compile, run and model-check workloads for one case
/// study.
pub trait CaseStudy {
    /// Closed multi-language programs of this case study (either host
    /// language at the top level).
    type Program: Clone + fmt::Display + Send + 'static;
    /// Source types of this case study.
    type Ty: Clone + fmt::Display + PartialEq + Send + 'static;
    /// The full, case-study-specific result of one run (machine outcome plus
    /// whatever the pair's machine exposes: heaps, stacks, guard counts).
    type Report: Send + 'static;
    /// The compiled target artifact of one program — the first-class object
    /// the sweep engine threads through timing, execution and model checking
    /// so each scenario is compiled exactly once no matter how many stages
    /// consume it.
    type Compiled: Send + 'static;

    /// A short stable name (`sharedmem`, `affine`, `memgc`).
    fn name(&self) -> &'static str;

    /// Deterministically generates a well-typed scenario from `seed` under
    /// the given generation profile.
    fn generate(&self, seed: u64, profile: &GenProfile) -> Scenario<Self::Program, Self::Ty>;

    /// Type checks a program, returning its type.
    fn typecheck(&self, program: &Self::Program) -> Result<Self::Ty, String>;

    /// Compiles a program to its target language, returning the artifact.
    ///
    /// Callers must hand in a type-correct program (the engine re-checks the
    /// generator's claim through [`CaseStudy::typecheck`] first); this stage
    /// performs **no** typecheck of its own, which is what lets the engine
    /// guarantee one typecheck and one compile per scenario.
    fn compile(&self, program: &Self::Program) -> Result<Self::Compiled, String>;

    /// Runs an already-compiled artifact under the given step budget.
    ///
    /// The artifact is taken by value so the compile-once-execute-once sweep
    /// path never copies a compiled program; callers that also want to model
    /// check borrow the artifact through
    /// [`CaseStudy::model_check_compiled`] *before* executing it.
    fn execute(&self, compiled: Self::Compiled, fuel: Fuel) -> Self::Report;

    /// Runs a whole batch of already-compiled artifacts under the given
    /// step budget (the same budget for each), returning one report per
    /// artifact **in input order**.
    ///
    /// The default simply executes one artifact at a time; case studies
    /// whose target machine supports in-place reuse override this to drive
    /// the entire batch through **one** machine instance (reset between
    /// programs), amortising machine setup across the batch.  Overrides
    /// must be observationally equivalent to the default — same reports,
    /// same order — which is what lets the sweep engine batch freely
    /// without perturbing digests.
    fn execute_batch(&self, batch: Vec<Self::Compiled>, fuel: Fuel) -> Vec<Self::Report> {
        batch
            .into_iter()
            .map(|compiled| self.execute(compiled, fuel))
            .collect()
    }

    /// Compiles and runs a program under the given step budget — the
    /// one-shot convenience over [`CaseStudy::compile`] +
    /// [`CaseStudy::execute`] for ad-hoc callers.  The sweep engine never
    /// calls this: scenarios and shrink candidates alike go through the
    /// explicit compile → execute artifact path.
    fn run(&self, program: &Self::Program, fuel: Fuel) -> Result<Self::Report, String> {
        Ok(self.execute(self.compile(program)?, fuel))
    }

    /// Projects a case-study-specific report into the shared statistics
    /// vocabulary.
    fn stats(&self, report: &Self::Report) -> RunStats;

    /// Checks the program against the case study's realizability model at
    /// the claimed type (type safety and, where the model supports it,
    /// membership in the expression relation), borrowing an artifact the
    /// caller already built — the model-check stage never recompiles.
    fn model_check_compiled(
        &self,
        program: &Self::Program,
        ty: &Self::Ty,
        compiled: &Self::Compiled,
    ) -> Result<(), CheckFailure>;

    /// Compile-and-model-check convenience over
    /// [`CaseStudy::model_check_compiled`] for ad-hoc callers.  The sweep
    /// engine's shrink re-checks compile each candidate themselves and call
    /// [`CaseStudy::model_check_compiled`] directly, so the compile-once
    /// invariant holds there too.
    fn model_check(&self, program: &Self::Program, ty: &Self::Ty) -> Result<(), CheckFailure> {
        let compiled = self.compile(program).map_err(|reason| CheckFailure {
            claim: "compilation".into(),
            witness: program.to_string(),
            reason,
        })?;
        self.model_check_compiled(program, ty, &compiled)
    }

    /// Candidate one-step shrinks of `program`: structurally smaller
    /// programs (typically immediate subterms) that may reproduce a failure.
    /// Candidates need not be well-typed; the shrinker filters through
    /// [`CaseStudy::typecheck`].
    fn shrink(&self, program: &Self::Program) -> Vec<Self::Program> {
        let _ = program;
        Vec::new()
    }

    /// The number of syntactic language boundaries in `program`, used for
    /// the boundary-crossing aggregate statistics.
    ///
    /// This runs once per scenario on the sweep hot path, so implementations
    /// must count structurally (one tree walk) — rendering the program and
    /// counting `⦇` characters costs a full O(program) string allocation per
    /// scenario, which is why there is deliberately no render-based default.
    fn boundary_count(&self, program: &Self::Program) -> usize;

    /// Checks Lemma 3.1 (convertibility soundness) over the case study's
    /// registered rule catalogue, independent of any generated program.
    /// Cases without an executable conversion checker return `Ok(())`.
    fn check_conversions(&self) -> Result<(), CheckFailure> {
        Ok(())
    }

    /// A snapshot of the case study's glue-derivation cache counters
    /// (see [`crate::convert::GlueCache`]), if its conversion scheme is
    /// memoized.  The sweep engine diffs two snapshots to report per-sweep
    /// hit/miss figures.
    fn glue_cache_stats(&self) -> Option<GlueCacheStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_validates_and_is_bounded() {
        for profile in GenProfile::presets() {
            profile
                .validate()
                .unwrap_or_else(|e| panic!("preset {} invalid: {e}", profile.name));
            assert!(profile.fuel.remaining().is_some(), "{}", profile.name);
            assert!(profile.boundary_bias <= 100, "{}", profile.name);
            assert_eq!(
                GenProfile::by_name(profile.name),
                Some(profile),
                "by_name must round-trip {}",
                profile.name
            );
        }
        assert!(GenProfile::by_name("nope").is_none());
        assert_eq!(GenProfile::default(), GenProfile::standard());
    }

    #[test]
    fn deep_preset_reaches_past_the_old_type_depth_cap() {
        assert!(GenProfile::deep().type_depth >= 4);
    }

    #[test]
    fn invalid_knobs_are_rejected_with_friendly_messages() {
        let mut p = GenProfile::standard();
        p.boundary_bias = 101;
        assert!(p.validate().unwrap_err().contains("0-100"));
        let mut p = GenProfile::standard();
        p.fuel = crate::Fuel::steps(0);
        assert!(p.validate().unwrap_err().contains("fuel"));
        let mut p = GenProfile::standard();
        p.type_depth = 0;
        assert!(p.validate().unwrap_err().contains("type depth"));
        let mut p = GenProfile::standard();
        p.max_depth = 0;
        assert!(p.validate().unwrap_err().contains("expression depth"));
        let mut p = GenProfile::standard();
        p.weights = ConstructorWeights {
            leaf: 0,
            branch: 0,
            wrap: 0,
        };
        assert!(p.validate().unwrap_err().contains("weights"));
        // Oversized weights are rejected rather than overflowing the total.
        let mut p = GenProfile::standard();
        p.weights = ConstructorWeights {
            leaf: 3_000_000_000,
            branch: 3_000_000_000,
            wrap: 1,
        };
        assert!(p.validate().unwrap_err().contains("at or below"));
        assert!(GenProfile::standard().validated().is_ok());
    }

    #[test]
    fn profiles_render_their_knobs() {
        let text = GenProfile::deep().to_string();
        assert!(
            text.contains("deep") && text.contains("type depth 4"),
            "{text}"
        );
    }

    #[test]
    fn check_failure_displays_all_parts() {
        let f = CheckFailure {
            claim: "bool ∼ int".into(),
            witness: "true".into(),
            reason: "output not in E⟦int⟧".into(),
        };
        let s = f.to_string();
        assert!(s.contains("bool ∼ int") && s.contains("true") && s.contains("E⟦int⟧"));
    }
}
