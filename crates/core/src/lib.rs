//! # semint-core
//!
//! Framework core for the *semantic soundness for language interoperability*
//! reproduction (Patterson, Mushtak, Wagner & Ahmed, PLDI 2022).
//!
//! The paper's framework has five steps (paper §2):
//!
//! 1. **Boundary syntax** — a language `A` embeds language-`B` code via a
//!    boundary form `⦇e⦈τ` ([`boundary`]).
//! 2. **Convertibility rules** — the designer declares `τA ∼ τB`, witnessed by
//!    target-level glue code `C_{τA↦τB}` and `C_{τB↦τA}` ([`convert`]).
//! 3. **Realizability models** — source types are interpreted as sets of
//!    *target* terms; the shared machinery (step indices, fuel, error codes)
//!    lives in [`fuel`], [`outcome`] and [`world`].
//! 4. **Soundness of conversions** — glue code maps `E⟦τA⟧` into `E⟦τB⟧`.
//! 5. **Soundness of the entire languages** — compatibility lemmas and the
//!    fundamental property, exercised in the per-case-study crates.
//!
//! This crate contains only the pieces shared by every case study: interned
//! variables, fresh-name generation, fuel/step budgets, machine outcomes and
//! error codes, the generic convertibility registry, boundary descriptors and
//! the step-index/world vocabulary used by the executable logical relations.
//!
//! ## Example
//!
//! ```
//! use semint_core::convert::{ConvertibilityRegistry, ConversionPair};
//!
//! // A toy registry whose "glue code" is just a label.
//! let mut reg: ConvertibilityRegistry<&'static str, &'static str, &'static str> =
//!     ConvertibilityRegistry::new();
//! reg.register("bool", "int", ConversionPair::new("id", "id"));
//! assert!(reg.convertible(&"bool", &"int"));
//! assert!(!reg.convertible(&"bool", &"array"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod case;
pub mod convert;
pub mod fresh;
pub mod fuel;
pub mod outcome;
pub mod pipeline;
pub mod stats;
pub mod symbol;
pub mod telemetry;
pub mod world;

pub use boundary::BoundaryDirection;
pub use case::{
    CaseStudy, CheckFailure, ConstructorClass, ConstructorWeights, GenProfile, Scenario,
};
pub use convert::{
    ConversionPair, ConversionScheme, ConvertibilityRegistry, GlueCache, GlueCacheStats,
};
pub use fresh::FreshGen;
pub use fuel::Fuel;
pub use outcome::{ErrorCode, Outcome};
pub use pipeline::{CompiledProgram, InteropPipeline, InteropSystem, PipelineError};
pub use stats::{CaseReport, OutcomeClass, RunStats, ScenarioRecord, StageTimings, SweepReport};
pub use symbol::Var;
pub use telemetry::{OpClass, VmCounters};
pub use world::StepIndex;
