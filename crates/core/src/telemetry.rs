//! Deterministic VM-level telemetry.
//!
//! Both target machines are deterministic, so instruction and allocation
//! counts are *digest-grade* facts: unlike wall-clock they are identical
//! across `--jobs`, `--batch`, and shard splits, and the harness test suite
//! holds them to that standard.  [`VmCounters`] is the cheap per-machine
//! accumulator — plain `u64`s bumped on the step loop, no atomics — flushed
//! into the scenario record when a run finishes and aggregated additively
//! (counts) or by maximum (high-water marks) up through
//! [`crate::stats::CaseReport`].

use std::fmt;

/// The opcode class an instruction retires under.
///
/// Every machine step is classified into exactly one of four buckets so a
/// sweep can answer "where do the steps go?" without a full trace:
///
/// * **Data** — value construction and destruction (literals, pairs,
///   projections, injections, primitives, array indexing/length).
/// * **Control** — branching and failure (`if`, `match`, `fail`, phantom
///   protection).
/// * **Fun** — binding and application (`let`, `λ` application, calls).
/// * **Heap** — anything that touches the store (alloc, read, write, free,
///   GC moves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Value construction/destruction.
    Data,
    /// Branching and failure.
    Control,
    /// Binding and application.
    Fun,
    /// Store operations.
    Heap,
}

/// Deterministic per-run machine counters.
///
/// Count fields aggregate by addition, high-water fields (`heap_peak_live`,
/// `stack_peak`) by maximum — both commutative and associative, so
/// aggregation order (worker interleaving, batch grouping, shard merge)
/// cannot change the result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmCounters {
    /// Instructions retired in the [`OpClass::Data`] class.
    pub instr_data: u64,
    /// Instructions retired in the [`OpClass::Control`] class.
    pub instr_control: u64,
    /// Instructions retired in the [`OpClass::Fun`] class.
    pub instr_fun: u64,
    /// Instructions retired in the [`OpClass::Heap`] class.
    pub instr_heap: u64,
    /// Source-level boundary crossings attributed to the run.
    ///
    /// Boundaries are erased by compilation (glue is ordinary target code),
    /// so the machines cannot observe them; the engine stamps this field
    /// from the scenario's static boundary count, which the determinism
    /// guarantee covers just the same.
    pub boundary_crossings: u64,
    /// Heap cells allocated over the whole run (GC'd + manual).
    pub heap_allocs: u64,
    /// Cells released over the run: manual `free`s plus cells reclaimed by
    /// GC sweeps.  Zero for reports read from files written before the
    /// arena heap landed.
    pub heap_frees: u64,
    /// Allocations served by recycling a freed slot from the heap's
    /// free list rather than growing the arena.  Zero for legacy files.
    pub heap_reuses: u64,
    /// Peak number of simultaneously live heap cells.
    pub heap_peak_live: u64,
    /// High-water mark of the continuation stack (LCVM) or value stack
    /// (StackLang), in entries.
    pub stack_peak: u64,
}

impl VmCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        VmCounters::default()
    }

    /// Retires one instruction in `class`.
    #[inline]
    pub fn retire(&mut self, class: OpClass) {
        match class {
            OpClass::Data => self.instr_data += 1,
            OpClass::Control => self.instr_control += 1,
            OpClass::Fun => self.instr_fun += 1,
            OpClass::Heap => self.instr_heap += 1,
        }
    }

    /// Raises the stack high-water mark to at least `depth`.
    #[inline]
    pub fn note_stack_depth(&mut self, depth: usize) {
        let depth = depth as u64;
        if depth > self.stack_peak {
            self.stack_peak = depth;
        }
    }

    /// Total instructions retired across all four classes.
    pub fn total_instrs(&self) -> u64 {
        self.instr_data + self.instr_control + self.instr_fun + self.instr_heap
    }

    /// Folds `other` into `self`: counts add, high-water marks take the max.
    ///
    /// This is the single aggregation rule used by scenario absorption,
    /// batch grouping, and shard merge, so all three agree exactly.
    pub fn absorb(&mut self, other: &VmCounters) {
        self.instr_data += other.instr_data;
        self.instr_control += other.instr_control;
        self.instr_fun += other.instr_fun;
        self.instr_heap += other.instr_heap;
        self.boundary_crossings += other.boundary_crossings;
        self.heap_allocs += other.heap_allocs;
        self.heap_frees += other.heap_frees;
        self.heap_reuses += other.heap_reuses;
        self.heap_peak_live = self.heap_peak_live.max(other.heap_peak_live);
        self.stack_peak = self.stack_peak.max(other.stack_peak);
    }

    /// True if every field is zero (e.g. a report deserialized from a file
    /// written before counters existed).
    pub fn is_zero(&self) -> bool {
        *self == VmCounters::default()
    }

    /// Stable `(key, value)` view of every field, in serialization order.
    ///
    /// The keys double as TSV row keys and JSON object keys, so writers and
    /// parsers cannot drift apart.
    pub fn fields(&self) -> [(&'static str, u64); 10] {
        [
            ("instr_data", self.instr_data),
            ("instr_control", self.instr_control),
            ("instr_fun", self.instr_fun),
            ("instr_heap", self.instr_heap),
            ("boundary_crossings", self.boundary_crossings),
            ("heap_allocs", self.heap_allocs),
            ("heap_frees", self.heap_frees),
            ("heap_reuses", self.heap_reuses),
            ("heap_peak_live", self.heap_peak_live),
            ("stack_peak", self.stack_peak),
        ]
    }

    /// Sets the field named `key` (as listed by [`VmCounters::fields`]) to
    /// `value`. Returns `false` if the key is unknown.
    pub fn set_field(&mut self, key: &str, value: u64) -> bool {
        match key {
            "instr_data" => self.instr_data = value,
            "instr_control" => self.instr_control = value,
            "instr_fun" => self.instr_fun = value,
            "instr_heap" => self.instr_heap = value,
            "boundary_crossings" => self.boundary_crossings = value,
            "heap_allocs" => self.heap_allocs = value,
            "heap_frees" => self.heap_frees = value,
            "heap_reuses" => self.heap_reuses = value,
            "heap_peak_live" => self.heap_peak_live = value,
            "stack_peak" => self.stack_peak = value,
            _ => return false,
        }
        true
    }
}

impl fmt::Display for VmCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instrs {} (data {} / control {} / fun {} / heap {}), \
             boundaries {}, allocs {}, frees {}, reuses {}, peak live {}, stack peak {}",
            self.total_instrs(),
            self.instr_data,
            self.instr_control,
            self.instr_fun,
            self.instr_heap,
            self.boundary_crossings,
            self.heap_allocs,
            self.heap_frees,
            self.heap_reuses,
            self.heap_peak_live,
            self.stack_peak,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(base: u64) -> VmCounters {
        VmCounters {
            instr_data: base,
            instr_control: base + 1,
            instr_fun: base + 2,
            instr_heap: base + 3,
            boundary_crossings: base + 4,
            heap_allocs: base + 5,
            heap_frees: base + 6,
            heap_reuses: base + 7,
            heap_peak_live: base + 8,
            stack_peak: base + 9,
        }
    }

    #[test]
    fn retire_buckets_by_class() {
        let mut c = VmCounters::new();
        c.retire(OpClass::Data);
        c.retire(OpClass::Data);
        c.retire(OpClass::Control);
        c.retire(OpClass::Fun);
        c.retire(OpClass::Heap);
        assert_eq!(c.instr_data, 2);
        assert_eq!(c.instr_control, 1);
        assert_eq!(c.instr_fun, 1);
        assert_eq!(c.instr_heap, 1);
        assert_eq!(c.total_instrs(), 5);
    }

    #[test]
    fn stack_depth_is_a_high_water_mark() {
        let mut c = VmCounters::new();
        c.note_stack_depth(3);
        c.note_stack_depth(7);
        c.note_stack_depth(2);
        assert_eq!(c.stack_peak, 7);
    }

    #[test]
    fn absorb_adds_counts_and_maxes_peaks() {
        let mut a = sample(10);
        let b = sample(100);
        a.absorb(&b);
        assert_eq!(a.instr_data, 110);
        assert_eq!(a.boundary_crossings, 118);
        assert_eq!(a.heap_allocs, 120);
        assert_eq!(a.heap_frees, 122, "frees add");
        assert_eq!(a.heap_reuses, 124, "reuses add");
        assert_eq!(a.heap_peak_live, 108, "peak is max, not sum");
        assert_eq!(a.stack_peak, 109, "peak is max, not sum");
    }

    #[test]
    fn absorb_is_commutative_and_associative() {
        let (x, y, z) = (sample(1), sample(50), sample(9));
        let mut left = x;
        left.absorb(&y);
        left.absorb(&z);
        let mut right = z;
        right.absorb(&x);
        let mut right2 = y;
        right2.absorb(&right);
        assert_eq!(left, right2, "aggregation order must not matter");
    }

    #[test]
    fn fields_round_trip_through_set_field() {
        let c = sample(42);
        let mut rebuilt = VmCounters::new();
        for (key, value) in c.fields() {
            assert!(rebuilt.set_field(key, value), "unknown key {key}");
        }
        assert_eq!(rebuilt, c);
        assert!(!rebuilt.set_field("not_a_counter", 1));
    }

    #[test]
    fn zero_detection() {
        assert!(VmCounters::new().is_zero());
        assert!(!sample(0).is_zero());
    }
}
