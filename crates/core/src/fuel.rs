//! Step budgets ("fuel") for executable step-indexed reasoning.
//!
//! The paper's realizability models are *step-indexed*: the expression
//! relation `E⟦τ⟧` only constrains executions of length `j < W.k`.  To make
//! the models executable we run every interpreter with an explicit budget.
//! Running out of budget is *not* an error — it corresponds exactly to the
//! "runs longer than the step index accounts for" escape clause of the
//! expression relations (Fig. 5, Fig. 10, Fig. 14).

/// A finite or infinite supply of evaluation steps.
///
/// ```
/// use semint_core::Fuel;
/// let mut fuel = Fuel::steps(2);
/// assert!(fuel.consume());
/// assert!(fuel.consume());
/// assert!(!fuel.consume());          // exhausted
/// assert!(Fuel::unlimited().consume());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fuel {
    /// A bounded budget of machine steps.
    Bounded {
        /// Steps remaining before the machine must stop.
        remaining: u64,
    },
    /// No bound; evaluation runs until it finishes or fails.
    Unlimited,
}

impl Fuel {
    /// A bounded budget of `n` steps.
    pub fn steps(n: u64) -> Self {
        Fuel::Bounded { remaining: n }
    }

    /// An unbounded budget.
    pub fn unlimited() -> Self {
        Fuel::Unlimited
    }

    /// Consumes one step. Returns `false` if the budget was already exhausted
    /// (in which case nothing is consumed and the machine must stop).
    pub fn consume(&mut self) -> bool {
        match self {
            Fuel::Unlimited => true,
            Fuel::Bounded { remaining } => {
                if *remaining == 0 {
                    false
                } else {
                    *remaining -= 1;
                    true
                }
            }
        }
    }

    /// Steps remaining, if bounded.
    pub fn remaining(&self) -> Option<u64> {
        match self {
            Fuel::Bounded { remaining } => Some(*remaining),
            Fuel::Unlimited => None,
        }
    }

    /// True if no further step may be taken.
    pub fn is_exhausted(&self) -> bool {
        matches!(self, Fuel::Bounded { remaining: 0 })
    }
}

impl Default for Fuel {
    /// A generous default budget suitable for tests and examples.
    fn default() -> Self {
        Fuel::steps(1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_fuel_counts_down() {
        let mut f = Fuel::steps(3);
        assert_eq!(f.remaining(), Some(3));
        assert!(f.consume());
        assert!(f.consume());
        assert!(f.consume());
        assert!(f.is_exhausted());
        assert!(!f.consume());
        assert_eq!(f.remaining(), Some(0));
    }

    #[test]
    fn unlimited_never_exhausts() {
        let mut f = Fuel::unlimited();
        for _ in 0..10_000 {
            assert!(f.consume());
        }
        assert!(!f.is_exhausted());
        assert_eq!(f.remaining(), None);
    }

    #[test]
    fn default_is_bounded_and_large() {
        assert!(Fuel::default().remaining().unwrap() >= 100_000);
    }
}
