//! # semint-bench
//!
//! Workload builders shared by the Criterion benchmarks that reproduce the
//! paper's performance trade-off discussion (see `EXPERIMENTS.md` at the
//! workspace root for the experiment index E1–E9).
//!
//! The hand-shaped E1–E8 builders live in this module; the harness-sourced
//! E9 workloads (random well-typed scenario populations over all three case
//! studies, and the sweep engine itself) live in [`scenarios`].
//!
//! The paper has no numeric evaluation tables — its performance claims are
//! qualitative design arguments ("pointer sharing is free, proxies pay per
//! access, dynamic affine enforcement costs a guard per call, `gcmov` moves
//! without copying").  Each function here builds a parameterised workload
//! whose measured shape either confirms or refutes one of those claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenarios;

use affine_interop::syntax::{AffiExpr, AffiType, MlExpr, MlType};
use memgc_interop::syntax::{L3Expr, L3Type, PolyExpr, PolyType};
use reflang::syntax::{HlExpr, HlType, LlExpr, LlType};

/// E1: a RefLL program that shares one reference with RefHL and performs
/// `crossings` boundary round trips, each consisting of a RefHL write and a
/// RefLL read of the same cell.
pub fn shared_ref_workload(crossings: usize) -> LlExpr {
    // let cell = ref 0 in  (sum over i of ⦇(λr. r := b; …)⦈ interactions) ; !cell
    let mut body = LlExpr::deref(LlExpr::var("cell"));
    for i in 0..crossings {
        // Each iteration: cross into RefHL, write through the alias, come
        // back with an int, and add it to the running result.
        let hl_write = HlExpr::assign(
            HlExpr::boundary(LlExpr::var("cell"), HlType::ref_(HlType::Bool)),
            HlExpr::bool_(i % 2 == 0),
        );
        body = LlExpr::add(LlExpr::boundary(hl_write, LlType::Int), body);
    }
    LlExpr::app(
        LlExpr::lam("cell", LlType::ref_(LlType::Int), body),
        LlExpr::ref_(LlExpr::int(0)),
    )
}

/// E1 (proxy ablation): the same access pattern, but every crossing converts
/// the *contents* rather than sharing the pointer — the per-access cost the
/// paper attributes to guard/proxy-based designs.
pub fn proxied_ref_workload(crossings: usize) -> LlExpr {
    let mut body = LlExpr::deref(LlExpr::var("cell"));
    for i in 0..crossings {
        // Read the value, push it through bool∼int conversions in both
        // directions (a payload conversion per access), then write it back on
        // the RefLL side.
        let hl_read = HlExpr::if_(
            HlExpr::boundary(LlExpr::deref(LlExpr::var("cell")), HlType::Bool),
            HlExpr::bool_(i % 2 == 0),
            HlExpr::bool_(i % 2 == 1),
        );
        let write_back =
            LlExpr::assign(LlExpr::var("cell"), LlExpr::boundary(hl_read, LlType::Int));
        body = LlExpr::add(write_back, body);
    }
    LlExpr::app(
        LlExpr::lam("cell", LlType::ref_(LlType::Int), body),
        LlExpr::ref_(LlExpr::int(0)),
    )
}

/// E2: convert `count` sum values RefHL → RefLL (each conversion re-tags the
/// payload and rebuilds a two-element array).
pub fn sum_conversion_workload(count: usize) -> LlExpr {
    let sum_ty = HlType::sum(HlType::Bool, HlType::Bool);
    let mut body = LlExpr::int(0);
    for i in 0..count {
        let hl_sum = if i % 2 == 0 {
            HlExpr::inl(HlExpr::bool_(true), sum_ty.clone())
        } else {
            HlExpr::inr(HlExpr::bool_(false), sum_ty.clone())
        };
        let crossed = LlExpr::index(
            LlExpr::boundary(hl_sum, LlType::array(LlType::Int)),
            LlExpr::int(0),
        );
        body = LlExpr::add(crossed, body);
    }
    body
}

/// E2 baseline: the same amount of arithmetic with no boundaries at all.
pub fn sum_conversion_baseline(count: usize) -> LlExpr {
    let mut body = LlExpr::int(0);
    for i in 0..count {
        body = LlExpr::add(LlExpr::int((i % 2) as i64), body);
    }
    body
}

/// E3: a chain of `calls` affine identity applications, all *static* arrows
/// (no runtime enforcement).
pub fn static_affine_chain(calls: usize) -> AffiExpr {
    let mut expr = AffiExpr::int(1);
    for i in 0..calls {
        let v = format!("s{i}");
        expr = AffiExpr::app(
            AffiExpr::lam_static(v.as_str(), AffiType::Int, AffiExpr::avar_static(v.as_str())),
            expr,
        );
    }
    expr
}

/// E3: the same chain with *dynamic* arrows — one guard allocation and one
/// forced thunk per call (this is also the "simple Affi" ablation of the
/// paper's footnote 2, where every affine binding pays the dynamic cost).
pub fn dynamic_affine_chain(calls: usize) -> AffiExpr {
    let mut expr = AffiExpr::int(1);
    for i in 0..calls {
        let v = format!("d{i}");
        expr = AffiExpr::app(
            AffiExpr::lam(v.as_str(), AffiType::Int, AffiExpr::avar(v.as_str())),
            expr,
        );
    }
    expr
}

/// E3: cross-boundary variant — each call goes through MiniML via the
/// `𝜏1 ⊸ 𝜏2 ∼ (unit → τ1) → τ2` conversion.
pub fn cross_boundary_affine_chain(calls: usize) -> MlExpr {
    let thunked = MlType::fun(MlType::fun(MlType::Unit, MlType::Int), MlType::Int);
    let mut expr = MlExpr::int(1);
    for i in 0..calls {
        let v = format!("b{i}");
        let affi_identity = AffiExpr::lam(v.as_str(), AffiType::Int, AffiExpr::avar(v.as_str()));
        // MiniML calls the converted function with a thunk returning the
        // accumulated expression.
        expr = MlExpr::app(
            MlExpr::boundary(affi_identity, thunked.clone()),
            MlExpr::lam("_", MlType::Unit, expr),
        );
    }
    expr
}

/// E5: an L3 value of `depth` nested tensor pairs of booleans (the payload
/// transferred across the memory-management boundary).
pub fn l3_nested_payload(depth: usize) -> (L3Expr, L3Type) {
    let mut expr = L3Expr::bool_(true);
    let mut ty = L3Type::Bool;
    for _ in 0..depth {
        expr = L3Expr::pair(expr, L3Expr::bool_(false));
        ty = L3Type::tensor(ty, L3Type::Bool);
    }
    (expr, ty)
}

/// E5: the matching MiniML payload type for [`l3_nested_payload`].
pub fn ml_nested_payload_type(depth: usize) -> PolyType {
    let mut ty = PolyType::Int;
    for _ in 0..depth {
        ty = PolyType::prod(ty, PolyType::Int);
    }
    ty
}

/// E5: transfer workload L3 → MiniML: allocate the nested payload manually in
/// L3, transfer it with `gcmov`, and read it in MiniML.
pub fn transfer_to_ml_workload(depth: usize) -> PolyExpr {
    let (payload, _) = l3_nested_payload(depth);
    PolyExpr::deref(PolyExpr::boundary(
        L3Expr::new(payload),
        PolyType::ref_(ml_nested_payload_type(depth)),
    ))
}

/// E5: the opposite direction, which must copy: MiniML allocates, L3 receives
/// a fresh manual cell and frees it.
pub fn transfer_to_l3_workload(depth: usize) -> L3Expr {
    let mut ml_payload = PolyExpr::int(1);
    let mut l3_ty = L3Type::Bool;
    for _ in 0..depth {
        ml_payload = PolyExpr::pair(ml_payload, PolyExpr::int(0));
        l3_ty = L3Type::tensor(l3_ty, L3Type::Bool);
    }
    L3Expr::free(L3Expr::boundary(
        PolyExpr::ref_(ml_payload),
        L3Type::ref_like(l3_ty),
    ))
}

/// E6: allocate `n` GC'd cells (every `keep_every`-th one is read twice, the
/// rest once — all become garbage quickly), then finish with an L3 allocation
/// whose compilation explicitly invokes the collector over that garbage.
pub fn gc_pressure_workload(n: usize, keep_every: usize) -> PolyExpr {
    let mut acc = PolyExpr::int(0);
    for i in 0..n {
        let cell = PolyExpr::ref_(PolyExpr::int(i as i64));
        let use_it = if keep_every != 0 && i % keep_every == 0 {
            PolyExpr::add(PolyExpr::deref(cell.clone()), PolyExpr::deref(cell))
        } else {
            PolyExpr::deref(cell)
        };
        acc = PolyExpr::add(acc, use_it);
    }
    // Finish with an L3 allocation, whose compilation calls the GC.
    PolyExpr::add(
        acc,
        PolyExpr::deref(PolyExpr::boundary(
            L3Expr::new(L3Expr::bool_(true)),
            PolyType::ref_(PolyType::Int),
        )),
    )
}

/// E6 (manual-management ablation): the same allocation count handled
/// entirely by L3 `new`/`free`, which never leaves garbage behind.
pub fn manual_pressure_workload(n: usize) -> L3Expr {
    let mut e = L3Expr::bool_(true);
    for _ in 0..n {
        e = L3Expr::if_(
            L3Expr::free(L3Expr::new(e)),
            L3Expr::bool_(true),
            L3Expr::bool_(false),
        );
    }
    e
}

/// E7: a pure-arithmetic RefLL expression of `size` additions (StackLang
/// interpreter baseline).
pub fn stacklang_arith_workload(size: usize) -> LlExpr {
    let mut e = LlExpr::int(1);
    for i in 0..size {
        e = LlExpr::add(e, LlExpr::int(i as i64));
    }
    e
}

/// E7: a pure-arithmetic MiniML expression of `size` additions (LCVM
/// interpreter baseline).
pub fn lcvm_arith_workload(size: usize) -> MlExpr {
    let mut e = MlExpr::int(1);
    for i in 0..size {
        e = MlExpr::add(e, MlExpr::int(i as i64));
    }
    e
}

/// E7: a closure-heavy workload (`size` nested applications) for each target.
pub fn lcvm_closure_workload(size: usize) -> MlExpr {
    let mut e = MlExpr::int(0);
    for i in 0..size {
        let v = format!("c{i}");
        e = MlExpr::app(
            MlExpr::lam(
                v.as_str(),
                MlType::Int,
                MlExpr::add(MlExpr::var(v.as_str()), MlExpr::int(1)),
            ),
            e,
        );
    }
    e
}

/// E7: the same closure-heavy workload for RefLL / StackLang.
pub fn stacklang_closure_workload(size: usize) -> LlExpr {
    let mut e = LlExpr::int(0);
    for i in 0..size {
        let v = format!("c{i}");
        e = LlExpr::app(
            LlExpr::lam(
                v.as_str(),
                LlType::Int,
                LlExpr::add(LlExpr::var(v.as_str()), LlExpr::int(1)),
            ),
            e,
        );
    }
    e
}

/// E8: a RefHL type of the given nesting depth, used to scale the cost of a
/// model-membership check.
pub fn deep_hl_type(depth: usize) -> HlType {
    let mut ty = HlType::Bool;
    for i in 0..depth {
        ty = if i % 2 == 0 {
            HlType::prod(ty, HlType::Bool)
        } else {
            HlType::sum(ty, HlType::Unit)
        };
    }
    ty
}

#[cfg(test)]
mod tests {
    use super::*;
    use affine_interop::multilang::AffineMultiLang;
    use memgc_interop::multilang::MemGcMultiLang;
    use sharedmem::convert::SharedMemConversions;
    use sharedmem::multilang::MultiLang;

    #[test]
    fn all_workloads_typecheck_and_run_safely() {
        let sm = MultiLang::new(SharedMemConversions::standard());
        for n in [0, 1, 4] {
            assert!(sm
                .run_ll(&shared_ref_workload(n))
                .unwrap()
                .outcome
                .is_safe());
            assert!(sm
                .run_ll(&proxied_ref_workload(n))
                .unwrap()
                .outcome
                .is_safe());
            assert!(sm
                .run_ll(&sum_conversion_workload(n))
                .unwrap()
                .outcome
                .is_safe());
            assert!(sm
                .run_ll(&sum_conversion_baseline(n))
                .unwrap()
                .outcome
                .is_safe());
            assert!(sm
                .run_ll(&stacklang_arith_workload(n))
                .unwrap()
                .outcome
                .is_safe());
            assert!(sm
                .run_ll(&stacklang_closure_workload(n))
                .unwrap()
                .outcome
                .is_safe());
        }
        let af = AffineMultiLang::new();
        for n in [1, 4] {
            assert!(af.run_affi(&static_affine_chain(n)).unwrap().halt.is_safe());
            assert!(af
                .run_affi(&dynamic_affine_chain(n))
                .unwrap()
                .halt
                .is_safe());
            assert!(af
                .run_ml(&cross_boundary_affine_chain(n))
                .unwrap()
                .halt
                .is_safe());
            assert!(af.run_ml(&lcvm_arith_workload(n)).unwrap().halt.is_safe());
            assert!(af.run_ml(&lcvm_closure_workload(n)).unwrap().halt.is_safe());
        }
        let mg = MemGcMultiLang::new();
        for d in [0, 2] {
            assert!(mg
                .run_ml(&transfer_to_ml_workload(d))
                .unwrap()
                .halt
                .is_safe());
            assert!(mg
                .run_l3(&transfer_to_l3_workload(d))
                .unwrap()
                .halt
                .is_safe());
        }
        assert!(mg
            .run_ml(&gc_pressure_workload(6, 3))
            .unwrap()
            .halt
            .is_safe());
        assert!(mg
            .run_l3(&manual_pressure_workload(4))
            .unwrap()
            .halt
            .is_safe());
    }

    #[test]
    fn enforcement_chains_have_the_expected_guard_counts() {
        let af = AffineMultiLang::new();
        let s = af.compile_affi(&static_affine_chain(10)).unwrap();
        let d = af.compile_affi(&dynamic_affine_chain(10)).unwrap();
        assert_eq!(s.dynamic_guards, 0);
        assert_eq!(d.dynamic_guards, 10);
    }

    #[test]
    fn deep_types_grow_linearly() {
        assert_eq!(deep_hl_type(0), HlType::Bool);
        let t = deep_hl_type(6);
        assert!(t.to_string().len() > 20);
    }
}
