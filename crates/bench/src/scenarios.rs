//! Harness-sourced workloads (experiment E9).
//!
//! The E1–E8 builders in the crate root are *hand-shaped*: each one isolates
//! a single cost the paper talks about.  This module is the complementary
//! sampling strategy — programs are sourced through the `semint-harness`
//! scenario engine, so the measured distribution is the same type-directed
//! random population the property suites and `semint sweep` exercise, and
//! every workload automatically covers all three case studies.

use semint_core::case::{CaseStudy, GenProfile};
use semint_core::stats::SweepReport;
use semint_harness::cases::{AnyCase, AnyProgram};
use semint_harness::engine::{sweep_all, SweepConfig};
use semint_harness::source::SeedRange;
use semint_harness::Scenario;

/// The generation profile every E9 workload uses (kept fixed so bench
/// numbers are comparable across runs).
pub fn scenario_profile() -> GenProfile {
    GenProfile::standard()
}

/// The deep-type profile behind the E11 experiment: source types of depth
/// ≥ 4, which puts compound-glue derivation on the sweep's critical path.
pub fn deep_profile() -> GenProfile {
    GenProfile::deep()
}

/// The generated scenarios for `case` over `seeds`, in seed order.
pub fn generated_scenarios(
    case: &AnyCase,
    seeds: std::ops::Range<u64>,
) -> Vec<Scenario<AnyProgram, <AnyCase as CaseStudy>::Ty>> {
    let profile = scenario_profile();
    seeds.map(|seed| case.generate(seed, &profile)).collect()
}

/// The generated programs for `case` over `seeds` (interpreter-bench food).
pub fn generated_programs(case: &AnyCase, seeds: std::ops::Range<u64>) -> Vec<AnyProgram> {
    generated_scenarios(case, seeds)
        .into_iter()
        .map(|s| s.program)
        .collect()
}

fn sweep_with(
    seed_count: u64,
    jobs: usize,
    model_check: bool,
    time: bool,
    profile: GenProfile,
) -> SweepReport {
    let cases = AnyCase::all(false);
    let source = SeedRange::new(0, seed_count).expect("bench ranges are non-empty");
    let cfg = SweepConfig {
        jobs,
        profile,
        model_check,
        time,
        ..SweepConfig::default()
    };
    sweep_all(&cases, &source, &cfg)
}

/// One full harness sweep over all three case studies — the engine-level
/// workload measured by the E9 throughput benchmark.
pub fn harness_sweep(seed_count: u64, jobs: usize, model_check: bool) -> SweepReport {
    sweep_with(seed_count, jobs, model_check, false, scenario_profile())
}

/// Like [`harness_sweep`], but collecting per-stage wall-clock totals — the
/// workload behind the E10 glue-cache experiment (`semint sweep --time`).
pub fn harness_sweep_timed(seed_count: u64, jobs: usize, model_check: bool) -> SweepReport {
    sweep_with(seed_count, jobs, model_check, true, scenario_profile())
}

/// A timed sweep over the `deep` profile — the E11 workload (`semint bench
/// --profile deep`), where compound glue derivation is hot enough for the
/// cache to show up in whole-sweep wall clock.
pub fn deep_sweep_timed(seed_count: u64, jobs: usize) -> SweepReport {
    sweep_with(seed_count, jobs, false, true, deep_profile())
}

/// A timed, model-checked sweep over the `deep` profile — the E12 workload
/// (`semint bench --profile deep --model-check`).  Before PR 4 this was the
/// worst case for redundant early stages (the model check recompiled every
/// scenario on top of the run stage's internal compile); with the
/// artifact-threaded pipeline each scenario is typechecked once and
/// compiled once however many stages consume it.
pub fn deep_sweep_checked(seed_count: u64, jobs: usize) -> SweepReport {
    sweep_with(seed_count, jobs, true, true, deep_profile())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_cover_all_cases_and_run_safely() {
        for case in AnyCase::all(false) {
            let programs = generated_programs(&case, 0..12);
            assert_eq!(programs.len(), 12);
            for program in &programs {
                let report = case
                    .run(program, semint_core::Fuel::steps(200_000))
                    .unwrap_or_else(|e| panic!("{}: {e}", case.name()));
                assert!(case.stats(&report).outcome.is_safe(), "{}", case.name());
            }
        }
    }

    #[test]
    fn harness_sweep_is_clean_and_deterministic() {
        let a = harness_sweep(16, 2, false);
        let b = harness_sweep(16, 4, false);
        assert_eq!(a.scenarios(), 48);
        assert_eq!(a.failure_count(), 0);
        let digests = |r: &SweepReport| r.cases.iter().map(|c| c.digest()).collect::<Vec<_>>();
        assert_eq!(digests(&a), digests(&b));
    }

    #[test]
    fn timed_sweep_collects_stage_totals_and_cache_counters() {
        let report = harness_sweep_timed(12, 2, false);
        assert_eq!(report.failure_count(), 0);
        for case in &report.cases {
            let timings = case.timings.expect("timed sweep records timings");
            assert!(timings.total_ns() > 0, "{}", case.case);
            assert!(
                case.glue_hits + case.glue_misses > 0,
                "{} derived no glue at all",
                case.case
            );
        }
    }

    #[test]
    fn deep_sweep_is_clean_and_exercises_the_cache() {
        let report = deep_sweep_timed(12, 2);
        assert_eq!(report.failure_count(), 0);
        for case in &report.cases {
            assert!(
                case.glue_hits + case.glue_misses > 0,
                "{} derived no glue at all",
                case.case
            );
        }
    }

    #[test]
    fn checked_deep_sweep_is_clean_and_times_every_stage() {
        let report = deep_sweep_checked(10, 2);
        assert_eq!(report.failure_count(), 0);
        // Digest parity with the unchecked sweep of the same seeds: the
        // model-check stage must not perturb results.
        let unchecked = deep_sweep_timed(10, 2);
        for (case, other) in report.cases.iter().zip(&unchecked.cases) {
            let timings = case.timings.expect("timed sweep records timings");
            assert!(timings.model_check_ns > 0, "{}", case.case);
            assert!(timings.compile_ns > 0, "{}", case.case);
            assert_eq!(case.digest(), other.digest());
        }
    }
}
