//! E8 — cost of executable model checking.
//!
//! The framework's practicality as a *design-time tool* depends on how fast
//! the bounded model membership and convertibility-soundness checks run.
//! This experiment sweeps the size of the checked type and benchmarks the
//! Lemma 3.1 checker on every registered §3 rule shape.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use reflang::syntax::{HlType, LlType};
use semint_bench::deep_hl_type;
use sharedmem::model::{ModelChecker, SemType, World};
use stacklang::Heap;

fn bench_model_checks(c: &mut Criterion) {
    let checker = ModelChecker::default();

    let mut group = c.benchmark_group("E8_model_membership_vs_type_size");
    for depth in [1usize, 4, 8, 12] {
        let ty = deep_hl_type(depth);
        let world = World::new(10_000);
        let samples = checker.sample_values(&SemType::Hl(ty.clone()), 2);
        group.bench_with_input(
            BenchmarkId::new("value_membership", depth),
            &samples,
            |b, vs| {
                b.iter(|| {
                    vs.iter()
                        .filter(|v| {
                            checker.value_in(&world, &Heap::new(), v, &SemType::Hl(ty.clone()))
                        })
                        .count()
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("E8_convertibility_soundness_checks");
    let rules = [
        ("bool_int", HlType::Bool, LlType::Int),
        (
            "ref_bool_ref_int",
            HlType::ref_(HlType::Bool),
            LlType::ref_(LlType::Int),
        ),
        (
            "sum_int_array",
            HlType::sum(HlType::Bool, HlType::Bool),
            LlType::array(LlType::Int),
        ),
        (
            "prod_int_array",
            HlType::prod(HlType::Bool, HlType::Unit),
            LlType::array(LlType::Int),
        ),
    ];
    for (name, hl, ll) in rules {
        group.bench_function(BenchmarkId::new("lemma_3_1", name), |b| {
            b.iter(|| checker.check_convertibility(&hl, &ll).expect("sound"))
        });
    }
    group.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench_model_checks(&mut c);
    c.final_summary();
}

criterion_main!(benches);
