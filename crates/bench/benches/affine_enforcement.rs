//! E3 — §4 static vs dynamic affine enforcement.
//!
//! Claim: the two-arrow design means Affi-internal code (static arrow) pays
//! nothing at runtime, dynamic-arrow calls pay one guard allocation + one
//! forced thunk each, and fully cross-boundary calls additionally pay the
//! Fig. 9 wrappers.  The all-dynamic chain is also the paper's footnote-2
//! ablation (a simple Affi without the ⊸/⊸• distinction).

mod common;

use affine_interop::multilang::AffineMultiLang;
use criterion::{criterion_main, BenchmarkId, Criterion};
use lcvm::Machine;
use semint_bench::{cross_boundary_affine_chain, dynamic_affine_chain, static_affine_chain};
use semint_core::Fuel;

fn bench_enforcement(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_affine_enforcement");
    let sys = AffineMultiLang::new();
    for calls in [1usize, 8, 32, 128] {
        let static_prog = sys.compile_affi(&static_affine_chain(calls)).unwrap().expr;
        let dynamic_prog = sys.compile_affi(&dynamic_affine_chain(calls)).unwrap().expr;
        let boundary_prog = sys
            .compile_ml(&cross_boundary_affine_chain(calls))
            .unwrap()
            .expr;

        group.bench_with_input(
            BenchmarkId::new("static_arrow", calls),
            &static_prog,
            |b, p| b.iter(|| Machine::run_expr(p.clone(), Fuel::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("dynamic_arrow", calls),
            &dynamic_prog,
            |b, p| b.iter(|| Machine::run_expr(p.clone(), Fuel::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("cross_boundary", calls),
            &boundary_prog,
            |b, p| b.iter(|| Machine::run_expr(p.clone(), Fuel::default())),
        );
    }
    group.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench_enforcement(&mut c);
    c.final_summary();
}

criterion_main!(benches);
