//! E4 — §4 the cost of one dynamic guard.
//!
//! Claim: the guard inserted by `thunk(·)` costs one reference allocation at
//! creation and one read + one write per (single) forcing.  The benchmark
//! compares a raw call, a guarded call, and guard creation that is never
//! forced, so EXPERIMENTS.md can report the per-guard overhead in machine
//! steps as well as wall-clock time.

mod common;

use affine_interop::compile::thunk_guard;
use criterion::{criterion_main, Criterion};
use lcvm::{Expr, Machine};
use semint_core::Fuel;

fn raw_call() -> Expr {
    // (λx. x + 1) 41
    Expr::app(
        Expr::lam("x", Expr::add(Expr::var("x"), Expr::int(1))),
        Expr::int(41),
    )
}

fn guarded_call() -> Expr {
    // let t = thunk(41) in (λx. x + 1) (t ())
    Expr::let_(
        "t",
        thunk_guard(Expr::int(41)),
        Expr::app(
            Expr::lam("x", Expr::add(Expr::var("x"), Expr::int(1))),
            Expr::app(Expr::var("t"), Expr::unit()),
        ),
    )
}

fn guard_never_forced() -> Expr {
    Expr::seq(thunk_guard(Expr::int(41)), Expr::int(42))
}

fn bench_guard(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_guard_overhead");
    group.bench_function("raw_call", |b| {
        let p = raw_call();
        b.iter(|| Machine::run_expr(p.clone(), Fuel::default()))
    });
    group.bench_function("guarded_call", |b| {
        let p = guarded_call();
        b.iter(|| Machine::run_expr(p.clone(), Fuel::default()))
    });
    group.bench_function("guard_created_never_forced", |b| {
        let p = guard_never_forced();
        b.iter(|| Machine::run_expr(p.clone(), Fuel::default()))
    });
    group.finish();

    // Step counts are deterministic; print them once so the report can quote
    // the overhead in machine steps.
    let raw = Machine::run_expr(raw_call(), Fuel::default()).steps;
    let guarded = Machine::run_expr(guarded_call(), Fuel::default()).steps;
    let unforced = Machine::run_expr(guard_never_forced(), Fuel::default()).steps;
    println!("E4 machine steps: raw={raw}, guarded={guarded}, guard_never_forced={unforced}");
}

fn benches() {
    let mut c = common::criterion();
    bench_guard(&mut c);
    c.final_summary();
}

criterion_main!(benches);
