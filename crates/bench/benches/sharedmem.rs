//! E1 — §3 reference-passing strategies.
//!
//! Claim (paper §3 + Discussion): passing a `ref bool`/`ref int` pointer
//! across the boundary is free (a no-op conversion), copy-converting breaks
//! aliasing and pays per crossing, and proxy-style designs pay per *access*.
//! The benchmark sweeps the number of boundary crossings and measures the
//! compiled program's runtime under each strategy.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use semint_bench::{proxied_ref_workload, shared_ref_workload};
use sharedmem::convert::{RefStrategy, SharedMemConversions};
use sharedmem::multilang::MultiLang;
use stacklang::{Fuel, Machine};

fn bench_ref_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_shared_memory_ref_strategies");
    for crossings in [1usize, 8, 32, 128] {
        let share = MultiLang::new(SharedMemConversions::standard());
        let copy = MultiLang::new(SharedMemConversions::with_ref_strategy(RefStrategy::Copy));

        let shared_prog = share
            .compile_ll(&shared_ref_workload(crossings))
            .unwrap()
            .program;
        let copied_prog = copy
            .compile_ll(&shared_ref_workload(crossings))
            .unwrap()
            .program;
        let proxied_prog = share
            .compile_ll(&proxied_ref_workload(crossings))
            .unwrap()
            .program;

        group.bench_with_input(
            BenchmarkId::new("share_pointer", crossings),
            &shared_prog,
            |b, p| b.iter(|| Machine::run_program(p.clone(), Fuel::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("copy_convert", crossings),
            &copied_prog,
            |b, p| b.iter(|| Machine::run_program(p.clone(), Fuel::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("convert_per_access", crossings),
            &proxied_prog,
            |b, p| b.iter(|| Machine::run_program(p.clone(), Fuel::default())),
        );
    }
    group.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench_ref_strategies(&mut c);
    c.final_summary();
}

criterion_main!(benches);
