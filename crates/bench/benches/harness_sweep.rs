//! E9: the unified scenario engine as a workload.
//!
//! Two questions: (a) what throughput does the parallel batch runner get out
//! of extra worker threads (the work-stealing pool should scale until the
//! per-scenario cost is dwarfed by queue traffic), and (b) how expensive are
//! harness-generated random programs to run, per case study, compared to the
//! hand-shaped E1–E8 workloads.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use semint_bench::scenarios::{generated_programs, harness_sweep};
use semint_core::case::CaseStudy;
use semint_core::Fuel;
use semint_harness::cases::AnyCase;

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_engine_throughput");
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("sweep_48_scenarios_run_only", jobs),
            &jobs,
            |b, &j| b.iter(|| harness_sweep(16, j, false)),
        );
        group.bench_with_input(
            BenchmarkId::new("sweep_48_scenarios_model_check", jobs),
            &jobs,
            |b, &j| b.iter(|| harness_sweep(16, j, true)),
        );
    }
    group.finish();
}

fn bench_generated_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_generated_workloads");
    for case in AnyCase::all(false) {
        let programs = generated_programs(&case, 0..24);
        group.bench_with_input(
            BenchmarkId::new("run_24_programs", case.name()),
            &programs,
            |b, ps| {
                b.iter(|| {
                    for p in ps {
                        let report = case
                            .run(p, Fuel::steps(200_000))
                            .expect("generated programs run");
                        assert!(case.stats(&report).outcome.is_safe());
                    }
                })
            },
        );
    }
    group.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench_engine_throughput(&mut c);
    bench_generated_workloads(&mut c);
    c.final_summary();
}

criterion_main!(benches);
