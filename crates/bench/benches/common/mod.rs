//! Shared Criterion configuration for the experiment suite.
//!
//! All benchmarks run compiled target programs through the interpreters, so
//! absolute numbers are interpreter-bound; what matters (and what
//! EXPERIMENTS.md records) is the *relative shape* between the compared
//! strategies.  The configuration keeps each group short so the whole suite
//! finishes in a couple of minutes.

use criterion::Criterion;
use std::time::Duration;

/// The Criterion instance used by every experiment.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .configure_from_args()
}
