//! E5 — §5 ownership transfer vs copying.
//!
//! Claim: moving an L3-owned cell to MiniML is O(conversion of the contents)
//! plus a constant-time `gcmov` — the cell itself is never copied — whereas
//! the MiniML → L3 direction must allocate a fresh manual cell and copy.  The
//! benchmark sweeps the size of the transferred payload.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use lcvm::Machine;
use memgc_interop::multilang::MemGcMultiLang;
use semint_bench::{transfer_to_l3_workload, transfer_to_ml_workload};
use semint_core::Fuel;

fn bench_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_ownership_transfer");
    let sys = MemGcMultiLang::new();
    for depth in [0usize, 4, 16, 64] {
        let to_ml = sys.compile_ml(&transfer_to_ml_workload(depth)).unwrap();
        let to_l3 = sys.compile_l3(&transfer_to_l3_workload(depth)).unwrap();
        group.bench_with_input(BenchmarkId::new("l3_to_ml_gcmov", depth), &to_ml, |b, p| {
            b.iter(|| Machine::run_expr(p.clone(), Fuel::default()))
        });
        group.bench_with_input(BenchmarkId::new("ml_to_l3_copy", depth), &to_l3, |b, p| {
            b.iter(|| Machine::run_expr(p.clone(), Fuel::default()))
        });
    }
    group.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench_transfer(&mut c);
    c.final_summary();
}

criterion_main!(benches);
