//! E7 — target-interpreter baselines.
//!
//! Both targets are interpreters written for semantic fidelity, not speed;
//! this experiment records their raw throughput on arithmetic- and
//! closure-heavy workloads so that the factors reported by E1–E6 can be read
//! relative to a common baseline.

mod common;

use affine_interop::multilang::AffineMultiLang;
use criterion::{criterion_main, BenchmarkId, Criterion};
use semint_bench::{
    lcvm_arith_workload, lcvm_closure_workload, stacklang_arith_workload,
    stacklang_closure_workload,
};
use semint_core::Fuel;
use sharedmem::convert::SharedMemConversions;
use sharedmem::multilang::MultiLang;

fn bench_targets(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_target_baselines");
    let sm = MultiLang::new(SharedMemConversions::standard());
    let af = AffineMultiLang::new();
    for size in [16usize, 64, 256] {
        let stack_arith = sm
            .compile_ll(&stacklang_arith_workload(size))
            .unwrap()
            .program;
        let stack_clo = sm
            .compile_ll(&stacklang_closure_workload(size))
            .unwrap()
            .program;
        let lcvm_arith = af.compile_ml(&lcvm_arith_workload(size)).unwrap().expr;
        let lcvm_clo = af.compile_ml(&lcvm_closure_workload(size)).unwrap().expr;

        group.bench_with_input(
            BenchmarkId::new("stacklang_arith", size),
            &stack_arith,
            |b, p| b.iter(|| stacklang::Machine::run_program(p.clone(), Fuel::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("stacklang_closures", size),
            &stack_clo,
            |b, p| b.iter(|| stacklang::Machine::run_program(p.clone(), Fuel::default())),
        );
        group.bench_with_input(BenchmarkId::new("lcvm_arith", size), &lcvm_arith, |b, p| {
            b.iter(|| lcvm::Machine::run_expr(p.clone(), Fuel::default()))
        });
        group.bench_with_input(
            BenchmarkId::new("lcvm_closures", size),
            &lcvm_clo,
            |b, p| b.iter(|| lcvm::Machine::run_expr(p.clone(), Fuel::default())),
        );
    }
    group.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench_targets(&mut c);
    c.final_summary();
}

criterion_main!(benches);
