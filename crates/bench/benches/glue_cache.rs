//! E10 — memoized glue derivation (`semint_core::convert::GlueCache`).
//!
//! Claim: structural derivation of compound glue is recursive and allocates
//! fresh target code at every level, so repeated boundary crossings at the
//! same type pair re-pay the full cost; the shared `ConversionScheme` layer
//! memoizes each pair, making every derivation after the first O(1).  The
//! benchmark derives the same deep compound pair repeatedly against a warm
//! cache vs. a cold rule set per derivation, in all three case studies, and
//! compares the convertibility oracle's warm probe-only fast path against a
//! full cold derivation.

mod common;

use affine_interop::convert::AffineConversions;
use affine_interop::{AffiType, MlType};
use criterion::{criterion_main, BenchmarkId, Criterion};
use memgc_interop::convert::MemGcConversions;
use memgc_interop::{L3Type, PolyType};
use reflang::syntax::{HlType, LlType};
use semint_core::convert::ConversionScheme;
use sharedmem::convert::SharedMemConversions;

/// A §3 pair of the given nesting depth (products over `bool ∼ int`).
fn sharedmem_pair(depth: usize) -> (HlType, LlType) {
    let mut hl = HlType::sum(HlType::Bool, HlType::Unit);
    let mut ll = LlType::array(LlType::Int);
    for _ in 0..depth {
        hl = HlType::prod(hl.clone(), hl);
        ll = LlType::array(ll);
    }
    (hl, ll)
}

/// A §4 pair of the given depth (tensors under a dynamic lolli).
fn affine_pair(depth: usize) -> (AffiType, MlType) {
    let mut affi = AffiType::Int;
    let mut ml = MlType::Int;
    for _ in 0..depth {
        affi = AffiType::tensor(affi.clone(), affi);
        ml = MlType::prod(ml.clone(), ml);
    }
    (
        AffiType::lolli(affi.clone(), affi),
        MlType::fun(MlType::fun(MlType::Unit, ml.clone()), ml),
    )
}

/// A §5 pair of the given depth (tensors under a banged lolli).
fn memgc_pair(depth: usize) -> (PolyType, L3Type) {
    let mut ml = PolyType::Int;
    let mut l3 = L3Type::Bool;
    for _ in 0..depth {
        ml = PolyType::prod(ml.clone(), ml);
        l3 = L3Type::tensor(l3.clone(), l3);
    }
    (
        PolyType::fun(ml.clone(), ml),
        L3Type::bang(L3Type::lolli(L3Type::bang(l3.clone()), l3)),
    )
}

fn bench_glue_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_glue_derivation_memoization");
    for depth in [2usize, 4, 6] {
        let (hl, ll) = sharedmem_pair(depth);
        let warm = SharedMemConversions::standard();
        warm.derive(&hl, &ll).expect("derivable");
        group.bench_with_input(
            BenchmarkId::new("sharedmem_warm_cache", depth),
            &depth,
            |b, _| b.iter(|| warm.derive(&hl, &ll)),
        );
        group.bench_with_input(
            BenchmarkId::new("sharedmem_cold_per_derivation", depth),
            &depth,
            |b, _| b.iter(|| SharedMemConversions::standard().derive(&hl, &ll)),
        );

        let (affi, ml) = affine_pair(depth);
        let warm = AffineConversions::standard();
        warm.derive(&affi, &ml).expect("derivable");
        group.bench_with_input(
            BenchmarkId::new("affine_warm_cache", depth),
            &depth,
            |b, _| b.iter(|| warm.derive(&affi, &ml)),
        );
        group.bench_with_input(
            BenchmarkId::new("affine_cold_per_derivation", depth),
            &depth,
            |b, _| b.iter(|| AffineConversions::standard().derive(&affi, &ml)),
        );

        let (poly, l3) = memgc_pair(depth);
        let warm = MemGcConversions::standard();
        warm.derive(&poly, &l3).expect("derivable");
        group.bench_with_input(
            BenchmarkId::new("memgc_warm_cache", depth),
            &depth,
            |b, _| b.iter(|| warm.derive(&poly, &l3)),
        );
        group.bench_with_input(
            BenchmarkId::new("memgc_cold_per_derivation", depth),
            &depth,
            |b, _| b.iter(|| MemGcConversions::standard().derive(&poly, &l3)),
        );
    }
    group.finish();
}

/// The convertibility-oracle view: the type checker only asks yes/no, which
/// a warm cache answers with one map probe and zero glue traffic.
fn bench_oracle_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_oracle_queries");
    let (hl, ll) = sharedmem_pair(6);
    let warm = SharedMemConversions::standard();
    warm.derive(&hl, &ll).expect("derivable");
    group.bench_function("warm_derivable_probe", |b| {
        b.iter(|| warm.derivable(&hl, &ll))
    });
    group.bench_function("cold_full_derivation", |b| {
        b.iter(|| SharedMemConversions::standard().derivable(&hl, &ll))
    });
    group.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench_glue_cache(&mut c);
    bench_oracle_queries(&mut c);
    c.final_summary();
}

criterion_main!(benches);
