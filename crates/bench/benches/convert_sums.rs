//! E2 — §3 payload conversions (sums ↔ int arrays).
//!
//! Claim: unlike references, sums and products *do* pay per-value glue code
//! (tag inspection, payload conversion, array rebuild, dynamic length/tag
//! checks).  The benchmark compares K boundary-crossing sums against the same
//! arithmetic without boundaries.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use semint_bench::{sum_conversion_baseline, sum_conversion_workload};
use sharedmem::convert::SharedMemConversions;
use sharedmem::multilang::MultiLang;
use stacklang::{Fuel, Machine};

fn bench_sum_conversions(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_sum_array_conversions");
    let sys = MultiLang::new(SharedMemConversions::standard());
    for count in [1usize, 8, 32, 128] {
        let with_boundaries = sys
            .compile_ll(&sum_conversion_workload(count))
            .unwrap()
            .program;
        let baseline = sys
            .compile_ll(&sum_conversion_baseline(count))
            .unwrap()
            .program;
        group.bench_with_input(
            BenchmarkId::new("convert_sums", count),
            &with_boundaries,
            |b, p| b.iter(|| Machine::run_program(p.clone(), Fuel::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("no_boundary_baseline", count),
            &baseline,
            |b, p| b.iter(|| Machine::run_program(p.clone(), Fuel::default())),
        );
    }
    group.finish();
}

fn benches() {
    let mut c = common::criterion();
    bench_sum_conversions(&mut c);
    c.final_summary();
}

criterion_main!(benches);
