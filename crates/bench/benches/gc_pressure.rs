//! E6 — §5 garbage-collection pressure vs manual management.
//!
//! Claim: the explicit `callgc` placement (before allocation in the L3
//! compiler) means collector cost scales with the amount of garbage reachable
//! at those points, while manual `new`/`free` pipelines never accumulate
//! garbage at all.

mod common;

use criterion::{criterion_main, BenchmarkId, Criterion};
use lcvm::Machine;
use memgc_interop::multilang::MemGcMultiLang;
use semint_bench::{gc_pressure_workload, manual_pressure_workload};
use semint_core::Fuel;

fn bench_gc_pressure(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_gc_pressure");
    let sys = MemGcMultiLang::new();
    for n in [8usize, 32, 128] {
        let gc_heavy = sys.compile_ml(&gc_pressure_workload(n, 4)).unwrap();
        let manual = sys.compile_l3(&manual_pressure_workload(n)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("gc_allocations_then_collect", n),
            &gc_heavy,
            |b, p| b.iter(|| Machine::run_expr(p.clone(), Fuel::default())),
        );
        group.bench_with_input(BenchmarkId::new("manual_new_free", n), &manual, |b, p| {
            b.iter(|| Machine::run_expr(p.clone(), Fuel::default()))
        });
    }
    group.finish();

    // Deterministic heap statistics for the report.
    for n in [8usize, 32, 128] {
        let r = Machine::run_expr(
            sys.compile_ml(&gc_pressure_workload(n, 4)).unwrap(),
            Fuel::default(),
        );
        println!(
            "E6 n={n}: gc_allocs={}, collected={}, gc_runs={}, live_at_exit={}",
            r.heap.stats().gc_allocs,
            r.heap.stats().collected,
            r.heap.stats().gc_runs,
            r.heap.len()
        );
    }
}

fn benches() {
    let mut c = common::criterion();
    bench_gc_pressure(&mut c);
    c.final_summary();
}

criterion_main!(benches);
