//! Syntax of RefHL and RefLL (Fig. 1).
//!
//! The two languages are mutually recursive through their boundary forms:
//! a RefHL term can embed a RefLL term (`⦇ē⦈τ`) and vice versa (`⦇e⦈𝜏`), which
//! is why both ASTs live in one crate.

use semint_core::Var;
use std::fmt;

/// RefHL types `τ ::= unit | bool | τ+τ | τ×τ | τ→τ | ref τ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HlType {
    /// `unit`.
    Unit,
    /// `bool`.
    Bool,
    /// Sum `τ1 + τ2`.
    Sum(Box<HlType>, Box<HlType>),
    /// Product `τ1 × τ2`.
    Prod(Box<HlType>, Box<HlType>),
    /// Function `τ1 → τ2`.
    Fun(Box<HlType>, Box<HlType>),
    /// Reference `ref τ`.
    Ref(Box<HlType>),
}

impl HlType {
    /// `τ1 + τ2`.
    pub fn sum(a: HlType, b: HlType) -> HlType {
        HlType::Sum(Box::new(a), Box::new(b))
    }

    /// `τ1 × τ2`.
    pub fn prod(a: HlType, b: HlType) -> HlType {
        HlType::Prod(Box::new(a), Box::new(b))
    }

    /// `τ1 → τ2`.
    pub fn fun(a: HlType, b: HlType) -> HlType {
        HlType::Fun(Box::new(a), Box::new(b))
    }

    /// `ref τ`.
    pub fn ref_(a: HlType) -> HlType {
        HlType::Ref(Box::new(a))
    }
}

impl fmt::Display for HlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlType::Unit => write!(f, "unit"),
            HlType::Bool => write!(f, "bool"),
            HlType::Sum(a, b) => write!(f, "({a} + {b})"),
            HlType::Prod(a, b) => write!(f, "({a} × {b})"),
            HlType::Fun(a, b) => write!(f, "({a} → {b})"),
            HlType::Ref(a) => write!(f, "ref {a}"),
        }
    }
}

/// RefLL types `𝜏 ::= int | [𝜏] | 𝜏→𝜏 | ref 𝜏`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LlType {
    /// `int`.
    Int,
    /// Array `[𝜏]`.
    Array(Box<LlType>),
    /// Function `𝜏1 → 𝜏2`.
    Fun(Box<LlType>, Box<LlType>),
    /// Reference `ref 𝜏`.
    Ref(Box<LlType>),
}

impl LlType {
    /// `[𝜏]`.
    pub fn array(a: LlType) -> LlType {
        LlType::Array(Box::new(a))
    }

    /// `𝜏1 → 𝜏2`.
    pub fn fun(a: LlType, b: LlType) -> LlType {
        LlType::Fun(Box::new(a), Box::new(b))
    }

    /// `ref 𝜏`.
    pub fn ref_(a: LlType) -> LlType {
        LlType::Ref(Box::new(a))
    }
}

impl fmt::Display for LlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlType::Int => write!(f, "int"),
            LlType::Array(a) => write!(f, "[{a}]"),
            LlType::Fun(a, b) => write!(f, "({a} → {b})"),
            LlType::Ref(a) => write!(f, "ref {a}"),
        }
    }
}

/// RefHL expressions (Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub enum HlExpr {
    /// `()`.
    Unit,
    /// `true` / `false`.
    Bool(bool),
    /// A variable.
    Var(Var),
    /// `inl e` annotated with the full sum type it constructs.
    Inl(Box<HlExpr>, HlType),
    /// `inr e` annotated with the full sum type it constructs.
    Inr(Box<HlExpr>, HlType),
    /// `(e1, e2)`.
    Pair(Box<HlExpr>, Box<HlExpr>),
    /// `fst e`.
    Fst(Box<HlExpr>),
    /// `snd e`.
    Snd(Box<HlExpr>),
    /// `if e then e1 else e2`.
    If(Box<HlExpr>, Box<HlExpr>, Box<HlExpr>),
    /// `match e x {e1} y {e2}`.
    Match(Box<HlExpr>, Var, Box<HlExpr>, Var, Box<HlExpr>),
    /// `λx:τ. e`.
    Lam(Var, HlType, Box<HlExpr>),
    /// Application `e1 e2`.
    App(Box<HlExpr>, Box<HlExpr>),
    /// `ref e`.
    Ref(Box<HlExpr>),
    /// `!e`.
    Deref(Box<HlExpr>),
    /// `e1 := e2`.
    Assign(Box<HlExpr>, Box<HlExpr>),
    /// Boundary `⦇ē⦈τ`: a RefLL term used at RefHL type `τ`.
    Boundary(Box<LlExpr>, HlType),
}

impl HlExpr {
    /// `()`.
    pub fn unit() -> HlExpr {
        HlExpr::Unit
    }

    /// A boolean literal.
    pub fn bool_(b: bool) -> HlExpr {
        HlExpr::Bool(b)
    }

    /// A variable.
    pub fn var(x: impl Into<Var>) -> HlExpr {
        HlExpr::Var(x.into())
    }

    /// `inl e : ty` (where `ty` is the full sum type).
    pub fn inl(e: HlExpr, ty: HlType) -> HlExpr {
        HlExpr::Inl(Box::new(e), ty)
    }

    /// `inr e : ty` (where `ty` is the full sum type).
    pub fn inr(e: HlExpr, ty: HlType) -> HlExpr {
        HlExpr::Inr(Box::new(e), ty)
    }

    /// `(e1, e2)`.
    pub fn pair(a: HlExpr, b: HlExpr) -> HlExpr {
        HlExpr::Pair(Box::new(a), Box::new(b))
    }

    /// `fst e`.
    pub fn fst(e: HlExpr) -> HlExpr {
        HlExpr::Fst(Box::new(e))
    }

    /// `snd e`.
    pub fn snd(e: HlExpr) -> HlExpr {
        HlExpr::Snd(Box::new(e))
    }

    /// `if c then t else f`.
    pub fn if_(c: HlExpr, t: HlExpr, f: HlExpr) -> HlExpr {
        HlExpr::If(Box::new(c), Box::new(t), Box::new(f))
    }

    /// `match e x {l} y {r}`.
    pub fn match_(e: HlExpr, x: impl Into<Var>, l: HlExpr, y: impl Into<Var>, r: HlExpr) -> HlExpr {
        HlExpr::Match(Box::new(e), x.into(), Box::new(l), y.into(), Box::new(r))
    }

    /// `λx:τ. body`.
    pub fn lam(x: impl Into<Var>, ty: HlType, body: HlExpr) -> HlExpr {
        HlExpr::Lam(x.into(), ty, Box::new(body))
    }

    /// `e1 e2`.
    pub fn app(f: HlExpr, a: HlExpr) -> HlExpr {
        HlExpr::App(Box::new(f), Box::new(a))
    }

    /// `ref e`.
    pub fn ref_(e: HlExpr) -> HlExpr {
        HlExpr::Ref(Box::new(e))
    }

    /// `!e`.
    pub fn deref(e: HlExpr) -> HlExpr {
        HlExpr::Deref(Box::new(e))
    }

    /// `e1 := e2`.
    pub fn assign(a: HlExpr, b: HlExpr) -> HlExpr {
        HlExpr::Assign(Box::new(a), Box::new(b))
    }

    /// `⦇ē⦈τ`: embed a RefLL term at RefHL type `ty`.
    pub fn boundary(e: LlExpr, ty: HlType) -> HlExpr {
        HlExpr::Boundary(Box::new(e), ty)
    }

    /// Number of AST nodes (including embedded RefLL nodes).
    pub fn size(&self) -> usize {
        match self {
            HlExpr::Unit | HlExpr::Bool(_) | HlExpr::Var(_) => 1,
            HlExpr::Inl(e, _)
            | HlExpr::Inr(e, _)
            | HlExpr::Fst(e)
            | HlExpr::Snd(e)
            | HlExpr::Ref(e)
            | HlExpr::Deref(e) => 1 + e.size(),
            HlExpr::Pair(a, b) | HlExpr::App(a, b) | HlExpr::Assign(a, b) => {
                1 + a.size() + b.size()
            }
            HlExpr::If(a, b, c) => 1 + a.size() + b.size() + c.size(),
            HlExpr::Match(s, _, l, _, r) => 1 + s.size() + l.size() + r.size(),
            HlExpr::Lam(_, _, b) => 1 + b.size(),
            HlExpr::Boundary(e, _) => 1 + e.size(),
        }
    }

    /// Number of syntactic language boundaries `⦇·⦈`, counted structurally
    /// (one tree walk, no rendering) across both embedded languages.
    pub fn boundary_count(&self) -> usize {
        match self {
            HlExpr::Unit | HlExpr::Bool(_) | HlExpr::Var(_) => 0,
            HlExpr::Inl(e, _)
            | HlExpr::Inr(e, _)
            | HlExpr::Fst(e)
            | HlExpr::Snd(e)
            | HlExpr::Ref(e)
            | HlExpr::Deref(e)
            | HlExpr::Lam(_, _, e) => e.boundary_count(),
            HlExpr::Pair(a, b) | HlExpr::App(a, b) | HlExpr::Assign(a, b) => {
                a.boundary_count() + b.boundary_count()
            }
            HlExpr::If(a, b, c) => a.boundary_count() + b.boundary_count() + c.boundary_count(),
            HlExpr::Match(s, _, l, _, r) => {
                s.boundary_count() + l.boundary_count() + r.boundary_count()
            }
            HlExpr::Boundary(e, _) => 1 + e.boundary_count(),
        }
    }
}

/// RefLL expressions (Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub enum LlExpr {
    /// An integer literal.
    Int(i64),
    /// A variable.
    Var(Var),
    /// An array literal `[ē, …]` annotated with its element type.
    Array(Vec<LlExpr>, LlType),
    /// Indexing `ē1[ē2]`.
    Index(Box<LlExpr>, Box<LlExpr>),
    /// `λx:𝜏. ē`.
    Lam(Var, LlType, Box<LlExpr>),
    /// Application `ē1 ē2`.
    App(Box<LlExpr>, Box<LlExpr>),
    /// Addition `ē1 + ē2`.
    Add(Box<LlExpr>, Box<LlExpr>),
    /// `if0 ē ē1 ē2`.
    If0(Box<LlExpr>, Box<LlExpr>, Box<LlExpr>),
    /// `ref ē`.
    Ref(Box<LlExpr>),
    /// `!ē`.
    Deref(Box<LlExpr>),
    /// `ē1 := ē2`.
    Assign(Box<LlExpr>, Box<LlExpr>),
    /// Boundary `⦇e⦈𝜏`: a RefHL term used at RefLL type `𝜏`.
    Boundary(Box<HlExpr>, LlType),
}

impl LlExpr {
    /// An integer literal.
    pub fn int(n: i64) -> LlExpr {
        LlExpr::Int(n)
    }

    /// A variable.
    pub fn var(x: impl Into<Var>) -> LlExpr {
        LlExpr::Var(x.into())
    }

    /// An array literal with element type `elem`.
    pub fn array(es: impl IntoIterator<Item = LlExpr>, elem: LlType) -> LlExpr {
        LlExpr::Array(es.into_iter().collect(), elem)
    }

    /// `ē1[ē2]`.
    pub fn index(a: LlExpr, i: LlExpr) -> LlExpr {
        LlExpr::Index(Box::new(a), Box::new(i))
    }

    /// `λx:𝜏. body`.
    pub fn lam(x: impl Into<Var>, ty: LlType, body: LlExpr) -> LlExpr {
        LlExpr::Lam(x.into(), ty, Box::new(body))
    }

    /// `ē1 ē2`.
    pub fn app(f: LlExpr, a: LlExpr) -> LlExpr {
        LlExpr::App(Box::new(f), Box::new(a))
    }

    /// `ē1 + ē2`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: LlExpr, b: LlExpr) -> LlExpr {
        LlExpr::Add(Box::new(a), Box::new(b))
    }

    /// `if0 c t f`.
    pub fn if0(c: LlExpr, t: LlExpr, f: LlExpr) -> LlExpr {
        LlExpr::If0(Box::new(c), Box::new(t), Box::new(f))
    }

    /// `ref ē`.
    pub fn ref_(e: LlExpr) -> LlExpr {
        LlExpr::Ref(Box::new(e))
    }

    /// `!ē`.
    pub fn deref(e: LlExpr) -> LlExpr {
        LlExpr::Deref(Box::new(e))
    }

    /// `ē1 := ē2`.
    pub fn assign(a: LlExpr, b: LlExpr) -> LlExpr {
        LlExpr::Assign(Box::new(a), Box::new(b))
    }

    /// `⦇e⦈𝜏`: embed a RefHL term at RefLL type `ty`.
    pub fn boundary(e: HlExpr, ty: LlType) -> LlExpr {
        LlExpr::Boundary(Box::new(e), ty)
    }

    /// Number of AST nodes (including embedded RefHL nodes).
    pub fn size(&self) -> usize {
        match self {
            LlExpr::Int(_) | LlExpr::Var(_) => 1,
            LlExpr::Array(es, _) => 1 + es.iter().map(LlExpr::size).sum::<usize>(),
            LlExpr::Index(a, b) | LlExpr::App(a, b) | LlExpr::Add(a, b) | LlExpr::Assign(a, b) => {
                1 + a.size() + b.size()
            }
            LlExpr::Lam(_, _, b) => 1 + b.size(),
            LlExpr::If0(a, b, c) => 1 + a.size() + b.size() + c.size(),
            LlExpr::Ref(e) | LlExpr::Deref(e) => 1 + e.size(),
            LlExpr::Boundary(e, _) => 1 + e.size(),
        }
    }

    /// Number of syntactic language boundaries `⦇·⦈`, counted structurally
    /// (one tree walk, no rendering) across both embedded languages.
    pub fn boundary_count(&self) -> usize {
        match self {
            LlExpr::Int(_) | LlExpr::Var(_) => 0,
            LlExpr::Array(es, _) => es.iter().map(LlExpr::boundary_count).sum(),
            LlExpr::Index(a, b) | LlExpr::App(a, b) | LlExpr::Add(a, b) | LlExpr::Assign(a, b) => {
                a.boundary_count() + b.boundary_count()
            }
            LlExpr::Lam(_, _, b) => b.boundary_count(),
            LlExpr::If0(a, b, c) => a.boundary_count() + b.boundary_count() + c.boundary_count(),
            LlExpr::Ref(e) | LlExpr::Deref(e) => e.boundary_count(),
            LlExpr::Boundary(e, _) => 1 + e.boundary_count(),
        }
    }
}

impl fmt::Display for HlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlExpr::Unit => write!(f, "()"),
            HlExpr::Bool(b) => write!(f, "{b}"),
            HlExpr::Var(x) => write!(f, "{x}"),
            HlExpr::Inl(e, _) => write!(f, "inl {e}"),
            HlExpr::Inr(e, _) => write!(f, "inr {e}"),
            HlExpr::Pair(a, b) => write!(f, "({a}, {b})"),
            HlExpr::Fst(e) => write!(f, "fst {e}"),
            HlExpr::Snd(e) => write!(f, "snd {e}"),
            HlExpr::If(c, t, e) => write!(f, "if {c} {t} {e}"),
            HlExpr::Match(s, x, l, y, r) => write!(f, "match {s} {x}{{{l}}} {y}{{{r}}}"),
            HlExpr::Lam(x, ty, b) => write!(f, "λ{x}:{ty}. {b}"),
            HlExpr::App(a, b) => write!(f, "({a}) ({b})"),
            HlExpr::Ref(e) => write!(f, "ref {e}"),
            HlExpr::Deref(e) => write!(f, "!{e}"),
            HlExpr::Assign(a, b) => write!(f, "{a} := {b}"),
            HlExpr::Boundary(e, ty) => write!(f, "⦇{e}⦈{ty}"),
        }
    }
}

impl fmt::Display for LlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlExpr::Int(n) => write!(f, "{n}"),
            LlExpr::Var(x) => write!(f, "{x}"),
            LlExpr::Array(es, _) => {
                write!(f, "[")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            LlExpr::Index(a, i) => write!(f, "{a}[{i}]"),
            LlExpr::Lam(x, ty, b) => write!(f, "λ{x}:{ty}. {b}"),
            LlExpr::App(a, b) => write!(f, "({a}) ({b})"),
            LlExpr::Add(a, b) => write!(f, "({a} + {b})"),
            LlExpr::If0(c, t, e) => write!(f, "if0 {c} {t} {e}"),
            LlExpr::Ref(e) => write!(f, "ref {e}"),
            LlExpr::Deref(e) => write!(f, "!{e}"),
            LlExpr::Assign(a, b) => write!(f, "{a} := {b}"),
            LlExpr::Boundary(e, ty) => write!(f, "⦇{e}⦈{ty}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_constructors_and_display() {
        let t = HlType::fun(
            HlType::sum(HlType::Bool, HlType::Unit),
            HlType::ref_(HlType::Bool),
        );
        assert_eq!(t.to_string(), "((bool + unit) → ref bool)");
        let u = LlType::fun(LlType::array(LlType::Int), LlType::ref_(LlType::Int));
        assert_eq!(u.to_string(), "([int] → ref int)");
    }

    #[test]
    fn boundaries_nest_across_languages() {
        // ⦇ ⦇ true ⦈int + 1 ⦈bool : a RefHL bool containing RefLL code that
        // itself embeds a RefHL bool.
        let inner = LlExpr::add(
            LlExpr::boundary(HlExpr::bool_(true), LlType::Int),
            LlExpr::int(1),
        );
        let outer = HlExpr::boundary(inner, HlType::Bool);
        assert_eq!(outer.size(), 5);
        assert!(outer.to_string().contains("⦇"));
        // The structural counter agrees with the rendered half-brackets.
        assert_eq!(outer.boundary_count(), 2);
        assert_eq!(
            outer.boundary_count(),
            outer.to_string().matches('⦇').count()
        );
    }

    #[test]
    fn sizes_count_nodes() {
        let e = HlExpr::pair(HlExpr::bool_(true), HlExpr::unit());
        assert_eq!(e.size(), 3);
        let l = LlExpr::array([LlExpr::int(1), LlExpr::int(2)], LlType::Int);
        assert_eq!(l.size(), 3);
    }
}
