//! # reflang
//!
//! The two source languages of the paper's first case study (§3, Fig. 1):
//!
//! * **RefHL** — a "higher-level" simply-typed functional language with
//!   booleans, sums, products, functions and ML-style mutable references.
//! * **RefLL** — a "lower-level" language with integers, arrays, functions
//!   and mutable references.
//!
//! Each language has a boundary form `⦇e⦈τ` embedding a term of the *other*
//! language, well-typed when the two types are convertible (`τ ∼ 𝜏`).  The
//! convertibility judgment itself, together with its glue code, lives in the
//! `sharedmem` case-study crate; this crate exposes the hooks it plugs into:
//! [`typecheck::ConvertOracle`] for the static side and
//! [`compile::ConversionEmitter`] for the compilers.
//!
//! Both languages compile to [`stacklang`] following Fig. 3.
//!
//! ```
//! use reflang::syntax::{HlExpr, HlType};
//! use reflang::typecheck::{self, TypeCtx, DenyAllConversions};
//!
//! // if true then 1+2 … but RefHL has no ints: use a pair instead.
//! let e = HlExpr::if_(HlExpr::bool_(true), HlExpr::unit(), HlExpr::unit());
//! let ty = typecheck::check_hl(&TypeCtx::empty(), &e, &DenyAllConversions).unwrap();
//! assert_eq!(ty, HlType::Unit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod syntax;
pub mod typecheck;

pub use compile::{compile_hl, compile_ll, ConversionEmitter, NoBoundaries};
pub use syntax::{HlExpr, HlType, LlExpr, LlType};
pub use typecheck::{check_hl, check_ll, ConvertOracle, TypeCtx, TypeError};
