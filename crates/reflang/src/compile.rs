//! Compilers from RefHL and RefLL to StackLang (Fig. 3).
//!
//! The compilers are type-directed only at boundaries: a boundary `⦇ē⦈τ`
//! compiles to `ē⁺, C_{𝜏↦τ}` where the conversion glue code `C` is supplied by
//! a [`ConversionEmitter`] (implemented by the `sharedmem` case-study crate
//! with the Fig. 4 conversions).  Everything else follows the figure line by
//! line:
//!
//! ```text
//! ()            ⇝ push 0                  n            ⇝ push n
//! true | false  ⇝ push 0 | 1              ē1 + ē2      ⇝ ē1⁺, ē2⁺, SWAP, add
//! inl e | inr e ⇝ e⁺, lam x. push [0|1,x] [ē1,…,ēn]    ⇝ ē1⁺,…,ēn⁺, lam xn,…,x1. push [x1,…,xn]
//! if e e1 e2    ⇝ e⁺, if0 e1⁺ e2⁺          ē1[ē2]       ⇝ ē1⁺, ē2⁺, idx
//! match …       ⇝ e⁺, DUP, push 1, idx, SWAP, push 0, idx, if0 (lam x. e1⁺) (lam y. e2⁺)
//! (e1,e2)       ⇝ e1⁺, e2⁺, lam x2,x1. push [x1,x2]
//! fst e | snd e ⇝ e⁺, push 0|1, idx        λx:𝜏. ē      ⇝ push (thunk lam x. ē⁺)
//! e1 e2         ⇝ e1⁺, e2⁺, SWAP, call     !ē           ⇝ ē⁺, read
//! ref e         ⇝ e⁺, alloc                ē1 := ē2     ⇝ ē1⁺, ē2⁺, write, push 0
//! ⦇e⦈τ          ⇝ e⁺, C_{𝜏↦τ}
//! ```

use crate::syntax::{HlExpr, HlType, LlExpr, LlType};
use crate::typecheck::TypeCtx;
use semint_core::ErrorCode;
use stacklang::builder::{dup, pack, swap, tagged};
use stacklang::{Instr, Program};
use std::fmt;

/// Supplies the target-level conversion glue code used at boundaries.
pub trait ConversionEmitter {
    /// `C_{𝜏 ↦ τ}`: glue converting a (compiled) RefLL `𝜏` into a RefHL `τ`.
    ///
    /// Returns `None` when no conversion is registered for the pair.
    fn ll_to_hl(&self, ll: &LlType, hl: &HlType) -> Option<Program>;

    /// `C_{τ ↦ 𝜏}`: glue converting a (compiled) RefHL `τ` into a RefLL `𝜏`.
    fn hl_to_ll(&self, hl: &HlType, ll: &LlType) -> Option<Program>;
}

/// An emitter for programs with no boundaries; any boundary is a compile
/// error.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBoundaries;

impl ConversionEmitter for NoBoundaries {
    fn ll_to_hl(&self, _ll: &LlType, _hl: &HlType) -> Option<Program> {
        None
    }
    fn hl_to_ll(&self, _hl: &HlType, _ll: &LlType) -> Option<Program> {
        None
    }
}

/// Errors raised by the compilers.
///
/// The only possible error is a boundary whose conversion the emitter does
/// not know; ill-typed programs should be rejected by the type checker before
/// compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct MissingConversion {
    /// The RefHL side of the offending boundary.
    pub hl: HlType,
    /// The RefLL side of the offending boundary.
    pub ll: LlType,
}

impl fmt::Display for MissingConversion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no conversion registered for boundary {} ∼ {}",
            self.hl, self.ll
        )
    }
}

impl std::error::Error for MissingConversion {}

/// Compiles a RefHL expression to StackLang.
///
/// # Errors
///
/// Fails with [`MissingConversion`] if the expression contains a boundary the
/// emitter has no glue code for.  The RefLL type of an embedded term is
/// needed to pick the conversion, so the compiler reconstructs it with the
/// type checker under `ctx` (convertibility does not influence the type a
/// boundary produces, only whether it is accepted, so reconstruction under an
/// accept-all oracle yields the same types the real type checker would).
pub fn compile_hl(
    ctx: &TypeCtx,
    e: &HlExpr,
    emitter: &dyn ConversionEmitter,
) -> Result<Program, MissingConversion> {
    Ok(match e {
        HlExpr::Unit => Program::single(Instr::push_num(0)),
        HlExpr::Bool(b) => Program::single(Instr::push_num(if *b { 0 } else { 1 })),
        HlExpr::Var(x) => Program::single(Instr::push_var(x.clone())),
        HlExpr::Inl(e1, _) => compile_hl(ctx, e1, emitter)?.then(tagged(0)),
        HlExpr::Inr(e1, _) => compile_hl(ctx, e1, emitter)?.then(tagged(1)),
        HlExpr::Pair(a, b) => compile_hl(ctx, a, emitter)?
            .then(compile_hl(ctx, b, emitter)?)
            .then_instr(pack(2)),
        HlExpr::Fst(e1) => compile_hl(ctx, e1, emitter)?
            .then_instr(Instr::push_num(0))
            .then_instr(Instr::Idx),
        HlExpr::Snd(e1) => compile_hl(ctx, e1, emitter)?
            .then_instr(Instr::push_num(1))
            .then_instr(Instr::Idx),
        HlExpr::If(c, t, f) => compile_hl(ctx, c, emitter)?.then_instr(Instr::If0(
            compile_hl(ctx, t, emitter)?,
            compile_hl(ctx, f, emitter)?,
        )),
        HlExpr::Match(s, x, l, y, r) => compile_hl(ctx, s, emitter)?
            .then_instr(dup())
            .then_instr(Instr::push_num(1))
            .then_instr(Instr::Idx)
            .then_instr(swap())
            .then_instr(Instr::push_num(0))
            .then_instr(Instr::Idx)
            .then_instr(Instr::If0(
                Program::single(Instr::Lam(vec![x.clone()], compile_hl(ctx, l, emitter)?)),
                Program::single(Instr::Lam(vec![y.clone()], compile_hl(ctx, r, emitter)?)),
            )),
        HlExpr::Lam(x, ty, body) => {
            Program::single(Instr::push_thunk(Program::single(Instr::Lam(
                vec![x.clone()],
                compile_hl(&ctx.with_hl(x.clone(), ty.clone()), body, emitter)?,
            ))))
        }
        HlExpr::App(f, a) => compile_hl(ctx, f, emitter)?
            .then(compile_hl(ctx, a, emitter)?)
            .then_instr(swap())
            .then_instr(Instr::Call),
        HlExpr::Ref(e1) => compile_hl(ctx, e1, emitter)?.then_instr(Instr::Alloc),
        HlExpr::Deref(e1) => compile_hl(ctx, e1, emitter)?.then_instr(Instr::Read),
        HlExpr::Assign(a, b) => compile_hl(ctx, a, emitter)?
            .then(compile_hl(ctx, b, emitter)?)
            .then_instr(Instr::Write)
            .then_instr(Instr::push_num(0)),
        HlExpr::Boundary(ll, ty) => {
            let ll_ty = match infer_ll_type_for_boundary(ctx, ll) {
                Some(t) => t,
                None => {
                    // The emitter gets a chance with every registered LL type
                    // via the annotation-free path; if that fails, report.
                    return Err(MissingConversion {
                        hl: ty.clone(),
                        ll: LlType::Int,
                    });
                }
            };
            let glue = emitter
                .ll_to_hl(&ll_ty, ty)
                .ok_or_else(|| MissingConversion {
                    hl: ty.clone(),
                    ll: ll_ty.clone(),
                })?;
            compile_ll(ctx, ll, emitter)?.then(glue)
        }
    })
}

/// Compiles a RefLL expression to StackLang.
///
/// # Errors
///
/// Fails with [`MissingConversion`] if the expression contains a boundary the
/// emitter has no glue code for.
pub fn compile_ll(
    ctx: &TypeCtx,
    e: &LlExpr,
    emitter: &dyn ConversionEmitter,
) -> Result<Program, MissingConversion> {
    Ok(match e {
        LlExpr::Int(n) => Program::single(Instr::push_num(*n)),
        LlExpr::Var(x) => Program::single(Instr::push_var(x.clone())),
        LlExpr::Array(es, _) => {
            let mut p = Program::empty();
            for e1 in es {
                p = p.then(compile_ll(ctx, e1, emitter)?);
            }
            p.then_instr(pack(es.len()))
        }
        LlExpr::Index(a, i) => compile_ll(ctx, a, emitter)?
            .then(compile_ll(ctx, i, emitter)?)
            .then_instr(Instr::Idx),
        LlExpr::Lam(x, ty, body) => {
            Program::single(Instr::push_thunk(Program::single(Instr::Lam(
                vec![x.clone()],
                compile_ll(&ctx.with_ll(x.clone(), ty.clone()), body, emitter)?,
            ))))
        }
        LlExpr::App(f, a) => compile_ll(ctx, f, emitter)?
            .then(compile_ll(ctx, a, emitter)?)
            .then_instr(swap())
            .then_instr(Instr::Call),
        LlExpr::Add(a, b) => compile_ll(ctx, a, emitter)?
            .then(compile_ll(ctx, b, emitter)?)
            .then_instr(swap())
            .then_instr(Instr::Add),
        LlExpr::If0(c, t, f) => compile_ll(ctx, c, emitter)?.then_instr(Instr::If0(
            compile_ll(ctx, t, emitter)?,
            compile_ll(ctx, f, emitter)?,
        )),
        LlExpr::Ref(e1) => compile_ll(ctx, e1, emitter)?.then_instr(Instr::Alloc),
        LlExpr::Deref(e1) => compile_ll(ctx, e1, emitter)?.then_instr(Instr::Read),
        LlExpr::Assign(a, b) => compile_ll(ctx, a, emitter)?
            .then(compile_ll(ctx, b, emitter)?)
            .then_instr(Instr::Write)
            .then_instr(Instr::push_num(0)),
        LlExpr::Boundary(hl, ty) => {
            let hl_ty = match infer_hl_type_for_boundary(ctx, hl) {
                Some(t) => t,
                None => {
                    return Err(MissingConversion {
                        hl: HlType::Unit,
                        ll: ty.clone(),
                    })
                }
            };
            let glue = emitter
                .hl_to_ll(&hl_ty, ty)
                .ok_or_else(|| MissingConversion {
                    hl: hl_ty.clone(),
                    ll: ty.clone(),
                })?;
            compile_hl(ctx, hl, emitter)?.then(glue)
        }
    })
}

/// A lightweight syntactic type reconstruction used only to select the
/// conversion at a boundary.  It mirrors the type checker but works without
/// an environment for the common closed cases; boundary-heavy programs should
/// be compiled through `sharedmem::MultiLang`, which runs the real type
/// checker first and caches the boundary types.
fn infer_ll_type_for_boundary(ctx: &TypeCtx, e: &LlExpr) -> Option<LlType> {
    crate::typecheck::check_ll(ctx, e, &AllowAllOracle).ok()
}

fn infer_hl_type_for_boundary(ctx: &TypeCtx, e: &HlExpr) -> Option<HlType> {
    crate::typecheck::check_hl(ctx, e, &AllowAllOracle).ok()
}

/// An oracle that accepts every conversion — used only for boundary type
/// reconstruction inside the compiler, never for type checking.
struct AllowAllOracle;

impl crate::typecheck::ConvertOracle for AllowAllOracle {
    fn convertible(&self, _hl: &HlType, _ll: &LlType) -> bool {
        true
    }
}

/// A conversion that always fails at runtime with `fail Conv` — useful for
/// negative tests and for experimenting with deliberately unsound rule sets.
pub fn failing_conversion() -> Program {
    Program::single(Instr::Fail(ErrorCode::Conv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use semint_core::Fuel;
    use stacklang::{Machine, Outcome, Value};

    fn run_hl(e: &HlExpr) -> Outcome<Value> {
        let p = compile_hl(&TypeCtx::empty(), e, &NoBoundaries).unwrap();
        assert!(
            p.is_closed(),
            "compiled closed source terms are closed programs"
        );
        Machine::run_program(p, Fuel::default()).outcome
    }

    fn run_ll(e: &LlExpr) -> Outcome<Value> {
        let p = compile_ll(&TypeCtx::empty(), e, &NoBoundaries).unwrap();
        assert!(p.is_closed());
        Machine::run_program(p, Fuel::default()).outcome
    }

    #[test]
    fn hl_literals_and_pairs() {
        assert_eq!(run_hl(&HlExpr::unit()), Outcome::Value(Value::Num(0)));
        assert_eq!(run_hl(&HlExpr::bool_(true)), Outcome::Value(Value::Num(0)));
        assert_eq!(run_hl(&HlExpr::bool_(false)), Outcome::Value(Value::Num(1)));
        let pair = HlExpr::pair(HlExpr::bool_(true), HlExpr::bool_(false));
        assert_eq!(
            run_hl(&pair),
            Outcome::Value(Value::array([Value::Num(0), Value::Num(1)]))
        );
        assert_eq!(
            run_hl(&HlExpr::fst(pair.clone())),
            Outcome::Value(Value::Num(0))
        );
        assert_eq!(run_hl(&HlExpr::snd(pair)), Outcome::Value(Value::Num(1)));
    }

    #[test]
    fn hl_if_and_booleans_follow_zero_is_true() {
        let e = HlExpr::if_(
            HlExpr::bool_(true),
            HlExpr::bool_(false),
            HlExpr::bool_(true),
        );
        assert_eq!(run_hl(&e), Outcome::Value(Value::Num(1)));
        let e = HlExpr::if_(
            HlExpr::bool_(false),
            HlExpr::bool_(false),
            HlExpr::bool_(true),
        );
        assert_eq!(run_hl(&e), Outcome::Value(Value::Num(0)));
    }

    #[test]
    fn hl_sums_and_match() {
        let sum_ty = HlType::sum(HlType::Bool, HlType::Unit);
        let inl = HlExpr::inl(HlExpr::bool_(false), sum_ty.clone());
        assert_eq!(
            run_hl(&inl),
            Outcome::Value(Value::array([Value::Num(0), Value::Num(1)]))
        );
        // match (inl false) x {x} y {true}  ==> false (1)
        let m = HlExpr::match_(inl, "x", HlExpr::var("x"), "y", HlExpr::bool_(true));
        assert_eq!(run_hl(&m), Outcome::Value(Value::Num(1)));
        // match (inr ()) x {false} y {true}  ==> true (0)
        let inr = HlExpr::inr(HlExpr::unit(), sum_ty);
        let m = HlExpr::match_(inr, "x", HlExpr::bool_(false), "y", HlExpr::bool_(true));
        assert_eq!(run_hl(&m), Outcome::Value(Value::Num(0)));
    }

    #[test]
    fn hl_functions_apply() {
        // (λx:bool. if x then false else true) true  ==> false
        let neg = HlExpr::lam(
            "x",
            HlType::Bool,
            HlExpr::if_(HlExpr::var("x"), HlExpr::bool_(false), HlExpr::bool_(true)),
        );
        let e = HlExpr::app(neg, HlExpr::bool_(true));
        assert_eq!(run_hl(&e), Outcome::Value(Value::Num(1)));
    }

    #[test]
    fn hl_references_round_trip() {
        // !(ref true) ==> true
        let e = HlExpr::deref(HlExpr::ref_(HlExpr::bool_(true)));
        assert_eq!(run_hl(&e), Outcome::Value(Value::Num(0)));
        // (λr:ref bool. (r := false ; !r)) (ref true) — sequencing via a pair.
        let body = HlExpr::snd(HlExpr::pair(
            HlExpr::assign(HlExpr::var("r"), HlExpr::bool_(false)),
            HlExpr::deref(HlExpr::var("r")),
        ));
        let e = HlExpr::app(
            HlExpr::lam("r", HlType::ref_(HlType::Bool), body),
            HlExpr::ref_(HlExpr::bool_(true)),
        );
        assert_eq!(run_hl(&e), Outcome::Value(Value::Num(1)));
    }

    #[test]
    fn ll_arithmetic_arrays_and_indexing() {
        assert_eq!(
            run_ll(&LlExpr::add(LlExpr::int(2), LlExpr::int(3))),
            Outcome::Value(Value::Num(5))
        );
        let arr = LlExpr::array(
            [LlExpr::int(5), LlExpr::int(6), LlExpr::int(7)],
            LlType::Int,
        );
        assert_eq!(
            run_ll(&arr),
            Outcome::Value(Value::array([Value::Num(5), Value::Num(6), Value::Num(7)]))
        );
        assert_eq!(
            run_ll(&LlExpr::index(arr.clone(), LlExpr::int(2))),
            Outcome::Value(Value::Num(7))
        );
        // Out of bounds is the well-defined Idx error, not a type error.
        assert_eq!(
            run_ll(&LlExpr::index(arr, LlExpr::int(9))),
            Outcome::Fail(ErrorCode::Idx)
        );
    }

    #[test]
    fn ll_functions_if0_and_refs() {
        // (λx:int. x + 1) 41 ==> 42
        let inc = LlExpr::lam(
            "x",
            LlType::Int,
            LlExpr::add(LlExpr::var("x"), LlExpr::int(1)),
        );
        assert_eq!(
            run_ll(&LlExpr::app(inc, LlExpr::int(41))),
            Outcome::Value(Value::Num(42))
        );

        let e = LlExpr::if0(LlExpr::int(0), LlExpr::int(10), LlExpr::int(20));
        assert_eq!(run_ll(&e), Outcome::Value(Value::Num(10)));

        let e = LlExpr::deref(LlExpr::ref_(LlExpr::int(9)));
        assert_eq!(run_ll(&e), Outcome::Value(Value::Num(9)));
    }

    #[test]
    fn boundary_without_emitter_rule_is_a_compile_error() {
        let e = HlExpr::boundary(LlExpr::int(1), HlType::Bool);
        let err = compile_hl(&TypeCtx::empty(), &e, &NoBoundaries).unwrap_err();
        assert!(err.to_string().contains("no conversion registered"));
        let e = LlExpr::boundary(HlExpr::bool_(true), LlType::Int);
        assert!(compile_ll(&TypeCtx::empty(), &e, &NoBoundaries).is_err());
    }

    #[test]
    fn compiled_well_typed_programs_never_fail_type() {
        // A small gallery of well-typed programs; none may hit fail Type
        // (Theorem 3.4's operational content).
        let programs = vec![
            HlExpr::if_(
                HlExpr::bool_(true),
                HlExpr::pair(HlExpr::unit(), HlExpr::bool_(false)),
                HlExpr::pair(HlExpr::unit(), HlExpr::bool_(true)),
            ),
            HlExpr::app(
                HlExpr::lam(
                    "p",
                    HlType::prod(HlType::Bool, HlType::Bool),
                    HlExpr::fst(HlExpr::var("p")),
                ),
                HlExpr::pair(HlExpr::bool_(false), HlExpr::bool_(true)),
            ),
            HlExpr::deref(HlExpr::ref_(HlExpr::pair(
                HlExpr::bool_(true),
                HlExpr::unit(),
            ))),
        ];
        for e in programs {
            let out = run_hl(&e);
            assert!(out.is_safe(), "program {e} produced unsafe outcome {out:?}");
        }
    }
}
