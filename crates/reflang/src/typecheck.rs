//! Static semantics of RefHL and RefLL, including the boundary typing rules.
//!
//! The typing rules are entirely standard except for boundaries (paper §3):
//!
//! ```text
//! Γ; Γ̄ ⊢ ē : 𝜏     τ ∼ 𝜏                Γ; Γ̄ ⊢ e : τ     τ ∼ 𝜏
//! ───────────────────────               ───────────────────────
//! Γ; Γ̄ ⊢ ⦇ē⦈τ : τ                        Γ; Γ̄ ⊢ ⦇e⦈𝜏 : 𝜏
//! ```
//!
//! Because open terms may cross boundaries, a single [`TypeCtx`] carries both
//! languages' environments (`Γ` for RefHL, `Γ̄` for RefLL).  The convertibility
//! judgment `τ ∼ 𝜏` is supplied by a [`ConvertOracle`] — the §3 case-study
//! crate registers the paper's rules (Fig. 4); tests can plug in anything.

use crate::syntax::{HlExpr, HlType, LlExpr, LlType};
use semint_core::Var;
use std::collections::HashMap;
use std::fmt;

/// The convertibility judgment `τ ∼ 𝜏` as seen by the type checkers.
pub trait ConvertOracle {
    /// Is RefHL type `hl` interconvertible with RefLL type `ll`?
    fn convertible(&self, hl: &HlType, ll: &LlType) -> bool;
}

/// An oracle that rejects every conversion — programs without boundaries
/// type-check against it.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenyAllConversions;

impl ConvertOracle for DenyAllConversions {
    fn convertible(&self, _hl: &HlType, _ll: &LlType) -> bool {
        false
    }
}

impl<F> ConvertOracle for F
where
    F: Fn(&HlType, &LlType) -> bool,
{
    fn convertible(&self, hl: &HlType, ll: &LlType) -> bool {
        self(hl, ll)
    }
}

/// Typing context carrying both languages' environments (`Γ; Γ̄`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeCtx {
    hl: HashMap<Var, HlType>,
    ll: HashMap<Var, LlType>,
}

impl TypeCtx {
    /// The empty context.
    pub fn empty() -> TypeCtx {
        TypeCtx::default()
    }

    /// Extends the RefHL environment.
    pub fn with_hl(&self, x: Var, ty: HlType) -> TypeCtx {
        let mut ctx = self.clone();
        ctx.hl.insert(x, ty);
        ctx
    }

    /// Extends the RefLL environment.
    pub fn with_ll(&self, x: Var, ty: LlType) -> TypeCtx {
        let mut ctx = self.clone();
        ctx.ll.insert(x, ty);
        ctx
    }

    /// Looks up a RefHL variable.
    pub fn hl(&self, x: &Var) -> Option<&HlType> {
        self.hl.get(x)
    }

    /// Looks up a RefLL variable.
    pub fn ll(&self, x: &Var) -> Option<&LlType> {
        self.ll.get(x)
    }
}

/// Type errors raised by either checker.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A variable was not in scope.
    UnboundVariable(Var),
    /// Two types that had to match did not.
    Mismatch {
        /// What the context required.
        expected: String,
        /// What the expression actually had.
        found: String,
        /// Where (a short description of the construct).
        context: &'static str,
    },
    /// A boundary was used at a type pair with no convertibility rule.
    NotConvertible {
        /// The RefHL side.
        hl: HlType,
        /// The RefLL side.
        ll: LlType,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable {x}"),
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, found {found}"
                )
            }
            TypeError::NotConvertible { hl, ll } => {
                write!(f, "no convertibility rule {hl} ∼ {ll}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

fn mismatch(
    expected: impl fmt::Display,
    found: impl fmt::Display,
    context: &'static str,
) -> TypeError {
    TypeError::Mismatch {
        expected: expected.to_string(),
        found: found.to_string(),
        context,
    }
}

/// Checks a RefHL expression, returning its type.
pub fn check_hl(
    ctx: &TypeCtx,
    e: &HlExpr,
    oracle: &dyn ConvertOracle,
) -> Result<HlType, TypeError> {
    match e {
        HlExpr::Unit => Ok(HlType::Unit),
        HlExpr::Bool(_) => Ok(HlType::Bool),
        HlExpr::Var(x) => ctx
            .hl(x)
            .cloned()
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        HlExpr::Inl(e1, ty) => match ty {
            HlType::Sum(l, _) => {
                let t = check_hl(ctx, e1, oracle)?;
                if &t == l.as_ref() {
                    Ok(ty.clone())
                } else {
                    Err(mismatch(l, t, "inl"))
                }
            }
            other => Err(mismatch("a sum type", other, "inl annotation")),
        },
        HlExpr::Inr(e1, ty) => match ty {
            HlType::Sum(_, r) => {
                let t = check_hl(ctx, e1, oracle)?;
                if &t == r.as_ref() {
                    Ok(ty.clone())
                } else {
                    Err(mismatch(r, t, "inr"))
                }
            }
            other => Err(mismatch("a sum type", other, "inr annotation")),
        },
        HlExpr::Pair(a, b) => {
            let ta = check_hl(ctx, a, oracle)?;
            let tb = check_hl(ctx, b, oracle)?;
            Ok(HlType::prod(ta, tb))
        }
        HlExpr::Fst(e1) => match check_hl(ctx, e1, oracle)? {
            HlType::Prod(a, _) => Ok(*a),
            other => Err(mismatch("a product type", other, "fst")),
        },
        HlExpr::Snd(e1) => match check_hl(ctx, e1, oracle)? {
            HlType::Prod(_, b) => Ok(*b),
            other => Err(mismatch("a product type", other, "snd")),
        },
        HlExpr::If(c, t, f) => {
            let tc = check_hl(ctx, c, oracle)?;
            if tc != HlType::Bool {
                return Err(mismatch(HlType::Bool, tc, "if condition"));
            }
            let tt = check_hl(ctx, t, oracle)?;
            let tf = check_hl(ctx, f, oracle)?;
            if tt == tf {
                Ok(tt)
            } else {
                Err(mismatch(tt, tf, "if branches"))
            }
        }
        HlExpr::Match(s, x, l, y, r) => match check_hl(ctx, s, oracle)? {
            HlType::Sum(tl, tr) => {
                let t1 = check_hl(&ctx.with_hl(x.clone(), *tl), l, oracle)?;
                let t2 = check_hl(&ctx.with_hl(y.clone(), *tr), r, oracle)?;
                if t1 == t2 {
                    Ok(t1)
                } else {
                    Err(mismatch(t1, t2, "match branches"))
                }
            }
            other => Err(mismatch("a sum type", other, "match scrutinee")),
        },
        HlExpr::Lam(x, ty, body) => {
            let tb = check_hl(&ctx.with_hl(x.clone(), ty.clone()), body, oracle)?;
            Ok(HlType::fun(ty.clone(), tb))
        }
        HlExpr::App(f, a) => match check_hl(ctx, f, oracle)? {
            HlType::Fun(dom, cod) => {
                let ta = check_hl(ctx, a, oracle)?;
                if ta == *dom {
                    Ok(*cod)
                } else {
                    Err(mismatch(dom, ta, "application argument"))
                }
            }
            other => Err(mismatch("a function type", other, "application head")),
        },
        HlExpr::Ref(e1) => Ok(HlType::ref_(check_hl(ctx, e1, oracle)?)),
        HlExpr::Deref(e1) => match check_hl(ctx, e1, oracle)? {
            HlType::Ref(t) => Ok(*t),
            other => Err(mismatch("a reference type", other, "dereference")),
        },
        HlExpr::Assign(a, b) => match check_hl(ctx, a, oracle)? {
            HlType::Ref(t) => {
                let tb = check_hl(ctx, b, oracle)?;
                if tb == *t {
                    Ok(HlType::Unit)
                } else {
                    Err(mismatch(t, tb, "assignment"))
                }
            }
            other => Err(mismatch("a reference type", other, "assignment target")),
        },
        HlExpr::Boundary(ll, ty) => {
            let tll = check_ll(ctx, ll, oracle)?;
            if oracle.convertible(ty, &tll) {
                Ok(ty.clone())
            } else {
                Err(TypeError::NotConvertible {
                    hl: ty.clone(),
                    ll: tll,
                })
            }
        }
    }
}

/// Checks a RefLL expression, returning its type.
pub fn check_ll(
    ctx: &TypeCtx,
    e: &LlExpr,
    oracle: &dyn ConvertOracle,
) -> Result<LlType, TypeError> {
    match e {
        LlExpr::Int(_) => Ok(LlType::Int),
        LlExpr::Var(x) => ctx
            .ll(x)
            .cloned()
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        LlExpr::Array(es, elem) => {
            for e1 in es {
                let t = check_ll(ctx, e1, oracle)?;
                if &t != elem {
                    return Err(mismatch(elem, t, "array element"));
                }
            }
            Ok(LlType::array(elem.clone()))
        }
        LlExpr::Index(a, i) => {
            let ta = check_ll(ctx, a, oracle)?;
            let ti = check_ll(ctx, i, oracle)?;
            if ti != LlType::Int {
                return Err(mismatch(LlType::Int, ti, "array index"));
            }
            match ta {
                LlType::Array(t) => Ok(*t),
                other => Err(mismatch("an array type", other, "indexing")),
            }
        }
        LlExpr::Lam(x, ty, body) => {
            let tb = check_ll(&ctx.with_ll(x.clone(), ty.clone()), body, oracle)?;
            Ok(LlType::fun(ty.clone(), tb))
        }
        LlExpr::App(f, a) => match check_ll(ctx, f, oracle)? {
            LlType::Fun(dom, cod) => {
                let ta = check_ll(ctx, a, oracle)?;
                if ta == *dom {
                    Ok(*cod)
                } else {
                    Err(mismatch(dom, ta, "application argument"))
                }
            }
            other => Err(mismatch("a function type", other, "application head")),
        },
        LlExpr::Add(a, b) => {
            let ta = check_ll(ctx, a, oracle)?;
            let tb = check_ll(ctx, b, oracle)?;
            if ta != LlType::Int {
                return Err(mismatch(LlType::Int, ta, "addition"));
            }
            if tb != LlType::Int {
                return Err(mismatch(LlType::Int, tb, "addition"));
            }
            Ok(LlType::Int)
        }
        LlExpr::If0(c, t, f) => {
            let tc = check_ll(ctx, c, oracle)?;
            if tc != LlType::Int {
                return Err(mismatch(LlType::Int, tc, "if0 condition"));
            }
            let tt = check_ll(ctx, t, oracle)?;
            let tf = check_ll(ctx, f, oracle)?;
            if tt == tf {
                Ok(tt)
            } else {
                Err(mismatch(tt, tf, "if0 branches"))
            }
        }
        LlExpr::Ref(e1) => Ok(LlType::ref_(check_ll(ctx, e1, oracle)?)),
        LlExpr::Deref(e1) => match check_ll(ctx, e1, oracle)? {
            LlType::Ref(t) => Ok(*t),
            other => Err(mismatch("a reference type", other, "dereference")),
        },
        LlExpr::Assign(a, b) => match check_ll(ctx, a, oracle)? {
            LlType::Ref(t) => {
                let tb = check_ll(ctx, b, oracle)?;
                if tb == *t {
                    // Assignments evaluate to 0 in RefLL, so give them int.
                    Ok(LlType::Int)
                } else {
                    Err(mismatch(t, tb, "assignment"))
                }
            }
            other => Err(mismatch("a reference type", other, "assignment target")),
        },
        LlExpr::Boundary(hl, ty) => {
            let thl = check_hl(ctx, hl, oracle)?;
            if oracle.convertible(&thl, ty) {
                Ok(ty.clone())
            } else {
                Err(TypeError::NotConvertible {
                    hl: thl,
                    ll: ty.clone(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allow_bool_int(hl: &HlType, ll: &LlType) -> bool {
        matches!((hl, ll), (HlType::Bool, LlType::Int))
    }

    #[test]
    fn hl_basic_typing() {
        let oracle = DenyAllConversions;
        let ctx = TypeCtx::empty();
        assert_eq!(check_hl(&ctx, &HlExpr::unit(), &oracle), Ok(HlType::Unit));
        assert_eq!(
            check_hl(&ctx, &HlExpr::bool_(true), &oracle),
            Ok(HlType::Bool)
        );
        let pair = HlExpr::pair(HlExpr::bool_(true), HlExpr::unit());
        assert_eq!(
            check_hl(&ctx, &pair, &oracle),
            Ok(HlType::prod(HlType::Bool, HlType::Unit))
        );
        assert_eq!(
            check_hl(&ctx, &HlExpr::fst(pair.clone()), &oracle),
            Ok(HlType::Bool)
        );
        assert_eq!(
            check_hl(&ctx, &HlExpr::snd(pair), &oracle),
            Ok(HlType::Unit)
        );
    }

    #[test]
    fn hl_functions_and_applications() {
        let oracle = DenyAllConversions;
        let ctx = TypeCtx::empty();
        // λx:bool. if x then () else ()
        let f = HlExpr::lam(
            "x",
            HlType::Bool,
            HlExpr::if_(HlExpr::var("x"), HlExpr::unit(), HlExpr::unit()),
        );
        assert_eq!(
            check_hl(&ctx, &f, &oracle),
            Ok(HlType::fun(HlType::Bool, HlType::Unit))
        );
        let app = HlExpr::app(f.clone(), HlExpr::bool_(false));
        assert_eq!(check_hl(&ctx, &app, &oracle), Ok(HlType::Unit));
        let bad = HlExpr::app(f, HlExpr::unit());
        assert!(matches!(
            check_hl(&ctx, &bad, &oracle),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn hl_sums_and_match() {
        let oracle = DenyAllConversions;
        let ctx = TypeCtx::empty();
        let sum_ty = HlType::sum(HlType::Bool, HlType::Unit);
        let v = HlExpr::inl(HlExpr::bool_(true), sum_ty.clone());
        assert_eq!(check_hl(&ctx, &v, &oracle), Ok(sum_ty.clone()));
        let m = HlExpr::match_(v, "x", HlExpr::var("x"), "y", HlExpr::bool_(false));
        assert_eq!(check_hl(&ctx, &m, &oracle), Ok(HlType::Bool));
        // Wrong payload for inr.
        let bad = HlExpr::inr(HlExpr::bool_(true), sum_ty);
        assert!(check_hl(&ctx, &bad, &oracle).is_err());
    }

    #[test]
    fn hl_references() {
        let oracle = DenyAllConversions;
        let ctx = TypeCtx::empty();
        let r = HlExpr::ref_(HlExpr::bool_(true));
        assert_eq!(check_hl(&ctx, &r, &oracle), Ok(HlType::ref_(HlType::Bool)));
        assert_eq!(
            check_hl(&ctx, &HlExpr::deref(r.clone()), &oracle),
            Ok(HlType::Bool)
        );
        assert_eq!(
            check_hl(
                &ctx,
                &HlExpr::assign(r.clone(), HlExpr::bool_(false)),
                &oracle
            ),
            Ok(HlType::Unit)
        );
        assert!(check_hl(&ctx, &HlExpr::assign(r, HlExpr::unit()), &oracle).is_err());
    }

    #[test]
    fn ll_basic_typing() {
        let oracle = DenyAllConversions;
        let ctx = TypeCtx::empty();
        assert_eq!(check_ll(&ctx, &LlExpr::int(3), &oracle), Ok(LlType::Int));
        let arr = LlExpr::array([LlExpr::int(1), LlExpr::int(2)], LlType::Int);
        assert_eq!(
            check_ll(&ctx, &arr, &oracle),
            Ok(LlType::array(LlType::Int))
        );
        assert_eq!(
            check_ll(&ctx, &LlExpr::index(arr, LlExpr::int(0)), &oracle),
            Ok(LlType::Int)
        );
        let add = LlExpr::add(LlExpr::int(1), LlExpr::int(2));
        assert_eq!(check_ll(&ctx, &add, &oracle), Ok(LlType::Int));
        let if0 = LlExpr::if0(LlExpr::int(0), LlExpr::int(1), LlExpr::int(2));
        assert_eq!(check_ll(&ctx, &if0, &oracle), Ok(LlType::Int));
    }

    #[test]
    fn ll_heterogeneous_array_rejected() {
        let oracle = DenyAllConversions;
        let arr = LlExpr::Array(
            vec![
                LlExpr::int(1),
                LlExpr::lam("x", LlType::Int, LlExpr::var("x")),
            ],
            LlType::Int,
        );
        assert!(check_ll(&TypeCtx::empty(), &arr, &oracle).is_err());
    }

    #[test]
    fn boundary_requires_convertibility() {
        let ctx = TypeCtx::empty();
        // ⦇ 1 ⦈bool needs bool ∼ int.
        let e = HlExpr::boundary(LlExpr::int(1), HlType::Bool);
        assert!(matches!(
            check_hl(&ctx, &e, &DenyAllConversions),
            Err(TypeError::NotConvertible { .. })
        ));
        assert_eq!(check_hl(&ctx, &e, &allow_bool_int), Ok(HlType::Bool));

        // The other direction: ⦇ true ⦈int needs bool ∼ int.
        let e = LlExpr::boundary(HlExpr::bool_(true), LlType::Int);
        assert!(check_ll(&ctx, &e, &DenyAllConversions).is_err());
        assert_eq!(check_ll(&ctx, &e, &allow_bool_int), Ok(LlType::Int));
    }

    #[test]
    fn environments_of_both_languages_are_threaded() {
        let ctx = TypeCtx::empty()
            .with_hl(Var::new("h"), HlType::Bool)
            .with_ll(Var::new("l"), LlType::Int);
        // A RefHL term containing a RefLL boundary that uses the RefLL
        // variable `l`, and vice versa.
        let e = HlExpr::if_(
            HlExpr::var("h"),
            HlExpr::boundary(LlExpr::var("l"), HlType::Bool),
            HlExpr::bool_(false),
        );
        assert_eq!(check_hl(&ctx, &e, &allow_bool_int), Ok(HlType::Bool));

        let e = LlExpr::add(
            LlExpr::var("l"),
            LlExpr::boundary(HlExpr::var("h"), LlType::Int),
        );
        assert_eq!(check_ll(&ctx, &e, &allow_bool_int), Ok(LlType::Int));
    }

    #[test]
    fn unbound_variables_are_reported() {
        let err = check_hl(
            &TypeCtx::empty(),
            &HlExpr::var("ghost"),
            &DenyAllConversions,
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "unbound variable ghost");
    }

    #[test]
    fn error_display_mentions_context() {
        let err = check_hl(
            &TypeCtx::empty(),
            &HlExpr::if_(HlExpr::unit(), HlExpr::unit(), HlExpr::unit()),
            &DenyAllConversions,
        )
        .unwrap_err();
        assert!(err.to_string().contains("if condition"));
    }
}
