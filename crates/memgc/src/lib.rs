//! # memgc-interop
//!
//! Case study 3 of the paper (§5): **memory management & polymorphism**.
//! MiniML (garbage-collected references, type polymorphism, foreign types
//! `⟨𝜏⟩`) interoperates with **L3** (linear capabilities `cap ζ 𝜏`, aliasable
//! pointers `ptr ζ`, manual memory), both compiled to LCVM extended with
//! `alloc`/`free`/`gcmov`/`callgc` (Fig. 12).
//!
//! The two headline results reproduced here:
//!
//! * **moving memory without copying** — because an L3 capability certifies
//!   unique ownership, the conversion `REF 𝜏 ∼ ref τ` can convert the
//!   contents *in place* and hand the very same location to the garbage
//!   collector with `gcmov`; the other direction must copy into a fresh
//!   manual cell (§5 conversions);
//! * **polymorphism via interoperability** — L3 values of `Duplicable` type
//!   can inhabit MiniML's foreign type `⟨𝜏⟩` with no runtime cost, so MiniML
//!   type abstractions can be instantiated at foreign types and L3 can use
//!   MiniML generics (paper examples (1) and (2), plus Church-boolean
//!   conversions).
//!
//! Crate layout mirrors the other case studies: [`syntax`], [`typecheck`],
//! [`compile`] (Fig. 13), [`convert`], [`multilang`], [`model`] (Fig. 14,
//! executable approximation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod convert;
pub mod gen;
pub mod harness;
pub mod model;
pub mod multilang;
pub mod syntax;
pub mod typecheck;

pub use harness::{MemGcCase, MgProgram};
pub use multilang::{MemGcMultiLang, MemGcMultiLangError};
pub use syntax::{L3Expr, L3Type, PolyExpr, PolyType};
