//! The end-to-end driver for case study 3.
//!
//! Since PR 2 the driver is the shared [`InteropPipeline`] from
//! `semint-core`; this module supplies the §5 instantiation
//! ([`MemGcSystem`]).

use crate::compile::{MemGcCompileError, MemGcCompiler};
use crate::convert::MemGcConversions;
use crate::syntax::{L3Expr, L3Type, PolyExpr, PolyType};
use crate::typecheck::{check_l3, check_poly, MemGcCtx, MemGcTypeError};
use lcvm::{Expr, Machine, RunResult};
use semint_core::pipeline::{InteropPipeline, InteropSystem, PipelineError};
use semint_core::Fuel;
use std::fmt;

/// Errors from the §5 pipeline: the shared [`PipelineError`] shape
/// instantiated at this case study's stage errors.
pub type MemGcMultiLangError = PipelineError<MemGcTypeError, MemGcCompileError>;

/// A closed §5 multi-language program, hosted in either language.
#[derive(Debug, Clone, PartialEq)]
pub enum MgProgram {
    /// A MiniML-hosted program.
    Ml(PolyExpr),
    /// An L3-hosted program.
    L3(L3Expr),
}

impl fmt::Display for MgProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgProgram::Ml(e) => write!(f, "{e}"),
            MgProgram::L3(e) => write!(f, "{e}"),
        }
    }
}

/// A source type of either §5 language.
#[derive(Debug, Clone, PartialEq)]
pub enum MgSourceType {
    /// A MiniML type.
    Ml(PolyType),
    /// An L3 type.
    L3(L3Type),
}

impl fmt::Display for MgSourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgSourceType::Ml(t) => write!(f, "{t} (MiniML)"),
            MgSourceType::L3(t) => write!(f, "{t} (L3)"),
        }
    }
}

/// The §5 instantiation of [`InteropSystem`]: MiniML + L3 compiled (with §5
/// glue) to LCVM with GC and manual memory.
#[derive(Debug, Clone, Default)]
pub struct MemGcSystem {
    conversions: MemGcConversions,
}

impl MemGcSystem {
    /// A system over the standard (memoizing) rule set.
    pub fn new() -> Self {
        MemGcSystem {
            conversions: MemGcConversions::standard(),
        }
    }

    /// The conversion rule set in use.
    pub fn conversions(&self) -> &MemGcConversions {
        &self.conversions
    }
}

impl InteropSystem for MemGcSystem {
    type Program = MgProgram;
    type Ty = MgSourceType;
    type Artifact = Expr;
    type TypeError = MemGcTypeError;
    type CompileError = MemGcCompileError;
    type Exec = RunResult;

    fn typecheck(&self, program: &MgProgram) -> Result<MgSourceType, MemGcTypeError> {
        match program {
            MgProgram::Ml(e) => check_poly(&MemGcCtx::empty(), e, &self.conversions)
                .map(|(t, _)| MgSourceType::Ml(t)),
            MgProgram::L3(e) => {
                check_l3(&MemGcCtx::empty(), e, &self.conversions).map(|(t, _)| MgSourceType::L3(t))
            }
        }
    }

    fn compile(&self, program: &MgProgram) -> Result<Expr, MemGcCompileError> {
        let compiler = MemGcCompiler::new(&self.conversions, &self.conversions);
        match program {
            MgProgram::Ml(e) => compiler.compile_ml_program(e),
            MgProgram::L3(e) => compiler.compile_l3_program(e),
        }
    }

    fn execute(&self, artifact: Expr, fuel: Fuel) -> RunResult {
        Machine::run_expr(artifact, fuel)
    }

    /// Drives the whole batch through **one** LCVM machine, reset in place
    /// between programs (the continuation stack's grown buffer survives as
    /// an allocation, never as state), instead of constructing a machine
    /// per artifact.
    fn execute_batch(&self, artifacts: Vec<Expr>, fuel: Fuel) -> Vec<RunResult> {
        Machine::run_batch(artifacts, fuel)
    }
}

/// The §5 multi-language system: MiniML + L3 + the §5 conversions over
/// LCVM with GC and manual memory, driven by the shared [`InteropPipeline`].
#[derive(Debug, Clone, Default)]
pub struct MemGcMultiLang {
    pipeline: InteropPipeline<MemGcSystem>,
}

impl MemGcMultiLang {
    /// A system with the standard rule set and default fuel.
    pub fn new() -> Self {
        MemGcMultiLang {
            pipeline: InteropPipeline::new(MemGcSystem::new()),
        }
    }

    /// Overrides the fuel budget.
    pub fn with_fuel(mut self, fuel: Fuel) -> Self {
        self.pipeline = self.pipeline.with_fuel(fuel);
        self
    }

    /// The conversion rule set in use.
    pub fn conversions(&self) -> &MemGcConversions {
        self.pipeline.system().conversions()
    }

    /// The shared pipeline driving this system.
    pub fn pipeline(&self) -> &InteropPipeline<MemGcSystem> {
        &self.pipeline
    }

    /// Type checks a closed multi-language program (either host language).
    pub fn typecheck(&self, program: &MgProgram) -> Result<MgSourceType, MemGcTypeError> {
        self.pipeline.typecheck(program)
    }

    /// Type checks a closed MiniML program.
    pub fn typecheck_ml(&self, e: &PolyExpr) -> Result<PolyType, MemGcTypeError> {
        check_poly(&MemGcCtx::empty(), e, self.conversions()).map(|(t, _)| t)
    }

    /// Type checks a closed L3 program.
    pub fn typecheck_l3(&self, e: &L3Expr) -> Result<L3Type, MemGcTypeError> {
        check_l3(&MemGcCtx::empty(), e, self.conversions()).map(|(t, _)| t)
    }

    /// Type checks and compiles a closed multi-language program.
    pub fn compile(&self, program: &MgProgram) -> Result<Expr, MemGcMultiLangError> {
        Ok(self.pipeline.check_and_compile(program)?.artifact)
    }

    /// Compiles a program already known to type check, skipping the
    /// pipeline's typecheck stage (the sweep engine re-checks the
    /// generator's type claim once up front).
    pub fn compile_only(&self, program: &MgProgram) -> Result<Expr, MemGcCompileError> {
        self.pipeline.system().compile(program)
    }

    /// Runs an already-compiled LCVM expression under an explicit fuel
    /// budget, consuming the artifact (no clone — the compile-once flow).
    pub fn execute_with_fuel(&self, compiled: Expr, fuel: Fuel) -> RunResult {
        self.pipeline.execute_with_fuel(compiled, fuel)
    }

    /// Runs a batch of already-compiled LCVM expressions under one fuel
    /// budget through a single reused machine (see
    /// [`InteropSystem::execute_batch`] on [`MemGcSystem`]), returning
    /// results in input order.
    pub fn execute_batch_with_fuel(&self, compiled: Vec<Expr>, fuel: Fuel) -> Vec<RunResult> {
        self.pipeline.execute_batch(compiled, fuel)
    }

    /// Type checks and compiles a closed MiniML program.
    pub fn compile_ml(&self, e: &PolyExpr) -> Result<Expr, MemGcMultiLangError> {
        self.compile(&MgProgram::Ml(e.clone()))
    }

    /// Type checks and compiles a closed L3 program.
    pub fn compile_l3(&self, e: &L3Expr) -> Result<Expr, MemGcMultiLangError> {
        self.compile(&MgProgram::L3(e.clone()))
    }

    /// Runs a closed multi-language program under the given fuel budget.
    pub fn run_with_fuel(
        &self,
        program: &MgProgram,
        fuel: Fuel,
    ) -> Result<RunResult, MemGcMultiLangError> {
        self.pipeline.run_with_fuel(program, fuel)
    }

    /// Type checks, compiles and runs a MiniML program.
    pub fn run_ml(&self, e: &PolyExpr) -> Result<RunResult, MemGcMultiLangError> {
        self.pipeline.run(&MgProgram::Ml(e.clone()))
    }

    /// Type checks, compiles and runs an L3 program.
    pub fn run_l3(&self, e: &L3Expr) -> Result<RunResult, MemGcMultiLangError> {
        self.pipeline.run(&MgProgram::L3(e.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcvm::{Halt, Slot, Value};

    fn sys() -> MemGcMultiLang {
        MemGcMultiLang::new()
    }

    /// The L3 program `new true` packaged for crossing the boundary: it has
    /// type `REF bool`.
    fn l3_new_bool(b: bool) -> L3Expr {
        L3Expr::new(L3Expr::bool_(b))
    }

    #[test]
    fn l3_memory_transfers_to_miniml_without_copying() {
        // MiniML: !⦇ new true ⦈(ref int)   — read the transferred reference.
        let e = PolyExpr::deref(PolyExpr::boundary(
            l3_new_bool(true),
            PolyType::ref_(PolyType::Int),
        ));
        let r = sys().run_ml(&e).unwrap();
        assert_eq!(r.halt, Halt::Value(Value::Int(0)));
        // Exactly one manual allocation happened (inside L3), zero GC
        // allocations: the cell was moved, not copied.
        assert_eq!(r.heap.stats().manual_allocs, 1);
        assert_eq!(r.heap.stats().gc_allocs, 0);
        assert_eq!(r.heap.stats().gcmovs, 1);
        assert_eq!(r.heap.manual_len(), 0, "the cell is now GC-managed");
    }

    #[test]
    fn transferred_memory_is_eventually_collected_not_leaked() {
        // Transfer a cell to MiniML, drop it on the floor, allocate again (via
        // another L3 new, which calls the GC first): the transferred cell is
        // unreachable by then and gets collected.
        let e = PolyExpr::snd(PolyExpr::pair(
            PolyExpr::boundary(l3_new_bool(true), PolyType::ref_(PolyType::Int)),
            PolyExpr::deref(PolyExpr::boundary(
                l3_new_bool(false),
                PolyType::ref_(PolyType::Int),
            )),
        ));
        let r = sys().run_ml(&e).unwrap();
        assert_eq!(r.halt, Halt::Value(Value::Int(1)));
        assert!(r.heap.stats().gc_runs >= 2);
    }

    #[test]
    fn miniml_reference_crosses_to_l3_as_a_fresh_package() {
        // L3: free ⦇ ref 5 ⦈(REF bool)  — the contents are copied+converted.
        let e = L3Expr::free(L3Expr::boundary(
            PolyExpr::ref_(PolyExpr::int(5)),
            L3Type::ref_like(L3Type::Bool),
        ));
        let r = sys().run_l3(&e).unwrap();
        // 5 collapses to false (1).
        assert_eq!(r.halt, Halt::Value(Value::Int(1)));
        assert_eq!(r.heap.stats().gc_allocs, 1);
        assert_eq!(r.heap.stats().manual_allocs, 1);
        assert_eq!(r.heap.stats().frees, 1);
    }

    #[test]
    fn paper_example_1_polymorphic_instantiation_at_a_foreign_type() {
        // (Λα. λx:α. λy:α. y) [⟨bool⟩] ⦇true⦈⟨bool⟩ ⦇false⦈⟨bool⟩
        let second = PolyExpr::tylam(
            "α",
            PolyExpr::lam(
                "x",
                PolyType::tvar("α"),
                PolyExpr::lam("y", PolyType::tvar("α"), PolyExpr::var("y")),
            ),
        );
        let e = PolyExpr::app(
            PolyExpr::app(
                PolyExpr::tyapp(second, PolyType::foreign(L3Type::Bool)),
                PolyExpr::boundary(L3Expr::bool_(true), PolyType::foreign(L3Type::Bool)),
            ),
            PolyExpr::boundary(L3Expr::bool_(false), PolyType::foreign(L3Type::Bool)),
        );
        let sysm = sys();
        assert_eq!(
            sysm.typecheck_ml(&e).unwrap(),
            PolyType::foreign(L3Type::Bool)
        );
        let r = sysm.run_ml(&e).unwrap();
        assert_eq!(
            r.halt,
            Halt::Value(Value::Int(1)),
            "the second argument (false) is returned"
        );
    }

    #[test]
    fn paper_example_2_church_boolean_conversion() {
        // (λx:BOOL. x) ⦇true⦈BOOL  where BOOL ≜ ∀α. α → α → α
        let e = PolyExpr::app(
            PolyExpr::lam("x", PolyType::church_bool(), PolyExpr::var("x")),
            PolyExpr::boundary(L3Expr::bool_(true), PolyType::church_bool()),
        );
        let sysm = sys();
        assert_eq!(sysm.typecheck_ml(&e).unwrap(), PolyType::church_bool());
        // Use the resulting Church boolean from L3 by converting it back.
        let use_it = L3Expr::if_(
            L3Expr::boundary(e, L3Type::Bool),
            L3Expr::bool_(false),
            L3Expr::bool_(true),
        );
        let r = sysm.run_l3(&use_it).unwrap();
        // The boolean was true, so the first branch runs and returns false (1).
        assert_eq!(r.halt, Halt::Value(Value::Int(1)));
    }

    #[test]
    fn miniml_functions_cross_as_banged_lollis() {
        // L3 applies a MiniML increment-ish function to a boolean.
        let ml_fun = PolyExpr::lam(
            "x",
            PolyType::Int,
            PolyExpr::add(PolyExpr::var("x"), PolyExpr::int(0)),
        );
        let l3_ty = L3Type::bang(L3Type::lolli(L3Type::bang(L3Type::Bool), L3Type::Bool));
        let e = L3Expr::let_bang(
            "f",
            L3Expr::boundary(ml_fun, l3_ty),
            L3Expr::app(L3Expr::uvar("f"), L3Expr::bang(L3Expr::bool_(true))),
        );
        let r = sys().run_l3(&e).unwrap();
        assert_eq!(r.halt, Halt::Value(Value::Int(0)));
    }

    #[test]
    fn linear_capabilities_cannot_be_smuggled_through_foreign_types() {
        // ⦇ new true ⦈⟨∃ζ. cap ζ bool ⊗ !ptr ζ⟩ — REF bool is not Duplicable,
        // so the boundary is rejected statically.
        let e = PolyExpr::boundary(
            l3_new_bool(true),
            PolyType::foreign(L3Type::ref_like(L3Type::Bool)),
        );
        assert!(matches!(
            sys().run_ml(&e),
            Err(MemGcMultiLangError::Type(
                MemGcTypeError::NotConvertible { .. }
            ))
        ));
    }

    #[test]
    fn aliasing_survives_the_transfer_to_miniml() {
        // Transfer a cell to MiniML, then write through the MiniML reference
        // and observe the result through the same reference: a plain sanity
        // check that gcmov preserved identity and mutability.
        let e = PolyExpr::app(
            PolyExpr::lam(
                "r",
                PolyType::ref_(PolyType::Int),
                PolyExpr::snd(PolyExpr::pair(
                    PolyExpr::assign(PolyExpr::var("r"), PolyExpr::int(9)),
                    PolyExpr::deref(PolyExpr::var("r")),
                )),
            ),
            PolyExpr::boundary(l3_new_bool(true), PolyType::ref_(PolyType::Int)),
        );
        let r = sys().run_ml(&e).unwrap();
        assert_eq!(r.halt, Halt::Value(Value::Int(9)));
    }

    #[test]
    fn well_typed_programs_are_safe() {
        let sysm = sys();
        let ml_programs = vec![
            PolyExpr::deref(PolyExpr::boundary(
                l3_new_bool(false),
                PolyType::ref_(PolyType::Int),
            )),
            PolyExpr::boundary(L3Expr::unit(), PolyType::Unit),
            PolyExpr::add(
                PolyExpr::int(1),
                PolyExpr::boundary(L3Expr::bool_(true), PolyType::Int),
            ),
        ];
        for e in ml_programs {
            let r = sysm.run_ml(&e).unwrap();
            assert!(r.halt.is_safe(), "{e} produced {:?}", r.halt);
        }
        let l3_programs = vec![
            L3Expr::free(L3Expr::boundary(
                PolyExpr::ref_(PolyExpr::int(3)),
                L3Type::ref_like(L3Type::Bool),
            )),
            L3Expr::if_(
                L3Expr::boundary(PolyExpr::int(0), L3Type::Bool),
                L3Expr::unit(),
                L3Expr::unit(),
            ),
        ];
        for e in l3_programs {
            let r = sysm.run_l3(&e).unwrap();
            assert!(r.halt.is_safe(), "{e} produced {:?}", r.halt);
        }
    }

    #[test]
    fn transferred_cell_slot_is_gc_after_the_boundary() {
        let e = PolyExpr::boundary(l3_new_bool(true), PolyType::ref_(PolyType::Int));
        let r = sys().run_ml(&e).unwrap();
        let loc = r
            .halt
            .value_ref()
            .and_then(|v| v.as_loc())
            .expect("a location");
        assert!(matches!(r.heap.slot(loc), Some(Slot::Gc(Value::Int(0)))));
    }
}
