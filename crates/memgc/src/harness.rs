//! The [`CaseStudy`] instance for case study 3 (memory management &
//! polymorphism), consumed by the `semint-harness` engine.

use crate::gen::{MemGcGenConfig, MemGcProgramGen};
use crate::model::MemGcModelChecker;
use crate::multilang::MemGcMultiLang;
use crate::syntax::{L3Expr, L3Type, PolyExpr, PolyType};
use lcvm::{Expr, RunResult};
use semint_core::case::{CaseStudy, CheckFailure, GenProfile, Scenario};
use semint_core::stats::{OutcomeClass, RunStats};
use semint_core::{Fuel, GlueCacheStats};

pub use crate::multilang::{MgProgram, MgSourceType};

/// Case study 3 packaged for the harness engine.
///
/// The `broken` flag simulates broken conversion glue: the compiled program
/// is wrapped in a projection (`fst`), standing in for glue code that treats
/// every converted value as a pair.  Scenarios whose result is not a pair
/// then fail `Type` under the model's safety check.
#[derive(Debug, Clone)]
pub struct MemGcCase {
    system: MemGcMultiLang,
    broken: bool,
}

impl MemGcCase {
    /// The standard (sound) rule set.
    pub fn standard() -> Self {
        MemGcCase {
            system: MemGcMultiLang::new(),
            broken: false,
        }
    }

    /// The deliberately broken glue (see the type-level docs).
    pub fn broken() -> Self {
        MemGcCase {
            system: MemGcMultiLang::new(),
            broken: true,
        }
    }
}

impl Default for MemGcCase {
    fn default() -> Self {
        MemGcCase::standard()
    }
}

fn push_ml(out: &mut Vec<MgProgram>, e: &PolyExpr) {
    out.push(MgProgram::Ml(e.clone()));
}

fn push_l3(out: &mut Vec<MgProgram>, e: &L3Expr) {
    out.push(MgProgram::L3(e.clone()));
}

/// Immediate subterms of a MiniML expression, as candidate shrinks.
fn ml_children(e: &PolyExpr, out: &mut Vec<MgProgram>) {
    match e {
        PolyExpr::Unit | PolyExpr::Int(_) | PolyExpr::Var(_) => {}
        PolyExpr::Fst(a)
        | PolyExpr::Snd(a)
        | PolyExpr::Inl(a, _)
        | PolyExpr::Inr(a, _)
        | PolyExpr::Lam(_, _, a)
        | PolyExpr::TyLam(_, a)
        | PolyExpr::TyApp(a, _)
        | PolyExpr::Ref(a)
        | PolyExpr::Deref(a) => push_ml(out, a),
        PolyExpr::Pair(a, b)
        | PolyExpr::App(a, b)
        | PolyExpr::Assign(a, b)
        | PolyExpr::Add(a, b) => {
            push_ml(out, a);
            push_ml(out, b);
        }
        PolyExpr::Match(s, _, l, _, r) => {
            push_ml(out, s);
            push_ml(out, l);
            push_ml(out, r);
        }
        PolyExpr::Boundary(l3, _) => push_l3(out, l3),
    }
}

/// Immediate subterms of an L3 expression, as candidate shrinks.
fn l3_children(e: &L3Expr, out: &mut Vec<MgProgram>) {
    match e {
        L3Expr::Unit | L3Expr::Bool(_) | L3Expr::Var(_) | L3Expr::UVar(_) => {}
        L3Expr::Lam(_, _, a)
        | L3Expr::Bang(a)
        | L3Expr::Dupl(a)
        | L3Expr::Drop(a)
        | L3Expr::New(a)
        | L3Expr::Free(a)
        | L3Expr::LocLam(_, a)
        | L3Expr::LocApp(a, _)
        | L3Expr::Pack(_, a, _) => push_l3(out, a),
        L3Expr::App(a, b)
        | L3Expr::Pair(a, b)
        | L3Expr::LetPair(_, _, a, b)
        | L3Expr::LetUnit(a, b)
        | L3Expr::LetBang(_, a, b)
        | L3Expr::Unpack(_, _, a, b) => {
            push_l3(out, a);
            push_l3(out, b);
        }
        L3Expr::If(c, t, f) => {
            push_l3(out, c);
            push_l3(out, t);
            push_l3(out, f);
        }
        L3Expr::Swap(a, b, c) => {
            push_l3(out, a);
            push_l3(out, b);
            push_l3(out, c);
        }
        L3Expr::Boundary(ml, _) => push_ml(out, ml),
    }
}

impl CaseStudy for MemGcCase {
    type Program = MgProgram;
    type Ty = MgSourceType;
    type Report = RunResult;
    type Compiled = Expr;

    fn name(&self) -> &'static str {
        "memgc"
    }

    fn generate(&self, seed: u64, profile: &GenProfile) -> Scenario<MgProgram, MgSourceType> {
        let mut gen = MemGcProgramGen::with_config(seed, MemGcGenConfig::from(profile));
        // Every fourth scenario is L3-hosted.
        if seed % 4 == 3 {
            let ty = gen.gen_l3_type(profile.type_depth);
            let program = gen.gen_l3(&ty);
            Scenario {
                seed,
                program: MgProgram::L3(program),
                ty: MgSourceType::L3(ty),
            }
        } else {
            let ty = gen.gen_goal_ml_type();
            let program = gen.gen_ml(&ty);
            Scenario {
                seed,
                program: MgProgram::Ml(program),
                ty: MgSourceType::Ml(ty),
            }
        }
    }

    fn typecheck(&self, program: &MgProgram) -> Result<MgSourceType, String> {
        self.system.typecheck(program).map_err(|e| e.to_string())
    }

    fn compile(&self, program: &MgProgram) -> Result<Expr, String> {
        self.system.compile_only(program).map_err(|e| e.to_string())
    }

    fn execute(&self, compiled: Expr, fuel: Fuel) -> RunResult {
        self.system.execute_with_fuel(compiled, fuel)
    }

    fn execute_batch(&self, batch: Vec<Expr>, fuel: Fuel) -> Vec<RunResult> {
        self.system.execute_batch_with_fuel(batch, fuel)
    }

    fn stats(&self, report: &RunResult) -> RunStats {
        use lcvm::Halt;
        let outcome = match &report.halt {
            Halt::Value(_) => OutcomeClass::Value,
            Halt::Fail(c) => OutcomeClass::Fail(*c),
            Halt::OutOfFuel => OutcomeClass::OutOfFuel,
            Halt::PhantomStuck { .. } => OutcomeClass::Stuck,
        };
        RunStats {
            outcome,
            steps: report.steps,
            counters: report.counters,
        }
    }

    fn model_check_compiled(
        &self,
        program: &MgProgram,
        _ty: &MgSourceType,
        compiled: &Expr,
    ) -> Result<(), CheckFailure> {
        // The broken glue projects every result as if it were a pair (the
        // only mode that needs its own copy of the borrowed artifact).
        let broken_wrap;
        let checked: &Expr = if self.broken {
            broken_wrap = Expr::fst(compiled.clone());
            &broken_wrap
        } else {
            compiled
        };

        let checker = MemGcModelChecker::new();
        checker
            .check_type_safety(checked)
            .map_err(|ce| CheckFailure {
                claim: if self.broken {
                    format!("deliberately broken glue: {}", ce.claim)
                } else {
                    ce.claim
                },
                witness: program.to_string(),
                reason: ce.reason,
            })
    }

    fn shrink(&self, program: &MgProgram) -> Vec<MgProgram> {
        let mut out = Vec::new();
        match program {
            MgProgram::Ml(e) => ml_children(e, &mut out),
            MgProgram::L3(e) => l3_children(e, &mut out),
        }
        out
    }

    fn boundary_count(&self, program: &MgProgram) -> usize {
        match program {
            MgProgram::Ml(e) => e.boundary_count(),
            MgProgram::L3(e) => e.boundary_count(),
        }
    }

    fn check_conversions(&self) -> Result<(), CheckFailure> {
        // §5's executable conversion check is transfer soundness for the
        // in-place `gcmov` move at representative payload types.
        let checker = MemGcModelChecker::new();
        let catalogue = [
            (PolyType::Int, L3Type::Bool, lcvm::Value::Int(0)),
            (
                PolyType::prod(PolyType::Int, PolyType::Int),
                L3Type::tensor(L3Type::Bool, L3Type::Bool),
                lcvm::Value::Pair(Box::new(lcvm::Value::Int(0)), Box::new(lcvm::Value::Int(1))),
            ),
        ];
        for (ml_payload, l3_payload, initial) in catalogue {
            checker
                .check_transfer_soundness(&ml_payload, &l3_payload, initial)
                .map_err(|ce| CheckFailure {
                    claim: ce.claim,
                    witness: format!("{ml_payload} ∼ {l3_payload}"),
                    reason: ce.reason,
                })?;
        }
        Ok(())
    }

    fn glue_cache_stats(&self) -> Option<GlueCacheStats> {
        Some(self.system.conversions().cache().stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_typecheck_at_their_claimed_type() {
        let case = MemGcCase::standard();
        let cfg = GenProfile::standard();
        for seed in 0..40 {
            let scen = case.generate(seed, &cfg);
            let checked = case
                .typecheck(&scen.program)
                .expect("well-typed by construction");
            assert_eq!(checked, scen.ty, "seed {seed}");
        }
    }

    #[test]
    fn model_check_accepts_sound_scenarios() {
        let case = MemGcCase::standard();
        let cfg = GenProfile::standard();
        for seed in 0..12 {
            let scen = case.generate(seed, &cfg);
            case.model_check(&scen.program, &scen.ty)
                .unwrap_or_else(|f| panic!("seed {seed}: {f}"));
        }
    }

    #[test]
    fn broken_glue_is_refuted_for_some_seed() {
        let case = MemGcCase::broken();
        let cfg = GenProfile::standard();
        let refuted = (0..60).any(|seed| {
            let scen = case.generate(seed, &cfg);
            case.model_check(&scen.program, &scen.ty).is_err()
        });
        assert!(refuted, "no seed in 0..60 refuted the broken glue");
    }

    #[test]
    fn shrink_yields_immediate_subterms() {
        let case = MemGcCase::standard();
        let p = MgProgram::L3(L3Expr::free(L3Expr::new(L3Expr::bool_(true))));
        let shrinks = case.shrink(&p);
        assert_eq!(shrinks.len(), 1);
        assert!(matches!(&shrinks[0], MgProgram::L3(L3Expr::New(_))));
    }
}
