//! Static semantics of the §5 languages.
//!
//! MiniML is checked with standard polymorphic typing rules (plus the foreign
//! type `⟨𝜏⟩`, which has no introduction or elimination forms of its own).
//! L3 is checked linearly: every variable bound linearly must be used exactly
//! once, capabilities convey ownership, and the `Duplicable` subset may be
//! duplicated/dropped explicitly.  As in the other case studies, usage
//! accounting makes the declarative environment-splitting rules algorithmic,
//! and both checkers thread both environments because open terms may cross
//! boundaries.

use crate::syntax::{L3Expr, L3Type, LocVar, PolyExpr, PolyType, TyVar};
use semint_core::Var;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// The convertibility judgment `τ ∼ 𝜏` as consulted by the type checkers.
pub trait MemGcConvertOracle {
    /// Is MiniML type `ml` interconvertible with L3 type `l3`?
    fn convertible(&self, ml: &PolyType, l3: &L3Type) -> bool;
}

impl<F> MemGcConvertOracle for F
where
    F: Fn(&PolyType, &L3Type) -> bool,
{
    fn convertible(&self, ml: &PolyType, l3: &L3Type) -> bool {
        self(ml, l3)
    }
}

/// An oracle with no conversions.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoConversions;

impl MemGcConvertOracle for NoConversions {
    fn convertible(&self, _: &PolyType, _: &L3Type) -> bool {
        false
    }
}

/// Linear-variable usage.
pub type Usage = BTreeSet<Var>;

/// The combined typing context `Δ; Γ; Γ̄; Ω`.
#[derive(Debug, Clone, Default)]
pub struct MemGcCtx {
    ml: HashMap<Var, PolyType>,
    tyvars: BTreeSet<TyVar>,
    locvars: BTreeSet<LocVar>,
    l3_unrestricted: HashMap<Var, L3Type>,
    l3_linear: HashMap<Var, L3Type>,
}

impl MemGcCtx {
    /// The empty context.
    pub fn empty() -> Self {
        MemGcCtx::default()
    }
    /// Extends the MiniML environment.
    pub fn with_ml(&self, x: Var, ty: PolyType) -> Self {
        let mut c = self.clone();
        c.ml.insert(x, ty);
        c
    }
    /// Brings a type variable into scope.
    pub fn with_tyvar(&self, a: TyVar) -> Self {
        let mut c = self.clone();
        c.tyvars.insert(a);
        c
    }
    /// Brings a location variable into scope.
    pub fn with_locvar(&self, z: LocVar) -> Self {
        let mut c = self.clone();
        c.locvars.insert(z);
        c
    }
    /// Extends L3's unrestricted environment.
    pub fn with_l3_unrestricted(&self, x: Var, ty: L3Type) -> Self {
        let mut c = self.clone();
        c.l3_unrestricted.insert(x, ty);
        c
    }
    /// Extends L3's linear environment.
    pub fn with_l3_linear(&self, x: Var, ty: L3Type) -> Self {
        let mut c = self.clone();
        c.l3_linear.insert(x, ty);
        c
    }
}

/// Type errors for the §5 languages.
#[derive(Debug, Clone, PartialEq)]
pub enum MemGcTypeError {
    /// A variable, type variable or location variable was not in scope.
    Unbound(String),
    /// Two types that had to match did not.
    Mismatch {
        /// What the context required.
        expected: String,
        /// What was found.
        found: String,
        /// A short description of the construct.
        context: &'static str,
    },
    /// A linear variable was used more than once.
    LinearReuse(Var),
    /// A linear variable was never used (L3 is linear, not affine).
    LinearUnused(Var),
    /// `dupl`/`drop`/foreign embedding applied to a non-`Duplicable` type.
    NotDuplicable(L3Type),
    /// `!e` captured a linear resource.
    BangCapturesLinear(Var),
    /// A boundary was used at a type pair with no convertibility rule.
    NotConvertible {
        /// The MiniML side.
        ml: PolyType,
        /// The L3 side.
        l3: L3Type,
    },
}

impl fmt::Display for MemGcTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemGcTypeError::Unbound(x) => write!(f, "unbound {x}"),
            MemGcTypeError::Mismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, found {found}"
                )
            }
            MemGcTypeError::LinearReuse(x) => write!(f, "linear variable {x} used more than once"),
            MemGcTypeError::LinearUnused(x) => write!(f, "linear variable {x} is never used"),
            MemGcTypeError::NotDuplicable(t) => write!(f, "type {t} is not Duplicable"),
            MemGcTypeError::BangCapturesLinear(x) => {
                write!(f, "!-value captures linear variable {x}")
            }
            MemGcTypeError::NotConvertible { ml, l3 } => {
                write!(f, "no convertibility rule {ml} ∼ {l3}")
            }
        }
    }
}

impl std::error::Error for MemGcTypeError {}

fn mismatch(
    expected: impl fmt::Display,
    found: impl fmt::Display,
    context: &'static str,
) -> MemGcTypeError {
    MemGcTypeError::Mismatch {
        expected: expected.to_string(),
        found: found.to_string(),
        context,
    }
}

fn split(u1: &Usage, u2: &Usage) -> Result<Usage, MemGcTypeError> {
    if let Some(x) = u1.intersection(u2).next() {
        return Err(MemGcTypeError::LinearReuse(x.clone()));
    }
    Ok(u1.union(u2).cloned().collect())
}

/// Removes a linear binder from the usage set, insisting it was used.
fn consume_binder(mut usage: Usage, x: &Var) -> Result<Usage, MemGcTypeError> {
    if !usage.remove(x) {
        return Err(MemGcTypeError::LinearUnused(x.clone()));
    }
    Ok(usage)
}

fn does_loc_occur(ty: &L3Type, z: &LocVar) -> bool {
    match ty {
        L3Type::Unit | L3Type::Bool => false,
        L3Type::Tensor(a, b) | L3Type::Lolli(a, b) => does_loc_occur(a, z) || does_loc_occur(b, z),
        L3Type::Bang(a) => does_loc_occur(a, z),
        L3Type::Ptr(w) => w == z,
        L3Type::Cap(w, t) => w == z || does_loc_occur(t, z),
        L3Type::ForallLoc(w, t) | L3Type::ExistsLoc(w, t) => w != z && does_loc_occur(t, z),
    }
}

/// Checks a MiniML expression, returning its type and the linear usage of any
/// L3 resources reached through boundaries.
pub fn check_poly(
    ctx: &MemGcCtx,
    e: &PolyExpr,
    oracle: &dyn MemGcConvertOracle,
) -> Result<(PolyType, Usage), MemGcTypeError> {
    match e {
        PolyExpr::Unit => Ok((PolyType::Unit, Usage::new())),
        PolyExpr::Int(_) => Ok((PolyType::Int, Usage::new())),
        PolyExpr::Var(x) => ctx
            .ml
            .get(x)
            .cloned()
            .map(|t| (t, Usage::new()))
            .ok_or_else(|| MemGcTypeError::Unbound(x.to_string())),
        PolyExpr::Pair(a, b) => {
            let (ta, ua) = check_poly(ctx, a, oracle)?;
            let (tb, ub) = check_poly(ctx, b, oracle)?;
            Ok((PolyType::prod(ta, tb), split(&ua, &ub)?))
        }
        PolyExpr::Fst(e1) => match check_poly(ctx, e1, oracle)? {
            (PolyType::Prod(a, _), u) => Ok((*a, u)),
            (other, _) => Err(mismatch("a product type", other, "fst")),
        },
        PolyExpr::Snd(e1) => match check_poly(ctx, e1, oracle)? {
            (PolyType::Prod(_, b), u) => Ok((*b, u)),
            (other, _) => Err(mismatch("a product type", other, "snd")),
        },
        PolyExpr::Inl(e1, ty) => match ty {
            PolyType::Sum(l, _) => {
                let (t, u) = check_poly(ctx, e1, oracle)?;
                if &t == l.as_ref() {
                    Ok((ty.clone(), u))
                } else {
                    Err(mismatch(l, t, "inl"))
                }
            }
            other => Err(mismatch("a sum type", other, "inl annotation")),
        },
        PolyExpr::Inr(e1, ty) => match ty {
            PolyType::Sum(_, r) => {
                let (t, u) = check_poly(ctx, e1, oracle)?;
                if &t == r.as_ref() {
                    Ok((ty.clone(), u))
                } else {
                    Err(mismatch(r, t, "inr"))
                }
            }
            other => Err(mismatch("a sum type", other, "inr annotation")),
        },
        PolyExpr::Match(s, x, l, y, r) => {
            let (ts, us) = check_poly(ctx, s, oracle)?;
            match ts {
                PolyType::Sum(tl, tr) => {
                    let (t1, u1) = check_poly(&ctx.with_ml(x.clone(), *tl), l, oracle)?;
                    let (t2, u2) = check_poly(&ctx.with_ml(y.clone(), *tr), r, oracle)?;
                    if t1 != t2 {
                        return Err(mismatch(t1, t2, "match branches"));
                    }
                    let branches: Usage = u1.union(&u2).cloned().collect();
                    Ok((t1, split(&us, &branches)?))
                }
                other => Err(mismatch("a sum type", other, "match scrutinee")),
            }
        }
        PolyExpr::Lam(x, ty, body) => {
            let (tb, ub) = check_poly(&ctx.with_ml(x.clone(), ty.clone()), body, oracle)?;
            // A MiniML function may be applied many times, so it must not
            // close over linear L3 resources.
            if let Some(a) = ub.iter().next() {
                return Err(MemGcTypeError::LinearReuse(a.clone()));
            }
            Ok((PolyType::fun(ty.clone(), tb), Usage::new()))
        }
        PolyExpr::App(f, a) => {
            let (tf, uf) = check_poly(ctx, f, oracle)?;
            let (ta, ua) = check_poly(ctx, a, oracle)?;
            match tf {
                PolyType::Fun(dom, cod) => {
                    if *dom != ta {
                        return Err(mismatch(dom, ta, "application argument"));
                    }
                    Ok((*cod, split(&uf, &ua)?))
                }
                other => Err(mismatch("a function type", other, "application head")),
            }
        }
        PolyExpr::TyLam(a, body) => {
            let (tb, ub) = check_poly(&ctx.with_tyvar(a.clone()), body, oracle)?;
            Ok((PolyType::Forall(a.clone(), Box::new(tb)), ub))
        }
        PolyExpr::TyApp(e1, ty) => {
            let (t, u) = check_poly(ctx, e1, oracle)?;
            match t {
                PolyType::Forall(a, body) => Ok((body.subst(&a, ty), u)),
                other => Err(mismatch("a ∀-type", other, "type application")),
            }
        }
        PolyExpr::Ref(e1) => {
            let (t, u) = check_poly(ctx, e1, oracle)?;
            Ok((PolyType::ref_(t), u))
        }
        PolyExpr::Deref(e1) => match check_poly(ctx, e1, oracle)? {
            (PolyType::Ref(t), u) => Ok((*t, u)),
            (other, _) => Err(mismatch("a reference type", other, "dereference")),
        },
        PolyExpr::Assign(a, b) => {
            let (ta, ua) = check_poly(ctx, a, oracle)?;
            let (tb, ub) = check_poly(ctx, b, oracle)?;
            match ta {
                PolyType::Ref(inner) => {
                    if *inner != tb {
                        return Err(mismatch(inner, tb, "assignment"));
                    }
                    Ok((PolyType::Unit, split(&ua, &ub)?))
                }
                other => Err(mismatch("a reference type", other, "assignment target")),
            }
        }
        PolyExpr::Add(a, b) => {
            let (ta, ua) = check_poly(ctx, a, oracle)?;
            let (tb, ub) = check_poly(ctx, b, oracle)?;
            if ta != PolyType::Int || tb != PolyType::Int {
                return Err(mismatch(
                    PolyType::Int,
                    if ta != PolyType::Int { ta } else { tb },
                    "addition",
                ));
            }
            Ok((PolyType::Int, split(&ua, &ub)?))
        }
        PolyExpr::Boundary(l3, ty) => {
            let (tl, ul) = check_l3(ctx, l3, oracle)?;
            if oracle.convertible(ty, &tl) {
                Ok((ty.clone(), ul))
            } else {
                Err(MemGcTypeError::NotConvertible {
                    ml: ty.clone(),
                    l3: tl,
                })
            }
        }
    }
}

/// Checks an L3 expression, returning its type and linear usage.
pub fn check_l3(
    ctx: &MemGcCtx,
    e: &L3Expr,
    oracle: &dyn MemGcConvertOracle,
) -> Result<(L3Type, Usage), MemGcTypeError> {
    match e {
        L3Expr::Unit => Ok((L3Type::Unit, Usage::new())),
        L3Expr::Bool(_) => Ok((L3Type::Bool, Usage::new())),
        L3Expr::Var(x) => ctx
            .l3_linear
            .get(x)
            .cloned()
            .map(|t| (t, Usage::from([x.clone()])))
            .ok_or_else(|| MemGcTypeError::Unbound(x.to_string())),
        L3Expr::UVar(x) => ctx
            .l3_unrestricted
            .get(x)
            .cloned()
            .map(|t| (t, Usage::new()))
            .ok_or_else(|| MemGcTypeError::Unbound(x.to_string())),
        L3Expr::Lam(x, ty, body) => {
            let (tb, ub) = check_l3(&ctx.with_l3_linear(x.clone(), ty.clone()), body, oracle)?;
            let used = consume_binder(ub, x)?;
            Ok((L3Type::lolli(ty.clone(), tb), used))
        }
        L3Expr::App(f, a) => {
            let (tf, uf) = check_l3(ctx, f, oracle)?;
            let (ta, ua) = check_l3(ctx, a, oracle)?;
            match tf {
                L3Type::Lolli(dom, cod) => {
                    if *dom != ta {
                        return Err(mismatch(dom, ta, "application argument"));
                    }
                    Ok((*cod, split(&uf, &ua)?))
                }
                other => Err(mismatch("a ⊸-type", other, "application head")),
            }
        }
        L3Expr::Pair(a, b) => {
            let (ta, ua) = check_l3(ctx, a, oracle)?;
            let (tb, ub) = check_l3(ctx, b, oracle)?;
            Ok((L3Type::tensor(ta, tb), split(&ua, &ub)?))
        }
        L3Expr::LetPair(x, y, e1, body) => {
            let (t, u1) = check_l3(ctx, e1, oracle)?;
            match t {
                L3Type::Tensor(t1, t2) => {
                    let inner = ctx
                        .with_l3_linear(x.clone(), *t1)
                        .with_l3_linear(y.clone(), *t2);
                    let (tb, ub) = check_l3(&inner, body, oracle)?;
                    let ub = consume_binder(ub, x)?;
                    let ub = consume_binder(ub, y)?;
                    Ok((tb, split(&u1, &ub)?))
                }
                other => Err(mismatch("a ⊗-type", other, "let (x, y)")),
            }
        }
        L3Expr::LetUnit(e1, body) => {
            let (t, u1) = check_l3(ctx, e1, oracle)?;
            if t != L3Type::Unit {
                return Err(mismatch(L3Type::Unit, t, "let ()"));
            }
            let (tb, ub) = check_l3(ctx, body, oracle)?;
            Ok((tb, split(&u1, &ub)?))
        }
        L3Expr::If(c, t, f) => {
            let (tc, uc) = check_l3(ctx, c, oracle)?;
            if tc != L3Type::Bool {
                return Err(mismatch(L3Type::Bool, tc, "if condition"));
            }
            let (tt, ut) = check_l3(ctx, t, oracle)?;
            let (tf, uf) = check_l3(ctx, f, oracle)?;
            if tt != tf {
                return Err(mismatch(tt, tf, "if branches"));
            }
            // Branches must use the *same* linear resources (only one runs);
            // the conservative algorithmic reading requires equal usage sets.
            if ut != uf {
                let diff: Vec<_> = ut.symmetric_difference(&uf).cloned().collect();
                return Err(MemGcTypeError::LinearUnused(diff[0].clone()));
            }
            Ok((tt, split(&uc, &ut)?))
        }
        L3Expr::Bang(e1) => {
            let (t, u) = check_l3(ctx, e1, oracle)?;
            if let Some(x) = u.iter().next() {
                return Err(MemGcTypeError::BangCapturesLinear(x.clone()));
            }
            Ok((L3Type::bang(t), Usage::new()))
        }
        L3Expr::LetBang(x, e1, body) => {
            let (t, u1) = check_l3(ctx, e1, oracle)?;
            match t {
                L3Type::Bang(inner) => {
                    let (tb, ub) =
                        check_l3(&ctx.with_l3_unrestricted(x.clone(), *inner), body, oracle)?;
                    Ok((tb, split(&u1, &ub)?))
                }
                other => Err(mismatch("a !-type", other, "let !")),
            }
        }
        L3Expr::Dupl(e1) => {
            let (t, u) = check_l3(ctx, e1, oracle)?;
            if !t.is_duplicable() {
                return Err(MemGcTypeError::NotDuplicable(t));
            }
            Ok((L3Type::tensor(t.clone(), t), u))
        }
        L3Expr::Drop(e1) => {
            let (t, u) = check_l3(ctx, e1, oracle)?;
            if !t.is_duplicable() {
                return Err(MemGcTypeError::NotDuplicable(t));
            }
            Ok((L3Type::Unit, u))
        }
        L3Expr::New(e1) => {
            let (t, u) = check_l3(ctx, e1, oracle)?;
            Ok((L3Type::ref_like(t), u))
        }
        L3Expr::Free(e1) => {
            let (t, u) = check_l3(ctx, e1, oracle)?;
            match ref_like_payload(&t) {
                Some(inner) => Ok((inner, u)),
                None => Err(mismatch("∃ζ. cap ζ 𝜏 ⊗ !ptr ζ", t, "free")),
            }
        }
        L3Expr::Swap(ec, ep, ev) => {
            let (tc, uc) = check_l3(ctx, ec, oracle)?;
            let (tp, up) = check_l3(ctx, ep, oracle)?;
            let (tv, uv) = check_l3(ctx, ev, oracle)?;
            let (z, stored) = match tc {
                L3Type::Cap(z, stored) => (z, *stored),
                other => return Err(mismatch("a capability", other, "swap capability")),
            };
            let ptr_ok = matches!(&tp, L3Type::Ptr(w) if *w == z)
                || matches!(&tp, L3Type::Bang(inner) if matches!(inner.as_ref(), L3Type::Ptr(w) if *w == z));
            if !ptr_ok {
                return Err(mismatch(format!("ptr {z}"), tp, "swap pointer"));
            }
            let usage = split(&split(&uc, &up)?, &uv)?;
            Ok((L3Type::tensor(L3Type::Cap(z, Box::new(tv)), stored), usage))
        }
        L3Expr::LocLam(z, body) => {
            let (tb, ub) = check_l3(&ctx.with_locvar(z.clone()), body, oracle)?;
            Ok((L3Type::ForallLoc(z.clone(), Box::new(tb)), ub))
        }
        L3Expr::LocApp(e1, z) => {
            if !ctx.locvars.contains(z) {
                return Err(MemGcTypeError::Unbound(format!("location variable {z}")));
            }
            let (t, u) = check_l3(ctx, e1, oracle)?;
            match t {
                L3Type::ForallLoc(w, body) => Ok((body.subst_loc(&w, z), u)),
                other => Err(mismatch("a ∀ζ-type", other, "location application")),
            }
        }
        L3Expr::Pack(z, e1, annot) => match annot {
            L3Type::ExistsLoc(w, body) => {
                let expected = body.subst_loc(w, z);
                let (t, u) = check_l3(ctx, e1, oracle)?;
                if t != expected {
                    return Err(mismatch(expected, t, "pack"));
                }
                Ok((annot.clone(), u))
            }
            other => Err(mismatch("an ∃ζ-type", other, "pack annotation")),
        },
        L3Expr::Unpack(z, x, e1, body) => {
            let (t, u1) = check_l3(ctx, e1, oracle)?;
            match t {
                L3Type::ExistsLoc(w, inner) => {
                    let opened = inner.subst_loc(&w, z);
                    let inner_ctx = ctx.with_locvar(z.clone()).with_l3_linear(x.clone(), opened);
                    let (tb, ub) = check_l3(&inner_ctx, body, oracle)?;
                    let ub = consume_binder(ub, x)?;
                    if does_loc_occur(&tb, z) {
                        return Err(mismatch(
                            "a type not mentioning the opened location",
                            tb,
                            "unpack body",
                        ));
                    }
                    Ok((tb, split(&u1, &ub)?))
                }
                other => Err(mismatch("an ∃ζ-type", other, "unpack")),
            }
        }
        L3Expr::Boundary(ml, ty) => {
            let (tm, um) = check_poly(ctx, ml, oracle)?;
            if oracle.convertible(&tm, ty) {
                Ok((ty.clone(), um))
            } else {
                Err(MemGcTypeError::NotConvertible {
                    ml: tm,
                    l3: ty.clone(),
                })
            }
        }
    }
}

/// Matches `∃ζ. cap ζ 𝜏 ⊗ !ptr ζ` (or the un-banged pointer variant) and
/// returns the payload `𝜏`.
pub fn ref_like_payload(t: &L3Type) -> Option<L3Type> {
    if let L3Type::ExistsLoc(z, body) = t {
        if let L3Type::Tensor(cap, ptr) = body.as_ref() {
            if let L3Type::Cap(w, stored) = cap.as_ref() {
                let ptr_matches = matches!(ptr.as_ref(), L3Type::Ptr(p) if p == z)
                    || matches!(ptr.as_ref(), L3Type::Bang(inner) if matches!(inner.as_ref(), L3Type::Ptr(p) if p == z));
                if w == z && ptr_matches {
                    return Some((**stored).clone());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(e: &L3Expr) -> Result<L3Type, MemGcTypeError> {
        check_l3(&MemGcCtx::empty(), e, &NoConversions).map(|(t, _)| t)
    }

    #[test]
    fn linear_lambda_must_use_its_argument_exactly_once() {
        let ok = L3Expr::lam("x", L3Type::Bool, L3Expr::var("x"));
        assert_eq!(
            check(&ok).unwrap(),
            L3Type::lolli(L3Type::Bool, L3Type::Bool)
        );

        let unused = L3Expr::lam("x", L3Type::Bool, L3Expr::bool_(true));
        assert_eq!(
            check(&unused).unwrap_err(),
            MemGcTypeError::LinearUnused(Var::new("x"))
        );

        let reused = L3Expr::lam(
            "x",
            L3Type::Bool,
            L3Expr::pair(L3Expr::var("x"), L3Expr::var("x")),
        );
        assert_eq!(
            check(&reused).unwrap_err(),
            MemGcTypeError::LinearReuse(Var::new("x"))
        );
    }

    #[test]
    fn dupl_and_drop_require_duplicable_types() {
        let ok = L3Expr::lam(
            "x",
            L3Type::bang(L3Type::Bool),
            L3Expr::dupl(L3Expr::var("x")),
        );
        assert_eq!(
            check(&ok).unwrap(),
            L3Type::lolli(
                L3Type::bang(L3Type::Bool),
                L3Type::tensor(L3Type::bang(L3Type::Bool), L3Type::bang(L3Type::Bool))
            )
        );
        let bad = L3Expr::lam(
            "x",
            L3Type::cap("ζ", L3Type::Bool),
            L3Expr::dupl(L3Expr::var("x")),
        );
        assert!(matches!(check(&bad), Err(MemGcTypeError::NotDuplicable(_))));
        // drop of a bool is fine.
        let ok = L3Expr::drop_(L3Expr::bool_(true));
        assert_eq!(check(&ok).unwrap(), L3Type::Unit);
    }

    #[test]
    fn new_free_round_trip_types() {
        let e = L3Expr::free(L3Expr::new(L3Expr::bool_(true)));
        assert_eq!(check(&e).unwrap(), L3Type::Bool);
        let e = L3Expr::new(L3Expr::bool_(true));
        assert_eq!(check(&e).unwrap(), L3Type::ref_like(L3Type::Bool));
    }

    #[test]
    fn swap_performs_a_strong_update_at_the_type_level() {
        // let ⌜ζ, pkg⌝ = new true in
        // let (c, p) = pkg in let !q = p in
        // let (c2, old) = swap c q false in
        // let () = drop old in
        // free ⌜ζ, (c2, !q)⌝
        let e = L3Expr::unpack(
            "ζ",
            "pkg",
            L3Expr::new(L3Expr::bool_(true)),
            L3Expr::let_pair(
                "c",
                "p",
                L3Expr::var("pkg"),
                L3Expr::let_bang(
                    "q",
                    L3Expr::var("p"),
                    L3Expr::let_pair(
                        "c2",
                        "old",
                        L3Expr::swap(L3Expr::var("c"), L3Expr::uvar("q"), L3Expr::bool_(false)),
                        L3Expr::let_unit(
                            L3Expr::drop_(L3Expr::var("old")),
                            L3Expr::free(L3Expr::pack(
                                "ζ",
                                L3Expr::pair(L3Expr::var("c2"), L3Expr::bang(L3Expr::uvar("q"))),
                                L3Type::ref_like(L3Type::Bool),
                            )),
                        ),
                    ),
                ),
            ),
        );
        let (ty, _) = check_l3(&MemGcCtx::empty(), &e, &NoConversions)
            .unwrap_or_else(|err| panic!("swap round trip should typecheck: {err}"));
        assert_eq!(ty, L3Type::Bool);
    }

    #[test]
    fn capabilities_cannot_be_discarded_silently() {
        // new true; () — the capability package is never consumed.
        let e = L3Expr::let_pair(
            "c",
            "p",
            L3Expr::free(L3Expr::new(L3Expr::pair(
                L3Expr::bool_(true),
                L3Expr::bool_(false),
            ))),
            L3Expr::var("c"),
        );
        // 'p' (the second bool) is unused → linear error.
        assert!(matches!(check(&e), Err(MemGcTypeError::LinearUnused(_))));
    }

    #[test]
    fn location_polymorphism_packs_and_unpacks() {
        // Λζ. λp: !ptr ζ. drop-style: use let ! to consume.
        let e = L3Expr::loclam(
            "ζ",
            L3Expr::lam(
                "p",
                L3Type::bang(L3Type::ptr("ζ")),
                L3Expr::let_bang("q", L3Expr::var("p"), L3Expr::unit()),
            ),
        );
        let ty = check(&e).unwrap();
        assert_eq!(
            ty,
            L3Type::forall_loc(
                "ζ",
                L3Type::lolli(L3Type::bang(L3Type::ptr("ζ")), L3Type::Unit)
            )
        );
    }

    #[test]
    fn poly_side_polymorphism_and_foreign_types() {
        // Λα. λx:α. λy:α. y — the paper's example (1) shape.
        let second = PolyExpr::tylam(
            "α",
            PolyExpr::lam(
                "x",
                PolyType::tvar("α"),
                PolyExpr::lam("y", PolyType::tvar("α"), PolyExpr::var("y")),
            ),
        );
        let (ty, _) = check_poly(&MemGcCtx::empty(), &second, &NoConversions).unwrap();
        assert_eq!(
            ty,
            PolyType::forall(
                "α",
                PolyType::fun(
                    PolyType::tvar("α"),
                    PolyType::fun(PolyType::tvar("α"), PolyType::tvar("α"))
                )
            )
        );
        // Instantiating at a foreign type substitutes it straight in.
        let inst = PolyExpr::tyapp(second, PolyType::foreign(L3Type::Bool));
        let (ty, _) = check_poly(&MemGcCtx::empty(), &inst, &NoConversions).unwrap();
        assert_eq!(
            ty,
            PolyType::fun(
                PolyType::foreign(L3Type::Bool),
                PolyType::fun(
                    PolyType::foreign(L3Type::Bool),
                    PolyType::foreign(L3Type::Bool)
                )
            )
        );
    }

    #[test]
    fn boundaries_require_convertibility_rules() {
        let e = PolyExpr::boundary(L3Expr::bool_(true), PolyType::foreign(L3Type::Bool));
        assert!(check_poly(&MemGcCtx::empty(), &e, &NoConversions).is_err());
        let allow = |ml: &PolyType, l3: &L3Type| matches!((ml, l3), (PolyType::Foreign(inner), t) if inner.as_ref() == t);
        let (ty, _) = check_poly(&MemGcCtx::empty(), &e, &allow).unwrap();
        assert_eq!(ty, PolyType::foreign(L3Type::Bool));
    }

    #[test]
    fn unpack_cannot_leak_its_location_variable() {
        // let ⌜ζ, x⌝ = new true in x  — the body's type mentions ζ.
        let e = L3Expr::unpack("ζ", "x", L3Expr::new(L3Expr::bool_(true)), L3Expr::var("x"));
        assert!(matches!(
            check(&e),
            Err(MemGcTypeError::Mismatch {
                context: "unpack body",
                ..
            })
        ));
    }
}
