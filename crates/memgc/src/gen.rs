//! Random generation of well-typed §5 programs.
//!
//! The last of the three case studies to gain a generator: type-directed,
//! seed-deterministic, and boundary-inserting, mirroring `sharedmem::gen`
//! and `affine_interop::gen` so the `semint-harness` engine can sweep all
//! three language pairs uniformly.
//!
//! The L3 side is generated *linearity-correctly by construction*: every
//! linear binder the generator introduces is consumed exactly once (either
//! used directly, or discarded through `drop` at a `Duplicable` type), so
//! generated programs always pass the algorithmic linear checker in
//! [`crate::typecheck`].

use crate::convert::MemGcConversions;
use crate::syntax::{L3Expr, L3Type, PolyExpr, PolyType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semint_core::case::{ConstructorClass, ConstructorWeights, GenProfile};

/// Tuning knobs for the §5 generator.
#[derive(Debug, Clone, Copy)]
pub struct MemGcGenConfig {
    /// Maximum expression depth.
    pub max_depth: usize,
    /// Maximum goal-type depth.
    pub type_depth: usize,
    /// Probability (0–100) of crossing a boundary when a conversion exists.
    pub boundary_bias: u32,
    /// Constructor-class weights for goal-type generation.
    pub weights: ConstructorWeights,
}

impl Default for MemGcGenConfig {
    fn default() -> Self {
        MemGcGenConfig {
            max_depth: 4,
            type_depth: 2,
            boundary_bias: 35,
            weights: ConstructorWeights::STANDARD,
        }
    }
}

impl From<&GenProfile> for MemGcGenConfig {
    fn from(profile: &GenProfile) -> Self {
        MemGcGenConfig {
            max_depth: profile.max_depth,
            type_depth: profile.type_depth,
            boundary_bias: profile.boundary_bias,
            weights: profile.weights,
        }
    }
}

/// A deterministic, seed-driven generator of closed well-typed MiniML and L3
/// programs.
#[derive(Debug)]
pub struct MemGcProgramGen {
    rng: StdRng,
    config: MemGcGenConfig,
    conversions: MemGcConversions,
    fresh: u64,
}

impl MemGcProgramGen {
    /// A generator with the default configuration.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, MemGcGenConfig::default())
    }

    /// A generator with an explicit configuration.
    pub fn with_config(seed: u64, config: MemGcGenConfig) -> Self {
        MemGcProgramGen {
            rng: StdRng::seed_from_u64(seed),
            config,
            conversions: MemGcConversions::standard(),
            fresh: 0,
        }
    }

    fn fresh_name(&mut self, hint: &str) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!("{hint}{n}")
    }

    /// Generates a random monomorphic MiniML type of bounded size, drawing
    /// constructor classes from the configured weights so branch-heavy
    /// profiles reach their full type-depth budget.
    pub fn gen_ml_type(&mut self, depth: usize) -> PolyType {
        if depth == 0 {
            return match self.rng.gen_range(0..3) {
                0 => PolyType::Unit,
                1 => PolyType::Int,
                _ => PolyType::foreign(L3Type::Bool),
            };
        }
        match self.pick_class() {
            ConstructorClass::Leaf => {
                if self.rng.gen_bool(0.5) {
                    PolyType::Unit
                } else {
                    PolyType::Int
                }
            }
            ConstructorClass::Branch => match self.rng.gen_range(0..3) {
                0 => PolyType::prod(self.gen_ml_type(depth - 1), self.gen_ml_type(depth - 1)),
                1 => PolyType::sum(self.gen_ml_type(depth - 1), self.gen_ml_type(depth - 1)),
                _ => PolyType::fun(self.gen_ml_type(depth - 1), self.gen_ml_type(depth - 1)),
            },
            ConstructorClass::Wrap => PolyType::ref_(self.gen_ml_type(depth - 1)),
        }
    }

    /// A MiniML goal type at the configured type depth.
    pub fn gen_goal_ml_type(&mut self) -> PolyType {
        self.gen_ml_type(self.config.type_depth)
    }

    /// Generates a random L3 type of bounded size (goal types stay in the
    /// generator-friendly fragment: no bare capabilities or pointers).
    pub fn gen_l3_type(&mut self, depth: usize) -> L3Type {
        if depth == 0 {
            return if self.rng.gen_bool(0.5) {
                L3Type::Bool
            } else {
                L3Type::Unit
            };
        }
        match self.pick_class() {
            ConstructorClass::Leaf => {
                if self.rng.gen_bool(0.5) {
                    L3Type::Bool
                } else {
                    L3Type::Unit
                }
            }
            ConstructorClass::Branch => {
                L3Type::tensor(self.gen_l3_type(depth - 1), self.gen_l3_type(depth - 1))
            }
            ConstructorClass::Wrap => {
                if self.rng.gen_bool(0.5) {
                    L3Type::bang(self.gen_l3_type(depth - 1))
                } else {
                    L3Type::ref_like(self.gen_l3_type(depth - 1))
                }
            }
        }
    }

    fn pick_class(&mut self) -> ConstructorClass {
        let total = self.config.weights.total().max(1);
        self.config.weights.class_for(self.rng.gen_range(0..total))
    }

    /// Generates a closed, well-typed MiniML expression of type `ty`.
    pub fn gen_ml(&mut self, ty: &PolyType) -> PolyExpr {
        self.ml(ty, self.config.max_depth)
    }

    /// Generates a closed, well-typed L3 expression of type `ty`.
    pub fn gen_l3(&mut self, ty: &L3Type) -> L3Expr {
        self.l3(ty, self.config.max_depth)
    }

    fn boundary_here(&mut self) -> bool {
        self.rng.gen_range(0u32..100) < self.config.boundary_bias
    }

    fn ml(&mut self, ty: &PolyType, depth: usize) -> PolyExpr {
        // Possibly detour through L3 when a conversion exists.
        if depth > 0 && self.boundary_here() {
            if let Some(l3_ty) = self.convertible_l3_for(ty) {
                let inner = self.l3(&l3_ty, depth - 1);
                return PolyExpr::boundary(inner, ty.clone());
            }
        }
        if depth == 0 {
            return self.ml_leaf(ty);
        }
        match self.rng.gen_range(0..4) {
            // A canonical constructor, recursing on components.
            0 => self.ml_constructor(ty, depth),
            // Projection from a pair containing the goal type.
            1 => {
                if self.rng.gen_bool(0.5) {
                    PolyExpr::fst(PolyExpr::pair(self.ml(ty, depth - 1), PolyExpr::unit()))
                } else {
                    PolyExpr::snd(PolyExpr::pair(PolyExpr::int(0), self.ml(ty, depth - 1)))
                }
            }
            // Immediate application of a lambda.
            2 => {
                let arg_ty = if self.rng.gen_bool(0.5) {
                    PolyType::Int
                } else {
                    PolyType::Unit
                };
                let name = self.fresh_name("m");
                PolyExpr::app(
                    PolyExpr::lam(name.as_str(), arg_ty.clone(), self.ml(ty, depth - 1)),
                    self.ml(&arg_ty, depth - 1),
                )
            }
            // Type-specific deepening: arithmetic for int, a read-through
            // reference cell otherwise.
            _ => match ty {
                PolyType::Int => PolyExpr::add(
                    self.ml(&PolyType::Int, depth - 1),
                    self.ml(&PolyType::Int, depth - 1),
                ),
                _ => PolyExpr::deref(PolyExpr::ref_(self.ml(ty, depth - 1))),
            },
        }
    }

    fn ml_leaf(&mut self, ty: &PolyType) -> PolyExpr {
        self.ml_constructor(ty, 1)
    }

    fn ml_constructor(&mut self, ty: &PolyType, depth: usize) -> PolyExpr {
        let d = depth.saturating_sub(1);
        match ty {
            PolyType::Unit => PolyExpr::unit(),
            PolyType::Int => PolyExpr::int(self.rng.gen_range(-20..20)),
            PolyType::Prod(a, b) => PolyExpr::pair(self.ml(a, d), self.ml(b, d)),
            PolyType::Sum(a, b) => {
                if self.rng.gen_bool(0.5) {
                    PolyExpr::inl(self.ml(a, d), ty.clone())
                } else {
                    PolyExpr::inr(self.ml(b, d), ty.clone())
                }
            }
            PolyType::Fun(a, b) => {
                let name = self.fresh_name("f");
                let _ = a;
                PolyExpr::lam(name.as_str(), (**a).clone(), self.ml(b, d))
            }
            PolyType::Ref(a) => PolyExpr::ref_(self.ml(a, d)),
            // Foreign types have no MiniML introduction forms: the only
            // constructor is a boundary around an L3 value (the free
            // `Duplicable` embedding). Goal types only ever contain
            // `⟨bool⟩`, so the embedded term is a closed boolean.
            PolyType::Foreign(l3) => {
                let inner = (**l3).clone();
                PolyExpr::boundary(self.l3(&inner, d), ty.clone())
            }
            // Not produced by `gen_ml_type`; keep totality for callers that
            // hand-build types.
            PolyType::Forall(_, _) | PolyType::Var(_) => PolyExpr::unit(),
        }
    }

    fn l3(&mut self, ty: &L3Type, depth: usize) -> L3Expr {
        // Possibly detour through MiniML when a conversion exists.
        if depth > 0 && self.boundary_here() {
            if let Some(ml_ty) = self.convertible_ml_for(ty) {
                let inner = self.ml(&ml_ty, depth - 1);
                return L3Expr::boundary(inner, ty.clone());
            }
        }
        if depth == 0 {
            return self.l3_leaf(ty);
        }
        match ty {
            L3Type::Bool => match self.rng.gen_range(0..4) {
                0 => L3Expr::bool_(self.rng.gen_bool(0.5)),
                1 => L3Expr::if_(
                    self.l3(&L3Type::Bool, depth - 1),
                    self.l3(&L3Type::Bool, depth - 1),
                    self.l3(&L3Type::Bool, depth - 1),
                ),
                // Round-trip through a manual cell: new then free.
                2 => L3Expr::free(L3Expr::new(self.l3(&L3Type::Bool, depth - 1))),
                _ => self.l3_leaf(ty),
            },
            L3Type::Unit => match self.rng.gen_range(0..3) {
                0 => L3Expr::unit(),
                // Discard a duplicable value.
                1 => L3Expr::drop_(self.l3(&L3Type::Bool, depth - 1)),
                _ => L3Expr::let_unit(L3Expr::unit(), self.l3(&L3Type::Unit, depth - 1)),
            },
            L3Type::Tensor(a, b) => L3Expr::pair(self.l3(a, depth - 1), self.l3(b, depth - 1)),
            L3Type::Bang(inner) => L3Expr::bang(self.l3(inner, depth - 1)),
            _ if crate::typecheck::ref_like_payload(ty).is_some() => {
                let payload = crate::typecheck::ref_like_payload(ty).expect("just matched");
                L3Expr::new(self.l3(&payload, depth - 1))
            }
            // Linear arrows and bare capability/pointer/quantified types are
            // not goal types; produce the canonical leaf.
            _ => self.l3_leaf(ty),
        }
    }

    fn l3_leaf(&mut self, ty: &L3Type) -> L3Expr {
        match ty {
            L3Type::Unit => L3Expr::unit(),
            L3Type::Bool => L3Expr::bool_(self.rng.gen_bool(0.5)),
            L3Type::Tensor(a, b) => L3Expr::pair(self.l3_leaf(a), self.l3_leaf(b)),
            L3Type::Bang(inner) => L3Expr::bang(self.l3_leaf(inner)),
            L3Type::Lolli(a, b) => self.l3_lambda(a, b, 0),
            _ => match crate::typecheck::ref_like_payload(ty) {
                Some(payload) => L3Expr::new(self.l3_leaf(&payload)),
                // Bare caps/pointers/quantifiers have no closed inhabitants
                // in the generator fragment; `new` produces the nearest
                // well-typed package shape (callers never request these).
                None => L3Expr::unit(),
            },
        }
    }

    /// A closed linear function `dom ⊸ cod` whose binder is consumed exactly
    /// once: the identity when `dom == cod`, otherwise the binder is dropped
    /// (requires `dom` to be `Duplicable`, which holds for every domain the
    /// generator requests).
    fn l3_lambda(&mut self, dom: &L3Type, cod: &L3Type, depth: usize) -> L3Expr {
        let name = self.fresh_name("z");
        let body = if dom == cod && self.rng.gen_bool(0.5) {
            L3Expr::var(name.as_str())
        } else if dom.is_duplicable() {
            L3Expr::let_unit(
                L3Expr::drop_(L3Expr::var(name.as_str())),
                self.l3(cod, depth),
            )
        } else {
            // Non-duplicable domain: fall back to the identity, which is
            // only well-typed when dom == cod; the generator never requests
            // other shapes.
            L3Expr::var(name.as_str())
        };
        L3Expr::lam(name.as_str(), dom.clone(), body)
    }

    /// Picks an L3 type convertible with `ty`, if the §5 rules have one.
    fn convertible_l3_for(&mut self, ty: &PolyType) -> Option<L3Type> {
        let candidate = match ty {
            PolyType::Unit => Some(L3Type::Unit),
            PolyType::Int => Some(L3Type::Bool),
            PolyType::Foreign(inner) if inner.is_duplicable() => Some((**inner).clone()),
            PolyType::Ref(inner) => self.convertible_l3_for(inner).map(L3Type::ref_like),
            PolyType::Prod(a, b) => {
                let ca = self.convertible_l3_for(a)?;
                let cb = self.convertible_l3_for(b)?;
                Some(L3Type::tensor(ca, cb))
            }
            PolyType::Fun(a, b) => {
                let ca = self.convertible_l3_for(a)?;
                let cb = self.convertible_l3_for(b)?;
                Some(L3Type::bang(L3Type::lolli(L3Type::bang(ca), cb)))
            }
            _ => None,
        }?;
        self.conversions.derive(ty, &candidate).map(|_| candidate)
    }

    /// Picks a MiniML type convertible with `ty`, if the §5 rules have one.
    fn convertible_ml_for(&mut self, ty: &L3Type) -> Option<PolyType> {
        let candidate = match ty {
            L3Type::Unit => Some(PolyType::Unit),
            L3Type::Bool => Some(PolyType::Int),
            L3Type::Tensor(a, b) => {
                let ca = self.convertible_ml_for(a)?;
                let cb = self.convertible_ml_for(b)?;
                Some(PolyType::prod(ca, cb))
            }
            _ => match crate::typecheck::ref_like_payload(ty) {
                Some(payload) => self.convertible_ml_for(&payload).map(PolyType::ref_),
                None => None,
            },
        }?;
        self.conversions.derive(&candidate, ty).map(|_| candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilang::MemGcMultiLang;

    #[test]
    fn generated_ml_programs_typecheck_at_the_requested_type() {
        let ml = MemGcMultiLang::new();
        for seed in 0..60 {
            let mut gen = MemGcProgramGen::new(seed);
            let ty = gen.gen_ml_type(2);
            let e = gen.gen_ml(&ty);
            let checked = ml.typecheck_ml(&e).unwrap_or_else(|err| {
                panic!("seed {seed}: generated program {e} does not typecheck: {err}")
            });
            assert_eq!(checked, ty, "seed {seed}");
        }
    }

    #[test]
    fn generated_l3_programs_typecheck_at_the_requested_type() {
        let ml = MemGcMultiLang::new();
        for seed in 0..60 {
            let mut gen = MemGcProgramGen::new(seed);
            let ty = gen.gen_l3_type(2);
            let e = gen.gen_l3(&ty);
            let checked = ml.typecheck_l3(&e).unwrap_or_else(|err| {
                panic!("seed {seed}: generated program {e} does not typecheck: {err}")
            });
            assert_eq!(checked, ty, "seed {seed}");
        }
    }

    #[test]
    fn generated_programs_run_safely() {
        let ml = MemGcMultiLang::new();
        for seed in 0..40 {
            let mut gen = MemGcProgramGen::new(seed);
            let ty = gen.gen_ml_type(2);
            let e = gen.gen_ml(&ty);
            let r = ml
                .run_ml(&e)
                .unwrap_or_else(|err| panic!("seed {seed}: {err}"));
            assert!(
                r.halt.is_safe(),
                "seed {seed}: unsafe halt {:?} for {e}",
                r.halt
            );
        }
    }

    #[test]
    fn generator_is_deterministic_in_its_seed() {
        let mut a = MemGcProgramGen::new(9);
        let mut b = MemGcProgramGen::new(9);
        let ta = a.gen_ml_type(2);
        let tb = b.gen_ml_type(2);
        assert_eq!(ta, tb);
        assert_eq!(a.gen_ml(&ta), b.gen_ml(&tb));
    }

    /// Foreign types force a boundary even at bias 0 (they have no MiniML
    /// introduction forms), so the bias-0 test skips types containing them.
    fn has_foreign(ty: &PolyType) -> bool {
        match ty {
            PolyType::Foreign(_) => true,
            PolyType::Prod(a, b) | PolyType::Sum(a, b) | PolyType::Fun(a, b) => {
                has_foreign(a) || has_foreign(b)
            }
            PolyType::Ref(a) | PolyType::Forall(_, a) => has_foreign(a),
            PolyType::Unit | PolyType::Int | PolyType::Var(_) => false,
        }
    }

    fn ml_type_depth(ty: &PolyType) -> usize {
        match ty {
            PolyType::Unit | PolyType::Int | PolyType::Var(_) => 0,
            PolyType::Prod(a, b) | PolyType::Sum(a, b) | PolyType::Fun(a, b) => {
                1 + ml_type_depth(a).max(ml_type_depth(b))
            }
            PolyType::Ref(a) | PolyType::Forall(_, a) => 1 + ml_type_depth(a),
            PolyType::Foreign(_) => 0,
        }
    }

    #[test]
    fn deep_profile_types_reach_depth_four_and_programs_typecheck() {
        use semint_core::case::GenProfile;
        let sys = MemGcMultiLang::new();
        let cfg = MemGcGenConfig::from(&GenProfile::deep());
        let mut max_depth_seen = 0;
        for seed in 0..40 {
            let mut gen = MemGcProgramGen::with_config(seed, cfg);
            let ty = gen.gen_goal_ml_type();
            max_depth_seen = max_depth_seen.max(ml_type_depth(&ty));
            let e = gen.gen_ml(&ty);
            let checked = sys
                .typecheck_ml(&e)
                .unwrap_or_else(|err| panic!("seed {seed}: {e} does not typecheck: {err}"));
            assert_eq!(checked, ty, "seed {seed}");
        }
        assert!(
            max_depth_seen >= 4,
            "deep profile never generated a depth-4 goal type (max {max_depth_seen})"
        );
    }

    #[test]
    fn boundary_bias_zero_generates_single_language_programs() {
        let cfg = MemGcGenConfig {
            max_depth: 4,
            boundary_bias: 0,
            ..MemGcGenConfig::default()
        };
        for seed in 0..20 {
            let mut gen = MemGcProgramGen::with_config(seed, cfg);
            let ty = gen.gen_ml_type(1);
            if has_foreign(&ty) {
                continue;
            }
            let e = gen.gen_ml(&ty);
            assert!(!format!("{e}").contains('⦇'), "no boundaries expected: {e}");
        }
    }
}
