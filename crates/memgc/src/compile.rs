//! Compilers from MiniML (§5) and L3 to LCVM (Fig. 13).
//!
//! L3's static artefacts are erased: capabilities compile to `()`, location
//! abstraction/application to thunking, packs/unpacks to the identity.  The
//! memory instructions map onto the Fig. 12 target forms:
//!
//! ```text
//! new e   ⇝ let _ = callgc in let xℓ = alloc e⁺ in ((), xℓ)
//! free e  ⇝ let x = e⁺ in let xr = !(snd x) in let _ = free (snd x) in xr
//! swap ec ep ev ⇝ let xp = ep⁺ in let _ = ec⁺ in let xv = !xp in
//!                 let _ = (xp := ev⁺) in ((), xv)
//! ```
//!
//! MiniML compiles in the standard way; `Λα. e ⇝ λ_. e⁺` and `e[τ] ⇝ e⁺ ()`.
//! Boundaries apply the conversion glue (see [`crate::convert`]).

use crate::syntax::{L3Expr, L3Type, PolyExpr, PolyType};
use crate::typecheck::{check_l3, check_poly, MemGcConvertOracle, MemGcCtx, MemGcTypeError};
use lcvm::Expr;
use semint_core::Var;
use std::fmt;

/// Supplies conversion glue (LCVM functions) for §5 boundaries.
pub trait MemGcConversionEmitter {
    /// `C_{𝜏 ↦ τ}`: converts a compiled L3 `𝜏` into a MiniML `τ`.
    fn l3_to_ml(&self, l3: &L3Type, ml: &PolyType) -> Option<Expr>;
    /// `C_{τ ↦ 𝜏}`: converts a compiled MiniML `τ` into an L3 `𝜏`.
    fn ml_to_l3(&self, ml: &PolyType, l3: &L3Type) -> Option<Expr>;
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum MemGcCompileError {
    /// The program (or a subterm re-typed at a boundary) is ill-typed.
    Type(MemGcTypeError),
    /// A boundary had no registered conversion.
    MissingConversion {
        /// The MiniML side.
        ml: PolyType,
        /// The L3 side.
        l3: L3Type,
    },
}

impl fmt::Display for MemGcCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemGcCompileError::Type(e) => write!(f, "type error during compilation: {e}"),
            MemGcCompileError::MissingConversion { ml, l3 } => {
                write!(f, "no conversion registered for boundary {ml} ∼ {l3}")
            }
        }
    }
}

impl std::error::Error for MemGcCompileError {}

impl From<MemGcTypeError> for MemGcCompileError {
    fn from(e: MemGcTypeError) -> Self {
        MemGcCompileError::Type(e)
    }
}

/// The §5 compiler.
pub struct MemGcCompiler<'a> {
    oracle: &'a dyn MemGcConvertOracle,
    emitter: &'a dyn MemGcConversionEmitter,
    fresh: u64,
}

impl<'a> MemGcCompiler<'a> {
    /// A compiler over the given oracle and emitter.
    pub fn new(
        oracle: &'a dyn MemGcConvertOracle,
        emitter: &'a dyn MemGcConversionEmitter,
    ) -> Self {
        MemGcCompiler {
            oracle,
            emitter,
            fresh: 0,
        }
    }

    fn fresh_var(&mut self, hint: &str) -> Var {
        let v = Var::new(format!("{hint}%{}", self.fresh));
        self.fresh += 1;
        v
    }

    /// Compiles a closed MiniML program.
    pub fn compile_ml_program(mut self, e: &PolyExpr) -> Result<Expr, MemGcCompileError> {
        self.ml(&MemGcCtx::empty(), e)
    }

    /// Compiles a closed L3 program.
    pub fn compile_l3_program(mut self, e: &L3Expr) -> Result<Expr, MemGcCompileError> {
        self.l3(&MemGcCtx::empty(), e)
    }

    fn ml(&mut self, ctx: &MemGcCtx, e: &PolyExpr) -> Result<Expr, MemGcCompileError> {
        Ok(match e {
            PolyExpr::Unit => Expr::Unit,
            PolyExpr::Int(n) => Expr::Int(*n),
            PolyExpr::Var(x) => Expr::Var(x.clone()),
            PolyExpr::Pair(a, b) => Expr::pair(self.ml(ctx, a)?, self.ml(ctx, b)?),
            PolyExpr::Fst(a) => Expr::fst(self.ml(ctx, a)?),
            PolyExpr::Snd(a) => Expr::snd(self.ml(ctx, a)?),
            PolyExpr::Inl(a, _) => Expr::inl(self.ml(ctx, a)?),
            PolyExpr::Inr(a, _) => Expr::inr(self.ml(ctx, a)?),
            PolyExpr::Match(s, x, l, y, r) => {
                let (ts, _) = check_poly(ctx, s, self.oracle)?;
                let (tl, tr) = match ts {
                    PolyType::Sum(a, b) => (*a, *b),
                    other => {
                        return Err(MemGcCompileError::Type(MemGcTypeError::Mismatch {
                            expected: "a sum type".into(),
                            found: other.to_string(),
                            context: "match scrutinee",
                        }))
                    }
                };
                Expr::match_(
                    self.ml(ctx, s)?,
                    x.clone(),
                    self.ml(&ctx.with_ml(x.clone(), tl), l)?,
                    y.clone(),
                    self.ml(&ctx.with_ml(y.clone(), tr), r)?,
                )
            }
            PolyExpr::Lam(x, ty, body) => Expr::lam(
                x.clone(),
                self.ml(&ctx.with_ml(x.clone(), ty.clone()), body)?,
            ),
            PolyExpr::App(f, a) => Expr::app(self.ml(ctx, f)?, self.ml(ctx, a)?),
            PolyExpr::TyLam(a, body) => Expr::lam("_", self.ml(&ctx.with_tyvar(a.clone()), body)?),
            PolyExpr::TyApp(e1, _) => Expr::app(self.ml(ctx, e1)?, Expr::Unit),
            PolyExpr::Ref(a) => Expr::ref_(self.ml(ctx, a)?),
            PolyExpr::Deref(a) => Expr::deref(self.ml(ctx, a)?),
            PolyExpr::Assign(a, b) => Expr::assign(self.ml(ctx, a)?, self.ml(ctx, b)?),
            PolyExpr::Add(a, b) => Expr::add(self.ml(ctx, a)?, self.ml(ctx, b)?),
            PolyExpr::Boundary(l3, ty) => {
                let (tl, _) = check_l3(ctx, l3, self.oracle)?;
                let glue = self.emitter.l3_to_ml(&tl, ty).ok_or_else(|| {
                    MemGcCompileError::MissingConversion {
                        ml: ty.clone(),
                        l3: tl.clone(),
                    }
                })?;
                Expr::app(glue, self.l3(ctx, l3)?)
            }
        })
    }

    fn l3(&mut self, ctx: &MemGcCtx, e: &L3Expr) -> Result<Expr, MemGcCompileError> {
        Ok(match e {
            L3Expr::Unit => Expr::Unit,
            L3Expr::Bool(b) => Expr::bool_lit(*b),
            L3Expr::Var(x) | L3Expr::UVar(x) => Expr::Var(x.clone()),
            L3Expr::Lam(x, ty, body) => Expr::lam(
                x.clone(),
                self.l3(&ctx.with_l3_linear(x.clone(), ty.clone()), body)?,
            ),
            L3Expr::App(f, a) => Expr::app(self.l3(ctx, f)?, self.l3(ctx, a)?),
            L3Expr::Pair(a, b) => Expr::pair(self.l3(ctx, a)?, self.l3(ctx, b)?),
            L3Expr::LetPair(x, y, e1, body) => {
                let (t, _) = check_l3(ctx, e1, self.oracle)?;
                let (t1, t2) = match t {
                    L3Type::Tensor(a, b) => (*a, *b),
                    other => {
                        return Err(MemGcCompileError::Type(MemGcTypeError::Mismatch {
                            expected: "a ⊗-type".into(),
                            found: other.to_string(),
                            context: "let (x, y)",
                        }))
                    }
                };
                let p = self.fresh_var("pair");
                let inner_ctx = ctx
                    .with_l3_linear(x.clone(), t1)
                    .with_l3_linear(y.clone(), t2);
                Expr::let_(
                    p.clone(),
                    self.l3(ctx, e1)?,
                    Expr::let_(
                        x.clone(),
                        Expr::fst(Expr::Var(p.clone())),
                        Expr::let_(
                            y.clone(),
                            Expr::snd(Expr::Var(p)),
                            self.l3(&inner_ctx, body)?,
                        ),
                    ),
                )
            }
            L3Expr::LetUnit(e1, body) => Expr::seq(self.l3(ctx, e1)?, self.l3(ctx, body)?),
            L3Expr::If(c, t, f) => Expr::if_(self.l3(ctx, c)?, self.l3(ctx, t)?, self.l3(ctx, f)?),
            L3Expr::Bang(v) => self.l3(ctx, v)?,
            L3Expr::LetBang(x, e1, body) => {
                let (t, _) = check_l3(ctx, e1, self.oracle)?;
                let inner = match t {
                    L3Type::Bang(inner) => *inner,
                    other => {
                        return Err(MemGcCompileError::Type(MemGcTypeError::Mismatch {
                            expected: "a !-type".into(),
                            found: other.to_string(),
                            context: "let !",
                        }))
                    }
                };
                Expr::let_(
                    x.clone(),
                    self.l3(ctx, e1)?,
                    self.l3(&ctx.with_l3_unrestricted(x.clone(), inner), body)?,
                )
            }
            L3Expr::Dupl(e1) => {
                let x = self.fresh_var("dup");
                Expr::let_(
                    x.clone(),
                    self.l3(ctx, e1)?,
                    Expr::pair(Expr::Var(x.clone()), Expr::Var(x)),
                )
            }
            L3Expr::Drop(e1) => Expr::seq(self.l3(ctx, e1)?, Expr::Unit),
            L3Expr::New(e1) => {
                let xl = self.fresh_var("cell");
                Expr::seq(
                    Expr::Callgc,
                    Expr::let_(
                        xl.clone(),
                        Expr::alloc(self.l3(ctx, e1)?),
                        Expr::pair(Expr::Unit, Expr::Var(xl)),
                    ),
                )
            }
            L3Expr::Free(e1) => {
                let x = self.fresh_var("pkg");
                let xr = self.fresh_var("contents");
                Expr::let_(
                    x.clone(),
                    self.l3(ctx, e1)?,
                    Expr::let_(
                        xr.clone(),
                        Expr::deref(Expr::snd(Expr::Var(x.clone()))),
                        Expr::seq(Expr::free(Expr::snd(Expr::Var(x))), Expr::Var(xr)),
                    ),
                )
            }
            L3Expr::Swap(ec, ep, ev) => {
                let xp = self.fresh_var("ptr");
                let xv = self.fresh_var("old");
                Expr::let_(
                    xp.clone(),
                    self.l3(ctx, ep)?,
                    Expr::seq(
                        self.l3(ctx, ec)?,
                        Expr::let_(
                            xv.clone(),
                            Expr::deref(Expr::Var(xp.clone())),
                            Expr::seq(
                                Expr::assign(Expr::Var(xp), self.l3(ctx, ev)?),
                                Expr::pair(Expr::Unit, Expr::Var(xv)),
                            ),
                        ),
                    ),
                )
            }
            L3Expr::LocLam(z, body) => Expr::lam("_", self.l3(&ctx.with_locvar(z.clone()), body)?),
            L3Expr::LocApp(e1, _) => Expr::app(self.l3(ctx, e1)?, Expr::Unit),
            L3Expr::Pack(_, e1, _) => self.l3(ctx, e1)?,
            L3Expr::Unpack(z, x, e1, body) => {
                let (t, _) = check_l3(ctx, e1, self.oracle)?;
                let opened = match t {
                    L3Type::ExistsLoc(w, inner) => inner.subst_loc(&w, z),
                    other => {
                        return Err(MemGcCompileError::Type(MemGcTypeError::Mismatch {
                            expected: "an ∃ζ-type".into(),
                            found: other.to_string(),
                            context: "unpack",
                        }))
                    }
                };
                let inner_ctx = ctx.with_locvar(z.clone()).with_l3_linear(x.clone(), opened);
                Expr::let_(x.clone(), self.l3(ctx, e1)?, self.l3(&inner_ctx, body)?)
            }
            L3Expr::Boundary(ml, ty) => {
                let (tm, _) = check_poly(ctx, ml, self.oracle)?;
                let glue = self.emitter.ml_to_l3(&tm, ty).ok_or_else(|| {
                    MemGcCompileError::MissingConversion {
                        ml: tm.clone(),
                        l3: ty.clone(),
                    }
                })?;
                Expr::app(glue, self.ml(ctx, ml)?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::NoConversions;
    use lcvm::{Halt, Machine, Slot, Value};
    use semint_core::{ErrorCode, Fuel};

    struct NoGlue;
    impl MemGcConversionEmitter for NoGlue {
        fn l3_to_ml(&self, _: &L3Type, _: &PolyType) -> Option<Expr> {
            None
        }
        fn ml_to_l3(&self, _: &PolyType, _: &L3Type) -> Option<Expr> {
            None
        }
    }

    fn compile_l3(e: &L3Expr) -> Expr {
        MemGcCompiler::new(&NoConversions, &NoGlue)
            .compile_l3_program(e)
            .unwrap()
    }

    fn run(e: Expr) -> lcvm::RunResult {
        Machine::run_expr(e, Fuel::default())
    }

    #[test]
    fn new_allocates_manual_memory_and_free_reclaims_it() {
        // free (new true)  ==> true (0), and the heap ends empty.
        let e = L3Expr::free(L3Expr::new(L3Expr::bool_(true)));
        let r = run(compile_l3(&e));
        assert_eq!(r.halt, Halt::Value(Value::Int(0)));
        assert_eq!(r.heap.manual_len(), 0);
        assert_eq!(r.heap.stats().manual_allocs, 1);
        assert_eq!(r.heap.stats().frees, 1);
        assert_eq!(
            r.heap.stats().gc_runs,
            1,
            "new invokes callgc before allocating"
        );
    }

    #[test]
    fn new_without_free_leaks_the_manual_cell() {
        // Well-typed L3 cannot do this (the capability must be consumed), but
        // the target happily shows the leak — which is the point of linearity.
        let e = L3Expr::new(L3Expr::bool_(false));
        let r = run(compile_l3(&e));
        assert_eq!(r.heap.manual_len(), 1);
        match r.halt {
            Halt::Value(Value::Pair(cap, ptr)) => {
                assert_eq!(*cap, Value::Unit, "capabilities are erased to unit");
                assert!(matches!(*ptr, Value::Loc(_)));
            }
            other => panic!("expected a package value, got {other:?}"),
        }
    }

    #[test]
    fn swap_strongly_updates_through_the_pointer() {
        // Type-checked swap round trip (same program as the typecheck test).
        let e = L3Expr::unpack(
            "ζ",
            "pkg",
            L3Expr::new(L3Expr::bool_(true)),
            L3Expr::let_pair(
                "c",
                "p",
                L3Expr::var("pkg"),
                L3Expr::let_bang(
                    "q",
                    L3Expr::var("p"),
                    L3Expr::let_pair(
                        "c2",
                        "old",
                        L3Expr::swap(L3Expr::var("c"), L3Expr::uvar("q"), L3Expr::bool_(false)),
                        L3Expr::let_unit(
                            L3Expr::drop_(L3Expr::var("old")),
                            L3Expr::free(L3Expr::pack(
                                "ζ",
                                L3Expr::pair(L3Expr::var("c2"), L3Expr::bang(L3Expr::uvar("q"))),
                                L3Type::ref_like(L3Type::Bool),
                            )),
                        ),
                    ),
                ),
            ),
        );
        check_l3(&MemGcCtx::empty(), &e, &NoConversions).expect("typechecks");
        let r = run(compile_l3(&e));
        // The freed contents are the swapped-in false (1).
        assert_eq!(r.halt, Halt::Value(Value::Int(1)));
        assert_eq!(r.heap.manual_len(), 0);
    }

    #[test]
    fn use_after_free_fails_ptr_not_type() {
        // Deliberately ill-typed L3 (double free) still compiles structurally
        // if we bypass the type checker; the target catches it with Ptr.
        let e = L3Expr::unpack(
            "ζ",
            "pkg",
            L3Expr::new(L3Expr::bool_(true)),
            L3Expr::let_pair(
                "c",
                "p",
                L3Expr::var("pkg"),
                L3Expr::let_bang(
                    "q",
                    L3Expr::var("p"),
                    L3Expr::let_unit(
                        L3Expr::drop_(L3Expr::free(L3Expr::pack(
                            "ζ",
                            L3Expr::pair(L3Expr::var("c"), L3Expr::bang(L3Expr::uvar("q"))),
                            L3Type::ref_like(L3Type::Bool),
                        ))),
                        // A second free through the stale pointer: the type
                        // system forbids this (the capability is gone); the
                        // erased program fails Ptr at runtime.
                        L3Expr::free(L3Expr::pack(
                            "ζ",
                            L3Expr::pair(L3Expr::unit(), L3Expr::bang(L3Expr::uvar("q"))),
                            L3Type::ref_like(L3Type::Bool),
                        )),
                    ),
                ),
            ),
        );
        // (The type checker would reject this — that is the theorem; here we
        // check the *dynamic* failure mode of the erased program.)
        let compiled = compile_l3(&e);
        let r = run(compiled);
        assert_eq!(r.halt, Halt::Fail(ErrorCode::Ptr));
    }

    #[test]
    fn dupl_drop_and_bang_erase_sensibly() {
        let e = L3Expr::let_pair(
            "a",
            "b",
            L3Expr::dupl(L3Expr::bang(L3Expr::bool_(true))),
            L3Expr::let_unit(L3Expr::drop_(L3Expr::var("a")), L3Expr::var("b")),
        );
        // dupl !true = (!true, !true); drop one, keep the other.
        let r = run(compile_l3(&e));
        assert_eq!(r.halt, Halt::Value(Value::Int(0)));
    }

    #[test]
    fn location_abstraction_erases_to_thunking() {
        let e = L3Expr::locapp(L3Expr::loclam("ζ", L3Expr::bool_(true)), "ζ");
        // Type checking requires ζ in scope for the application; compile the
        // closed loclam and apply: Λζ. true [ζ] ⇝ (λ_. 0) () ⇝ 0.
        let compiled = MemGcCompiler::new(&NoConversions, &NoGlue)
            .compile_l3_program(&e)
            .unwrap();
        assert_eq!(run(compiled).halt, Halt::Value(Value::Int(0)));
    }

    #[test]
    fn polymorphic_miniml_compiles_via_type_erasure() {
        // (Λα. λx:α. x) [int] 7  ==> 7
        let e = PolyExpr::app(
            PolyExpr::tyapp(
                PolyExpr::tylam(
                    "α",
                    PolyExpr::lam("x", PolyType::tvar("α"), PolyExpr::var("x")),
                ),
                PolyType::Int,
            ),
            PolyExpr::int(7),
        );
        let compiled = MemGcCompiler::new(&NoConversions, &NoGlue)
            .compile_ml_program(&e)
            .unwrap();
        assert_eq!(run(compiled).halt, Halt::Value(Value::Int(7)));
    }

    #[test]
    fn miniml_gc_references_stay_gc_managed() {
        let e = PolyExpr::deref(PolyExpr::ref_(PolyExpr::int(5)));
        let compiled = MemGcCompiler::new(&NoConversions, &NoGlue)
            .compile_ml_program(&e)
            .unwrap();
        let r = run(compiled);
        assert_eq!(r.halt, Halt::Value(Value::Int(5)));
        assert_eq!(r.heap.stats().gc_allocs, 1);
        assert_eq!(r.heap.stats().manual_allocs, 0);
        // The cell is GC'd, not manual.
        let (loc, slot) = r.heap.iter().next().unwrap();
        let _ = loc;
        assert!(matches!(slot, Slot::Gc(_)));
    }

    #[test]
    fn boundaries_without_glue_are_compile_errors() {
        let e = PolyExpr::boundary(L3Expr::bool_(true), PolyType::foreign(L3Type::Bool));
        let err = MemGcCompiler::new(&NoConversions, &NoGlue)
            .compile_ml_program(&e)
            .unwrap_err();
        assert!(matches!(err, MemGcCompileError::MissingConversion { .. }));
    }
}
