//! The §5 convertibility rules and their LCVM glue code.
//!
//! * `ref τ ∼ REF 𝜏` (where `REF 𝜏 ≜ ∃ζ. cap ζ 𝜏 ⊗ !ptr ζ`) when `τ ∼ 𝜏`:
//!
//!   ```text
//!   C_{REF 𝜏 ↦ ref τ}(e) ≜ let x = snd e in let _ = (x := C_{𝜏↦τ}(!x)) in gcmov x
//!   C_{ref τ ↦ REF 𝜏}(e) ≜ let x = alloc C_{τ↦𝜏}(!e) in ((), x)
//!   ```
//!
//!   Going from L3 to MiniML the capability certifies unique ownership, so
//!   the contents are converted **in place** and the very same location is
//!   handed to the GC (`gcmov`) — no copy.  Going the other way aliases may
//!   exist, so the contents are copied into a fresh manual cell.
//!
//! * `⟨𝜏⟩ ∼ 𝜏` for `𝜏 ∈ Duplicable`: both directions are the identity — this
//!   is what lets L3 values flow through MiniML generics.
//!
//! * `∀α. α → α → α ∼ bool` (Church booleans, the paper's example (2)):
//!
//!   ```text
//!   C_{BOOL↦bool}(e) ≜ e [] () 0 1       C_{bool↦BOOL}(e) ≜ if0 e {Λα.λx.λy.x} {Λα.λx.λy.y}
//!   ```
//!
//! * `τ1 → τ2 ∼ !(!𝜏1 ⊸ 𝜏2)` when the components are convertible: plain
//!   function wrapping (L3's linearity is static, so no runtime guards are
//!   needed, unlike §4).
//!
//! * `unit ∼ unit` and `int ∼ int`-style base identities.

use crate::compile::MemGcConversionEmitter;
use crate::syntax::{L3Type, PolyType};
use crate::typecheck::{ref_like_payload, MemGcConvertOracle};
use lcvm::Expr;
use semint_core::convert::{ConversionPair, ConversionScheme, GlueCache};

/// The §5 conversion rule set, memoized through a shared
/// [`GlueCache`] (clones share the cache).
#[derive(Debug, Clone, Default)]
pub struct MemGcConversions {
    cache: GlueCache<PolyType, L3Type, Expr>,
}

impl MemGcConversions {
    /// The standard rule set with a cold glue cache.
    pub fn standard() -> Self {
        MemGcConversions::default()
    }

    /// The memoization cache behind [`MemGcConversions::derive`].
    pub fn cache(&self) -> &GlueCache<PolyType, L3Type, Expr> {
        &self.cache
    }

    /// Derives `τ ∼ 𝜏` (memoized), returning `(C_{τ↦𝜏}, C_{𝜏↦τ})`.
    pub fn derive(&self, ml: &PolyType, l3: &L3Type) -> Option<(Expr, Expr)> {
        self.derive_pair(ml, l3)
            .map(|p| (p.a_to_b.clone(), p.b_to_a.clone()))
    }
}

impl ConversionScheme for MemGcConversions {
    type TyA = PolyType;
    type TyB = L3Type;
    type Glue = Expr;

    fn glue_cache(&self) -> &GlueCache<PolyType, L3Type, Expr> {
        &self.cache
    }

    /// One §5 derivation step; sub-derivations recurse through the memoized
    /// [`MemGcConversions::derive`].
    fn derive_uncached(&self, ml: &PolyType, l3: &L3Type) -> Option<ConversionPair<Expr>> {
        // Foreign embedding: ⟨𝜏⟩ ∼ 𝜏 for Duplicable 𝜏, no runtime consequence.
        if let PolyType::Foreign(inner) = ml {
            if inner.as_ref() == l3 && l3.is_duplicable() {
                return Some(ConversionPair::new(identity(), identity()));
            }
            return None;
        }
        let pair = match (ml, l3) {
            (PolyType::Unit, L3Type::Unit) => Some((identity(), identity())),
            // MiniML int ∼ L3 bool: ints collapse onto 0/1.
            (PolyType::Int, L3Type::Bool) => Some((collapse_to_bool(), identity())),
            // Church booleans ∼ L3 booleans (paper example (2)).
            (ml_ty, L3Type::Bool) if *ml_ty == PolyType::church_bool() => {
                Some((church_to_bool(), bool_to_church()))
            }
            // ref τ ∼ REF 𝜏 when τ ∼ 𝜏.
            (PolyType::Ref(t), l3_ref) => {
                let payload = ref_like_payload(l3_ref)?;
                let (c_ml_to_l3, c_l3_to_ml) = self.derive(t, &payload)?;
                Some((gc_ref_to_l3(c_ml_to_l3), l3_ref_to_gc(c_l3_to_ml)))
            }
            // τ1 → τ2 ∼ !(!𝜏1 ⊸ 𝜏2) when the pieces are convertible.
            (PolyType::Fun(m1, m2), L3Type::Bang(inner)) => {
                if let L3Type::Lolli(a1, a2) = inner.as_ref() {
                    if let L3Type::Bang(a1_inner) = a1.as_ref() {
                        let (c_arg_ml_to_l3, c_arg_l3_to_ml) = self.derive(m1, a1_inner)?;
                        let (c_res_ml_to_l3, c_res_l3_to_ml) = self.derive(m2, a2)?;
                        return Some(ConversionPair::new(
                            wrap_fun(c_arg_l3_to_ml, c_res_ml_to_l3),
                            wrap_fun(c_arg_ml_to_l3, c_res_l3_to_ml),
                        ));
                    }
                }
                None
            }
            // Pairs, componentwise.
            (PolyType::Prod(m1, m2), L3Type::Tensor(a1, a2)) => {
                let (c1_to, c1_from) = self.derive(m1, a1)?;
                let (c2_to, c2_from) = self.derive(m2, a2)?;
                Some((pair_map(c1_to, c2_to), pair_map(c1_from, c2_from)))
            }
            _ => None,
        };
        pair.map(|(to_l3, from_l3)| ConversionPair::new(to_l3, from_l3))
    }
}

impl MemGcConvertOracle for MemGcConversions {
    fn convertible(&self, ml: &PolyType, l3: &L3Type) -> bool {
        self.derivable(ml, l3)
    }
}

impl MemGcConversionEmitter for MemGcConversions {
    fn l3_to_ml(&self, l3: &L3Type, ml: &PolyType) -> Option<Expr> {
        self.derive_pair(ml, l3).map(|p| p.b_to_a.clone())
    }
    fn ml_to_l3(&self, ml: &PolyType, l3: &L3Type) -> Option<Expr> {
        self.derive_pair(ml, l3).map(|p| p.a_to_b.clone())
    }
}

fn identity() -> Expr {
    Expr::lam("cv%x", Expr::var("cv%x"))
}

/// `λx. if x {0} {1}`.
fn collapse_to_bool() -> Expr {
    Expr::lam(
        "cv%x",
        Expr::if_(Expr::var("cv%x"), Expr::int(0), Expr::int(1)),
    )
}

/// `λp. (c1 (fst p), c2 (snd p))`.
fn pair_map(c1: Expr, c2: Expr) -> Expr {
    Expr::lam(
        "cv%p",
        Expr::pair(
            Expr::app(c1, Expr::fst(Expr::var("cv%p"))),
            Expr::app(c2, Expr::snd(Expr::var("cv%p"))),
        ),
    )
}

/// `C_{REF 𝜏 ↦ ref τ}`: convert the contents in place, then `gcmov` the very
/// same location into the GC'd heap.
fn l3_ref_to_gc(c_payload_l3_to_ml: Expr) -> Expr {
    Expr::lam(
        "cv%pkg",
        Expr::let_(
            "cv%loc",
            Expr::snd(Expr::var("cv%pkg")),
            Expr::seq(
                Expr::assign(
                    Expr::var("cv%loc"),
                    Expr::app(c_payload_l3_to_ml, Expr::deref(Expr::var("cv%loc"))),
                ),
                Expr::gcmov(Expr::var("cv%loc")),
            ),
        ),
    )
}

/// `C_{ref τ ↦ REF 𝜏}`: copy the (possibly aliased) GC'd contents into a
/// fresh manual cell.
fn gc_ref_to_l3(c_payload_ml_to_l3: Expr) -> Expr {
    Expr::lam(
        "cv%ref",
        Expr::let_(
            "cv%new",
            Expr::alloc(Expr::app(
                c_payload_ml_to_l3,
                Expr::deref(Expr::var("cv%ref")),
            )),
            Expr::pair(Expr::Unit, Expr::var("cv%new")),
        ),
    )
}

/// `C_{BOOL↦bool}(e) ≜ e () 0 1` — instantiate the Church boolean (type
/// application compiles to application to `()`) and select between 0 and 1.
fn church_to_bool() -> Expr {
    Expr::lam(
        "cv%b",
        Expr::app(
            Expr::app(Expr::app(Expr::var("cv%b"), Expr::unit()), Expr::int(0)),
            Expr::int(1),
        ),
    )
}

/// `C_{bool↦BOOL}(e)`: branch on the boolean and return the corresponding
/// Church constant (compiled `Λα. λx. λy. x/y`).
fn bool_to_church() -> Expr {
    let tru = Expr::lam("_", Expr::lam("x", Expr::lam("y", Expr::var("x"))));
    let fls = Expr::lam("_", Expr::lam("x", Expr::lam("y", Expr::var("y"))));
    Expr::lam("cv%b", Expr::if_(Expr::var("cv%b"), tru, fls))
}

/// `λf. λx. c_res (f (c_arg x))`: plain function wrapping (no guards — L3's
/// linearity is enforced statically).
fn wrap_fun(c_arg: Expr, c_res: Expr) -> Expr {
    Expr::lam(
        "cv%f",
        Expr::lam(
            "cv%a",
            Expr::app(
                c_res,
                Expr::app(Expr::var("cv%f"), Expr::app(c_arg, Expr::var("cv%a"))),
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcvm::Env;
    use lcvm::{Halt, Heap, Machine, MachineConfig, Slot, Value};
    use semint_core::Fuel;

    fn conv() -> MemGcConversions {
        MemGcConversions::standard()
    }

    fn run(e: Expr) -> Halt {
        Machine::run_expr(e, Fuel::default()).halt
    }

    #[test]
    fn rule_coverage() {
        let c = conv();
        assert!(c.convertible(&PolyType::Unit, &L3Type::Unit));
        assert!(c.convertible(&PolyType::Int, &L3Type::Bool));
        assert!(c.convertible(&PolyType::foreign(L3Type::Bool), &L3Type::Bool));
        assert!(c.convertible(&PolyType::foreign(L3Type::ptr("ζ")), &L3Type::ptr("ζ")));
        assert!(
            !c.convertible(
                &PolyType::foreign(L3Type::cap("ζ", L3Type::Bool)),
                &L3Type::cap("ζ", L3Type::Bool)
            ),
            "capabilities are linear, hence not Duplicable, hence not foreign-embeddable"
        );
        assert!(c.convertible(
            &PolyType::ref_(PolyType::Int),
            &L3Type::ref_like(L3Type::Bool)
        ));
        assert!(c.convertible(&PolyType::church_bool(), &L3Type::Bool));
        assert!(c.convertible(
            &PolyType::fun(PolyType::Int, PolyType::Int),
            &L3Type::bang(L3Type::lolli(L3Type::bang(L3Type::Bool), L3Type::Bool))
        ));
        assert!(!c.convertible(&PolyType::Int, &L3Type::Unit));
    }

    #[test]
    fn l3_to_miniml_reference_transfer_moves_without_copying() {
        // Build an L3 package ((), ℓ) with ℓ a manual cell holding true (0).
        let mut heap = Heap::new();
        let loc = heap.alloc_manual(Value::Int(0));
        let glue = conv()
            .l3_to_ml(
                &L3Type::ref_like(L3Type::Bool),
                &PolyType::ref_(PolyType::Int),
            )
            .unwrap();
        let prog = Expr::app(glue, Expr::pair(Expr::Unit, Expr::Loc(loc)));
        let machine = Machine::with_state(heap, Env::empty(), prog, MachineConfig::default());
        let r = machine.run(Fuel::default());
        // The result is the *same* location, now GC-managed, contents intact.
        assert_eq!(r.halt, Halt::Value(Value::Loc(loc)));
        assert!(matches!(r.heap.slot(loc), Some(Slot::Gc(Value::Int(0)))));
        assert_eq!(r.heap.stats().gcmovs, 1);
        // The only manual allocation is the set-up one; the conversion itself
        // allocated nothing (no copy, no fresh GC cell).
        assert_eq!(r.heap.stats().manual_allocs, 1);
        assert_eq!(r.heap.stats().gc_allocs, 0);
    }

    #[test]
    fn miniml_to_l3_reference_conversion_copies_into_fresh_manual_cell() {
        let mut heap = Heap::new();
        let loc = heap.alloc_gc(Value::Int(7));
        let glue = conv()
            .ml_to_l3(
                &PolyType::ref_(PolyType::Int),
                &L3Type::ref_like(L3Type::Bool),
            )
            .unwrap();
        let prog = Expr::app(glue, Expr::Loc(loc));
        let machine = Machine::with_state(heap, Env::empty(), prog, MachineConfig::default());
        let r = machine.run(Fuel::default());
        match r.halt {
            Halt::Value(Value::Pair(cap, ptr)) => {
                assert_eq!(*cap, Value::Unit);
                let new_loc = ptr.as_loc().unwrap();
                assert_ne!(new_loc, loc, "a fresh cell must be allocated");
                assert!(matches!(r.heap.slot(new_loc), Some(Slot::Manual(_))));
                // The original GC'd cell is untouched (aliases remain valid).
                assert!(matches!(r.heap.slot(loc), Some(Slot::Gc(Value::Int(7)))));
                // The payload was converted int → bool (7 collapses to 1).
                assert_eq!(r.heap.slot(new_loc).unwrap().value(), &Value::Int(1));
            }
            other => panic!("expected a package, got {other:?}"),
        }
    }

    #[test]
    fn church_boolean_conversions_round_trip() {
        let (to_l3, to_ml) = conv()
            .derive(&PolyType::church_bool(), &L3Type::Bool)
            .unwrap();
        // Church true (compiled) → L3 true (0).
        let church_true = Expr::lam("_", Expr::lam("x", Expr::lam("y", Expr::var("x"))));
        assert_eq!(
            run(Expr::app(to_l3.clone(), church_true)),
            Halt::Value(Value::Int(0))
        );
        // L3 false (1) → Church boolean → back to 1.
        let round = Expr::app(to_l3, Expr::app(to_ml, Expr::int(1)));
        assert_eq!(run(round), Halt::Value(Value::Int(1)));
    }

    #[test]
    fn function_conversion_wraps_argument_and_result() {
        // MiniML (int → int) as L3 !(!bool ⊸ bool): feeding it L3 true (0)
        // converts to an int, applies, converts back to a bool.
        let ml_ty = PolyType::fun(PolyType::Int, PolyType::Int);
        let l3_ty = L3Type::bang(L3Type::lolli(L3Type::bang(L3Type::Bool), L3Type::Bool));
        let (to_l3, _) = conv().derive(&ml_ty, &l3_ty).unwrap();
        // λx. x + 3 : int → int; applied via the wrapper to true (0) yields 3,
        // which collapses to false (1) on the way back to L3.
        let ml_fun = Expr::lam("x", Expr::add(Expr::var("x"), Expr::int(3)));
        let prog = Expr::app(Expr::app(to_l3, ml_fun), Expr::int(0));
        assert_eq!(run(prog), Halt::Value(Value::Int(1)));
    }

    #[test]
    fn repeated_derivations_hit_the_glue_cache() {
        let c = conv();
        let ml = PolyType::fun(
            PolyType::prod(PolyType::Int, PolyType::Int),
            PolyType::prod(PolyType::Int, PolyType::Int),
        );
        let l3 = L3Type::bang(L3Type::lolli(
            L3Type::bang(L3Type::tensor(L3Type::Bool, L3Type::Bool)),
            L3Type::tensor(L3Type::Bool, L3Type::Bool),
        ));
        let first = c.derive(&ml, &l3);
        assert!(first.is_some());
        let after_first = c.cache().stats();
        let second = c.derive(&ml, &l3);
        assert_eq!(first, second, "cached result is observably identical");
        let after_second = c.cache().stats();
        assert_eq!(after_second.misses, after_first.misses);
        assert_eq!(after_second.hits, after_first.hits + 1);
        assert_eq!(first, MemGcConversions::standard().derive(&ml, &l3));
    }

    #[test]
    fn foreign_embedding_is_free() {
        let (to_l3, to_ml) = conv()
            .derive(&PolyType::foreign(L3Type::Bool), &L3Type::Bool)
            .unwrap();
        // Both directions are the identity λ.
        assert_eq!(
            run(Expr::app(to_l3, Expr::int(0))),
            Halt::Value(Value::Int(0))
        );
        assert_eq!(
            run(Expr::app(to_ml, Expr::int(1))),
            Halt::Value(Value::Int(1))
        );
    }
}
