//! Syntax of the §5 languages: MiniML with polymorphism and foreign types
//! (here called `Poly*` to distinguish it from the §4 instance) and core L3
//! (Fig. 11), augmented with boundary and foreign-embedding forms.

use semint_core::Var;
use std::fmt;

/// A type variable `α` (MiniML) — plain names.
pub type TyVar = Var;

/// A location variable `ζ` (L3).
pub type LocVar = Var;

/// MiniML types (§5 instance): `unit | int | τ×τ | τ+τ | τ→τ | ∀α.τ | α |
/// ref τ | ⟨𝜏⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PolyType {
    /// `unit`.
    Unit,
    /// `int`.
    Int,
    /// `τ1 × τ2`.
    Prod(Box<PolyType>, Box<PolyType>),
    /// `τ1 + τ2`.
    Sum(Box<PolyType>, Box<PolyType>),
    /// `τ1 → τ2`.
    Fun(Box<PolyType>, Box<PolyType>),
    /// `∀α. τ`.
    Forall(TyVar, Box<PolyType>),
    /// A type variable `α`.
    Var(TyVar),
    /// `ref τ` (garbage collected).
    Ref(Box<PolyType>),
    /// A foreign type `⟨𝜏⟩` embedding an L3 type opaquely.
    Foreign(Box<L3Type>),
}

impl PolyType {
    /// `τ1 × τ2`.
    pub fn prod(a: PolyType, b: PolyType) -> PolyType {
        PolyType::Prod(Box::new(a), Box::new(b))
    }
    /// `τ1 + τ2`.
    pub fn sum(a: PolyType, b: PolyType) -> PolyType {
        PolyType::Sum(Box::new(a), Box::new(b))
    }
    /// `τ1 → τ2`.
    pub fn fun(a: PolyType, b: PolyType) -> PolyType {
        PolyType::Fun(Box::new(a), Box::new(b))
    }
    /// `∀α. τ`.
    pub fn forall(a: impl Into<TyVar>, t: PolyType) -> PolyType {
        PolyType::Forall(a.into(), Box::new(t))
    }
    /// The type variable `α`.
    pub fn tvar(a: impl Into<TyVar>) -> PolyType {
        PolyType::Var(a.into())
    }
    /// `ref τ`.
    pub fn ref_(t: PolyType) -> PolyType {
        PolyType::Ref(Box::new(t))
    }
    /// `⟨𝜏⟩`.
    pub fn foreign(t: L3Type) -> PolyType {
        PolyType::Foreign(Box::new(t))
    }
    /// The Church-boolean type `∀α. α → α → α` used in the paper's example (2).
    pub fn church_bool() -> PolyType {
        PolyType::forall(
            "α",
            PolyType::fun(
                PolyType::tvar("α"),
                PolyType::fun(PolyType::tvar("α"), PolyType::tvar("α")),
            ),
        )
    }

    /// Capture-avoiding substitution of `target` for type variable `a`.
    ///
    /// The workspace's generated binders are all distinct, so the
    /// implementation only skips shadowing binders (no renaming is needed).
    pub fn subst(&self, a: &TyVar, target: &PolyType) -> PolyType {
        match self {
            PolyType::Unit | PolyType::Int => self.clone(),
            PolyType::Var(b) => {
                if b == a {
                    target.clone()
                } else {
                    self.clone()
                }
            }
            PolyType::Prod(x, y) => PolyType::prod(x.subst(a, target), y.subst(a, target)),
            PolyType::Sum(x, y) => PolyType::sum(x.subst(a, target), y.subst(a, target)),
            PolyType::Fun(x, y) => PolyType::fun(x.subst(a, target), y.subst(a, target)),
            PolyType::Forall(b, body) => {
                if b == a {
                    self.clone()
                } else {
                    PolyType::Forall(b.clone(), Box::new(body.subst(a, target)))
                }
            }
            PolyType::Ref(t) => PolyType::ref_(t.subst(a, target)),
            PolyType::Foreign(t) => PolyType::Foreign(t.clone()),
        }
    }
}

impl fmt::Display for PolyType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyType::Unit => write!(f, "unit"),
            PolyType::Int => write!(f, "int"),
            PolyType::Prod(a, b) => write!(f, "({a} × {b})"),
            PolyType::Sum(a, b) => write!(f, "({a} + {b})"),
            PolyType::Fun(a, b) => write!(f, "({a} → {b})"),
            PolyType::Forall(a, t) => write!(f, "∀{a}. {t}"),
            PolyType::Var(a) => write!(f, "{a}"),
            PolyType::Ref(t) => write!(f, "ref {t}"),
            PolyType::Foreign(t) => write!(f, "⟨{t}⟩"),
        }
    }
}

/// L3 types (Fig. 11): `unit | bool | 𝜏⊗𝜏 | 𝜏⊸𝜏 | !𝜏 | ptr ζ | cap ζ 𝜏 |
/// ∀ζ.𝜏 | ∃ζ.𝜏`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum L3Type {
    /// `unit`.
    Unit,
    /// `bool`.
    Bool,
    /// `𝜏1 ⊗ 𝜏2`.
    Tensor(Box<L3Type>, Box<L3Type>),
    /// `𝜏1 ⊸ 𝜏2`.
    Lolli(Box<L3Type>, Box<L3Type>),
    /// `!𝜏`.
    Bang(Box<L3Type>),
    /// `ptr ζ` — an aliasable pointer to the abstract location `ζ`.
    Ptr(LocVar),
    /// `cap ζ 𝜏` — the unique capability to access `ζ`, currently holding a 𝜏.
    Cap(LocVar, Box<L3Type>),
    /// `∀ζ. 𝜏`.
    ForallLoc(LocVar, Box<L3Type>),
    /// `∃ζ. 𝜏`.
    ExistsLoc(LocVar, Box<L3Type>),
}

impl L3Type {
    /// `𝜏1 ⊗ 𝜏2`.
    pub fn tensor(a: L3Type, b: L3Type) -> L3Type {
        L3Type::Tensor(Box::new(a), Box::new(b))
    }
    /// `𝜏1 ⊸ 𝜏2`.
    pub fn lolli(a: L3Type, b: L3Type) -> L3Type {
        L3Type::Lolli(Box::new(a), Box::new(b))
    }
    /// `!𝜏`.
    pub fn bang(a: L3Type) -> L3Type {
        L3Type::Bang(Box::new(a))
    }
    /// `ptr ζ`.
    pub fn ptr(z: impl Into<LocVar>) -> L3Type {
        L3Type::Ptr(z.into())
    }
    /// `cap ζ 𝜏`.
    pub fn cap(z: impl Into<LocVar>, t: L3Type) -> L3Type {
        L3Type::Cap(z.into(), Box::new(t))
    }
    /// `∀ζ. 𝜏`.
    pub fn forall_loc(z: impl Into<LocVar>, t: L3Type) -> L3Type {
        L3Type::ForallLoc(z.into(), Box::new(t))
    }
    /// `∃ζ. 𝜏`.
    pub fn exists_loc(z: impl Into<LocVar>, t: L3Type) -> L3Type {
        L3Type::ExistsLoc(z.into(), Box::new(t))
    }
    /// The `REF 𝜏` abbreviation from §5: `∃ζ. cap ζ 𝜏 ⊗ !ptr ζ`.
    pub fn ref_like(t: L3Type) -> L3Type {
        L3Type::exists_loc(
            "ζ",
            L3Type::tensor(L3Type::cap("ζ", t), L3Type::bang(L3Type::ptr("ζ"))),
        )
    }

    /// Is this type in the `Duplicable` set (§5): `unit`, `bool`, `ptr ζ` and
    /// `!𝜏`?  Only these may be embedded as foreign types `⟨𝜏⟩`.
    pub fn is_duplicable(&self) -> bool {
        matches!(
            self,
            L3Type::Unit | L3Type::Bool | L3Type::Ptr(_) | L3Type::Bang(_)
        )
    }

    /// Substitutes the location variable `z` with another location variable
    /// (location polymorphism is name-to-name at the type level here, since
    /// the compiler erases locations).
    pub fn subst_loc(&self, z: &LocVar, target: &LocVar) -> L3Type {
        match self {
            L3Type::Unit | L3Type::Bool => self.clone(),
            L3Type::Tensor(a, b) => L3Type::tensor(a.subst_loc(z, target), b.subst_loc(z, target)),
            L3Type::Lolli(a, b) => L3Type::lolli(a.subst_loc(z, target), b.subst_loc(z, target)),
            L3Type::Bang(a) => L3Type::bang(a.subst_loc(z, target)),
            L3Type::Ptr(w) => L3Type::Ptr(if w == z { target.clone() } else { w.clone() }),
            L3Type::Cap(w, t) => L3Type::Cap(
                if w == z { target.clone() } else { w.clone() },
                Box::new(t.subst_loc(z, target)),
            ),
            L3Type::ForallLoc(w, t) | L3Type::ExistsLoc(w, t) => {
                let rebuild = |inner: Box<L3Type>| match self {
                    L3Type::ForallLoc(_, _) => L3Type::ForallLoc(w.clone(), inner),
                    _ => L3Type::ExistsLoc(w.clone(), inner),
                };
                if w == z {
                    self.clone()
                } else {
                    rebuild(Box::new(t.subst_loc(z, target)))
                }
            }
        }
    }
}

impl fmt::Display for L3Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            L3Type::Unit => write!(f, "unit"),
            L3Type::Bool => write!(f, "bool"),
            L3Type::Tensor(a, b) => write!(f, "({a} ⊗ {b})"),
            L3Type::Lolli(a, b) => write!(f, "({a} ⊸ {b})"),
            L3Type::Bang(a) => write!(f, "!{a}"),
            L3Type::Ptr(z) => write!(f, "ptr {z}"),
            L3Type::Cap(z, t) => write!(f, "cap {z} {t}"),
            L3Type::ForallLoc(z, t) => write!(f, "∀{z}. {t}"),
            L3Type::ExistsLoc(z, t) => write!(f, "∃{z}. {t}"),
        }
    }
}

/// MiniML (§5) expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum PolyExpr {
    /// `()`.
    Unit,
    /// An integer literal.
    Int(i64),
    /// A variable.
    Var(Var),
    /// `(e1, e2)`.
    Pair(Box<PolyExpr>, Box<PolyExpr>),
    /// `fst e`.
    Fst(Box<PolyExpr>),
    /// `snd e`.
    Snd(Box<PolyExpr>),
    /// `inl e` at the annotated sum type.
    Inl(Box<PolyExpr>, PolyType),
    /// `inr e` at the annotated sum type.
    Inr(Box<PolyExpr>, PolyType),
    /// `match e x {e1} y {e2}`.
    Match(Box<PolyExpr>, Var, Box<PolyExpr>, Var, Box<PolyExpr>),
    /// `λx:τ. e`.
    Lam(Var, PolyType, Box<PolyExpr>),
    /// `e1 e2`.
    App(Box<PolyExpr>, Box<PolyExpr>),
    /// `Λα. e`.
    TyLam(TyVar, Box<PolyExpr>),
    /// `e [τ]`.
    TyApp(Box<PolyExpr>, PolyType),
    /// `ref e`.
    Ref(Box<PolyExpr>),
    /// `!e`.
    Deref(Box<PolyExpr>),
    /// `e1 := e2`.
    Assign(Box<PolyExpr>, Box<PolyExpr>),
    /// `e1 + e2`.
    Add(Box<PolyExpr>, Box<PolyExpr>),
    /// Boundary `⦇ē⦈τ`: an L3 term used at MiniML type `τ`.
    Boundary(Box<L3Expr>, PolyType),
}

impl PolyExpr {
    /// `()`.
    pub fn unit() -> Self {
        PolyExpr::Unit
    }
    /// An integer literal.
    pub fn int(n: i64) -> Self {
        PolyExpr::Int(n)
    }
    /// A variable.
    pub fn var(x: impl Into<Var>) -> Self {
        PolyExpr::Var(x.into())
    }
    /// `(a, b)`.
    pub fn pair(a: Self, b: Self) -> Self {
        PolyExpr::Pair(Box::new(a), Box::new(b))
    }
    /// `fst e`.
    pub fn fst(e: Self) -> Self {
        PolyExpr::Fst(Box::new(e))
    }
    /// `snd e`.
    pub fn snd(e: Self) -> Self {
        PolyExpr::Snd(Box::new(e))
    }
    /// `inl e` at `ty`.
    pub fn inl(e: Self, ty: PolyType) -> Self {
        PolyExpr::Inl(Box::new(e), ty)
    }
    /// `inr e` at `ty`.
    pub fn inr(e: Self, ty: PolyType) -> Self {
        PolyExpr::Inr(Box::new(e), ty)
    }
    /// `match e x {l} y {r}`.
    pub fn match_(e: Self, x: impl Into<Var>, l: Self, y: impl Into<Var>, r: Self) -> Self {
        PolyExpr::Match(Box::new(e), x.into(), Box::new(l), y.into(), Box::new(r))
    }
    /// `λx:τ. body`.
    pub fn lam(x: impl Into<Var>, ty: PolyType, body: Self) -> Self {
        PolyExpr::Lam(x.into(), ty, Box::new(body))
    }
    /// `f a`.
    pub fn app(f: Self, a: Self) -> Self {
        PolyExpr::App(Box::new(f), Box::new(a))
    }
    /// `Λα. body`.
    pub fn tylam(a: impl Into<TyVar>, body: Self) -> Self {
        PolyExpr::TyLam(a.into(), Box::new(body))
    }
    /// `e [τ]`.
    pub fn tyapp(e: Self, ty: PolyType) -> Self {
        PolyExpr::TyApp(Box::new(e), ty)
    }
    /// `ref e`.
    pub fn ref_(e: Self) -> Self {
        PolyExpr::Ref(Box::new(e))
    }
    /// `!e`.
    pub fn deref(e: Self) -> Self {
        PolyExpr::Deref(Box::new(e))
    }
    /// `a := b`.
    pub fn assign(a: Self, b: Self) -> Self {
        PolyExpr::Assign(Box::new(a), Box::new(b))
    }
    /// `a + b`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Self, b: Self) -> Self {
        PolyExpr::Add(Box::new(a), Box::new(b))
    }
    /// `⦇ē⦈τ`.
    pub fn boundary(e: L3Expr, ty: PolyType) -> Self {
        PolyExpr::Boundary(Box::new(e), ty)
    }
}

/// L3 expressions (Fig. 11, plus the boundary `⦇e⦈𝜏`).
#[derive(Debug, Clone, PartialEq)]
pub enum L3Expr {
    /// `()`.
    Unit,
    /// `true` / `false`.
    Bool(bool),
    /// A variable (linear unless introduced by `let !x`).
    Var(Var),
    /// An unrestricted variable introduced by `let !x = …`.
    UVar(Var),
    /// `λx:𝜏. e`.
    Lam(Var, L3Type, Box<L3Expr>),
    /// `e1 e2`.
    App(Box<L3Expr>, Box<L3Expr>),
    /// `(e1, e2)`.
    Pair(Box<L3Expr>, Box<L3Expr>),
    /// `let (x1, x2) = e1 in e2`.
    LetPair(Var, Var, Box<L3Expr>, Box<L3Expr>),
    /// `let () = e1 in e2`.
    LetUnit(Box<L3Expr>, Box<L3Expr>),
    /// `if e e1 e2`.
    If(Box<L3Expr>, Box<L3Expr>, Box<L3Expr>),
    /// `!v` — exponential introduction.
    Bang(Box<L3Expr>),
    /// `let !x = e1 in e2`.
    LetBang(Var, Box<L3Expr>, Box<L3Expr>),
    /// `dupl e` — duplicate a `!`-value (`!𝜏 ⊸ !𝜏 ⊗ !𝜏`).
    Dupl(Box<L3Expr>),
    /// `drop e` — discard a `!`-value.
    Drop(Box<L3Expr>),
    /// `new e` — allocate, returning `∃ζ. cap ζ 𝜏 ⊗ !ptr ζ`.
    New(Box<L3Expr>),
    /// `free e` — deallocate a capability/pointer package, returning the
    /// stored value.
    Free(Box<L3Expr>),
    /// `swap ec ep ev` — strong update: returns `cap ζ 𝜏2 ⊗ 𝜏1`.
    Swap(Box<L3Expr>, Box<L3Expr>, Box<L3Expr>),
    /// `Λζ. e`.
    LocLam(LocVar, Box<L3Expr>),
    /// `e [ζ]`.
    LocApp(Box<L3Expr>, LocVar),
    /// `⌜ζ, e⌝` — pack.
    Pack(LocVar, Box<L3Expr>, L3Type),
    /// `let ⌜ζ, x⌝ = e1 in e2` — unpack.
    Unpack(LocVar, Var, Box<L3Expr>, Box<L3Expr>),
    /// Boundary `⦇e⦈𝜏`: a MiniML term used at L3 type `𝜏`.
    Boundary(Box<PolyExpr>, L3Type),
}

impl L3Expr {
    /// `()`.
    pub fn unit() -> Self {
        L3Expr::Unit
    }
    /// A boolean literal.
    pub fn bool_(b: bool) -> Self {
        L3Expr::Bool(b)
    }
    /// A linear variable.
    pub fn var(x: impl Into<Var>) -> Self {
        L3Expr::Var(x.into())
    }
    /// An unrestricted variable.
    pub fn uvar(x: impl Into<Var>) -> Self {
        L3Expr::UVar(x.into())
    }
    /// `λx:𝜏. body`.
    pub fn lam(x: impl Into<Var>, ty: L3Type, body: Self) -> Self {
        L3Expr::Lam(x.into(), ty, Box::new(body))
    }
    /// `f a`.
    pub fn app(f: Self, a: Self) -> Self {
        L3Expr::App(Box::new(f), Box::new(a))
    }
    /// `(a, b)`.
    pub fn pair(a: Self, b: Self) -> Self {
        L3Expr::Pair(Box::new(a), Box::new(b))
    }
    /// `let (x, y) = e in body`.
    pub fn let_pair(x: impl Into<Var>, y: impl Into<Var>, e: Self, body: Self) -> Self {
        L3Expr::LetPair(x.into(), y.into(), Box::new(e), Box::new(body))
    }
    /// `let () = e in body`.
    pub fn let_unit(e: Self, body: Self) -> Self {
        L3Expr::LetUnit(Box::new(e), Box::new(body))
    }
    /// `if c t f`.
    pub fn if_(c: Self, t: Self, f: Self) -> Self {
        L3Expr::If(Box::new(c), Box::new(t), Box::new(f))
    }
    /// `!e`.
    pub fn bang(e: Self) -> Self {
        L3Expr::Bang(Box::new(e))
    }
    /// `let !x = e in body`.
    pub fn let_bang(x: impl Into<Var>, e: Self, body: Self) -> Self {
        L3Expr::LetBang(x.into(), Box::new(e), Box::new(body))
    }
    /// `dupl e`.
    pub fn dupl(e: Self) -> Self {
        L3Expr::Dupl(Box::new(e))
    }
    /// `drop e`.
    pub fn drop_(e: Self) -> Self {
        L3Expr::Drop(Box::new(e))
    }
    /// `new e`.
    pub fn new(e: Self) -> Self {
        L3Expr::New(Box::new(e))
    }
    /// `free e`.
    pub fn free(e: Self) -> Self {
        L3Expr::Free(Box::new(e))
    }
    /// `swap cap ptr value`.
    pub fn swap(cap: Self, ptr: Self, value: Self) -> Self {
        L3Expr::Swap(Box::new(cap), Box::new(ptr), Box::new(value))
    }
    /// `Λζ. body`.
    pub fn loclam(z: impl Into<LocVar>, body: Self) -> Self {
        L3Expr::LocLam(z.into(), Box::new(body))
    }
    /// `e [ζ]`.
    pub fn locapp(e: Self, z: impl Into<LocVar>) -> Self {
        L3Expr::LocApp(Box::new(e), z.into())
    }
    /// `⌜ζ, e⌝ : ty` (the annotation is the existential type constructed).
    pub fn pack(z: impl Into<LocVar>, e: Self, ty: L3Type) -> Self {
        L3Expr::Pack(z.into(), Box::new(e), ty)
    }
    /// `let ⌜ζ, x⌝ = e in body`.
    pub fn unpack(z: impl Into<LocVar>, x: impl Into<Var>, e: Self, body: Self) -> Self {
        L3Expr::Unpack(z.into(), x.into(), Box::new(e), Box::new(body))
    }
    /// `⦇e⦈𝜏`.
    pub fn boundary(e: PolyExpr, ty: L3Type) -> Self {
        L3Expr::Boundary(Box::new(e), ty)
    }
}

impl PolyExpr {
    /// Number of syntactic language boundaries `⦇·⦈`, counted structurally
    /// (one tree walk, no rendering) across both embedded languages.
    pub fn boundary_count(&self) -> usize {
        match self {
            PolyExpr::Unit | PolyExpr::Int(_) | PolyExpr::Var(_) => 0,
            PolyExpr::Fst(e)
            | PolyExpr::Snd(e)
            | PolyExpr::Inl(e, _)
            | PolyExpr::Inr(e, _)
            | PolyExpr::Lam(_, _, e)
            | PolyExpr::TyLam(_, e)
            | PolyExpr::TyApp(e, _)
            | PolyExpr::Ref(e)
            | PolyExpr::Deref(e) => e.boundary_count(),
            PolyExpr::Pair(a, b)
            | PolyExpr::App(a, b)
            | PolyExpr::Assign(a, b)
            | PolyExpr::Add(a, b) => a.boundary_count() + b.boundary_count(),
            PolyExpr::Match(s, _, l, _, r) => {
                s.boundary_count() + l.boundary_count() + r.boundary_count()
            }
            PolyExpr::Boundary(e, _) => 1 + e.boundary_count(),
        }
    }
}

impl L3Expr {
    /// Number of syntactic language boundaries `⦇·⦈`, counted structurally
    /// (one tree walk, no rendering) across both embedded languages.
    pub fn boundary_count(&self) -> usize {
        match self {
            L3Expr::Unit | L3Expr::Bool(_) | L3Expr::Var(_) | L3Expr::UVar(_) => 0,
            L3Expr::Lam(_, _, e)
            | L3Expr::Bang(e)
            | L3Expr::Dupl(e)
            | L3Expr::Drop(e)
            | L3Expr::New(e)
            | L3Expr::Free(e)
            | L3Expr::LocLam(_, e)
            | L3Expr::LocApp(e, _)
            | L3Expr::Pack(_, e, _) => e.boundary_count(),
            L3Expr::App(a, b)
            | L3Expr::Pair(a, b)
            | L3Expr::LetPair(_, _, a, b)
            | L3Expr::LetUnit(a, b)
            | L3Expr::LetBang(_, a, b)
            | L3Expr::Unpack(_, _, a, b) => a.boundary_count() + b.boundary_count(),
            L3Expr::If(c, t, e) => c.boundary_count() + t.boundary_count() + e.boundary_count(),
            L3Expr::Swap(a, b, c) => a.boundary_count() + b.boundary_count() + c.boundary_count(),
            L3Expr::Boundary(e, _) => 1 + e.boundary_count(),
        }
    }
}

impl fmt::Display for PolyExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyExpr::Unit => write!(f, "()"),
            PolyExpr::Int(n) => write!(f, "{n}"),
            PolyExpr::Var(x) => write!(f, "{x}"),
            PolyExpr::Pair(a, b) => write!(f, "({a}, {b})"),
            PolyExpr::Fst(e) => write!(f, "fst {e}"),
            PolyExpr::Snd(e) => write!(f, "snd {e}"),
            PolyExpr::Inl(e, _) => write!(f, "inl {e}"),
            PolyExpr::Inr(e, _) => write!(f, "inr {e}"),
            PolyExpr::Match(s, x, l, y, r) => write!(f, "match {s} {x}{{{l}}} {y}{{{r}}}"),
            PolyExpr::Lam(x, ty, b) => write!(f, "λ{x}:{ty}. {b}"),
            PolyExpr::App(a, b) => write!(f, "({a}) ({b})"),
            PolyExpr::TyLam(a, b) => write!(f, "Λ{a}. {b}"),
            PolyExpr::TyApp(e, ty) => write!(f, "{e} [{ty}]"),
            PolyExpr::Ref(e) => write!(f, "ref {e}"),
            PolyExpr::Deref(e) => write!(f, "!{e}"),
            PolyExpr::Assign(a, b) => write!(f, "{a} := {b}"),
            PolyExpr::Add(a, b) => write!(f, "({a} + {b})"),
            PolyExpr::Boundary(e, ty) => write!(f, "⦇{e}⦈{ty}"),
        }
    }
}

impl fmt::Display for L3Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            L3Expr::Unit => write!(f, "()"),
            L3Expr::Bool(b) => write!(f, "{b}"),
            L3Expr::Var(x) | L3Expr::UVar(x) => write!(f, "{x}"),
            L3Expr::Lam(x, ty, b) => write!(f, "λ{x}:{ty}. {b}"),
            L3Expr::App(a, b) => write!(f, "({a}) ({b})"),
            L3Expr::Pair(a, b) => write!(f, "({a}, {b})"),
            L3Expr::LetPair(x, y, e, b) => write!(f, "let ({x}, {y}) = {e} in {b}"),
            L3Expr::LetUnit(e, b) => write!(f, "let () = {e} in {b}"),
            L3Expr::If(c, t, e) => write!(f, "if {c} {t} {e}"),
            L3Expr::Bang(e) => write!(f, "!{e}"),
            L3Expr::LetBang(x, e, b) => write!(f, "let !{x} = {e} in {b}"),
            L3Expr::Dupl(e) => write!(f, "dupl {e}"),
            L3Expr::Drop(e) => write!(f, "drop {e}"),
            L3Expr::New(e) => write!(f, "new {e}"),
            L3Expr::Free(e) => write!(f, "free {e}"),
            L3Expr::Swap(c, p, v) => write!(f, "swap {c} {p} {v}"),
            L3Expr::LocLam(z, b) => write!(f, "Λ{z}. {b}"),
            L3Expr::LocApp(e, z) => write!(f, "{e} [{z}]"),
            L3Expr::Pack(z, e, _) => write!(f, "⌜{z}, {e}⌝"),
            L3Expr::Unpack(z, x, e, b) => write!(f, "let ⌜{z}, {x}⌝ = {e} in {b}"),
            L3Expr::Boundary(e, ty) => write!(f, "⦇{e}⦈{ty}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicable_set_matches_the_paper() {
        assert!(L3Type::Unit.is_duplicable());
        assert!(L3Type::Bool.is_duplicable());
        assert!(L3Type::ptr("ζ").is_duplicable());
        assert!(L3Type::bang(L3Type::Bool).is_duplicable());
        assert!(!L3Type::cap("ζ", L3Type::Bool).is_duplicable());
        assert!(!L3Type::lolli(L3Type::Bool, L3Type::Bool).is_duplicable());
        assert!(!L3Type::ref_like(L3Type::Bool).is_duplicable());
    }

    #[test]
    fn type_substitution_respects_binders() {
        let t = PolyType::forall("β", PolyType::fun(PolyType::tvar("α"), PolyType::tvar("β")));
        let s = t.subst(&TyVar::new("α"), &PolyType::Int);
        assert_eq!(
            s,
            PolyType::forall("β", PolyType::fun(PolyType::Int, PolyType::tvar("β")))
        );
        // Substituting under a shadowing binder is a no-op.
        let t = PolyType::forall("α", PolyType::tvar("α"));
        assert_eq!(t.subst(&TyVar::new("α"), &PolyType::Int), t);
    }

    #[test]
    fn ref_like_abbreviation_shape() {
        let t = L3Type::ref_like(L3Type::Bool);
        assert_eq!(t.to_string(), "∃ζ. (cap ζ bool ⊗ !ptr ζ)");
    }

    #[test]
    fn church_bool_shape() {
        assert_eq!(PolyType::church_bool().to_string(), "∀α. (α → (α → α))");
    }

    #[test]
    fn loc_substitution() {
        let t = L3Type::tensor(
            L3Type::cap("ζ", L3Type::Bool),
            L3Type::bang(L3Type::ptr("ζ")),
        );
        let s = t.subst_loc(&LocVar::new("ζ"), &LocVar::new("η"));
        assert_eq!(s.to_string(), "(cap η bool ⊗ !ptr η)");
        // Bound occurrences are untouched.
        let t = L3Type::exists_loc("ζ", L3Type::ptr("ζ"));
        assert_eq!(t.subst_loc(&LocVar::new("ζ"), &LocVar::new("η")), t);
    }
}
