//! An executable approximation of the §5 realizability model (Fig. 14).
//!
//! The §5 model pairs every value with the *owned* fragment of the manually
//! managed heap and keeps the garbage-collected heap in the world.  The
//! executable checker mirrors that split:
//!
//! * [`MemGcModelChecker::value_in`] decides `(W, (H, v)) ∈ V⟦·⟧` against a
//!   concrete LCVM heap: capabilities demand that their location is a *live
//!   manually-managed* cell owned by the value (and its contents are in the
//!   stored type's interpretation); `ref τ` demands a live *GC-managed* cell;
//!   `ptr ζ` is just the location named by the substitution `ρ`; `!𝜏` and the
//!   `Duplicable` foreign types own no manual memory;
//! * [`MemGcModelChecker::check_transfer_soundness`] is the executable core
//!   of the §5 convertibility-soundness argument for `REF 𝜏 ∼ ref τ`: after
//!   running the glue code, the result must inhabit the target type's
//!   interpretation *in the resulting heap*, ownership must have moved from
//!   the manual to the GC'd side (or vice versa), and — for the L3→MiniML
//!   direction — the location must be unchanged (the "no copy" claim);
//! * [`MemGcModelChecker::check_type_safety`] runs compiled programs and
//!   verifies they never reach `fail Type` or `fail Ptr` (Theorem 3.3/3.4 for
//!   this pair of languages: well-typed programs may fail only with `Conv`).

use crate::convert::MemGcConversions;
use crate::syntax::{L3Type, LocVar, PolyType};
use lcvm::Env;
use lcvm::{Expr, Halt, Heap, Loc, Machine, MachineConfig, Slot, Value};
use semint_core::{ErrorCode, Fuel};
use std::collections::BTreeMap;
use std::fmt;

/// A source type of either §5 language.
#[derive(Debug, Clone, PartialEq)]
pub enum MemGcSemType {
    /// A MiniML type.
    Ml(PolyType),
    /// An L3 type.
    L3(L3Type),
}

impl fmt::Display for MemGcSemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemGcSemType::Ml(t) => write!(f, "{t}"),
            MemGcSemType::L3(t) => write!(f, "{t}"),
        }
    }
}

/// A counterexample to one of the §5 properties.
#[derive(Debug, Clone, PartialEq)]
pub struct MemGcCounterExample {
    /// What was being checked.
    pub claim: String,
    /// Why it failed.
    pub reason: String,
}

impl fmt::Display for MemGcCounterExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.claim, self.reason)
    }
}

/// The location-variable substitution `ρ.L3(ζ) = ℓ` from Fig. 14.
pub type LocSubst = BTreeMap<LocVar, Loc>;

/// The executable §5 model checker.
#[derive(Debug, Clone)]
pub struct MemGcModelChecker {
    conversions: MemGcConversions,
    /// Step budget per evaluation.
    pub fuel: Fuel,
}

impl Default for MemGcModelChecker {
    fn default() -> Self {
        MemGcModelChecker {
            conversions: MemGcConversions::standard(),
            fuel: Fuel::steps(100_000),
        }
    }
}

impl MemGcModelChecker {
    /// A checker with the standard conversions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decides `v ∈ V⟦ty⟧` against the heap `heap` under the location
    /// substitution `rho`.
    pub fn value_in(&self, heap: &Heap, rho: &LocSubst, v: &Value, ty: &MemGcSemType) -> bool {
        match ty {
            MemGcSemType::Ml(t) => self.value_in_ml(heap, rho, v, t),
            MemGcSemType::L3(t) => self.value_in_l3(heap, rho, v, t),
        }
    }

    fn value_in_ml(&self, heap: &Heap, rho: &LocSubst, v: &Value, ty: &PolyType) -> bool {
        match ty {
            PolyType::Unit => matches!(v, Value::Unit),
            PolyType::Int => matches!(v, Value::Int(_)),
            PolyType::Prod(a, b) => match v {
                Value::Pair(x, y) => {
                    self.value_in_ml(heap, rho, x, a) && self.value_in_ml(heap, rho, y, b)
                }
                _ => false,
            },
            PolyType::Sum(a, b) => match v {
                Value::Inl(x) => self.value_in_ml(heap, rho, x, a),
                Value::Inr(y) => self.value_in_ml(heap, rho, y, b),
                _ => false,
            },
            // Functions and quantified types: accept closures (their graphs
            // are exercised by the expression-level checks and the §4-style
            // sampling; re-implementing it here would duplicate that code).
            PolyType::Fun(_, _) | PolyType::Forall(_, _) => matches!(v, Value::Closure { .. }),
            // Type variables denote arbitrary relations drawn from ρ; with no
            // relational substitution the checker is parametricity-agnostic
            // and accepts any value.
            PolyType::Var(_) => true,
            // ref τ: a live GC-managed cell whose contents inhabit τ.
            PolyType::Ref(t) => match v {
                Value::Loc(l) => {
                    matches!(heap.slot(*l), Some(Slot::Gc(stored)) if self.value_in_ml(heap, rho, stored, t))
                }
                _ => false,
            },
            // ⟨𝜏⟩ is interpreted exactly as 𝜏 (Fig. 14: V⟦⟨𝜏⟩⟧ρ = V⟦𝜏⟧ρ).
            PolyType::Foreign(t) => self.value_in_l3(heap, rho, v, t),
        }
    }

    fn value_in_l3(&self, heap: &Heap, rho: &LocSubst, v: &Value, ty: &L3Type) -> bool {
        match ty {
            L3Type::Unit => matches!(v, Value::Unit),
            L3Type::Bool => matches!(v, Value::Int(0) | Value::Int(1)),
            L3Type::Tensor(a, b) => match v {
                Value::Pair(x, y) => {
                    self.value_in_l3(heap, rho, x, a) && self.value_in_l3(heap, rho, y, b)
                }
                _ => false,
            },
            L3Type::Lolli(_, _) => matches!(v, Value::Closure { .. }),
            L3Type::Bang(inner) => self.value_in_l3(heap, rho, v, inner),
            // ptr ζ: exactly the location ρ names (aliasing is fine).
            L3Type::Ptr(z) => match (v, rho.get(z)) {
                (Value::Loc(l), Some(expected)) => l == expected,
                _ => false,
            },
            // cap ζ 𝜏: the capability itself is erased to (), but it asserts
            // ownership of the manual cell ρ(ζ), whose contents inhabit 𝜏.
            L3Type::Cap(z, stored) => {
                matches!(v, Value::Unit)
                    && match rho.get(z) {
                        Some(l) => {
                            matches!(heap.slot(*l), Some(Slot::Manual(contents)) if self.value_in_l3(heap, rho, contents, stored))
                        }
                        None => false,
                    }
            }
            L3Type::ForallLoc(_, _) => matches!(v, Value::Closure { .. }),
            // ∃ζ.𝜏: some concrete location witnesses the package.  The only
            // existentials the case study builds are REF-like packages
            // `((), ℓ)`, so the checker looks for the witness in the value.
            L3Type::ExistsLoc(z, body) => {
                let mut candidates: Vec<Loc> = Vec::new();
                collect_locs(v, &mut candidates);
                if candidates.is_empty() {
                    // No location mentioned: any live location could witness
                    // it only if the body ignores ζ.
                    let mut rho2 = rho.clone();
                    rho2.insert(z.clone(), Loc(u64::MAX));
                    return self.value_in_l3(heap, &rho2, v, body);
                }
                candidates.into_iter().any(|l| {
                    let mut rho2 = rho.clone();
                    rho2.insert(z.clone(), l);
                    self.value_in_l3(heap, &rho2, v, body)
                })
            }
        }
    }

    /// The executable `REF 𝜏 ∼ ref τ` soundness check (both directions) for a
    /// payload pair `(τ, 𝜏)` and an initial payload value.
    ///
    /// Returns an error describing the first violated obligation.
    pub fn check_transfer_soundness(
        &self,
        ml_payload: &PolyType,
        l3_payload: &L3Type,
        initial: Value,
    ) -> Result<(), MemGcCounterExample> {
        let ml_ref = PolyType::ref_(ml_payload.clone());
        let l3_ref = L3Type::ref_like(l3_payload.clone());
        let (to_l3, to_ml) =
            self.conversions
                .derive(&ml_ref, &l3_ref)
                .ok_or_else(|| MemGcCounterExample {
                    claim: format!("{ml_ref} ∼ {l3_ref}"),
                    reason: "rule not derivable".into(),
                })?;

        // Direction 1: L3 → MiniML must transfer ownership without copying.
        let mut heap = Heap::new();
        let loc = heap.alloc_manual(initial.clone());
        let before = heap.stats();
        let prog = Expr::app(to_ml, Expr::pair(Expr::Unit, Expr::Loc(loc)));
        let r =
            Machine::with_state(heap, Env::empty(), prog, MachineConfig::default()).run(self.fuel);
        match &r.halt {
            Halt::Value(v) => {
                if v.as_loc() != Some(loc) {
                    return Err(MemGcCounterExample {
                        claim: "L3→MiniML transfer".into(),
                        reason: format!("expected the same location {loc}, got {v}"),
                    });
                }
                if r.heap.stats().manual_allocs > before.manual_allocs
                    || r.heap.stats().gc_allocs > before.gc_allocs
                {
                    return Err(MemGcCounterExample {
                        claim: "L3→MiniML transfer".into(),
                        reason: "the conversion allocated — it must move, not copy".into(),
                    });
                }
                if !self.value_in(
                    &r.heap,
                    &LocSubst::new(),
                    v,
                    &MemGcSemType::Ml(ml_ref.clone()),
                ) {
                    return Err(MemGcCounterExample {
                        claim: "L3→MiniML transfer".into(),
                        reason: format!("result is not in V⟦{ml_ref}⟧"),
                    });
                }
            }
            other => {
                return Err(MemGcCounterExample {
                    claim: "L3→MiniML transfer".into(),
                    reason: format!("conversion did not produce a value: {other:?}"),
                })
            }
        }

        // Direction 2: MiniML → L3 must copy into a fresh manual cell and
        // leave the original GC'd cell untouched.
        let mut heap = Heap::new();
        let gc_loc = heap.alloc_gc(initial.clone());
        let prog = Expr::app(to_l3, Expr::Loc(gc_loc));
        let r =
            Machine::with_state(heap, Env::empty(), prog, MachineConfig::default()).run(self.fuel);
        match &r.halt {
            Halt::Value(v) => {
                let new_loc = match v {
                    Value::Pair(_, p) => p.as_loc(),
                    _ => None,
                };
                let new_loc = new_loc.ok_or_else(|| MemGcCounterExample {
                    claim: "MiniML→L3 conversion".into(),
                    reason: format!("expected a package ((), ℓ), got {v}"),
                })?;
                if new_loc == gc_loc {
                    return Err(MemGcCounterExample {
                        claim: "MiniML→L3 conversion".into(),
                        reason: "the GC'd cell was reused directly — aliases would be broken"
                            .into(),
                    });
                }
                if !matches!(r.heap.slot(gc_loc), Some(Slot::Gc(_))) {
                    return Err(MemGcCounterExample {
                        claim: "MiniML→L3 conversion".into(),
                        reason: "the original GC'd cell was disturbed".into(),
                    });
                }
                let mut rho = LocSubst::new();
                rho.insert(LocVar::new("ζ"), new_loc);
                let pkg_ty = L3Type::tensor(
                    L3Type::cap("ζ", l3_payload.clone()),
                    L3Type::bang(L3Type::ptr("ζ")),
                );
                if !self.value_in(&r.heap, &rho, v, &MemGcSemType::L3(pkg_ty)) {
                    return Err(MemGcCounterExample {
                        claim: "MiniML→L3 conversion".into(),
                        reason: format!("result is not in V⟦{l3_ref}⟧"),
                    });
                }
            }
            other => {
                return Err(MemGcCounterExample {
                    claim: "MiniML→L3 conversion".into(),
                    reason: format!("conversion did not produce a value: {other:?}"),
                })
            }
        }
        Ok(())
    }

    /// Type safety for a compiled §5 program: the run may produce a value,
    /// run out of fuel, or fail `Conv`; `Type` and `Ptr` failures witness a
    /// violation.
    pub fn check_type_safety(&self, expr: &Expr) -> Result<(), MemGcCounterExample> {
        let r = Machine::run_expr(expr.clone(), self.fuel);
        match r.halt {
            Halt::Value(_) | Halt::OutOfFuel | Halt::Fail(ErrorCode::Conv) => Ok(()),
            other => Err(MemGcCounterExample {
                claim: "type safety".into(),
                reason: format!("{other:?}"),
            }),
        }
    }
}

fn collect_locs(v: &Value, out: &mut Vec<Loc>) {
    match v {
        Value::Loc(l) => out.push(*l),
        Value::Pair(a, b) => {
            collect_locs(a, out);
            collect_locs(b, out);
        }
        Value::Inl(a) | Value::Inr(a) | Value::Protected(a, _) => collect_locs(a, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilang::MemGcMultiLang;
    use crate::syntax::{L3Expr, PolyExpr};

    fn checker() -> MemGcModelChecker {
        MemGcModelChecker::new()
    }

    #[test]
    fn capability_membership_requires_live_manual_ownership() {
        let c = checker();
        let mut heap = Heap::new();
        let l = heap.alloc_manual(Value::Int(0));
        let mut rho = LocSubst::new();
        rho.insert(LocVar::new("ζ"), l);
        let cap_ty = MemGcSemType::L3(L3Type::cap("ζ", L3Type::Bool));
        assert!(c.value_in(&heap, &rho, &Value::Unit, &cap_ty));
        // A pointer to the same cell inhabits ptr ζ.
        assert!(c.value_in(
            &heap,
            &rho,
            &Value::Loc(l),
            &MemGcSemType::L3(L3Type::ptr("ζ"))
        ));
        // Freeing the cell invalidates the capability.
        heap.free(l).unwrap();
        assert!(!c.value_in(&heap, &rho, &Value::Unit, &cap_ty));
    }

    #[test]
    fn gc_reference_membership_requires_a_gc_slot() {
        let c = checker();
        let mut heap = Heap::new();
        let gc = heap.alloc_gc(Value::Int(3));
        let manual = heap.alloc_manual(Value::Int(3));
        let ty = MemGcSemType::Ml(PolyType::ref_(PolyType::Int));
        assert!(c.value_in(&heap, &LocSubst::new(), &Value::Loc(gc), &ty));
        assert!(
            !c.value_in(&heap, &LocSubst::new(), &Value::Loc(manual), &ty),
            "a manual cell is not an ML reference until it is gcmov'd"
        );
    }

    #[test]
    fn foreign_types_are_interpreted_as_their_l3_type() {
        let c = checker();
        let heap = Heap::new();
        let ty = MemGcSemType::Ml(PolyType::foreign(L3Type::Bool));
        assert!(c.value_in(&heap, &LocSubst::new(), &Value::Int(1), &ty));
        assert!(!c.value_in(&heap, &LocSubst::new(), &Value::Int(7), &ty));
    }

    #[test]
    fn ref_like_existential_packages_are_recognised() {
        let c = checker();
        let mut heap = Heap::new();
        let l = heap.alloc_manual(Value::Int(0));
        let pkg = Value::Pair(Box::new(Value::Unit), Box::new(Value::Loc(l)));
        assert!(c.value_in(
            &heap,
            &LocSubst::new(),
            &pkg,
            &MemGcSemType::L3(L3Type::ref_like(L3Type::Bool))
        ));
        // With the payload at the wrong type (an int that is not 0/1) it is
        // rejected.
        heap.write(l, Value::Int(9)).unwrap();
        assert!(!c.value_in(
            &heap,
            &LocSubst::new(),
            &pkg,
            &MemGcSemType::L3(L3Type::ref_like(L3Type::Bool))
        ));
    }

    #[test]
    fn transfer_soundness_for_the_registered_payloads() {
        let c = checker();
        c.check_transfer_soundness(&PolyType::Int, &L3Type::Bool, Value::Int(0))
            .unwrap_or_else(|ce| panic!("{ce}"));
        c.check_transfer_soundness(&PolyType::Unit, &L3Type::Unit, Value::Unit)
            .unwrap_or_else(|ce| panic!("{ce}"));
        c.check_transfer_soundness(
            &PolyType::foreign(L3Type::Bool),
            &L3Type::Bool,
            Value::Int(1),
        )
        .unwrap_or_else(|ce| panic!("{ce}"));
    }

    #[test]
    fn transfer_soundness_rejects_underivable_payloads() {
        let c = checker();
        let err = c
            .check_transfer_soundness(
                &PolyType::Int,
                &L3Type::cap("ζ", L3Type::Bool),
                Value::Int(0),
            )
            .unwrap_err();
        assert!(err.reason.contains("not derivable"));
    }

    #[test]
    fn compiled_case_study_programs_pass_the_safety_check() {
        let c = checker();
        let sys = MemGcMultiLang::new();
        let ml = PolyExpr::deref(PolyExpr::boundary(
            L3Expr::new(L3Expr::bool_(true)),
            PolyType::ref_(PolyType::Int),
        ));
        c.check_type_safety(&sys.compile_ml(&ml).unwrap()).unwrap();
        let l3 = L3Expr::free(L3Expr::boundary(
            PolyExpr::ref_(PolyExpr::int(3)),
            L3Type::ref_like(L3Type::Bool),
        ));
        c.check_type_safety(&sys.compile_l3(&l3).unwrap()).unwrap();
        // A deliberately broken target program is caught.
        let bad = Expr::free(Expr::ref_(Expr::int(1)));
        assert!(c.check_type_safety(&bad).is_err());
    }
}
