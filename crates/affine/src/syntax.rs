//! Syntax of MiniML and Affi (Fig. 6).
//!
//! MiniML here is the §4 instance: unit, int, products, sums, functions and
//! ML-style references (the §5 instance, with polymorphism and foreign types,
//! lives in the `memgc-interop` crate).  Affi has the two affine arrows, the
//! exponential `!𝜏`, the additive pair `&` and the multiplicative pair `⊗`.

use semint_core::Var;
use std::fmt;

/// The mode of an affine binder or arrow: dynamic (`◦`, may cross the
/// boundary, runtime-guarded) or static (`•`, never crosses, model-enforced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// `◦` — dynamically enforced.
    Dynamic,
    /// `•` — statically enforced (phantom flags in the model).
    Static,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Dynamic => write!(f, "◦"),
            Mode::Static => write!(f, "•"),
        }
    }
}

/// MiniML types (§4 instance).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MlType {
    /// `unit`.
    Unit,
    /// `int`.
    Int,
    /// `τ1 × τ2`.
    Prod(Box<MlType>, Box<MlType>),
    /// `τ1 + τ2`.
    Sum(Box<MlType>, Box<MlType>),
    /// `τ1 → τ2`.
    Fun(Box<MlType>, Box<MlType>),
    /// `ref τ`.
    Ref(Box<MlType>),
}

impl MlType {
    /// `τ1 × τ2`.
    pub fn prod(a: MlType, b: MlType) -> MlType {
        MlType::Prod(Box::new(a), Box::new(b))
    }
    /// `τ1 + τ2`.
    pub fn sum(a: MlType, b: MlType) -> MlType {
        MlType::Sum(Box::new(a), Box::new(b))
    }
    /// `τ1 → τ2`.
    pub fn fun(a: MlType, b: MlType) -> MlType {
        MlType::Fun(Box::new(a), Box::new(b))
    }
    /// `ref τ`.
    pub fn ref_(a: MlType) -> MlType {
        MlType::Ref(Box::new(a))
    }
}

impl fmt::Display for MlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlType::Unit => write!(f, "unit"),
            MlType::Int => write!(f, "int"),
            MlType::Prod(a, b) => write!(f, "({a} × {b})"),
            MlType::Sum(a, b) => write!(f, "({a} + {b})"),
            MlType::Fun(a, b) => write!(f, "({a} → {b})"),
            MlType::Ref(a) => write!(f, "ref {a}"),
        }
    }
}

/// Affi types (Fig. 6).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AffiType {
    /// `unit`.
    Unit,
    /// `bool`.
    Bool,
    /// `int`.
    Int,
    /// `𝜏1 ⊸ 𝜏2` (dynamic) or `𝜏1 ⊸• 𝜏2` (static), distinguished by the mode.
    Lolli(Mode, Box<AffiType>, Box<AffiType>),
    /// `!𝜏` — the exponential: values that use no affine resources.
    Bang(Box<AffiType>),
    /// `𝜏1 & 𝜏2` — additive (lazy) pair: only one component will be used.
    With(Box<AffiType>, Box<AffiType>),
    /// `𝜏1 ⊗ 𝜏2` — multiplicative pair: both components are owned.
    Tensor(Box<AffiType>, Box<AffiType>),
}

impl AffiType {
    /// `𝜏1 ⊸ 𝜏2` (dynamic).
    pub fn lolli(a: AffiType, b: AffiType) -> AffiType {
        AffiType::Lolli(Mode::Dynamic, Box::new(a), Box::new(b))
    }
    /// `𝜏1 ⊸• 𝜏2` (static).
    pub fn lolli_static(a: AffiType, b: AffiType) -> AffiType {
        AffiType::Lolli(Mode::Static, Box::new(a), Box::new(b))
    }
    /// `!𝜏`.
    pub fn bang(a: AffiType) -> AffiType {
        AffiType::Bang(Box::new(a))
    }
    /// `𝜏1 & 𝜏2`.
    pub fn with(a: AffiType, b: AffiType) -> AffiType {
        AffiType::With(Box::new(a), Box::new(b))
    }
    /// `𝜏1 ⊗ 𝜏2`.
    pub fn tensor(a: AffiType, b: AffiType) -> AffiType {
        AffiType::Tensor(Box::new(a), Box::new(b))
    }
}

impl fmt::Display for AffiType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffiType::Unit => write!(f, "unit"),
            AffiType::Bool => write!(f, "bool"),
            AffiType::Int => write!(f, "int"),
            AffiType::Lolli(Mode::Dynamic, a, b) => write!(f, "({a} ⊸ {b})"),
            AffiType::Lolli(Mode::Static, a, b) => write!(f, "({a} ⊸• {b})"),
            AffiType::Bang(a) => write!(f, "!{a}"),
            AffiType::With(a, b) => write!(f, "({a} & {b})"),
            AffiType::Tensor(a, b) => write!(f, "({a} ⊗ {b})"),
        }
    }
}

/// MiniML expressions (§4 instance).
#[derive(Debug, Clone, PartialEq)]
pub enum MlExpr {
    /// `()`.
    Unit,
    /// An integer literal.
    Int(i64),
    /// A variable.
    Var(Var),
    /// `(e1, e2)`.
    Pair(Box<MlExpr>, Box<MlExpr>),
    /// `fst e`.
    Fst(Box<MlExpr>),
    /// `snd e`.
    Snd(Box<MlExpr>),
    /// `inl e` annotated with the full sum type.
    Inl(Box<MlExpr>, MlType),
    /// `inr e` annotated with the full sum type.
    Inr(Box<MlExpr>, MlType),
    /// `match e x {e1} y {e2}`.
    Match(Box<MlExpr>, Var, Box<MlExpr>, Var, Box<MlExpr>),
    /// `λx:τ. e`.
    Lam(Var, MlType, Box<MlExpr>),
    /// `e1 e2`.
    App(Box<MlExpr>, Box<MlExpr>),
    /// `ref e`.
    Ref(Box<MlExpr>),
    /// `!e`.
    Deref(Box<MlExpr>),
    /// `e1 := e2`.
    Assign(Box<MlExpr>, Box<MlExpr>),
    /// Primitive addition (used by the examples; compiles to LCVM `+`).
    Add(Box<MlExpr>, Box<MlExpr>),
    /// Boundary `⦇ē⦈τ`: an Affi term used at MiniML type `τ`.
    Boundary(Box<AffiExpr>, MlType),
}

impl MlExpr {
    /// `()`.
    pub fn unit() -> MlExpr {
        MlExpr::Unit
    }
    /// An integer literal.
    pub fn int(n: i64) -> MlExpr {
        MlExpr::Int(n)
    }
    /// A variable.
    pub fn var(x: impl Into<Var>) -> MlExpr {
        MlExpr::Var(x.into())
    }
    /// `(e1, e2)`.
    pub fn pair(a: MlExpr, b: MlExpr) -> MlExpr {
        MlExpr::Pair(Box::new(a), Box::new(b))
    }
    /// `fst e`.
    pub fn fst(e: MlExpr) -> MlExpr {
        MlExpr::Fst(Box::new(e))
    }
    /// `snd e`.
    pub fn snd(e: MlExpr) -> MlExpr {
        MlExpr::Snd(Box::new(e))
    }
    /// `inl e` at sum type `ty`.
    pub fn inl(e: MlExpr, ty: MlType) -> MlExpr {
        MlExpr::Inl(Box::new(e), ty)
    }
    /// `inr e` at sum type `ty`.
    pub fn inr(e: MlExpr, ty: MlType) -> MlExpr {
        MlExpr::Inr(Box::new(e), ty)
    }
    /// `match e x {l} y {r}`.
    pub fn match_(e: MlExpr, x: impl Into<Var>, l: MlExpr, y: impl Into<Var>, r: MlExpr) -> MlExpr {
        MlExpr::Match(Box::new(e), x.into(), Box::new(l), y.into(), Box::new(r))
    }
    /// `λx:τ. body`.
    pub fn lam(x: impl Into<Var>, ty: MlType, body: MlExpr) -> MlExpr {
        MlExpr::Lam(x.into(), ty, Box::new(body))
    }
    /// `e1 e2`.
    pub fn app(f: MlExpr, a: MlExpr) -> MlExpr {
        MlExpr::App(Box::new(f), Box::new(a))
    }
    /// `ref e`.
    pub fn ref_(e: MlExpr) -> MlExpr {
        MlExpr::Ref(Box::new(e))
    }
    /// `!e`.
    pub fn deref(e: MlExpr) -> MlExpr {
        MlExpr::Deref(Box::new(e))
    }
    /// `e1 := e2`.
    pub fn assign(a: MlExpr, b: MlExpr) -> MlExpr {
        MlExpr::Assign(Box::new(a), Box::new(b))
    }
    /// `e1 + e2`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: MlExpr, b: MlExpr) -> MlExpr {
        MlExpr::Add(Box::new(a), Box::new(b))
    }
    /// `⦇ē⦈τ`: embed an Affi term at MiniML type `ty`.
    pub fn boundary(e: AffiExpr, ty: MlType) -> MlExpr {
        MlExpr::Boundary(Box::new(e), ty)
    }
}

/// Affi expressions (Fig. 6).
#[derive(Debug, Clone, PartialEq)]
pub enum AffiExpr {
    /// `()`.
    Unit,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal.
    Int(i64),
    /// An unrestricted variable (bound by `let !x = …`).
    UVar(Var),
    /// An affine variable `a◦` or `a•`.
    AVar(Mode, Var),
    /// `λa:𝜏. e` with the binder's mode determining the arrow.
    Lam(Mode, Var, AffiType, Box<AffiExpr>),
    /// `e1 e2`.
    App(Box<AffiExpr>, Box<AffiExpr>),
    /// `!v` — exponential introduction (the payload must use no affine
    /// resources).
    Bang(Box<AffiExpr>),
    /// `let !x = e in e'` — exponential elimination, binding `x`
    /// unrestrictedly.
    LetBang(Var, Box<AffiExpr>, Box<AffiExpr>),
    /// `⟨e, e'⟩` — additive pair.
    WithPair(Box<AffiExpr>, Box<AffiExpr>),
    /// `e.1`.
    Proj1(Box<AffiExpr>),
    /// `e.2`.
    Proj2(Box<AffiExpr>),
    /// `(e, e')` — multiplicative (tensor) pair.
    TensorPair(Box<AffiExpr>, Box<AffiExpr>),
    /// `let (a•, b•) = e in e'` — tensor elimination, binding two static
    /// affine variables.
    LetTensor(Var, Var, Box<AffiExpr>, Box<AffiExpr>),
    /// Boundary `⦇e⦈𝜏`: a MiniML term used at Affi type `𝜏`.
    Boundary(Box<MlExpr>, AffiType),
}

impl AffiExpr {
    /// `()`.
    pub fn unit() -> AffiExpr {
        AffiExpr::Unit
    }
    /// A boolean literal.
    pub fn bool_(b: bool) -> AffiExpr {
        AffiExpr::Bool(b)
    }
    /// An integer literal.
    pub fn int(n: i64) -> AffiExpr {
        AffiExpr::Int(n)
    }
    /// An unrestricted variable.
    pub fn uvar(x: impl Into<Var>) -> AffiExpr {
        AffiExpr::UVar(x.into())
    }
    /// A dynamic affine variable `a◦`.
    pub fn avar(x: impl Into<Var>) -> AffiExpr {
        AffiExpr::AVar(Mode::Dynamic, x.into())
    }
    /// A static affine variable `a•`.
    pub fn avar_static(x: impl Into<Var>) -> AffiExpr {
        AffiExpr::AVar(Mode::Static, x.into())
    }
    /// `λa◦:𝜏. body` (dynamic affine function).
    pub fn lam(x: impl Into<Var>, ty: AffiType, body: AffiExpr) -> AffiExpr {
        AffiExpr::Lam(Mode::Dynamic, x.into(), ty, Box::new(body))
    }
    /// `λa•:𝜏. body` (static affine function).
    pub fn lam_static(x: impl Into<Var>, ty: AffiType, body: AffiExpr) -> AffiExpr {
        AffiExpr::Lam(Mode::Static, x.into(), ty, Box::new(body))
    }
    /// `e1 e2`.
    pub fn app(f: AffiExpr, a: AffiExpr) -> AffiExpr {
        AffiExpr::App(Box::new(f), Box::new(a))
    }
    /// `!e`.
    pub fn bang(e: AffiExpr) -> AffiExpr {
        AffiExpr::Bang(Box::new(e))
    }
    /// `let !x = e in body`.
    pub fn let_bang(x: impl Into<Var>, e: AffiExpr, body: AffiExpr) -> AffiExpr {
        AffiExpr::LetBang(x.into(), Box::new(e), Box::new(body))
    }
    /// `⟨a, b⟩`.
    pub fn with_pair(a: AffiExpr, b: AffiExpr) -> AffiExpr {
        AffiExpr::WithPair(Box::new(a), Box::new(b))
    }
    /// `e.1`.
    pub fn proj1(e: AffiExpr) -> AffiExpr {
        AffiExpr::Proj1(Box::new(e))
    }
    /// `e.2`.
    pub fn proj2(e: AffiExpr) -> AffiExpr {
        AffiExpr::Proj2(Box::new(e))
    }
    /// `(a, b)` (tensor).
    pub fn tensor(a: AffiExpr, b: AffiExpr) -> AffiExpr {
        AffiExpr::TensorPair(Box::new(a), Box::new(b))
    }
    /// `let (a•, b•) = e in body`.
    pub fn let_tensor(
        a: impl Into<Var>,
        b: impl Into<Var>,
        e: AffiExpr,
        body: AffiExpr,
    ) -> AffiExpr {
        AffiExpr::LetTensor(a.into(), b.into(), Box::new(e), Box::new(body))
    }
    /// `⦇e⦈𝜏`: embed a MiniML term at Affi type `ty`.
    pub fn boundary(e: MlExpr, ty: AffiType) -> AffiExpr {
        AffiExpr::Boundary(Box::new(e), ty)
    }
}

impl MlExpr {
    /// Number of syntactic language boundaries `⦇·⦈`, counted structurally
    /// (one tree walk, no rendering) across both embedded languages.
    pub fn boundary_count(&self) -> usize {
        match self {
            MlExpr::Unit | MlExpr::Int(_) | MlExpr::Var(_) => 0,
            MlExpr::Fst(e)
            | MlExpr::Snd(e)
            | MlExpr::Inl(e, _)
            | MlExpr::Inr(e, _)
            | MlExpr::Lam(_, _, e)
            | MlExpr::Ref(e)
            | MlExpr::Deref(e) => e.boundary_count(),
            MlExpr::Pair(a, b) | MlExpr::App(a, b) | MlExpr::Assign(a, b) | MlExpr::Add(a, b) => {
                a.boundary_count() + b.boundary_count()
            }
            MlExpr::Match(s, _, l, _, r) => {
                s.boundary_count() + l.boundary_count() + r.boundary_count()
            }
            MlExpr::Boundary(e, _) => 1 + e.boundary_count(),
        }
    }
}

impl AffiExpr {
    /// Number of syntactic language boundaries `⦇·⦈`, counted structurally
    /// (one tree walk, no rendering) across both embedded languages.
    pub fn boundary_count(&self) -> usize {
        match self {
            AffiExpr::Unit
            | AffiExpr::Bool(_)
            | AffiExpr::Int(_)
            | AffiExpr::UVar(_)
            | AffiExpr::AVar(_, _) => 0,
            AffiExpr::Lam(_, _, _, e)
            | AffiExpr::Bang(e)
            | AffiExpr::Proj1(e)
            | AffiExpr::Proj2(e) => e.boundary_count(),
            AffiExpr::App(a, b)
            | AffiExpr::WithPair(a, b)
            | AffiExpr::TensorPair(a, b)
            | AffiExpr::LetBang(_, a, b)
            | AffiExpr::LetTensor(_, _, a, b) => a.boundary_count() + b.boundary_count(),
            AffiExpr::Boundary(e, _) => 1 + e.boundary_count(),
        }
    }
}

impl fmt::Display for MlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlExpr::Unit => write!(f, "()"),
            MlExpr::Int(n) => write!(f, "{n}"),
            MlExpr::Var(x) => write!(f, "{x}"),
            MlExpr::Pair(a, b) => write!(f, "({a}, {b})"),
            MlExpr::Fst(e) => write!(f, "fst {e}"),
            MlExpr::Snd(e) => write!(f, "snd {e}"),
            MlExpr::Inl(e, _) => write!(f, "inl {e}"),
            MlExpr::Inr(e, _) => write!(f, "inr {e}"),
            MlExpr::Match(s, x, l, y, r) => write!(f, "match {s} {x}{{{l}}} {y}{{{r}}}"),
            MlExpr::Lam(x, ty, b) => write!(f, "λ{x}:{ty}. {b}"),
            MlExpr::App(a, b) => write!(f, "({a}) ({b})"),
            MlExpr::Ref(e) => write!(f, "ref {e}"),
            MlExpr::Deref(e) => write!(f, "!{e}"),
            MlExpr::Assign(a, b) => write!(f, "{a} := {b}"),
            MlExpr::Add(a, b) => write!(f, "({a} + {b})"),
            MlExpr::Boundary(e, ty) => write!(f, "⦇{e}⦈{ty}"),
        }
    }
}

impl fmt::Display for AffiExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffiExpr::Unit => write!(f, "()"),
            AffiExpr::Bool(b) => write!(f, "{b}"),
            AffiExpr::Int(n) => write!(f, "{n}"),
            AffiExpr::UVar(x) => write!(f, "{x}"),
            AffiExpr::AVar(m, x) => write!(f, "{x}{m}"),
            AffiExpr::Lam(m, x, ty, b) => write!(f, "λ{x}{m}:{ty}. {b}"),
            AffiExpr::App(a, b) => write!(f, "({a}) ({b})"),
            AffiExpr::Bang(e) => write!(f, "!{e}"),
            AffiExpr::LetBang(x, e, b) => write!(f, "let !{x} = {e} in {b}"),
            AffiExpr::WithPair(a, b) => write!(f, "⟨{a}, {b}⟩"),
            AffiExpr::Proj1(e) => write!(f, "{e}.1"),
            AffiExpr::Proj2(e) => write!(f, "{e}.2"),
            AffiExpr::TensorPair(a, b) => write!(f, "({a}, {b})"),
            AffiExpr::LetTensor(a, b, e, body) => write!(f, "let ({a}•, {b}•) = {e} in {body}"),
            AffiExpr::Boundary(e, ty) => write!(f, "⦇{e}⦈{ty}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        assert_eq!(
            AffiType::lolli(AffiType::Int, AffiType::Bool).to_string(),
            "(int ⊸ bool)"
        );
        assert_eq!(
            AffiType::lolli_static(AffiType::Int, AffiType::Bool).to_string(),
            "(int ⊸• bool)"
        );
        assert_eq!(
            MlType::fun(MlType::fun(MlType::Unit, MlType::Int), MlType::Int).to_string(),
            "((unit → int) → int)"
        );
        assert_eq!(
            AffiType::tensor(AffiType::Unit, AffiType::bang(AffiType::Int)).to_string(),
            "(unit ⊗ !int)"
        );
    }

    #[test]
    fn boundaries_nest_between_the_two_languages() {
        let e = MlExpr::boundary(
            AffiExpr::app(
                AffiExpr::lam("a", AffiType::Int, AffiExpr::avar("a")),
                AffiExpr::boundary(MlExpr::int(3), AffiType::Int),
            ),
            MlType::Int,
        );
        let s = e.to_string();
        assert!(s.contains("⦇") && s.contains("a◦"));
    }

    #[test]
    fn modes_distinguish_variables_and_lambdas() {
        assert_ne!(AffiExpr::avar("a"), AffiExpr::avar_static("a"));
        assert_ne!(
            AffiExpr::lam("a", AffiType::Int, AffiExpr::avar("a")),
            AffiExpr::lam_static("a", AffiType::Int, AffiExpr::avar_static("a"))
        );
    }
}
