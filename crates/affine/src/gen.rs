//! Random generation of well-typed §4 programs.
//!
//! The generator is type-directed and *usage-aware*: every affine binder it
//! introduces is used exactly once or explicitly discarded, dynamic and
//! static arrows are chosen at random, and boundaries are inserted wherever a
//! conversion exists.  The §4 instantiations of the Fundamental Property and
//! the type-safety theorems quantify over all well-typed programs; the test
//! suites sample that space through this module.

use crate::convert::AffineConversions;
use crate::syntax::{AffiExpr, AffiType, MlExpr, MlType, Mode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semint_core::case::{ConstructorClass, ConstructorWeights, GenProfile};

/// Tuning knobs for the §4 generator.
#[derive(Debug, Clone, Copy)]
pub struct AffineGenConfig {
    /// Maximum expression depth.
    pub max_depth: usize,
    /// Maximum goal-type depth.
    pub type_depth: usize,
    /// Probability (0–100) of crossing a boundary when a conversion exists.
    pub boundary_bias: u32,
    /// Probability (0–100) of choosing the static arrow over the dynamic one
    /// when introducing an affine function.
    pub static_bias: u32,
    /// Constructor-class weights for goal-type generation.
    pub weights: ConstructorWeights,
}

impl Default for AffineGenConfig {
    fn default() -> Self {
        AffineGenConfig {
            max_depth: 4,
            type_depth: 2,
            boundary_bias: 35,
            static_bias: 50,
            weights: ConstructorWeights::STANDARD,
        }
    }
}

impl From<&GenProfile> for AffineGenConfig {
    fn from(profile: &GenProfile) -> Self {
        AffineGenConfig {
            max_depth: profile.max_depth,
            type_depth: profile.type_depth,
            boundary_bias: profile.boundary_bias,
            static_bias: 50,
            weights: profile.weights,
        }
    }
}

/// A deterministic, seed-driven generator of closed well-typed Affi and
/// MiniML programs.
#[derive(Debug)]
pub struct AffineProgramGen {
    rng: StdRng,
    config: AffineGenConfig,
    conversions: AffineConversions,
    fresh: u64,
}

impl AffineProgramGen {
    /// A generator with the default configuration.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, AffineGenConfig::default())
    }

    /// A generator with an explicit configuration.
    pub fn with_config(seed: u64, config: AffineGenConfig) -> Self {
        AffineProgramGen {
            rng: StdRng::seed_from_u64(seed),
            config,
            conversions: AffineConversions::standard(),
            fresh: 0,
        }
    }

    fn fresh_name(&mut self, hint: &str) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!("{hint}{n}")
    }

    /// Generates a random Affi goal type, drawing constructor classes from
    /// the configured weights: base types (`leaf`), tensors and dynamic
    /// lollis (`branch`, so deep pairs *and functions* sit under glue), and
    /// `!` wrappers (`wrap`).
    pub fn gen_affi_type(&mut self, depth: usize) -> AffiType {
        if depth == 0 {
            return match self.rng.gen_range(0..3) {
                0 => AffiType::Int,
                1 => AffiType::Bool,
                _ => AffiType::Unit,
            };
        }
        match self.pick_class() {
            ConstructorClass::Leaf => match self.rng.gen_range(0..3) {
                0 => AffiType::Int,
                1 => AffiType::Bool,
                _ => AffiType::Unit,
            },
            ConstructorClass::Branch => match self.rng.gen_range(0..3) {
                0 | 1 => {
                    AffiType::tensor(self.gen_affi_type(depth - 1), self.gen_affi_type(depth - 1))
                }
                _ => AffiType::lolli(self.gen_affi_type(depth - 1), self.gen_affi_type(depth - 1)),
            },
            ConstructorClass::Wrap => AffiType::bang(self.gen_affi_type(depth - 1)),
        }
    }

    /// A goal type at the configured type depth.
    pub fn gen_goal_affi_type(&mut self) -> AffiType {
        self.gen_affi_type(self.config.type_depth)
    }

    /// Generates a random MiniML goal type of bounded size (for the
    /// MiniML-hosted scenarios, which used to be pinned at `int`).
    pub fn gen_ml_type(&mut self, depth: usize) -> MlType {
        if depth == 0 {
            return if self.rng.gen_bool(0.5) {
                MlType::Int
            } else {
                MlType::Unit
            };
        }
        match self.pick_class() {
            ConstructorClass::Leaf => {
                if self.rng.gen_bool(0.5) {
                    MlType::Int
                } else {
                    MlType::Unit
                }
            }
            ConstructorClass::Branch => match self.rng.gen_range(0..3) {
                0 => MlType::prod(self.gen_ml_type(depth - 1), self.gen_ml_type(depth - 1)),
                1 => MlType::sum(self.gen_ml_type(depth - 1), self.gen_ml_type(depth - 1)),
                _ => MlType::fun(self.gen_ml_type(depth - 1), self.gen_ml_type(depth - 1)),
            },
            ConstructorClass::Wrap => MlType::ref_(self.gen_ml_type(depth - 1)),
        }
    }

    fn pick_class(&mut self) -> ConstructorClass {
        let total = self.config.weights.total().max(1);
        self.config.weights.class_for(self.rng.gen_range(0..total))
    }

    /// Generates a closed, well-typed Affi expression of type `ty`.
    pub fn gen_affi(&mut self, ty: &AffiType) -> AffiExpr {
        self.affi(ty, self.config.max_depth)
    }

    /// Generates a closed, well-typed MiniML expression of type `ty`.
    pub fn gen_ml(&mut self, ty: &MlType) -> MlExpr {
        self.ml(ty, self.config.max_depth)
    }

    fn boundary_here(&mut self) -> bool {
        self.rng.gen_range(0u32..100) < self.config.boundary_bias
    }

    fn affi(&mut self, ty: &AffiType, depth: usize) -> AffiExpr {
        // Possibly detour through MiniML when a conversion exists.
        if depth > 0 && self.boundary_here() {
            if let Some(ml_ty) = self.ml_type_convertible_to(ty) {
                return AffiExpr::boundary(self.ml(&ml_ty, depth - 1), ty.clone());
            }
        }
        if depth == 0 {
            return self.affi_leaf(ty);
        }
        match self.rng.gen_range(0..4) {
            // Canonical constructor one level deep.
            0 => self.affi_constructor(ty, depth),
            // Apply an affine identity (fresh binder, used exactly once).
            1 => {
                let name = self.fresh_name("a");
                let arg = self.affi(ty, depth - 1);
                if self.rng.gen_range(0u32..100) < self.config.static_bias {
                    AffiExpr::app(
                        AffiExpr::lam_static(
                            name.as_str(),
                            ty.clone(),
                            AffiExpr::avar_static(name.as_str()),
                        ),
                        arg,
                    )
                } else {
                    AffiExpr::app(
                        AffiExpr::lam(name.as_str(), ty.clone(), AffiExpr::avar(name.as_str())),
                        arg,
                    )
                }
            }
            // Destructure a tensor whose second component is the goal; the
            // first is dropped (affine, not linear, so that is allowed).
            2 => {
                let left = self.fresh_name("l");
                let right = self.fresh_name("r");
                let other = self.gen_affi_type(1);
                AffiExpr::let_tensor(
                    left.as_str(),
                    right.as_str(),
                    AffiExpr::tensor(self.affi(&other, 0), self.affi(ty, depth - 1)),
                    AffiExpr::avar_static(right.as_str()),
                )
            }
            // Project out of an additive pair (the unused side may share
            // nothing or everything; here both sides are independent).
            _ => {
                let other = self.gen_affi_type(1);
                if self.rng.gen_bool(0.5) {
                    AffiExpr::proj1(AffiExpr::with_pair(
                        self.affi(ty, depth - 1),
                        self.affi(&other, 0),
                    ))
                } else {
                    AffiExpr::proj2(AffiExpr::with_pair(
                        self.affi(&other, 0),
                        self.affi(ty, depth - 1),
                    ))
                }
            }
        }
    }

    fn affi_constructor(&mut self, ty: &AffiType, depth: usize) -> AffiExpr {
        let d = depth.saturating_sub(1);
        match ty {
            AffiType::Unit => AffiExpr::unit(),
            AffiType::Bool => AffiExpr::bool_(self.rng.gen_bool(0.5)),
            AffiType::Int => AffiExpr::int(self.rng.gen_range(-20..20)),
            AffiType::Tensor(a, b) => AffiExpr::tensor(self.affi(a, d), self.affi(b, d)),
            AffiType::With(a, b) => AffiExpr::with_pair(self.affi(a, d), self.affi(b, d)),
            AffiType::Bang(inner) => AffiExpr::bang(self.affi_leaf(inner)),
            AffiType::Lolli(mode, a, b) => {
                let name = self.fresh_name("f");
                // The body ignores the argument (affine drop) and produces a
                // value of the result type, so it is well-typed for either
                // mode without tracking usage of the binder.
                let body = self.affi(b, d);
                let _ = a;
                match mode {
                    crate::syntax::Mode::Static => {
                        AffiExpr::lam_static(name.as_str(), (**a).clone(), body)
                    }
                    crate::syntax::Mode::Dynamic => {
                        AffiExpr::lam(name.as_str(), (**a).clone(), body)
                    }
                }
            }
        }
    }

    fn affi_leaf(&mut self, ty: &AffiType) -> AffiExpr {
        match ty {
            AffiType::Unit => AffiExpr::unit(),
            AffiType::Bool => AffiExpr::bool_(self.rng.gen_bool(0.5)),
            AffiType::Int => AffiExpr::int(self.rng.gen_range(-20..20)),
            AffiType::Tensor(a, b) => AffiExpr::tensor(self.affi_leaf(a), self.affi_leaf(b)),
            AffiType::With(a, b) => AffiExpr::with_pair(self.affi_leaf(a), self.affi_leaf(b)),
            AffiType::Bang(inner) => AffiExpr::bang(self.affi_leaf(inner)),
            AffiType::Lolli(mode, a, b) => {
                let name = self.fresh_name("f");
                let body = self.affi_leaf(b);
                match mode {
                    crate::syntax::Mode::Static => {
                        AffiExpr::lam_static(name.as_str(), (**a).clone(), body)
                    }
                    crate::syntax::Mode::Dynamic => {
                        AffiExpr::lam(name.as_str(), (**a).clone(), body)
                    }
                }
            }
        }
    }

    fn ml(&mut self, ty: &MlType, depth: usize) -> MlExpr {
        if depth > 0 && self.boundary_here() {
            if let Some(affi_ty) = self.affi_type_convertible_to(ty) {
                return MlExpr::boundary(self.affi(&affi_ty, depth - 1), ty.clone());
            }
        }
        if depth == 0 {
            return self.ml_leaf(ty);
        }
        match self.rng.gen_range(0..3) {
            0 => self.ml_constructor(ty, depth),
            // Immediate application of a lambda (MiniML is unrestricted, so
            // the binder may be used any number of times; keep it to one).
            1 => {
                let name = self.fresh_name("x");
                MlExpr::app(
                    MlExpr::lam(name.as_str(), MlType::Int, self.ml(ty, depth - 1)),
                    self.ml(&MlType::Int, depth - 1),
                )
            }
            _ => {
                // Projection out of a pair containing the goal type.
                if self.rng.gen_bool(0.5) {
                    MlExpr::fst(MlExpr::pair(
                        self.ml(ty, depth - 1),
                        self.ml_leaf(&MlType::Unit),
                    ))
                } else {
                    MlExpr::snd(MlExpr::pair(
                        self.ml_leaf(&MlType::Int),
                        self.ml(ty, depth - 1),
                    ))
                }
            }
        }
    }

    fn ml_constructor(&mut self, ty: &MlType, depth: usize) -> MlExpr {
        let d = depth.saturating_sub(1);
        match ty {
            MlType::Unit => MlExpr::unit(),
            MlType::Int => {
                if d > 0 && self.rng.gen_bool(0.5) {
                    MlExpr::add(self.ml(&MlType::Int, d), self.ml(&MlType::Int, d))
                } else {
                    MlExpr::int(self.rng.gen_range(-20..20))
                }
            }
            MlType::Prod(a, b) => MlExpr::pair(self.ml(a, d), self.ml(b, d)),
            MlType::Sum(a, b) => {
                if self.rng.gen_bool(0.5) {
                    MlExpr::inl(self.ml(a, d), ty.clone())
                } else {
                    MlExpr::inr(self.ml(b, d), ty.clone())
                }
            }
            MlType::Fun(a, b) => {
                let name = self.fresh_name("x");
                MlExpr::lam(name.as_str(), (**a).clone(), self.ml(b, d))
            }
            MlType::Ref(a) => MlExpr::ref_(self.ml(a, d)),
        }
    }

    fn ml_leaf(&mut self, ty: &MlType) -> MlExpr {
        match ty {
            MlType::Unit => MlExpr::unit(),
            MlType::Int => MlExpr::int(self.rng.gen_range(-20..20)),
            MlType::Prod(a, b) => MlExpr::pair(self.ml_leaf(a), self.ml_leaf(b)),
            MlType::Sum(a, _) => MlExpr::inl(self.ml_leaf(a), ty.clone()),
            MlType::Fun(a, b) => {
                let name = self.fresh_name("x");
                MlExpr::lam(name.as_str(), (**a).clone(), self.ml_leaf(b))
            }
            MlType::Ref(a) => MlExpr::ref_(self.ml_leaf(a)),
        }
    }

    /// Picks a MiniML type convertible with the Affi goal type, if any.
    /// Recursion covers tensors, `!` and dynamic lollis (`𝜏1 ⊸ 𝜏2 ∼
    /// (unit → τ1) → τ2`), so boundaries appear under deep pairs and
    /// functions, not only at base types.
    fn ml_type_convertible_to(&mut self, ty: &AffiType) -> Option<MlType> {
        let candidate = match ty {
            AffiType::Unit => MlType::Unit,
            AffiType::Bool | AffiType::Int => MlType::Int,
            AffiType::Bang(inner) => return self.ml_type_convertible_to(inner),
            AffiType::Tensor(a, b) => MlType::prod(
                self.ml_type_convertible_to(a)?,
                self.ml_type_convertible_to(b)?,
            ),
            AffiType::Lolli(Mode::Dynamic, a, b) => MlType::fun(
                MlType::fun(MlType::Unit, self.ml_type_convertible_to(a)?),
                self.ml_type_convertible_to(b)?,
            ),
            _ => return None,
        };
        self.conversions.derive(ty, &candidate).map(|_| candidate)
    }

    /// Picks an Affi type convertible with the MiniML goal type, if any
    /// (the mirror image of [`Self::ml_type_convertible_to`]).
    fn affi_type_convertible_to(&mut self, ty: &MlType) -> Option<AffiType> {
        let candidate = match ty {
            MlType::Unit => AffiType::Unit,
            MlType::Int => {
                if self.rng.gen_bool(0.5) {
                    AffiType::Int
                } else {
                    AffiType::Bool
                }
            }
            MlType::Prod(a, b) => AffiType::tensor(
                self.affi_type_convertible_to(a)?,
                self.affi_type_convertible_to(b)?,
            ),
            MlType::Fun(thunk, b) => {
                let m1 = match thunk.as_ref() {
                    MlType::Fun(u, m1) if **u == MlType::Unit => m1,
                    _ => return None,
                };
                AffiType::lolli(
                    self.affi_type_convertible_to(m1)?,
                    self.affi_type_convertible_to(b)?,
                )
            }
            _ => return None,
        };
        self.conversions.derive(&candidate, ty).map(|_| candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilang::AffineMultiLang;

    #[test]
    fn generated_affi_programs_typecheck_at_the_requested_type() {
        let sys = AffineMultiLang::new();
        for seed in 0..80 {
            let mut gen = AffineProgramGen::new(seed);
            let ty = gen.gen_affi_type(2);
            let e = gen.gen_affi(&ty);
            let checked = sys
                .typecheck_affi(&e)
                .unwrap_or_else(|err| panic!("seed {seed}: {e} does not typecheck: {err}"));
            assert_eq!(checked, ty, "seed {seed}");
        }
    }

    #[test]
    fn generated_ml_programs_typecheck() {
        let sys = AffineMultiLang::new();
        for seed in 0..80 {
            let mut gen = AffineProgramGen::new(seed);
            let e = gen.gen_ml(&MlType::Int);
            let ty = sys
                .typecheck_ml(&e)
                .unwrap_or_else(|err| panic!("seed {seed}: {e} does not typecheck: {err}"));
            assert_eq!(ty, MlType::Int);
        }
    }

    #[test]
    fn generated_programs_run_safely_under_both_semantics() {
        let sys = AffineMultiLang::new();
        for seed in 0..60 {
            let mut gen = AffineProgramGen::new(seed);
            let ty = gen.gen_affi_type(1);
            let e = gen.gen_affi(&ty);
            let compiled = sys.compile_affi(&e).expect("compiles");
            assert!(
                sys.run(&compiled).halt.is_safe(),
                "seed {seed}: standard run unsafe for {e}"
            );
            assert!(
                sys.run_phantom(&compiled).halt.is_safe(),
                "seed {seed}: phantom run unsafe for {e}"
            );
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = AffineProgramGen::new(11);
        let mut b = AffineProgramGen::new(11);
        assert_eq!(a.gen_affi(&AffiType::Int), b.gen_affi(&AffiType::Int));
    }

    #[test]
    fn boundary_bias_zero_keeps_programs_single_language() {
        let cfg = AffineGenConfig {
            max_depth: 4,
            boundary_bias: 0,
            ..AffineGenConfig::default()
        };
        for seed in 0..20 {
            let mut gen = AffineProgramGen::with_config(seed, cfg);
            let e = gen.gen_affi(&AffiType::Int);
            assert!(!format!("{e}").contains('⦇'), "unexpected boundary in {e}");
        }
    }

    fn affi_type_depth(ty: &AffiType) -> usize {
        match ty {
            AffiType::Int | AffiType::Bool | AffiType::Unit => 0,
            AffiType::Tensor(a, b) | AffiType::With(a, b) | AffiType::Lolli(_, a, b) => {
                1 + affi_type_depth(a).max(affi_type_depth(b))
            }
            AffiType::Bang(a) => 1 + affi_type_depth(a),
        }
    }

    #[test]
    fn deep_profile_types_reach_depth_four_and_programs_typecheck() {
        use semint_core::case::GenProfile;
        let sys = AffineMultiLang::new();
        let cfg = AffineGenConfig::from(&GenProfile::deep());
        let mut max_depth_seen = 0;
        for seed in 0..40 {
            let mut gen = AffineProgramGen::with_config(seed, cfg);
            let ty = gen.gen_goal_affi_type();
            max_depth_seen = max_depth_seen.max(affi_type_depth(&ty));
            let e = gen.gen_affi(&ty);
            let checked = sys
                .typecheck_affi(&e)
                .unwrap_or_else(|err| panic!("seed {seed}: {e} does not typecheck: {err}"));
            assert_eq!(checked, ty, "seed {seed}");
        }
        assert!(
            max_depth_seen >= 4,
            "deep profile never generated a depth-4 goal type (max {max_depth_seen})"
        );
    }

    #[test]
    fn deep_ml_goal_types_typecheck_too() {
        use semint_core::case::GenProfile;
        let sys = AffineMultiLang::new();
        let cfg = AffineGenConfig::from(&GenProfile::deep());
        for seed in 0..40 {
            let mut gen = AffineProgramGen::with_config(seed, cfg);
            let ty = gen.gen_ml_type(cfg.type_depth);
            let e = gen.gen_ml(&ty);
            let checked = sys
                .typecheck_ml(&e)
                .unwrap_or_else(|err| panic!("seed {seed}: {e} does not typecheck: {err}"));
            assert_eq!(checked, ty, "seed {seed}");
        }
    }

    #[test]
    fn dynamic_lolli_goals_can_cross_the_boundary() {
        // 𝜏 ⊸ 𝜏 ∼ (unit → τ) → τ is derivable, so bias 100 must produce a
        // boundary at a lolli goal type for some seed.
        let cfg = AffineGenConfig {
            boundary_bias: 100,
            ..AffineGenConfig::default()
        };
        let goal = AffiType::lolli(AffiType::Int, AffiType::Int);
        let crossed = (0..20).any(|seed| {
            let mut gen = AffineProgramGen::with_config(seed, cfg);
            format!("{}", gen.gen_affi(&goal)).contains('⦇')
        });
        assert!(crossed, "no seed crossed a boundary at {goal}");
    }
}
