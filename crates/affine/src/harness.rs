//! The [`CaseStudy`] instance for case study 2 (affine ⊸ unrestricted
//! interoperability), consumed by the `semint-harness` engine.

use crate::compile::CompileOutput;
use crate::gen::{AffineGenConfig, AffineProgramGen};
use crate::model::{AffineModelChecker, AffineSemType};
use crate::multilang::AffineMultiLang;
use crate::syntax::{AffiType, MlType};
use lcvm::RunResult;
use semint_core::case::{CaseStudy, CheckFailure, GenProfile, Scenario};
use semint_core::stats::{OutcomeClass, RunStats};
use semint_core::{Fuel, GlueCacheStats};

pub use crate::multilang::{AffProgram, AffSourceType};
use crate::syntax::{AffiExpr, MlExpr};

/// Case study 2 packaged for the harness engine.
///
/// The `broken` flag simulates an unsound extra rule `int ∼ bool` whose glue
/// forgets to normalise: `int`-typed scenarios are claimed at the boolean
/// relation, which only integers 0/1 inhabit, so most scenarios are refuted.
#[derive(Debug, Clone)]
pub struct AffineCase {
    system: AffineMultiLang,
    broken: bool,
}

impl AffineCase {
    /// The standard (sound) rule set.
    pub fn standard() -> Self {
        AffineCase {
            system: AffineMultiLang::new(),
            broken: false,
        }
    }

    /// The deliberately broken claim (see the type-level docs).
    pub fn broken() -> Self {
        AffineCase {
            system: AffineMultiLang::new(),
            broken: true,
        }
    }
}

impl Default for AffineCase {
    fn default() -> Self {
        AffineCase::standard()
    }
}

fn push_affi(out: &mut Vec<AffProgram>, e: &AffiExpr) {
    out.push(AffProgram::Affi(e.clone()));
}

fn push_ml(out: &mut Vec<AffProgram>, e: &MlExpr) {
    out.push(AffProgram::Ml(e.clone()));
}

/// Immediate subterms of an Affi expression, as candidate shrinks.
fn affi_children(e: &AffiExpr, out: &mut Vec<AffProgram>) {
    match e {
        AffiExpr::Unit
        | AffiExpr::Bool(_)
        | AffiExpr::Int(_)
        | AffiExpr::UVar(_)
        | AffiExpr::AVar(_, _) => {}
        AffiExpr::Lam(_, _, _, a) | AffiExpr::Bang(a) | AffiExpr::Proj1(a) | AffiExpr::Proj2(a) => {
            push_affi(out, a)
        }
        AffiExpr::App(a, b) | AffiExpr::WithPair(a, b) | AffiExpr::TensorPair(a, b) => {
            push_affi(out, a);
            push_affi(out, b);
        }
        AffiExpr::LetBang(_, a, b) | AffiExpr::LetTensor(_, _, a, b) => {
            push_affi(out, a);
            push_affi(out, b);
        }
        AffiExpr::Boundary(ml, _) => push_ml(out, ml),
    }
}

/// Immediate subterms of a MiniML expression, as candidate shrinks.
fn ml_children(e: &MlExpr, out: &mut Vec<AffProgram>) {
    match e {
        MlExpr::Unit | MlExpr::Int(_) | MlExpr::Var(_) => {}
        MlExpr::Fst(a)
        | MlExpr::Snd(a)
        | MlExpr::Inl(a, _)
        | MlExpr::Inr(a, _)
        | MlExpr::Lam(_, _, a)
        | MlExpr::Ref(a)
        | MlExpr::Deref(a) => push_ml(out, a),
        MlExpr::Pair(a, b) | MlExpr::App(a, b) | MlExpr::Assign(a, b) | MlExpr::Add(a, b) => {
            push_ml(out, a);
            push_ml(out, b);
        }
        MlExpr::Match(s, _, l, _, r) => {
            push_ml(out, s);
            push_ml(out, l);
            push_ml(out, r);
        }
        MlExpr::Boundary(affi, _) => push_affi(out, affi),
    }
}

impl CaseStudy for AffineCase {
    type Program = AffProgram;
    type Ty = AffSourceType;
    type Report = RunResult;
    type Compiled = CompileOutput;

    fn name(&self) -> &'static str {
        "affine"
    }

    fn generate(&self, seed: u64, profile: &GenProfile) -> Scenario<AffProgram, AffSourceType> {
        let mut gen = AffineProgramGen::with_config(seed, AffineGenConfig::from(profile));
        // Every fourth scenario is MiniML-hosted.
        if seed % 4 == 3 {
            let ty = gen.gen_ml_type(profile.type_depth);
            let program = gen.gen_ml(&ty);
            Scenario {
                seed,
                program: AffProgram::Ml(program),
                ty: AffSourceType::Ml(ty),
            }
        } else {
            let ty = gen.gen_goal_affi_type();
            let program = gen.gen_affi(&ty);
            Scenario {
                seed,
                program: AffProgram::Affi(program),
                ty: AffSourceType::Affi(ty),
            }
        }
    }

    fn typecheck(&self, program: &AffProgram) -> Result<AffSourceType, String> {
        self.system.typecheck(program).map_err(|e| e.to_string())
    }

    fn compile(&self, program: &AffProgram) -> Result<CompileOutput, String> {
        self.system.compile_only(program).map_err(|e| e.to_string())
    }

    fn execute(&self, compiled: CompileOutput, fuel: Fuel) -> RunResult {
        self.system.execute_with_fuel(compiled, fuel)
    }

    fn execute_batch(&self, batch: Vec<CompileOutput>, fuel: Fuel) -> Vec<RunResult> {
        self.system.execute_batch_with_fuel(batch, fuel)
    }

    fn stats(&self, report: &RunResult) -> RunStats {
        RunStats {
            outcome: halt_class(report),
            steps: report.steps,
            counters: report.counters,
        }
    }

    fn model_check_compiled(
        &self,
        program: &AffProgram,
        ty: &AffSourceType,
        compiled: &CompileOutput,
    ) -> Result<(), CheckFailure> {
        let checker = AffineModelChecker::new();
        // Safety under the standard *and* the augmented semantics, plus
        // erasure agreement (the §4 analogue of type safety).
        checker
            .check_safety(&compiled.expr, &compiled.static_binders)
            .map_err(|ce| CheckFailure {
                claim: ce.claim,
                witness: program.to_string(),
                reason: ce.reason,
            })?;

        // The claimed-type membership check, where the broken rule bites:
        // int-typed programs get claimed at the boolean relation.
        let claimed = match ty {
            AffSourceType::Affi(AffiType::Int) if self.broken => {
                Some(AffineSemType::Affi(AffiType::Bool))
            }
            AffSourceType::Ml(MlType::Int) if self.broken => {
                Some(AffineSemType::Affi(AffiType::Bool))
            }
            _ => None,
        };
        if let Some(sem_ty) = claimed {
            if !checker.expr_in(compiled.expr.clone(), &sem_ty) {
                return Err(CheckFailure {
                    claim: format!("deliberately broken rule: compiled program ∈ E⟦{sem_ty:?}⟧"),
                    witness: program.to_string(),
                    reason: "run result is not in the expression relation".into(),
                });
            }
        }
        Ok(())
    }

    fn shrink(&self, program: &AffProgram) -> Vec<AffProgram> {
        let mut out = Vec::new();
        match program {
            AffProgram::Affi(e) => affi_children(e, &mut out),
            AffProgram::Ml(e) => ml_children(e, &mut out),
        }
        out
    }

    fn boundary_count(&self, program: &AffProgram) -> usize {
        match program {
            AffProgram::Affi(e) => e.boundary_count(),
            AffProgram::Ml(e) => e.boundary_count(),
        }
    }

    fn check_conversions(&self) -> Result<(), CheckFailure> {
        let checker = AffineModelChecker::new();
        let catalogue = [
            (AffiType::Bool, MlType::Int),
            (AffiType::Int, MlType::Int),
            (AffiType::Unit, MlType::Unit),
        ];
        for (affi, ml) in &catalogue {
            if let Err(ce) = checker.check_convertibility(affi, ml) {
                // Pairs without a registered rule are skipped, matching the
                // sharedmem catalogue walk.
                if ce.reason.contains("not derivable") {
                    continue;
                }
                return Err(CheckFailure {
                    claim: ce.claim,
                    witness: ce.witness,
                    reason: ce.reason,
                });
            }
        }
        Ok(())
    }

    fn glue_cache_stats(&self) -> Option<GlueCacheStats> {
        Some(self.system.conversions().cache().stats())
    }
}

fn halt_class(report: &RunResult) -> OutcomeClass {
    use lcvm::Halt;
    match &report.halt {
        Halt::Value(_) => OutcomeClass::Value,
        Halt::Fail(c) => OutcomeClass::Fail(*c),
        Halt::OutOfFuel => OutcomeClass::OutOfFuel,
        Halt::PhantomStuck { .. } => OutcomeClass::Stuck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_typecheck_at_their_claimed_type() {
        let case = AffineCase::standard();
        let cfg = GenProfile::standard();
        for seed in 0..40 {
            let scen = case.generate(seed, &cfg);
            let checked = case
                .typecheck(&scen.program)
                .expect("well-typed by construction");
            assert_eq!(checked, scen.ty, "seed {seed}");
        }
    }

    #[test]
    fn model_check_accepts_sound_scenarios() {
        let case = AffineCase::standard();
        let cfg = GenProfile::standard();
        for seed in 0..12 {
            let scen = case.generate(seed, &cfg);
            case.model_check(&scen.program, &scen.ty)
                .unwrap_or_else(|f| panic!("seed {seed}: {f}"));
        }
    }

    #[test]
    fn broken_claim_is_refuted_for_some_seed() {
        let case = AffineCase::broken();
        let cfg = GenProfile::standard();
        let refuted = (0..60).any(|seed| {
            let scen = case.generate(seed, &cfg);
            case.model_check(&scen.program, &scen.ty).is_err()
        });
        assert!(
            refuted,
            "no seed in 0..60 refuted the broken int ∼ bool claim"
        );
    }

    #[test]
    fn shrink_yields_immediate_subterms() {
        let case = AffineCase::standard();
        let p = AffProgram::Affi(AffiExpr::app(
            AffiExpr::lam("x", AffiType::Int, AffiExpr::avar("x")),
            AffiExpr::int(3),
        ));
        assert_eq!(case.shrink(&p).len(), 2);
    }
}
