//! The end-to-end driver for case study 2: type check → compile → run, under
//! either the standard LCVM semantics or the augmented (phantom-flag)
//! semantics that additionally enforces the static affine discipline.
//!
//! Since PR 2 the driver is the shared [`InteropPipeline`] from
//! `semint-core`; this module supplies the §4 instantiation
//! ([`AffineSystem`]) plus the phantom-semantics runner, which is unique to
//! this case study.

use crate::compile::{CompileError, CompileOutput, Compiler};
use crate::convert::AffineConversions;
use crate::syntax::{AffiExpr, AffiType, MlExpr, MlType};
use crate::typecheck::{check_affi, check_ml, AffineCtx, AffineTypeError};
use lcvm::{Machine, MachineConfig, PhantomConfig, RunResult};
use semint_core::pipeline::{InteropPipeline, InteropSystem, PipelineError};
use semint_core::Fuel;
use std::collections::BTreeSet;
use std::fmt;

/// Errors from the §4 pipeline: the shared [`PipelineError`] shape
/// instantiated at this case study's stage errors.
pub type AffineMultiLangError = PipelineError<AffineTypeError, CompileError>;

/// A closed §4 multi-language program, hosted in either language.
#[derive(Debug, Clone, PartialEq)]
pub enum AffProgram {
    /// An Affi-hosted program.
    Affi(AffiExpr),
    /// A MiniML-hosted program.
    Ml(MlExpr),
}

impl fmt::Display for AffProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffProgram::Affi(e) => write!(f, "{e}"),
            AffProgram::Ml(e) => write!(f, "{e}"),
        }
    }
}

/// A source type of either §4 language.
#[derive(Debug, Clone, PartialEq)]
pub enum AffSourceType {
    /// An Affi type.
    Affi(AffiType),
    /// A MiniML type.
    Ml(MlType),
}

impl fmt::Display for AffSourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffSourceType::Affi(t) => write!(f, "{t} (Affi)"),
            AffSourceType::Ml(t) => write!(f, "{t} (MiniML)"),
        }
    }
}

/// The §4 instantiation of [`InteropSystem`]: MiniML + Affi compiled (with
/// Fig. 9 glue) to LCVM.
#[derive(Debug, Clone, Default)]
pub struct AffineSystem {
    conversions: AffineConversions,
}

impl AffineSystem {
    /// A system over the standard (memoizing) rule set.
    pub fn new() -> Self {
        AffineSystem {
            conversions: AffineConversions::standard(),
        }
    }

    /// The conversion rule set in use.
    pub fn conversions(&self) -> &AffineConversions {
        &self.conversions
    }
}

impl InteropSystem for AffineSystem {
    type Program = AffProgram;
    type Ty = AffSourceType;
    type Artifact = CompileOutput;
    type TypeError = AffineTypeError;
    type CompileError = CompileError;
    type Exec = RunResult;

    fn typecheck(&self, program: &AffProgram) -> Result<AffSourceType, AffineTypeError> {
        match program {
            AffProgram::Affi(e) => check_affi(&AffineCtx::empty(), e, &self.conversions)
                .map(|(t, _)| AffSourceType::Affi(t)),
            AffProgram::Ml(e) => check_ml(&AffineCtx::empty(), e, &self.conversions)
                .map(|(t, _)| AffSourceType::Ml(t)),
        }
    }

    fn compile(&self, program: &AffProgram) -> Result<CompileOutput, CompileError> {
        let compiler = Compiler::new(&self.conversions, &self.conversions);
        match program {
            AffProgram::Affi(e) => compiler.compile_affi_program(e),
            AffProgram::Ml(e) => compiler.compile_ml_program(e),
        }
    }

    fn execute(&self, artifact: CompileOutput, fuel: Fuel) -> RunResult {
        Machine::run_expr(artifact.expr, fuel)
    }

    /// Drives the whole batch through **one** LCVM machine under the
    /// *standard* semantics, reset in place between programs (the
    /// continuation stack's grown buffer survives as an allocation, never
    /// as state), instead of constructing a machine per artifact.
    fn execute_batch(&self, artifacts: Vec<CompileOutput>, fuel: Fuel) -> Vec<RunResult> {
        Machine::run_batch(artifacts.into_iter().map(|artifact| artifact.expr), fuel)
    }
}

/// The §4 multi-language system: MiniML + Affi + the Fig. 9 conversions over
/// LCVM, driven by the shared [`InteropPipeline`].
#[derive(Debug, Clone, Default)]
pub struct AffineMultiLang {
    pipeline: InteropPipeline<AffineSystem>,
}

impl AffineMultiLang {
    /// A system with the standard rule set and default fuel.
    pub fn new() -> Self {
        AffineMultiLang {
            pipeline: InteropPipeline::new(AffineSystem::new()),
        }
    }

    /// Overrides the fuel budget used by the run methods.
    pub fn with_fuel(mut self, fuel: Fuel) -> Self {
        self.pipeline = self.pipeline.with_fuel(fuel);
        self
    }

    /// The conversion rule set in use.
    pub fn conversions(&self) -> &AffineConversions {
        self.pipeline.system().conversions()
    }

    /// The shared pipeline driving this system.
    pub fn pipeline(&self) -> &InteropPipeline<AffineSystem> {
        &self.pipeline
    }

    /// Type checks a closed multi-language program (either host language).
    pub fn typecheck(&self, program: &AffProgram) -> Result<AffSourceType, AffineTypeError> {
        self.pipeline.typecheck(program)
    }

    /// Type checks a closed MiniML program.
    pub fn typecheck_ml(&self, e: &MlExpr) -> Result<MlType, AffineTypeError> {
        check_ml(&AffineCtx::empty(), e, self.conversions()).map(|(t, _)| t)
    }

    /// Type checks a closed Affi program.
    pub fn typecheck_affi(&self, e: &AffiExpr) -> Result<AffiType, AffineTypeError> {
        check_affi(&AffineCtx::empty(), e, self.conversions()).map(|(t, _)| t)
    }

    /// Type checks and compiles a closed multi-language program.
    pub fn compile(&self, program: &AffProgram) -> Result<CompileOutput, AffineMultiLangError> {
        Ok(self.pipeline.check_and_compile(program)?.artifact)
    }

    /// Compiles a program already known to type check, skipping the
    /// pipeline's typecheck stage (the sweep engine re-checks the
    /// generator's type claim once up front).
    pub fn compile_only(&self, program: &AffProgram) -> Result<CompileOutput, CompileError> {
        self.pipeline.system().compile(program)
    }

    /// Runs an already-compiled program under an explicit fuel budget and
    /// the *standard* semantics, consuming the artifact (no clone — the
    /// compile-once flow).
    pub fn execute_with_fuel(&self, compiled: CompileOutput, fuel: Fuel) -> RunResult {
        self.pipeline.execute_with_fuel(compiled, fuel)
    }

    /// Runs a batch of already-compiled programs under one fuel budget and
    /// the *standard* semantics through a single reused machine (see
    /// [`InteropSystem::execute_batch`] on [`AffineSystem`]), returning
    /// results in input order.
    pub fn execute_batch_with_fuel(
        &self,
        compiled: Vec<CompileOutput>,
        fuel: Fuel,
    ) -> Vec<RunResult> {
        self.pipeline.execute_batch(compiled, fuel)
    }

    /// Type checks and compiles a closed MiniML program.
    pub fn compile_ml(&self, e: &MlExpr) -> Result<CompileOutput, AffineMultiLangError> {
        self.compile(&AffProgram::Ml(e.clone()))
    }

    /// Type checks and compiles a closed Affi program.
    pub fn compile_affi(&self, e: &AffiExpr) -> Result<CompileOutput, AffineMultiLangError> {
        self.compile(&AffProgram::Affi(e.clone()))
    }

    /// Runs a compiled program under the *standard* semantics.
    pub fn run(&self, compiled: &CompileOutput) -> RunResult {
        self.pipeline.execute(compiled)
    }

    /// Runs a compiled program under the *augmented* (phantom-flag) semantics,
    /// protecting exactly the static binders the compiler reported.
    pub fn run_phantom(&self, compiled: &CompileOutput) -> RunResult {
        let cfg = MachineConfig {
            phantom: Some(PhantomConfig::protecting(
                compiled.static_binders.iter().cloned(),
            )),
            pinned: BTreeSet::new(),
        };
        Machine::with_config(compiled.expr.clone(), cfg).run(self.pipeline.fuel())
    }

    /// Runs a closed multi-language program under the given fuel budget.
    pub fn run_with_fuel(
        &self,
        program: &AffProgram,
        fuel: Fuel,
    ) -> Result<RunResult, AffineMultiLangError> {
        self.pipeline.run_with_fuel(program, fuel)
    }

    /// Convenience: type check, compile and run a MiniML program.
    pub fn run_ml(&self, e: &MlExpr) -> Result<RunResult, AffineMultiLangError> {
        self.pipeline.run(&AffProgram::Ml(e.clone()))
    }

    /// Convenience: type check, compile and run an Affi program.
    pub fn run_affi(&self, e: &AffiExpr) -> Result<RunResult, AffineMultiLangError> {
        self.pipeline.run(&AffProgram::Affi(e.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcvm::{Halt, Value};
    use semint_core::ErrorCode;

    fn ml_thunked_int_fun() -> MlType {
        MlType::fun(MlType::fun(MlType::Unit, MlType::Int), MlType::Int)
    }

    #[test]
    fn affi_arithmetic_crosses_into_miniml() {
        // 1 + ⦇ if-free Affi: (λa◦:int. a) 41 ⦈int
        let affi = AffiExpr::app(
            AffiExpr::lam("a", AffiType::Int, AffiExpr::avar("a")),
            AffiExpr::int(41),
        );
        let e = MlExpr::add(MlExpr::int(1), MlExpr::boundary(affi, MlType::Int));
        let sys = AffineMultiLang::new();
        let r = sys.run_ml(&e).unwrap();
        assert_eq!(r.halt, Halt::Value(Value::Int(42)));
    }

    #[test]
    fn miniml_ints_cross_into_affi_as_booleans() {
        // Affi: if-style use of a MiniML int via bool ∼ int.
        let e = AffiExpr::boundary(MlExpr::int(7), AffiType::Bool);
        let sys = AffineMultiLang::new();
        let r = sys.run_affi(&e).unwrap();
        // 7 collapses to the canonical false (1).
        assert_eq!(r.halt, Halt::Value(Value::Int(1)));
    }

    #[test]
    fn affine_function_passed_to_miniml_and_called_once() {
        // let f = ⦇ λa◦:int. a ⦈((unit→int)→int) in f (λ_:unit. 9)
        let affi_fun = AffiExpr::lam("a", AffiType::Int, AffiExpr::avar("a"));
        let e = MlExpr::app(
            MlExpr::boundary(affi_fun, ml_thunked_int_fun()),
            MlExpr::lam("_", MlType::Unit, MlExpr::int(9)),
        );
        let sys = AffineMultiLang::new();
        assert_eq!(sys.run_ml(&e).unwrap().halt, Halt::Value(Value::Int(9)));
    }

    #[test]
    fn miniml_function_that_double_forces_fails_conv_when_used_from_affi() {
        // MiniML gives Affi a function that forces its thunk twice; using it
        // from Affi on an affine argument trips the dynamic guard.
        let rude_ml = MlExpr::lam(
            "t",
            MlType::fun(MlType::Unit, MlType::Int),
            MlExpr::add(
                MlExpr::app(MlExpr::var("t"), MlExpr::unit()),
                MlExpr::app(MlExpr::var("t"), MlExpr::unit()),
            ),
        );
        // Affi: (⦇rude⦈(int ⊸ int)) 21
        let e = AffiExpr::app(
            AffiExpr::boundary(rude_ml, AffiType::lolli(AffiType::Int, AffiType::Int)),
            AffiExpr::int(21),
        );
        let sys = AffineMultiLang::new();
        let r = sys.run_affi(&e).unwrap();
        assert_eq!(r.halt, Halt::Fail(ErrorCode::Conv));

        // The polite variant succeeds.
        let polite_ml = MlExpr::lam(
            "t",
            MlType::fun(MlType::Unit, MlType::Int),
            MlExpr::add(
                MlExpr::app(MlExpr::var("t"), MlExpr::unit()),
                MlExpr::int(1),
            ),
        );
        let e = AffiExpr::app(
            AffiExpr::boundary(polite_ml, AffiType::lolli(AffiType::Int, AffiType::Int)),
            AffiExpr::int(21),
        );
        assert_eq!(sys.run_affi(&e).unwrap().halt, Halt::Value(Value::Int(22)));
    }

    #[test]
    fn static_arrows_cannot_cross_the_boundary() {
        let affi_fun = AffiExpr::lam_static("a", AffiType::Int, AffiExpr::avar_static("a"));
        let e = MlExpr::boundary(affi_fun, ml_thunked_int_fun());
        let sys = AffineMultiLang::new();
        assert!(matches!(
            sys.run_ml(&e),
            Err(AffineMultiLangError::Type(
                AffineTypeError::NotConvertible { .. }
            ))
        ));
    }

    #[test]
    fn phantom_run_agrees_with_standard_run_on_well_typed_programs() {
        // A well-typed program with static affine structure: the augmented
        // semantics must agree with the standard one (erasure property) and
        // must not get stuck (Fundamental Property for Affi).
        let e = AffiExpr::let_tensor(
            "x",
            "y",
            AffiExpr::tensor(AffiExpr::int(20), AffiExpr::int(22)),
            AffiExpr::boundary(
                MlExpr::add(
                    MlExpr::boundary(AffiExpr::avar_static("x"), MlType::Int),
                    MlExpr::boundary(AffiExpr::avar_static("y"), MlType::Int),
                ),
                AffiType::Int,
            ),
        );
        let sys = AffineMultiLang::new();
        // This program moves static variables through a MiniML boundary, so
        // the type checker must reject it (no•(Ωe)).
        assert!(matches!(
            sys.run_affi(&e),
            Err(AffineMultiLangError::Type(_))
        ));

        // A fully Affi-internal use of static resources is fine and the two
        // semantics agree.
        let ok = AffiExpr::let_tensor(
            "x",
            "y",
            AffiExpr::tensor(AffiExpr::int(20), AffiExpr::int(22)),
            AffiExpr::app(
                AffiExpr::lam_static("z", AffiType::Int, AffiExpr::avar_static("z")),
                AffiExpr::avar_static("x"),
            ),
        );
        let compiled = sys.compile_affi(&ok).unwrap();
        assert_eq!(compiled.static_binders.len(), 3);
        let standard = sys.run(&compiled);
        let phantom = sys.run_phantom(&compiled);
        assert_eq!(standard.halt, Halt::Value(Value::Int(20)));
        assert_eq!(phantom.halt, Halt::Value(Value::Int(20)));
        assert!(phantom.flags_consumed >= 1);
    }

    #[test]
    fn well_typed_programs_are_safe_under_both_semantics() {
        let sys = AffineMultiLang::new();
        let programs: Vec<AffiExpr> = vec![
            AffiExpr::app(
                AffiExpr::lam("a", AffiType::Int, AffiExpr::avar("a")),
                AffiExpr::boundary(MlExpr::add(MlExpr::int(2), MlExpr::int(3)), AffiType::Int),
            ),
            AffiExpr::let_tensor(
                "p",
                "q",
                AffiExpr::tensor(AffiExpr::bool_(true), AffiExpr::int(3)),
                AffiExpr::avar_static("q"),
            ),
            AffiExpr::proj1(AffiExpr::with_pair(AffiExpr::int(1), AffiExpr::int(2))),
            AffiExpr::let_bang("u", AffiExpr::bang(AffiExpr::int(8)), AffiExpr::uvar("u")),
        ];
        for e in programs {
            let compiled = sys.compile_affi(&e).expect("well-typed program compiles");
            assert!(
                sys.run(&compiled).halt.is_safe(),
                "standard run unsafe for {e}"
            );
            assert!(
                sys.run_phantom(&compiled).halt.is_safe(),
                "phantom run unsafe for {e}"
            );
        }
    }
}
