//! The §4 convertibility rules and their LCVM glue code (Fig. 9).
//!
//! Glue code here is *ordinary target code*: each direction of a conversion
//! is an LCVM function (a `λ`), and a boundary compiles to an application of
//! that function to the compiled term.  The rules are derived recursively:
//!
//! * `unit ∼ unit`, `int ∼ int` — identities;
//! * `bool ∼ int` — Affi booleans are already 0/1; the other direction
//!   collapses every integer with `if e {0} {1}` (Fig. 9);
//! * `!𝜏 ∼ τ` when `𝜏 ∼ τ` — the exponential is erased by compilation;
//! * `𝜏1 ⊗ 𝜏2 ∼ τ1 × τ2` when the components are convertible;
//! * `𝜏1 ⊸ 𝜏2 ∼ (unit → τ1) → τ2` when the components are convertible — the
//!   centrepiece of the case study: an affine function is exposed to MiniML
//!   as a function expecting a *thunked* argument, and a MiniML function is
//!   exposed to Affi by re-protecting the argument with the `thunk(·)` guard
//!   (Fig. 9, both directions);
//! * there is **no** rule for the static arrow `⊸•` — it cannot cross the
//!   boundary soundly, and the test suite checks that it is rejected.

use crate::compile::{thunk_guard, AffineConversionEmitter};
use crate::syntax::{AffiType, MlType, Mode};
use crate::typecheck::AffineConvertOracle;
use lcvm::Expr;
use semint_core::convert::{ConversionPair, ConversionScheme, GlueCache};
use semint_core::Var;

/// The §4 conversion rule set, memoized through a shared
/// [`GlueCache`] (clones share the cache).
#[derive(Debug, Clone, Default)]
pub struct AffineConversions {
    cache: GlueCache<AffiType, MlType, Expr>,
}

impl AffineConversions {
    /// A fresh rule set with a cold glue cache (this mirrors the other case
    /// studies' constructors).
    pub fn standard() -> Self {
        AffineConversions::default()
    }

    /// The memoization cache behind [`AffineConversions::derive`].
    pub fn cache(&self) -> &GlueCache<AffiType, MlType, Expr> {
        &self.cache
    }

    /// Derives `𝜏 ∼ τ` (memoized), returning `(C_{𝜏↦τ}, C_{τ↦𝜏})` as LCVM
    /// functions.
    pub fn derive(&self, affi: &AffiType, ml: &MlType) -> Option<(Expr, Expr)> {
        self.derive_pair(affi, ml)
            .map(|p| (p.a_to_b.clone(), p.b_to_a.clone()))
    }
}

impl ConversionScheme for AffineConversions {
    type TyA = AffiType;
    type TyB = MlType;
    type Glue = Expr;

    fn glue_cache(&self) -> &GlueCache<AffiType, MlType, Expr> {
        &self.cache
    }

    /// One Fig. 9 derivation step; sub-derivations recurse through the
    /// memoized [`AffineConversions::derive`].
    fn derive_uncached(&self, affi: &AffiType, ml: &MlType) -> Option<ConversionPair<Expr>> {
        let pair = match (affi, ml) {
            (AffiType::Unit, MlType::Unit) => Some((identity(), identity())),
            (AffiType::Int, MlType::Int) => Some((identity(), identity())),
            // C_{bool↦int}(e) ≜ e        C_{int↦bool}(e) ≜ if e 0 1
            (AffiType::Bool, MlType::Int) => Some((identity(), collapse_to_bool())),
            // !𝜏 is erased by compilation, so it converts exactly when 𝜏 does.
            (AffiType::Bang(inner), _) => self.derive(inner, ml),
            // 𝜏1 ⊗ 𝜏2 ∼ τ1 × τ2: componentwise.
            (AffiType::Tensor(a1, a2), MlType::Prod(m1, m2)) => {
                let (c1_to, c1_from) = self.derive(a1, m1)?;
                let (c2_to, c2_from) = self.derive(a2, m2)?;
                Some((pair_map(c1_to, c2_to), pair_map(c1_from, c2_from)))
            }
            // 𝜏1 ⊸ 𝜏2 ∼ (unit → τ1) → τ2 (dynamic arrows only).
            (AffiType::Lolli(Mode::Dynamic, a1, a2), MlType::Fun(thunk_ty, m2)) => {
                let m1 = match thunk_ty.as_ref() {
                    MlType::Fun(u, m1) if **u == MlType::Unit => m1,
                    _ => return None,
                };
                let (c1_to_ml, c1_to_affi) = self.derive(a1, m1)?;
                let (c2_to_ml, c2_to_affi) = self.derive(a2, m2)?;
                Some((
                    lolli_to_ml(c1_to_affi, c2_to_ml),
                    ml_to_lolli(c1_to_ml, c2_to_affi),
                ))
            }
            _ => None,
        };
        pair.map(|(to_ml, to_affi)| ConversionPair::new(to_ml, to_affi))
    }
}

impl AffineConvertOracle for AffineConversions {
    fn convertible(&self, affi: &AffiType, ml: &MlType) -> bool {
        self.derivable(affi, ml)
    }
}

impl AffineConversionEmitter for AffineConversions {
    fn affi_to_ml(&self, affi: &AffiType, ml: &MlType) -> Option<Expr> {
        self.derive_pair(affi, ml).map(|p| p.a_to_b.clone())
    }
    fn ml_to_affi(&self, ml: &MlType, affi: &AffiType) -> Option<Expr> {
        self.derive_pair(affi, ml).map(|p| p.b_to_a.clone())
    }
}

fn identity() -> Expr {
    Expr::lam("cv%x", Expr::var("cv%x"))
}

/// `λx. if x { 0 } { 1 }`: collapses an arbitrary MiniML integer into an Affi
/// boolean (0 stays true, everything else becomes the canonical false).
fn collapse_to_bool() -> Expr {
    Expr::lam(
        "cv%x",
        Expr::if_(Expr::var("cv%x"), Expr::int(0), Expr::int(1)),
    )
}

/// `λp. (c1 (fst p), c2 (snd p))`.
fn pair_map(c1: Expr, c2: Expr) -> Expr {
    Expr::lam(
        "cv%p",
        Expr::pair(
            Expr::app(c1, Expr::fst(Expr::var("cv%p"))),
            Expr::app(c2, Expr::snd(Expr::var("cv%p"))),
        ),
    )
}

/// `C_{𝜏1⊸𝜏2 ↦ (unit→τ1)→τ2}` (Fig. 9):
///
/// ```text
/// λx. λxthnk. let xconv = C_{τ1↦𝜏1}(xthnk ()) in
///             let xacc  = thunk(xconv) in
///             C_{𝜏2↦τ2}(x xacc)
/// ```
///
/// The MiniML caller provides a `unit → τ1` thunk; it is forced exactly once
/// here, converted, and re-protected with the one-shot guard that the
/// compiled affine function expects.
fn lolli_to_ml(c_arg_to_affi: Expr, c_res_to_ml: Expr) -> Expr {
    let x = Var::new("cv%fun");
    let xthnk = Var::new("cv%thnk");
    let xconv = Var::new("cv%conv");
    let xacc = Var::new("cv%acc");
    Expr::lam(
        x.clone(),
        Expr::lam(
            xthnk.clone(),
            Expr::let_(
                xconv.clone(),
                Expr::app(c_arg_to_affi, Expr::app(Expr::var(xthnk), Expr::unit())),
                Expr::let_(
                    xacc.clone(),
                    thunk_guard(Expr::var(xconv)),
                    Expr::app(c_res_to_ml, Expr::app(Expr::var(x), Expr::var(xacc))),
                ),
            ),
        ),
    )
}

/// `C_{(unit→τ1)→τ2 ↦ 𝜏1⊸𝜏2}` (Fig. 9):
///
/// ```text
/// λx. λxthnk. let xacc = thunk(C_{𝜏1↦τ1}(xthnk ())) in C_{τ2↦𝜏2}(x xacc)
/// ```
///
/// The Affi caller passes a guarded thunk; the wrapper repackages it as the
/// `unit → τ1` thunk the MiniML function expects, converting the payload on
/// first (and only) forcing.
fn ml_to_lolli(c_arg_to_ml: Expr, c_res_to_affi: Expr) -> Expr {
    let x = Var::new("cv%fun");
    let xthnk = Var::new("cv%thnk");
    let xacc = Var::new("cv%acc");
    Expr::lam(
        x.clone(),
        Expr::lam(
            xthnk.clone(),
            Expr::let_(
                xacc.clone(),
                thunk_guard(Expr::app(
                    c_arg_to_ml,
                    Expr::app(Expr::var(xthnk), Expr::unit()),
                )),
                Expr::app(c_res_to_affi, Expr::app(Expr::var(x), Expr::var(xacc))),
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcvm::{Halt, Machine, Value};
    use semint_core::{ErrorCode, Fuel};

    fn run(e: Expr) -> Halt {
        Machine::run_expr(e, Fuel::default()).halt
    }

    fn conv() -> AffineConversions {
        AffineConversions::standard()
    }

    #[test]
    fn base_rules_exist_and_static_arrow_is_rejected() {
        assert!(conv().convertible(&AffiType::Unit, &MlType::Unit));
        assert!(conv().convertible(&AffiType::Bool, &MlType::Int));
        assert!(conv().convertible(&AffiType::Int, &MlType::Int));
        assert!(conv().convertible(
            &AffiType::lolli(AffiType::Int, AffiType::Int),
            &MlType::fun(MlType::fun(MlType::Unit, MlType::Int), MlType::Int)
        ));
        // ⊸ does NOT convert to a plain τ1 → τ2 (the thunking is essential)…
        assert!(!conv().convertible(
            &AffiType::lolli(AffiType::Int, AffiType::Int),
            &MlType::fun(MlType::Int, MlType::Int)
        ));
        // …and the static arrow cannot cross at all.
        assert!(!conv().convertible(
            &AffiType::lolli_static(AffiType::Int, AffiType::Int),
            &MlType::fun(MlType::fun(MlType::Unit, MlType::Int), MlType::Int)
        ));
        assert!(!conv().convertible(&AffiType::Bool, &MlType::Unit));
    }

    #[test]
    fn int_to_bool_collapses_all_nonzero_values() {
        let (_, to_affi) = conv().derive(&AffiType::Bool, &MlType::Int).unwrap();
        assert_eq!(
            run(Expr::app(to_affi.clone(), Expr::int(0))),
            Halt::Value(Value::Int(0))
        );
        assert_eq!(
            run(Expr::app(to_affi.clone(), Expr::int(5))),
            Halt::Value(Value::Int(1))
        );
        assert_eq!(
            run(Expr::app(to_affi, Expr::int(-3))),
            Halt::Value(Value::Int(1))
        );
    }

    #[test]
    fn tensor_prod_conversion_is_componentwise() {
        let affi = AffiType::tensor(AffiType::Bool, AffiType::Int);
        let ml = MlType::prod(MlType::Int, MlType::Int);
        let (to_ml, to_affi) = conv().derive(&affi, &ml).unwrap();
        let pair = Expr::pair(Expr::int(0), Expr::int(7));
        assert_eq!(
            run(Expr::app(to_ml, pair.clone())),
            Halt::Value(Value::Pair(
                Box::new(Value::Int(0)),
                Box::new(Value::Int(7))
            ))
        );
        // Going to Affi collapses the first component to a boolean.
        let noisy = Expr::pair(Expr::int(9), Expr::int(7));
        assert_eq!(
            run(Expr::app(to_affi, noisy)),
            Halt::Value(Value::Pair(
                Box::new(Value::Int(1)),
                Box::new(Value::Int(7))
            ))
        );
    }

    #[test]
    fn bang_erases_to_the_underlying_conversion() {
        let (to_ml, _) = conv()
            .derive(&AffiType::bang(AffiType::Bool), &MlType::Int)
            .unwrap();
        assert_eq!(
            run(Expr::app(to_ml, Expr::int(1))),
            Halt::Value(Value::Int(1))
        );
    }

    #[test]
    fn affine_function_exposed_to_miniml_can_be_called_once() {
        // The compiled Affi identity of type int ⊸ int: expects a guarded
        // thunk and forces it once.
        let affi_identity = Expr::lam("a", Expr::app(Expr::var("a"), Expr::unit()));
        let affi_ty = AffiType::lolli(AffiType::Int, AffiType::Int);
        let ml_ty = MlType::fun(MlType::fun(MlType::Unit, MlType::Int), MlType::Int);
        let (to_ml, _) = conv().derive(&affi_ty, &ml_ty).unwrap();
        // MiniML sees a ((unit → int) → int) and calls it with a thunk.
        let prog = Expr::app(
            Expr::app(to_ml, affi_identity),
            Expr::lam("_", Expr::int(11)),
        );
        assert_eq!(run(prog), Halt::Value(Value::Int(11)));
    }

    #[test]
    fn miniml_function_exposed_to_affi_fails_conv_if_it_forces_twice() {
        // A MiniML function (unit → int) → int that rudely forces its thunk
        // twice; converted to int ⊸ int and called from Affi with a guarded
        // argument, the second force hits the guard.
        let rude = Expr::lam(
            "t",
            Expr::add(
                Expr::app(Expr::var("t"), Expr::unit()),
                Expr::app(Expr::var("t"), Expr::unit()),
            ),
        );
        let affi_ty = AffiType::lolli(AffiType::Int, AffiType::Int);
        let ml_ty = MlType::fun(MlType::fun(MlType::Unit, MlType::Int), MlType::Int);
        let (_, to_affi) = conv().derive(&affi_ty, &ml_ty).unwrap();
        // The Affi caller passes a guarded thunk (as the compiler would).
        let prog = Expr::app(Expr::app(to_affi, rude), thunk_guard(Expr::int(4)));
        assert_eq!(run(prog), Halt::Fail(ErrorCode::Conv));

        // A polite MiniML function that forces once works fine.
        let polite = Expr::lam(
            "t",
            Expr::add(Expr::app(Expr::var("t"), Expr::unit()), Expr::int(1)),
        );
        let (_, to_affi) = conv().derive(&affi_ty, &ml_ty).unwrap();
        let prog = Expr::app(Expr::app(to_affi, polite), thunk_guard(Expr::int(4)));
        assert_eq!(run(prog), Halt::Value(Value::Int(5)));
    }

    #[test]
    fn repeated_derivations_hit_the_glue_cache() {
        let c = conv();
        let affi = AffiType::lolli(
            AffiType::tensor(AffiType::Bool, AffiType::Int),
            AffiType::tensor(AffiType::Int, AffiType::Bool),
        );
        let ml = MlType::fun(
            MlType::fun(MlType::Unit, MlType::prod(MlType::Int, MlType::Int)),
            MlType::prod(MlType::Int, MlType::Int),
        );
        let first = c.derive(&affi, &ml);
        assert!(first.is_some());
        let after_first = c.cache().stats();
        let second = c.derive(&affi, &ml);
        assert_eq!(first, second, "cached result is observably identical");
        let after_second = c.cache().stats();
        assert_eq!(after_second.misses, after_first.misses);
        assert_eq!(after_second.hits, after_first.hits + 1);
        assert_eq!(first, AffineConversions::standard().derive(&affi, &ml));
    }

    #[test]
    fn higher_order_conversion_round_trip() {
        // Convert an Affi function to MiniML and back, then call it from Affi:
        // the double wrapping must still compute the right answer.
        let affi_ty = AffiType::lolli(AffiType::Int, AffiType::Int);
        let ml_ty = MlType::fun(MlType::fun(MlType::Unit, MlType::Int), MlType::Int);
        let (to_ml, _) = conv().derive(&affi_ty, &ml_ty).unwrap();
        let (_, to_affi) = conv().derive(&affi_ty, &ml_ty).unwrap();
        let affi_inc = Expr::lam(
            "a",
            Expr::add(Expr::app(Expr::var("a"), Expr::unit()), Expr::int(1)),
        );
        let round_tripped = Expr::app(to_affi, Expr::app(to_ml, affi_inc));
        let prog = Expr::app(round_tripped, thunk_guard(Expr::int(10)));
        assert_eq!(run(prog), Halt::Value(Value::Int(11)));
    }
}
