//! # affine-interop
//!
//! Case study 2 of the paper (§4): an **affine** language (Affi) interacting
//! with an **unrestricted** functional language (MiniML), both compiled to
//! the Scheme-like target LCVM.
//!
//! The interesting design point is that Affi has *two* affine function
//! spaces:
//!
//! * `𝜏 ⊸ 𝜏` (“dynamic”) — functions that may be passed across the boundary;
//!   their arguments are protected by a runtime guard (`thunk(·)`, Fig. 8)
//!   that raises `fail Conv` on a second use;
//! * `𝜏 ⊸• 𝜏` (“static”) — functions that never cross the boundary; their
//!   at-most-once discipline is enforced purely by the type system, and the
//!   *model* accounts for it with phantom flags (Fig. 10) rather than any
//!   runtime check — which is exactly what makes them cheaper.
//!
//! Crate layout:
//!
//! * [`syntax`] — MiniML and Affi types and terms (Fig. 6), mutually
//!   recursive through boundaries;
//! * [`typecheck`] — the affine-aware static semantics (Fig. 7), implemented
//!   with usage accounting;
//! * [`compile`] — the Fig. 8 compilers to LCVM, including the `thunk(·)`
//!   guard macro; the compiler reports which target binders are static-affine
//!   so the augmented (phantom) semantics can protect them;
//! * [`convert`] — the Fig. 9 conversions, represented as ordinary LCVM
//!   functions;
//! * [`multilang`] — the end-to-end driver (type check → compile → run);
//! * [`model`] — an executable approximation of the Fig. 10 logical relation
//!   and of the §4 soundness theorems, including the phantom-flag
//!   erasure/agreement property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod convert;
pub mod gen;
pub mod harness;
pub mod model;
pub mod multilang;
pub mod syntax;
pub mod typecheck;

pub use harness::{AffProgram, AffineCase};
pub use multilang::{AffineMultiLang, AffineMultiLangError};
pub use syntax::{AffiExpr, AffiType, MlExpr, MlType, Mode};
