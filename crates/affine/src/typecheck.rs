//! Static semantics of MiniML and Affi (Fig. 7).
//!
//! The affine discipline is implemented with *usage accounting*: each checker
//! returns, along with the type, the set of affine variables the expression
//! uses.  Environment splitting (`Ω = Ω1 ⊎ Ω2`) then becomes a disjointness
//! check on the returned sets, and the `no•(Ω)` side conditions become "the
//! used set contains no static variables".  This is the standard algorithmic
//! reading of the declarative rules.
//!
//! Because affine resources can appear inside MiniML terms (through
//! boundaries), the MiniML rules also thread and split the affine usage sets,
//! exactly as the paper notes.

use crate::syntax::{AffiExpr, AffiType, MlExpr, MlType, Mode};
use semint_core::Var;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// The convertibility judgment `𝜏 ∼ τ` (Affi type vs MiniML type) as consulted
/// by the type checkers.
pub trait AffineConvertOracle {
    /// Is Affi type `affi` interconvertible with MiniML type `ml`?
    fn convertible(&self, affi: &AffiType, ml: &MlType) -> bool;
}

impl<F> AffineConvertOracle for F
where
    F: Fn(&AffiType, &MlType) -> bool,
{
    fn convertible(&self, affi: &AffiType, ml: &MlType) -> bool {
        self(affi, ml)
    }
}

/// An oracle with no conversions (single-language programs only).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoConversions;

impl AffineConvertOracle for NoConversions {
    fn convertible(&self, _affi: &AffiType, _ml: &MlType) -> bool {
        false
    }
}

/// The set of affine variables an expression uses.
pub type Usage = BTreeSet<Var>;

/// Typing context: `Δ; Γ; Γ̄; Ω` (minus `Δ`, as the §4 MiniML instance here is
/// monomorphic — polymorphism is exercised in the §5 crate).
#[derive(Debug, Clone, Default)]
pub struct AffineCtx {
    ml: HashMap<Var, MlType>,
    affi_unrestricted: HashMap<Var, AffiType>,
    omega: HashMap<Var, (Mode, AffiType)>,
}

impl AffineCtx {
    /// The empty context.
    pub fn empty() -> Self {
        AffineCtx::default()
    }

    /// Extends the MiniML environment `Γ`.
    pub fn with_ml(&self, x: Var, ty: MlType) -> Self {
        let mut c = self.clone();
        c.ml.insert(x, ty);
        c
    }

    /// Extends Affi's unrestricted environment `Γ̄`.
    pub fn with_unrestricted(&self, x: Var, ty: AffiType) -> Self {
        let mut c = self.clone();
        c.affi_unrestricted.insert(x, ty);
        c
    }

    /// Extends the affine environment `Ω`.
    pub fn with_affine(&self, x: Var, mode: Mode, ty: AffiType) -> Self {
        let mut c = self.clone();
        c.omega.insert(x, (mode, ty));
        c
    }

    /// The mode of an affine variable currently in `Ω`, if any.
    pub fn affine_mode(&self, x: &Var) -> Option<Mode> {
        self.omega.get(x).map(|(m, _)| *m)
    }
}

/// Type errors for the §4 languages.
#[derive(Debug, Clone, PartialEq)]
pub enum AffineTypeError {
    /// A variable was not in scope (or was used at the wrong mode).
    Unbound(Var),
    /// Two types that had to match did not.
    Mismatch {
        /// What the context required.
        expected: String,
        /// What was found.
        found: String,
        /// A short description of the construct.
        context: &'static str,
    },
    /// An affine variable was needed by two disjoint parts of the program.
    AffineReuse(Var),
    /// A static affine variable would escape through a dynamic function or a
    /// boundary.
    StaticEscape(Var),
    /// `!e` captured an affine resource.
    BangCapturesAffine(Var),
    /// A boundary was used at a type pair with no convertibility rule.
    NotConvertible {
        /// The Affi side.
        affi: AffiType,
        /// The MiniML side.
        ml: MlType,
    },
}

impl fmt::Display for AffineTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffineTypeError::Unbound(x) => write!(f, "unbound variable {x}"),
            AffineTypeError::Mismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, found {found}"
                )
            }
            AffineTypeError::AffineReuse(x) => write!(f, "affine variable {x} used more than once"),
            AffineTypeError::StaticEscape(x) => {
                write!(
                    f,
                    "static affine variable {x} would escape its enforcement scope"
                )
            }
            AffineTypeError::BangCapturesAffine(x) => {
                write!(f, "!-value captures affine variable {x}")
            }
            AffineTypeError::NotConvertible { affi, ml } => {
                write!(f, "no convertibility rule {affi} ∼ {ml}")
            }
        }
    }
}

impl std::error::Error for AffineTypeError {}

fn mismatch(
    expected: impl fmt::Display,
    found: impl fmt::Display,
    context: &'static str,
) -> AffineTypeError {
    AffineTypeError::Mismatch {
        expected: expected.to_string(),
        found: found.to_string(),
        context,
    }
}

/// Requires two usage sets to be disjoint (the `Ω = Ω1 ⊎ Ω2` split).
fn split(u1: &Usage, u2: &Usage) -> Result<Usage, AffineTypeError> {
    if let Some(x) = u1.intersection(u2).next() {
        return Err(AffineTypeError::AffineReuse(x.clone()));
    }
    Ok(u1.union(u2).cloned().collect())
}

/// Requires a usage set to contain no *static* affine variables (`no•`).
fn no_static(ctx: &AffineCtx, usage: &Usage) -> Result<(), AffineTypeError> {
    for x in usage {
        if ctx.affine_mode(x) == Some(Mode::Static) {
            return Err(AffineTypeError::StaticEscape(x.clone()));
        }
    }
    Ok(())
}

/// Checks a MiniML expression, returning its type and affine usage.
pub fn check_ml(
    ctx: &AffineCtx,
    e: &MlExpr,
    oracle: &dyn AffineConvertOracle,
) -> Result<(MlType, Usage), AffineTypeError> {
    match e {
        MlExpr::Unit => Ok((MlType::Unit, Usage::new())),
        MlExpr::Int(_) => Ok((MlType::Int, Usage::new())),
        MlExpr::Var(x) => ctx
            .ml
            .get(x)
            .cloned()
            .map(|t| (t, Usage::new()))
            .ok_or_else(|| AffineTypeError::Unbound(x.clone())),
        MlExpr::Pair(a, b) => {
            let (ta, ua) = check_ml(ctx, a, oracle)?;
            let (tb, ub) = check_ml(ctx, b, oracle)?;
            Ok((MlType::prod(ta, tb), split(&ua, &ub)?))
        }
        MlExpr::Fst(e1) => {
            let (t, u) = check_ml(ctx, e1, oracle)?;
            match t {
                MlType::Prod(a, _) => Ok((*a, u)),
                other => Err(mismatch("a product type", other, "fst")),
            }
        }
        MlExpr::Snd(e1) => {
            let (t, u) = check_ml(ctx, e1, oracle)?;
            match t {
                MlType::Prod(_, b) => Ok((*b, u)),
                other => Err(mismatch("a product type", other, "snd")),
            }
        }
        MlExpr::Inl(e1, ty) => match ty {
            MlType::Sum(l, _) => {
                let (t, u) = check_ml(ctx, e1, oracle)?;
                if &t == l.as_ref() {
                    Ok((ty.clone(), u))
                } else {
                    Err(mismatch(l, t, "inl"))
                }
            }
            other => Err(mismatch("a sum type", other, "inl annotation")),
        },
        MlExpr::Inr(e1, ty) => match ty {
            MlType::Sum(_, r) => {
                let (t, u) = check_ml(ctx, e1, oracle)?;
                if &t == r.as_ref() {
                    Ok((ty.clone(), u))
                } else {
                    Err(mismatch(r, t, "inr"))
                }
            }
            other => Err(mismatch("a sum type", other, "inr annotation")),
        },
        MlExpr::Match(s, x, l, y, r) => {
            let (ts, us) = check_ml(ctx, s, oracle)?;
            match ts {
                MlType::Sum(tl, tr) => {
                    let (t1, u1) = check_ml(&ctx.with_ml(x.clone(), *tl), l, oracle)?;
                    let (t2, u2) = check_ml(&ctx.with_ml(y.clone(), *tr), r, oracle)?;
                    if t1 != t2 {
                        return Err(mismatch(t1, t2, "match branches"));
                    }
                    // Branches are additive (only one runs): they may share
                    // affine resources with each other but not with the
                    // scrutinee.
                    let branches: Usage = u1.union(&u2).cloned().collect();
                    Ok((t1, split(&us, &branches)?))
                }
                other => Err(mismatch("a sum type", other, "match scrutinee")),
            }
        }
        MlExpr::Lam(x, ty, body) => {
            let (tb, ub) = check_ml(&ctx.with_ml(x.clone(), ty.clone()), body, oracle)?;
            // A MiniML function may be applied many times.  Capturing a
            // *dynamic* affine variable is fine — its runtime guard turns a
            // second evaluation into `fail Conv` — but a *static* one has no
            // guard, so it must not be captured.
            no_static(ctx, &ub)?;
            Ok((MlType::fun(ty.clone(), tb), ub))
        }
        MlExpr::App(f, a) => {
            let (tf, uf) = check_ml(ctx, f, oracle)?;
            let (ta, ua) = check_ml(ctx, a, oracle)?;
            match tf {
                MlType::Fun(dom, cod) => {
                    if *dom != ta {
                        return Err(mismatch(dom, ta, "application argument"));
                    }
                    Ok((*cod, split(&uf, &ua)?))
                }
                other => Err(mismatch("a function type", other, "application head")),
            }
        }
        MlExpr::Ref(e1) => {
            let (t, u) = check_ml(ctx, e1, oracle)?;
            Ok((MlType::ref_(t), u))
        }
        MlExpr::Deref(e1) => {
            let (t, u) = check_ml(ctx, e1, oracle)?;
            match t {
                MlType::Ref(inner) => Ok((*inner, u)),
                other => Err(mismatch("a reference type", other, "dereference")),
            }
        }
        MlExpr::Assign(a, b) => {
            let (ta, ua) = check_ml(ctx, a, oracle)?;
            let (tb, ub) = check_ml(ctx, b, oracle)?;
            match ta {
                MlType::Ref(inner) => {
                    if *inner != tb {
                        return Err(mismatch(inner, tb, "assignment"));
                    }
                    Ok((MlType::Unit, split(&ua, &ub)?))
                }
                other => Err(mismatch("a reference type", other, "assignment target")),
            }
        }
        MlExpr::Add(a, b) => {
            let (ta, ua) = check_ml(ctx, a, oracle)?;
            let (tb, ub) = check_ml(ctx, b, oracle)?;
            if ta != MlType::Int {
                return Err(mismatch(MlType::Int, ta, "addition"));
            }
            if tb != MlType::Int {
                return Err(mismatch(MlType::Int, tb, "addition"));
            }
            Ok((MlType::Int, split(&ua, &ub)?))
        }
        MlExpr::Boundary(affi, ty) => {
            let (ta, ua) = check_affi(ctx, affi, oracle)?;
            // The embedded Affi term crosses into unrestricted territory: it
            // must not close over statically-enforced resources (no•(Ωe)).
            no_static(ctx, &ua)?;
            if oracle.convertible(&ta, ty) {
                Ok((ty.clone(), ua))
            } else {
                Err(AffineTypeError::NotConvertible {
                    affi: ta,
                    ml: ty.clone(),
                })
            }
        }
    }
}

/// Checks an Affi expression, returning its type and affine usage.
pub fn check_affi(
    ctx: &AffineCtx,
    e: &AffiExpr,
    oracle: &dyn AffineConvertOracle,
) -> Result<(AffiType, Usage), AffineTypeError> {
    match e {
        AffiExpr::Unit => Ok((AffiType::Unit, Usage::new())),
        AffiExpr::Bool(_) => Ok((AffiType::Bool, Usage::new())),
        AffiExpr::Int(_) => Ok((AffiType::Int, Usage::new())),
        AffiExpr::UVar(x) => ctx
            .affi_unrestricted
            .get(x)
            .cloned()
            .map(|t| (t, Usage::new()))
            .ok_or_else(|| AffineTypeError::Unbound(x.clone())),
        AffiExpr::AVar(mode, x) => match ctx.omega.get(x) {
            Some((m, t)) if m == mode => Ok((t.clone(), Usage::from([x.clone()]))),
            _ => Err(AffineTypeError::Unbound(x.clone())),
        },
        AffiExpr::Lam(mode, x, ty, body) => {
            let (tb, ub) =
                check_affi(&ctx.with_affine(x.clone(), *mode, ty.clone()), body, oracle)?;
            let mut used: Usage = ub;
            used.remove(x);
            if *mode == Mode::Dynamic {
                // A dynamic function may be duplicated once it crosses the
                // boundary, so it must not close over static resources.
                no_static(ctx, &used)?;
            }
            Ok((
                AffiType::Lolli(*mode, Box::new(ty.clone()), Box::new(tb)),
                used,
            ))
        }
        AffiExpr::App(f, a) => {
            let (tf, uf) = check_affi(ctx, f, oracle)?;
            let (ta, ua) = check_affi(ctx, a, oracle)?;
            match tf {
                AffiType::Lolli(_, dom, cod) => {
                    if *dom != ta {
                        return Err(mismatch(dom, ta, "application argument"));
                    }
                    Ok((*cod, split(&uf, &ua)?))
                }
                other => Err(mismatch(
                    "an affine function type",
                    other,
                    "application head",
                )),
            }
        }
        AffiExpr::Bang(e1) => {
            let (t, u) = check_affi(ctx, e1, oracle)?;
            if let Some(x) = u.iter().next() {
                return Err(AffineTypeError::BangCapturesAffine(x.clone()));
            }
            Ok((AffiType::bang(t), Usage::new()))
        }
        AffiExpr::LetBang(x, e1, body) => {
            let (t, u1) = check_affi(ctx, e1, oracle)?;
            match t {
                AffiType::Bang(inner) => {
                    let (tb, u2) =
                        check_affi(&ctx.with_unrestricted(x.clone(), *inner), body, oracle)?;
                    Ok((tb, split(&u1, &u2)?))
                }
                other => Err(mismatch("a !-type", other, "let !")),
            }
        }
        AffiExpr::WithPair(a, b) => {
            // Additive: both components may mention the same resources.
            let (ta, ua) = check_affi(ctx, a, oracle)?;
            let (tb, ub) = check_affi(ctx, b, oracle)?;
            Ok((AffiType::with(ta, tb), ua.union(&ub).cloned().collect()))
        }
        AffiExpr::Proj1(e1) => {
            let (t, u) = check_affi(ctx, e1, oracle)?;
            match t {
                AffiType::With(a, _) => Ok((*a, u)),
                other => Err(mismatch("a &-type", other, "projection .1")),
            }
        }
        AffiExpr::Proj2(e1) => {
            let (t, u) = check_affi(ctx, e1, oracle)?;
            match t {
                AffiType::With(_, b) => Ok((*b, u)),
                other => Err(mismatch("a &-type", other, "projection .2")),
            }
        }
        AffiExpr::TensorPair(a, b) => {
            let (ta, ua) = check_affi(ctx, a, oracle)?;
            let (tb, ub) = check_affi(ctx, b, oracle)?;
            Ok((AffiType::tensor(ta, tb), split(&ua, &ub)?))
        }
        AffiExpr::LetTensor(a, b, e1, body) => {
            let (t, u1) = check_affi(ctx, e1, oracle)?;
            match t {
                AffiType::Tensor(t1, t2) => {
                    let inner_ctx = ctx.with_affine(a.clone(), Mode::Static, *t1).with_affine(
                        b.clone(),
                        Mode::Static,
                        *t2,
                    );
                    let (tb, mut u2) = check_affi(&inner_ctx, body, oracle)?;
                    u2.remove(a);
                    u2.remove(b);
                    Ok((tb, split(&u1, &u2)?))
                }
                other => Err(mismatch("a ⊗-type", other, "let (a, b)")),
            }
        }
        AffiExpr::Boundary(ml, ty) => {
            let (tm, um) = check_ml(ctx, ml, oracle)?;
            if oracle.convertible(ty, &tm) {
                Ok((ty.clone(), um))
            } else {
                Err(AffineTypeError::NotConvertible {
                    affi: ty.clone(),
                    ml: tm,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allow_int_bool(affi: &AffiType, ml: &MlType) -> bool {
        matches!((affi, ml), (AffiType::Bool, MlType::Int))
            || matches!((affi, ml), (AffiType::Int, MlType::Int))
    }

    #[test]
    fn affine_variable_single_use_is_accepted() {
        let f = AffiExpr::lam("a", AffiType::Int, AffiExpr::avar("a"));
        let (ty, used) = check_affi(&AffineCtx::empty(), &f, &NoConversions).unwrap();
        assert_eq!(ty, AffiType::lolli(AffiType::Int, AffiType::Int));
        assert!(used.is_empty());
    }

    #[test]
    fn affine_variable_double_use_is_rejected() {
        // λa◦:int. (a, a) — the tensor pair needs the variable twice.
        let f = AffiExpr::lam(
            "a",
            AffiType::Int,
            AffiExpr::tensor(AffiExpr::avar("a"), AffiExpr::avar("a")),
        );
        let err = check_affi(&AffineCtx::empty(), &f, &NoConversions).unwrap_err();
        assert_eq!(err, AffineTypeError::AffineReuse(Var::new("a")));
    }

    #[test]
    fn affine_variable_can_be_dropped() {
        // λa◦:int. 7 — affine (not linear): dropping is fine.
        let f = AffiExpr::lam("a", AffiType::Int, AffiExpr::int(7));
        assert!(check_affi(&AffineCtx::empty(), &f, &NoConversions).is_ok());
    }

    #[test]
    fn with_pairs_share_but_tensor_pairs_split() {
        // λa•:int. ⟨a, a⟩ is fine (only one side will be used)…
        let ok = AffiExpr::lam_static(
            "a",
            AffiType::Int,
            AffiExpr::with_pair(AffiExpr::avar_static("a"), AffiExpr::avar_static("a")),
        );
        assert!(check_affi(&AffineCtx::empty(), &ok, &NoConversions).is_ok());
        // …and projecting gives the component type.
        let p = AffiExpr::proj2(AffiExpr::with_pair(AffiExpr::int(1), AffiExpr::bool_(true)));
        let (ty, _) = check_affi(&AffineCtx::empty(), &p, &NoConversions).unwrap();
        assert_eq!(ty, AffiType::Bool);
    }

    #[test]
    fn dynamic_lambdas_cannot_close_over_static_resources() {
        // λa•:int. λb◦:unit. a  — the inner dynamic lambda closes over a•.
        let bad = AffiExpr::lam_static(
            "a",
            AffiType::Int,
            AffiExpr::lam("b", AffiType::Unit, AffiExpr::avar_static("a")),
        );
        let err = check_affi(&AffineCtx::empty(), &bad, &NoConversions).unwrap_err();
        assert_eq!(err, AffineTypeError::StaticEscape(Var::new("a")));

        // A *static* inner lambda may close over it.
        let ok = AffiExpr::lam_static(
            "a",
            AffiType::Int,
            AffiExpr::lam_static("b", AffiType::Unit, AffiExpr::avar_static("a")),
        );
        assert!(check_affi(&AffineCtx::empty(), &ok, &NoConversions).is_ok());
    }

    #[test]
    fn bang_requires_no_affine_capture() {
        let bad = AffiExpr::lam("a", AffiType::Int, AffiExpr::bang(AffiExpr::avar("a")));
        assert!(matches!(
            check_affi(&AffineCtx::empty(), &bad, &NoConversions),
            Err(AffineTypeError::BangCapturesAffine(_))
        ));
        let ok = AffiExpr::bang(AffiExpr::int(3));
        let (ty, _) = check_affi(&AffineCtx::empty(), &ok, &NoConversions).unwrap();
        assert_eq!(ty, AffiType::bang(AffiType::Int));
    }

    #[test]
    fn let_bang_binds_unrestrictedly() {
        // let !x = !5 in x + via tensor using x twice is fine: x is unrestricted.
        let e = AffiExpr::let_bang(
            "x",
            AffiExpr::bang(AffiExpr::int(5)),
            AffiExpr::tensor(AffiExpr::uvar("x"), AffiExpr::uvar("x")),
        );
        let (ty, _) = check_affi(&AffineCtx::empty(), &e, &NoConversions).unwrap();
        assert_eq!(ty, AffiType::tensor(AffiType::Int, AffiType::Int));
    }

    #[test]
    fn let_tensor_binds_two_static_affine_variables() {
        let e = AffiExpr::let_tensor(
            "a",
            "b",
            AffiExpr::tensor(AffiExpr::int(1), AffiExpr::int(2)),
            AffiExpr::tensor(AffiExpr::avar_static("a"), AffiExpr::avar_static("b")),
        );
        let (ty, _) = check_affi(&AffineCtx::empty(), &e, &NoConversions).unwrap();
        assert_eq!(ty, AffiType::tensor(AffiType::Int, AffiType::Int));

        // Using one of them twice is rejected.
        let bad = AffiExpr::let_tensor(
            "a",
            "b",
            AffiExpr::tensor(AffiExpr::int(1), AffiExpr::int(2)),
            AffiExpr::tensor(AffiExpr::avar_static("a"), AffiExpr::avar_static("a")),
        );
        assert!(matches!(
            check_affi(&AffineCtx::empty(), &bad, &NoConversions),
            Err(AffineTypeError::AffineReuse(_))
        ));
    }

    #[test]
    fn miniml_lambdas_may_capture_dynamic_but_not_static_affine_variables() {
        // A MiniML lambda whose body mentions a *dynamic* affine variable is
        // fine: the runtime guard turns a second evaluation into fail Conv.
        let ml_lam = MlExpr::lam(
            "y",
            MlType::Unit,
            MlExpr::boundary(AffiExpr::avar("a"), MlType::Int),
        );
        let dyn_ctx = AffineCtx::empty().with_affine(Var::new("a"), Mode::Dynamic, AffiType::Int);
        let (_, used) = check_ml(&dyn_ctx, &ml_lam, &allow_int_bool).unwrap();
        assert!(used.contains(&Var::new("a")));

        // The same capture of a *static* affine variable has no guard and is
        // rejected.
        let ml_lam_static = MlExpr::lam(
            "y",
            MlType::Unit,
            MlExpr::boundary(AffiExpr::avar_static("a"), MlType::Int),
        );
        let static_ctx = AffineCtx::empty().with_affine(Var::new("a"), Mode::Static, AffiType::Int);
        let err = check_ml(&static_ctx, &ml_lam_static, &allow_int_bool).unwrap_err();
        assert!(matches!(err, AffineTypeError::StaticEscape(_)));
    }

    #[test]
    fn boundaries_check_convertibility() {
        // ⦇ true ⦈int : Affi bool used as MiniML int.
        let e = MlExpr::boundary(AffiExpr::bool_(true), MlType::Int);
        assert!(check_ml(&AffineCtx::empty(), &e, &NoConversions).is_err());
        let (ty, _) = check_ml(&AffineCtx::empty(), &e, &allow_int_bool).unwrap();
        assert_eq!(ty, MlType::Int);

        // ⦇ 3 ⦈int : MiniML int used as Affi int.
        let e = AffiExpr::boundary(MlExpr::int(3), AffiType::Int);
        let (ty, _) = check_affi(&AffineCtx::empty(), &e, &allow_int_bool).unwrap();
        assert_eq!(ty, AffiType::Int);
    }

    #[test]
    fn static_resources_cannot_cross_into_miniml() {
        // λa•:int. ⦇ ⦇a•⦈int ⦈int : the embedded Affi term uses a static
        // variable, so the MiniML-side boundary must reject it.
        let bad = AffiExpr::lam_static(
            "a",
            AffiType::Int,
            AffiExpr::boundary(
                MlExpr::boundary(AffiExpr::avar_static("a"), MlType::Int),
                AffiType::Int,
            ),
        );
        let err = check_affi(&AffineCtx::empty(), &bad, &allow_int_bool).unwrap_err();
        assert_eq!(err, AffineTypeError::StaticEscape(Var::new("a")));

        // The same shape with a dynamic variable is fine (the runtime guard
        // takes over).
        let ok = AffiExpr::lam(
            "a",
            AffiType::Int,
            AffiExpr::boundary(
                MlExpr::boundary(AffiExpr::avar("a"), MlType::Int),
                AffiType::Int,
            ),
        );
        assert!(check_affi(&AffineCtx::empty(), &ok, &allow_int_bool).is_ok());
    }

    #[test]
    fn miniml_application_splits_affine_usage() {
        // (λx:int. x) applied in a context where both the function and the
        // argument mention the same affine variable through boundaries.
        let ctx = AffineCtx::empty().with_affine(Var::new("a"), Mode::Dynamic, AffiType::Int);
        let use_a = MlExpr::boundary(AffiExpr::avar("a"), MlType::Int);
        let e = MlExpr::add(use_a.clone(), use_a);
        assert!(matches!(
            check_ml(&ctx, &e, &allow_int_bool),
            Err(AffineTypeError::AffineReuse(_))
        ));
    }

    #[test]
    fn error_messages_render() {
        assert!(AffineTypeError::AffineReuse(Var::new("a"))
            .to_string()
            .contains("more than once"));
        assert!(AffineTypeError::NotConvertible {
            affi: AffiType::Bool,
            ml: MlType::Unit
        }
        .to_string()
        .contains("∼"));
    }
}
