//! An executable approximation of the §4 logical relation (Fig. 10) and of
//! the case study's soundness theorems.
//!
//! The full Fig. 10 model tracks a heap typing `Ψ`, an affine flag store `Θ`
//! and per-term phantom flag sets `Φ`.  The executable checker here keeps the
//! parts that have observable content:
//!
//! * **value membership** `v ∈ V⟦τ⟧` / `v ∈ V⟦𝜏⟧` over LCVM values, with the
//!   function cases checked by applying the value to canonical arguments
//!   (guarded, for the dynamic arrow — exactly the Fig. 10 clause that
//!   installs a fresh guard location and stores the argument's flags there);
//! * **expression membership** `e ∈ E⟦·⟧` by bounded evaluation, allowing
//!   `fail Conv` (the relation's escape hatch) and running out of budget, and
//!   — crucially — *rejecting* phantom-stuck runs, which is how the model
//!   excludes programs that use a static affine resource twice;
//! * **convertibility soundness** (the §4 analogue of Lemma 3.1) checked per
//!   rule on sampled inhabitants;
//! * **type safety / fundamental property** checks for compiled programs
//!   under both the standard and the augmented semantics, plus the erasure
//!   agreement property the paper uses to transport safety from the augmented
//!   semantics back to the real machine.

use crate::compile::thunk_guard;
use crate::convert::AffineConversions;
use crate::syntax::{AffiType, MlType, Mode};
use lcvm::{Expr, Halt, Machine, MachineConfig, PhantomConfig, Value};
use semint_core::{ErrorCode, Fuel, Var};
use std::collections::BTreeSet;
use std::fmt;

/// A counterexample to one of the §4 properties.
#[derive(Debug, Clone, PartialEq)]
pub struct AffineCounterExample {
    /// The property that failed.
    pub claim: String,
    /// A rendering of the offending value/program.
    pub witness: String,
    /// Why it failed.
    pub reason: String,
}

impl fmt::Display for AffineCounterExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} — {}", self.claim, self.witness, self.reason)
    }
}

/// A source type of either §4 language.
#[derive(Debug, Clone, PartialEq)]
pub enum AffineSemType {
    /// A MiniML type.
    Ml(MlType),
    /// An Affi type.
    Affi(AffiType),
}

impl fmt::Display for AffineSemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffineSemType::Ml(t) => write!(f, "{t}"),
            AffineSemType::Affi(t) => write!(f, "{t}"),
        }
    }
}

/// The executable §4 model checker.
#[derive(Debug, Clone)]
pub struct AffineModelChecker {
    conversions: AffineConversions,
    /// Step budget per evaluation performed by the checker.
    pub fuel: Fuel,
    /// Nesting depth for function-type membership checks.
    pub fun_depth: usize,
}

impl Default for AffineModelChecker {
    fn default() -> Self {
        AffineModelChecker {
            conversions: AffineConversions::standard(),
            fuel: Fuel::steps(100_000),
            fun_depth: 2,
        }
    }
}

impl AffineModelChecker {
    /// A checker with the standard conversions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is the (closed) LCVM value `v` in `V⟦ty⟧`?
    pub fn value_in(&self, v: &Value, ty: &AffineSemType) -> bool {
        self.value_in_depth(v, ty, self.fun_depth)
    }

    fn value_in_depth(&self, v: &Value, ty: &AffineSemType, depth: usize) -> bool {
        match ty {
            AffineSemType::Ml(t) => self.value_in_ml(v, t, depth),
            AffineSemType::Affi(t) => self.value_in_affi(v, t, depth),
        }
    }

    fn value_in_ml(&self, v: &Value, ty: &MlType, depth: usize) -> bool {
        match ty {
            MlType::Unit => matches!(v, Value::Unit),
            MlType::Int => matches!(v, Value::Int(_)),
            MlType::Prod(a, b) => match v {
                Value::Pair(x, y) => self.value_in_ml(x, a, depth) && self.value_in_ml(y, b, depth),
                _ => false,
            },
            MlType::Sum(a, b) => match v {
                Value::Inl(x) => self.value_in_ml(x, a, depth),
                Value::Inr(y) => self.value_in_ml(y, b, depth),
                _ => false,
            },
            MlType::Fun(a, b) => self.fun_value_in(
                v,
                &AffineSemType::Ml((**a).clone()),
                &AffineSemType::Ml((**b).clone()),
                false,
                depth,
            ),
            // References require a heap; the checker treats any location as a
            // potential ref inhabitant (heap-typing refinement is exercised in
            // the §3 model, which owns that machinery).
            MlType::Ref(_) => matches!(v, Value::Loc(_)),
        }
    }

    fn value_in_affi(&self, v: &Value, ty: &AffiType, depth: usize) -> bool {
        match ty {
            AffiType::Unit => matches!(v, Value::Unit),
            // Affi booleans are exactly 0 and 1 (Fig. 14 uses the same
            // convention for L3; Fig. 8 compiles true/false to 0/1).
            AffiType::Bool => matches!(v, Value::Int(0) | Value::Int(1)),
            AffiType::Int => matches!(v, Value::Int(_)),
            AffiType::Bang(inner) => self.value_in_affi(v, inner, depth),
            AffiType::Tensor(a, b) => match v {
                Value::Pair(x, y) => {
                    self.value_in_affi(x, a, depth) && self.value_in_affi(y, b, depth)
                }
                _ => false,
            },
            // Additive pairs compile to pairs of thunks; check each side by
            // forcing it.
            AffiType::With(a, b) => match v {
                Value::Pair(x, y) => {
                    self.forced_in(x, &AffineSemType::Affi((**a).clone()), depth)
                        && self.forced_in(y, &AffineSemType::Affi((**b).clone()), depth)
                }
                _ => false,
            },
            AffiType::Lolli(Mode::Dynamic, a, b) => self.fun_value_in(
                v,
                &AffineSemType::Affi((**a).clone()),
                &AffineSemType::Affi((**b).clone()),
                true,
                depth,
            ),
            AffiType::Lolli(Mode::Static, a, b) => self.fun_value_in(
                v,
                &AffineSemType::Affi((**a).clone()),
                &AffineSemType::Affi((**b).clone()),
                false,
                depth,
            ),
        }
    }

    /// Forces a compiled `&`-component (a thunk closure) and checks the
    /// result.
    fn forced_in(&self, v: &Value, ty: &AffineSemType, depth: usize) -> bool {
        match v {
            Value::Closure { .. } => {
                let prog = Expr::app(value_to_expr(v), Expr::unit());
                self.expr_in_depth(prog, ty, depth)
            }
            _ => false,
        }
    }

    fn fun_value_in(
        &self,
        v: &Value,
        dom: &AffineSemType,
        cod: &AffineSemType,
        guard_argument: bool,
        depth: usize,
    ) -> bool {
        if !matches!(v, Value::Closure { .. }) {
            return false;
        }
        if depth == 0 {
            return true;
        }
        for arg in self.sample_values(dom, depth - 1) {
            let arg_expr = if guard_argument {
                // The Fig. 10 ⊸ clause: the argument is placed behind a fresh
                // dynamic guard, exactly as a compiled application would.
                thunk_guard(value_to_expr(&arg))
            } else {
                value_to_expr(&arg)
            };
            let prog = Expr::app(value_to_expr(v), arg_expr);
            if !self.expr_in_depth(prog, cod, depth - 1) {
                return false;
            }
        }
        true
    }

    /// `e ∈ E⟦ty⟧`: evaluate under the standard semantics; benign failures and
    /// out-of-fuel are accepted, dynamic type errors are not.
    pub fn expr_in(&self, e: Expr, ty: &AffineSemType) -> bool {
        self.expr_in_depth(e, ty, self.fun_depth)
    }

    fn expr_in_depth(&self, e: Expr, ty: &AffineSemType, depth: usize) -> bool {
        let r = Machine::run_expr(e, self.fuel);
        match r.halt {
            Halt::OutOfFuel => true,
            Halt::Fail(ErrorCode::Conv) => true,
            Halt::Fail(_) => false,
            Halt::PhantomStuck { .. } => false,
            Halt::Value(v) => self.value_in_depth(&v, ty, depth),
        }
    }

    /// Canonical inhabitants of `V⟦ty⟧`, used for the sampled quantifiers.
    pub fn sample_values(&self, ty: &AffineSemType, depth: usize) -> Vec<Value> {
        match ty {
            AffineSemType::Ml(MlType::Unit) | AffineSemType::Affi(AffiType::Unit) => {
                vec![Value::Unit]
            }
            AffineSemType::Ml(MlType::Int) | AffineSemType::Affi(AffiType::Int) => {
                vec![Value::Int(0), Value::Int(1), Value::Int(-9)]
            }
            AffineSemType::Affi(AffiType::Bool) => vec![Value::Int(0), Value::Int(1)],
            AffineSemType::Ml(MlType::Prod(a, b)) => self.pair_samples(
                &AffineSemType::Ml((**a).clone()),
                &AffineSemType::Ml((**b).clone()),
                depth,
            ),
            AffineSemType::Affi(AffiType::Tensor(a, b)) => self.pair_samples(
                &AffineSemType::Affi((**a).clone()),
                &AffineSemType::Affi((**b).clone()),
                depth,
            ),
            AffineSemType::Affi(AffiType::Bang(inner)) => {
                self.sample_values(&AffineSemType::Affi((**inner).clone()), depth)
            }
            AffineSemType::Ml(MlType::Sum(a, b)) => {
                let mut out: Vec<Value> = self
                    .sample_values(&AffineSemType::Ml((**a).clone()), depth)
                    .into_iter()
                    .map(|v| Value::Inl(Box::new(v)))
                    .collect();
                out.extend(
                    self.sample_values(&AffineSemType::Ml((**b).clone()), depth)
                        .into_iter()
                        .map(|v| Value::Inr(Box::new(v))),
                );
                out
            }
            // Function samples: constant functions returning canonical
            // codomain values; for dynamic arrows the constant function
            // ignores (never forces) its guarded argument, which is a legal
            // affine behaviour (affine = at *most* once).
            AffineSemType::Ml(MlType::Fun(_, b)) => self
                .sample_values(&AffineSemType::Ml((**b).clone()), depth)
                .into_iter()
                .take(2)
                .map(closure_constant)
                .collect(),
            AffineSemType::Affi(AffiType::Lolli(mode, a, b)) => {
                let mut out: Vec<Value> = self
                    .sample_values(&AffineSemType::Affi((**b).clone()), depth)
                    .into_iter()
                    .take(2)
                    .map(closure_constant)
                    .collect();
                // For the dynamic arrow, also include a function that really
                // *forces* its guarded argument — the inhabitant that exposes
                // conversions which forget the thunking protocol.
                if *mode == Mode::Dynamic && a == b {
                    out.push(Value::Closure {
                        param: Var::new("forced"),
                        body: std::sync::Arc::new(Expr::app(Expr::var("forced"), Expr::unit())),
                        env: lcvm::Env::empty(),
                    });
                }
                out
            }
            AffineSemType::Affi(AffiType::With(a, b)) => {
                // Pairs of constant thunks.
                let xs = self.sample_values(&AffineSemType::Affi((**a).clone()), depth);
                let ys = self.sample_values(&AffineSemType::Affi((**b).clone()), depth);
                xs.into_iter()
                    .zip(ys)
                    .take(2)
                    .map(|(x, y)| {
                        Value::Pair(Box::new(closure_constant(x)), Box::new(closure_constant(y)))
                    })
                    .collect()
            }
            AffineSemType::Ml(MlType::Ref(_)) => vec![],
        }
    }

    fn pair_samples(&self, a: &AffineSemType, b: &AffineSemType, depth: usize) -> Vec<Value> {
        let xs = self.sample_values(a, depth);
        let ys = self.sample_values(b, depth);
        xs.into_iter()
            .zip(ys)
            .take(3)
            .map(|(x, y)| Value::Pair(Box::new(x), Box::new(y)))
            .collect()
    }

    /// The §4 analogue of Lemma 3.1: both directions of the registered
    /// conversion for `𝜏 ∼ τ` map sampled inhabitants into the expression
    /// relation at the other type.
    pub fn check_convertibility(
        &self,
        affi: &AffiType,
        ml: &MlType,
    ) -> Result<(), AffineCounterExample> {
        let (to_ml, to_affi) =
            self.conversions
                .derive(affi, ml)
                .ok_or_else(|| AffineCounterExample {
                    claim: format!("{affi} ∼ {ml}"),
                    witness: "-".into(),
                    reason: "rule not derivable".into(),
                })?;
        self.check_direction(
            &AffineSemType::Affi(affi.clone()),
            &AffineSemType::Ml(ml.clone()),
            &to_ml,
        )?;
        self.check_direction(
            &AffineSemType::Ml(ml.clone()),
            &AffineSemType::Affi(affi.clone()),
            &to_affi,
        )
    }

    /// Checks one direction of a (possibly unsound, candidate) conversion.
    pub fn check_direction(
        &self,
        from: &AffineSemType,
        to: &AffineSemType,
        glue: &Expr,
    ) -> Result<(), AffineCounterExample> {
        for v in self.sample_values(from, self.fun_depth) {
            let prog = Expr::app(glue.clone(), value_to_expr(&v));
            if !self.expr_in(prog, to) {
                return Err(AffineCounterExample {
                    claim: format!("C_{{{from} ↦ {to}}} sound"),
                    witness: v.to_string(),
                    reason: format!("conversion output is not in E⟦{to}⟧"),
                });
            }
        }
        Ok(())
    }

    /// Type safety under the standard semantics *and* the augmented
    /// semantics, plus the erasure agreement property: the two runs must
    /// produce the same outcome on well-typed programs.
    pub fn check_safety(
        &self,
        expr: &Expr,
        static_binders: &BTreeSet<Var>,
    ) -> Result<(), AffineCounterExample> {
        let standard = Machine::run_expr(expr.clone(), self.fuel);
        if !standard.halt.is_safe() {
            return Err(AffineCounterExample {
                claim: "type safety (standard semantics)".into(),
                witness: expr.to_string(),
                reason: format!("{:?}", standard.halt),
            });
        }
        let cfg = MachineConfig {
            phantom: Some(PhantomConfig::protecting(static_binders.iter().cloned())),
            pinned: BTreeSet::new(),
        };
        let phantom = Machine::with_config(expr.clone(), cfg).run(self.fuel);
        if !phantom.halt.is_safe() {
            return Err(AffineCounterExample {
                claim: "type safety (augmented semantics)".into(),
                witness: expr.to_string(),
                reason: format!("{:?}", phantom.halt),
            });
        }
        match (&standard.halt, &phantom.halt) {
            (Halt::Value(a), Halt::Value(b)) if a != b => Err(AffineCounterExample {
                claim: "erasure agreement".into(),
                witness: expr.to_string(),
                reason: format!("standard gave {a}, augmented gave {b}"),
            }),
            _ => Ok(()),
        }
    }
}

/// Embeds a machine value back into expression syntax so the checker can
/// apply glue code and functions to it.  Closures are re-expanded into their
/// defining lambda under a `let`-encoding of their captured environment.
fn value_to_expr(v: &Value) -> Expr {
    match v {
        Value::Unit => Expr::Unit,
        Value::Int(n) => Expr::Int(*n),
        Value::Loc(l) => Expr::Loc(*l),
        Value::Pair(a, b) => Expr::pair(value_to_expr(a), value_to_expr(b)),
        Value::Inl(a) => Expr::inl(value_to_expr(a)),
        Value::Inr(a) => Expr::inr(value_to_expr(a)),
        Value::Protected(inner, _) => value_to_expr(inner),
        Value::Closure { param, body, env } => {
            // Rebuild `λparam. body` under lets binding the captured free
            // variables.  Environments in checker-built values are tiny, so
            // the quadratic rebuild is irrelevant.
            let mut expr = Expr::Lam(param.clone(), body.clone());
            let mut bound: Vec<Var> = vec![param.clone()];
            for fv in body.free_vars() {
                if bound.contains(&fv) {
                    continue;
                }
                if let Some(val) = env.lookup(&fv) {
                    expr = Expr::let_(fv.clone(), value_to_expr(val), expr);
                    bound.push(fv);
                }
            }
            expr
        }
    }
}

/// A closure value `λ_. v` built without running the machine.
fn closure_constant(v: Value) -> Value {
    Value::Closure {
        param: Var::new("ignored"),
        body: std::sync::Arc::new(value_to_expr(&v)),
        env: lcvm::Env::empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilang::AffineMultiLang;
    use crate::syntax::{AffiExpr, MlExpr};

    fn checker() -> AffineModelChecker {
        AffineModelChecker::new()
    }

    #[test]
    fn base_value_membership() {
        let c = checker();
        assert!(c.value_in(&Value::Unit, &AffineSemType::Ml(MlType::Unit)));
        assert!(!c.value_in(&Value::Int(0), &AffineSemType::Ml(MlType::Unit)));
        assert!(c.value_in(&Value::Int(5), &AffineSemType::Ml(MlType::Int)));
        // Affi booleans are exactly 0/1, MiniML ints are everything.
        assert!(c.value_in(&Value::Int(1), &AffineSemType::Affi(AffiType::Bool)));
        assert!(!c.value_in(&Value::Int(7), &AffineSemType::Affi(AffiType::Bool)));
        assert!(c.value_in(
            &Value::Pair(Box::new(Value::Int(1)), Box::new(Value::Unit)),
            &AffineSemType::Affi(AffiType::tensor(AffiType::Int, AffiType::Unit))
        ));
    }

    #[test]
    fn dynamic_arrow_membership_checks_guarded_application() {
        let c = checker();
        let sys = AffineMultiLang::new();
        // The compiled Affi identity int ⊸ int is in V⟦int ⊸ int⟧.
        let compiled = sys
            .compile_affi(&AffiExpr::lam("a", AffiType::Int, AffiExpr::avar("a")))
            .unwrap();
        let v = Machine::run_expr(compiled.expr, Fuel::default())
            .halt
            .value()
            .unwrap();
        assert!(c.value_in(
            &v,
            &AffineSemType::Affi(AffiType::lolli(AffiType::Int, AffiType::Int))
        ));
        // It is not in V⟦int ⊸ unit⟧: the result is an int, not unit.
        assert!(!c.value_in(
            &v,
            &AffineSemType::Affi(AffiType::lolli(AffiType::Int, AffiType::Unit))
        ));
        // A non-closure is never a function.
        assert!(!c.value_in(
            &Value::Int(3),
            &AffineSemType::Affi(AffiType::lolli(AffiType::Int, AffiType::Int))
        ));
    }

    #[test]
    fn convertibility_soundness_for_registered_rules() {
        let c = checker();
        let thunked = MlType::fun(MlType::fun(MlType::Unit, MlType::Int), MlType::Int);
        let rules = vec![
            (AffiType::Unit, MlType::Unit),
            (AffiType::Bool, MlType::Int),
            (AffiType::Int, MlType::Int),
            (
                AffiType::tensor(AffiType::Bool, AffiType::Int),
                MlType::prod(MlType::Int, MlType::Int),
            ),
            (AffiType::bang(AffiType::Bool), MlType::Int),
            (AffiType::lolli(AffiType::Int, AffiType::Int), thunked),
        ];
        for (affi, ml) in rules {
            c.check_convertibility(&affi, &ml)
                .unwrap_or_else(|ce| panic!("convertibility soundness failed: {ce}"));
        }
    }

    #[test]
    fn unsound_candidate_conversions_are_rejected() {
        let c = checker();
        // Claim: MiniML int converts to Affi bool by the identity. False: 7
        // is not an Affi boolean.
        let err = c
            .check_direction(
                &AffineSemType::Ml(MlType::Int),
                &AffineSemType::Affi(AffiType::Bool),
                &Expr::lam("x", Expr::var("x")),
            )
            .unwrap_err();
        assert!(err.reason.contains("not in"));

        // Claim: an Affi int ⊸ int converts to a *plain* MiniML int → int by
        // the identity (no thunking). False: applying it to a raw int feeds a
        // non-thunk to code expecting a guard.
        let err = c
            .check_direction(
                &AffineSemType::Affi(AffiType::lolli(AffiType::Int, AffiType::Int)),
                &AffineSemType::Ml(MlType::fun(MlType::Int, MlType::Int)),
                &Expr::lam("x", Expr::var("x")),
            )
            .unwrap_err();
        assert_eq!(err.claim, "C_{(int ⊸ int) ↦ (int → int)} sound");
    }

    #[test]
    fn safety_checker_accepts_well_typed_programs_and_catches_stuck_phantoms() {
        let c = checker();
        let sys = AffineMultiLang::new();
        let e = AffiExpr::app(
            AffiExpr::lam_static("a", AffiType::Int, AffiExpr::avar_static("a")),
            AffiExpr::int(3),
        );
        let compiled = sys.compile_affi(&e).unwrap();
        c.check_safety(&compiled.expr, &compiled.static_binders)
            .unwrap();

        // A hand-built violation: use a protected binder twice.  The standard
        // semantics is fine with it, but the augmented semantics gets stuck,
        // so the checker reports a counterexample — this is the program the
        // Affi type system exists to rule out.
        let expr = Expr::let_("a", Expr::int(5), Expr::add(Expr::var("a"), Expr::var("a")));
        let binders = BTreeSet::from([Var::new("a")]);
        let err = c.check_safety(&expr, &binders).unwrap_err();
        assert!(err.claim.contains("augmented"));
    }

    #[test]
    fn miniml_boundary_programs_pass_the_safety_check() {
        let c = checker();
        let sys = AffineMultiLang::new();
        let e = MlExpr::add(
            MlExpr::int(1),
            MlExpr::boundary(
                AffiExpr::app(
                    AffiExpr::lam("a", AffiType::Int, AffiExpr::avar("a")),
                    AffiExpr::int(2),
                ),
                MlType::Int,
            ),
        );
        let compiled = sys.compile_ml(&e).unwrap();
        c.check_safety(&compiled.expr, &compiled.static_binders)
            .unwrap();
    }
}
