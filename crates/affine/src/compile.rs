//! Compilers from MiniML and Affi to LCVM (Fig. 8).
//!
//! The interesting lines of the figure are reproduced exactly:
//!
//! ```text
//! thunk(e) ≜ let rfr = ref 1 in λ_. { if !rfr { fail Conv } { rfr := 0; e } }
//!
//! a◦                ⇝ a◦ ()                 a•              ⇝ a•
//! λa◦/•:𝜏. e         ⇝ λa◦/•. { e⁺ }
//! (e1 : 𝜏1 ⊸ 𝜏2) e2  ⇝ e1⁺ (let x = e2⁺ in thunk(x))
//! (e1 : 𝜏1 ⊸• 𝜏2) e2 ⇝ e1⁺ e2⁺
//! let (a•,b•) = e1 in e2 ⇝ let x = e1⁺, a• = fst x, b• = snd x in e2⁺
//! ```
//!
//! Dynamic affine arguments are wrapped in the `thunk(·)` guard by their
//! *caller* and forced (`a◦ ()`) at each use, so a second use hits the flag
//! and fails `Conv`.  Static affine binders get no runtime machinery at all —
//! the compiler merely *reports* them ([`CompileOutput::static_binders`]) so
//! that the augmented (phantom-flag) semantics and the model can protect
//! them.  To keep that report unambiguous the compiler alpha-renames every
//! static binder to a fresh target name.
//!
//! Boundaries compile to an application of the conversion glue (an ordinary
//! LCVM function, see [`crate::convert`]) to the compiled term.

use crate::syntax::{AffiExpr, AffiType, MlExpr, MlType, Mode};
use crate::typecheck::{check_affi, check_ml, AffineConvertOracle, AffineCtx, AffineTypeError};
use lcvm::Expr;
use semint_core::{ErrorCode, Var};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// The `thunk(·)` guard macro from Fig. 8: a one-shot thunk whose second
/// forcing fails with `Conv`.
pub fn thunk_guard(e: Expr) -> Expr {
    let rfr = Var::new("rfr%guard");
    Expr::let_(
        rfr.clone(),
        Expr::ref_(Expr::int(1)),
        Expr::lam(
            "_",
            Expr::if_(
                Expr::deref(Expr::var(rfr.clone())),
                Expr::Fail(ErrorCode::Conv),
                Expr::seq(Expr::assign(Expr::var(rfr), Expr::int(0)), e),
            ),
        ),
    )
}

/// Supplies conversion glue (LCVM functions) for boundaries.
pub trait AffineConversionEmitter {
    /// `C_{𝜏 ↦ τ}`: converts a compiled Affi `𝜏` into a MiniML `τ`.
    fn affi_to_ml(&self, affi: &AffiType, ml: &MlType) -> Option<Expr>;
    /// `C_{τ ↦ 𝜏}`: converts a compiled MiniML `τ` into an Affi `𝜏`.
    fn ml_to_affi(&self, ml: &MlType, affi: &AffiType) -> Option<Expr>;
}

/// Errors raised during compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The program (or a subterm the compiler had to re-type) is ill-typed.
    Type(AffineTypeError),
    /// A boundary had no registered conversion.
    MissingConversion {
        /// The Affi side of the boundary.
        affi: AffiType,
        /// The MiniML side of the boundary.
        ml: MlType,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Type(e) => write!(f, "type error during compilation: {e}"),
            CompileError::MissingConversion { affi, ml } => {
                write!(f, "no conversion registered for boundary {affi} ∼ {ml}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<AffineTypeError> for CompileError {
    fn from(e: AffineTypeError) -> Self {
        CompileError::Type(e)
    }
}

/// The result of compiling a source term.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileOutput {
    /// The compiled LCVM expression.
    pub expr: Expr,
    /// Target variables that came from *static* affine binders; the augmented
    /// semantics protects exactly these.
    pub static_binders: BTreeSet<Var>,
    /// How many dynamic-guard thunks the compiler inserted (one per
    /// dynamic-arrow application) — reported for the E3/E4 experiments.
    pub dynamic_guards: usize,
}

/// A compiler instance, parameterized by the convertibility oracle (used to
/// re-type application heads and boundary payloads) and the glue emitter.
pub struct Compiler<'a> {
    oracle: &'a dyn AffineConvertOracle,
    emitter: &'a dyn AffineConversionEmitter,
    static_binders: BTreeSet<Var>,
    dynamic_guards: usize,
    fresh: u64,
}

impl<'a> Compiler<'a> {
    /// Creates a compiler over the given oracle and emitter (usually both are
    /// the same `AffineConversions` value).
    pub fn new(
        oracle: &'a dyn AffineConvertOracle,
        emitter: &'a dyn AffineConversionEmitter,
    ) -> Self {
        Compiler {
            oracle,
            emitter,
            static_binders: BTreeSet::new(),
            dynamic_guards: 0,
            fresh: 0,
        }
    }

    /// Compiles a closed MiniML program.
    pub fn compile_ml_program(mut self, e: &MlExpr) -> Result<CompileOutput, CompileError> {
        let expr = self.ml(&AffineCtx::empty(), &HashMap::new(), e)?;
        Ok(CompileOutput {
            expr,
            static_binders: self.static_binders,
            dynamic_guards: self.dynamic_guards,
        })
    }

    /// Compiles a closed Affi program.
    pub fn compile_affi_program(mut self, e: &AffiExpr) -> Result<CompileOutput, CompileError> {
        let expr = self.affi(&AffineCtx::empty(), &HashMap::new(), e)?;
        Ok(CompileOutput {
            expr,
            static_binders: self.static_binders,
            dynamic_guards: self.dynamic_guards,
        })
    }

    fn fresh_static(&mut self, hint: &Var) -> Var {
        let v = Var::new(format!("{hint}•{}", self.fresh));
        self.fresh += 1;
        self.static_binders.insert(v.clone());
        v
    }

    fn ml(
        &mut self,
        ctx: &AffineCtx,
        ren: &HashMap<Var, Var>,
        e: &MlExpr,
    ) -> Result<Expr, CompileError> {
        Ok(match e {
            MlExpr::Unit => Expr::Unit,
            MlExpr::Int(n) => Expr::Int(*n),
            MlExpr::Var(x) => Expr::Var(x.clone()),
            MlExpr::Pair(a, b) => Expr::pair(self.ml(ctx, ren, a)?, self.ml(ctx, ren, b)?),
            MlExpr::Fst(a) => Expr::fst(self.ml(ctx, ren, a)?),
            MlExpr::Snd(a) => Expr::snd(self.ml(ctx, ren, a)?),
            MlExpr::Inl(a, _) => Expr::inl(self.ml(ctx, ren, a)?),
            MlExpr::Inr(a, _) => Expr::inr(self.ml(ctx, ren, a)?),
            MlExpr::Match(s, x, l, y, r) => {
                let (ts, _) = check_ml(ctx, s, self.oracle)?;
                let (tl, tr) = match ts {
                    MlType::Sum(a, b) => (*a, *b),
                    other => {
                        return Err(CompileError::Type(AffineTypeError::Mismatch {
                            expected: "a sum type".into(),
                            found: other.to_string(),
                            context: "match scrutinee",
                        }))
                    }
                };
                Expr::match_(
                    self.ml(ctx, ren, s)?,
                    x.clone(),
                    self.ml(&ctx.with_ml(x.clone(), tl), ren, l)?,
                    y.clone(),
                    self.ml(&ctx.with_ml(y.clone(), tr), ren, r)?,
                )
            }
            MlExpr::Lam(x, ty, body) => Expr::lam(
                x.clone(),
                self.ml(&ctx.with_ml(x.clone(), ty.clone()), ren, body)?,
            ),
            MlExpr::App(f, a) => Expr::app(self.ml(ctx, ren, f)?, self.ml(ctx, ren, a)?),
            MlExpr::Ref(a) => Expr::ref_(self.ml(ctx, ren, a)?),
            MlExpr::Deref(a) => Expr::deref(self.ml(ctx, ren, a)?),
            MlExpr::Assign(a, b) => Expr::assign(self.ml(ctx, ren, a)?, self.ml(ctx, ren, b)?),
            MlExpr::Add(a, b) => Expr::add(self.ml(ctx, ren, a)?, self.ml(ctx, ren, b)?),
            MlExpr::Boundary(affi, ty) => {
                let (affi_ty, _) = check_affi(ctx, affi, self.oracle)?;
                let glue = self.emitter.affi_to_ml(&affi_ty, ty).ok_or_else(|| {
                    CompileError::MissingConversion {
                        affi: affi_ty.clone(),
                        ml: ty.clone(),
                    }
                })?;
                Expr::app(glue, self.affi(ctx, ren, affi)?)
            }
        })
    }

    fn affi(
        &mut self,
        ctx: &AffineCtx,
        ren: &HashMap<Var, Var>,
        e: &AffiExpr,
    ) -> Result<Expr, CompileError> {
        Ok(match e {
            AffiExpr::Unit => Expr::Unit,
            AffiExpr::Bool(b) => Expr::bool_lit(*b),
            AffiExpr::Int(n) => Expr::Int(*n),
            AffiExpr::UVar(x) => Expr::Var(x.clone()),
            // A dynamic affine variable is bound to a one-shot guard: each use
            // forces it.
            AffiExpr::AVar(Mode::Dynamic, x) => Expr::app(Expr::Var(x.clone()), Expr::Unit),
            // A static affine variable is used directly; the model's phantom
            // flag (not any target code) enforces single use.
            AffiExpr::AVar(Mode::Static, x) => {
                Expr::Var(ren.get(x).cloned().unwrap_or_else(|| x.clone()))
            }
            AffiExpr::Lam(mode, x, ty, body) => {
                let inner_ctx = ctx.with_affine(x.clone(), *mode, ty.clone());
                match mode {
                    Mode::Dynamic => Expr::lam(x.clone(), self.affi(&inner_ctx, ren, body)?),
                    Mode::Static => {
                        let fresh = self.fresh_static(x);
                        let mut ren2 = ren.clone();
                        ren2.insert(x.clone(), fresh.clone());
                        Expr::lam(fresh, self.affi(&inner_ctx, &ren2, body)?)
                    }
                }
            }
            AffiExpr::App(f, a) => {
                let (tf, _) = check_affi(ctx, f, self.oracle)?;
                let cf = self.affi(ctx, ren, f)?;
                let ca = self.affi(ctx, ren, a)?;
                match tf {
                    AffiType::Lolli(Mode::Dynamic, _, _) => {
                        // e1⁺ (let x = e2⁺ in thunk(x))
                        self.dynamic_guards += 1;
                        let x = Var::new(format!("arg%{}", self.fresh));
                        self.fresh += 1;
                        Expr::app(cf, Expr::let_(x.clone(), ca, thunk_guard(Expr::Var(x))))
                    }
                    AffiType::Lolli(Mode::Static, _, _) => Expr::app(cf, ca),
                    other => {
                        return Err(CompileError::Type(AffineTypeError::Mismatch {
                            expected: "an affine function type".into(),
                            found: other.to_string(),
                            context: "application head",
                        }))
                    }
                }
            }
            AffiExpr::Bang(v) => self.affi(ctx, ren, v)?,
            AffiExpr::LetBang(x, e1, body) => {
                let (t, _) = check_affi(ctx, e1, self.oracle)?;
                let inner = match t {
                    AffiType::Bang(inner) => *inner,
                    other => {
                        return Err(CompileError::Type(AffineTypeError::Mismatch {
                            expected: "a !-type".into(),
                            found: other.to_string(),
                            context: "let !",
                        }))
                    }
                };
                Expr::let_(
                    x.clone(),
                    self.affi(ctx, ren, e1)?,
                    self.affi(&ctx.with_unrestricted(x.clone(), inner), ren, body)?,
                )
            }
            // Additive pairs are lazy: both components are suspended and only
            // the projected one ever runs (the paper elides this case).
            AffiExpr::WithPair(a, b) => Expr::pair(
                Expr::lam("_", self.affi(ctx, ren, a)?),
                Expr::lam("_", self.affi(ctx, ren, b)?),
            ),
            AffiExpr::Proj1(e1) => Expr::app(Expr::fst(self.affi(ctx, ren, e1)?), Expr::Unit),
            AffiExpr::Proj2(e1) => Expr::app(Expr::snd(self.affi(ctx, ren, e1)?), Expr::Unit),
            AffiExpr::TensorPair(a, b) => {
                Expr::pair(self.affi(ctx, ren, a)?, self.affi(ctx, ren, b)?)
            }
            AffiExpr::LetTensor(a, b, e1, body) => {
                let (t, _) = check_affi(ctx, e1, self.oracle)?;
                let (t1, t2) = match t {
                    AffiType::Tensor(t1, t2) => (*t1, *t2),
                    other => {
                        return Err(CompileError::Type(AffineTypeError::Mismatch {
                            expected: "a ⊗-type".into(),
                            found: other.to_string(),
                            context: "let (a, b)",
                        }))
                    }
                };
                let fresh_a = self.fresh_static(a);
                let fresh_b = self.fresh_static(b);
                let mut ren2 = ren.clone();
                ren2.insert(a.clone(), fresh_a.clone());
                ren2.insert(b.clone(), fresh_b.clone());
                let inner_ctx = ctx.with_affine(a.clone(), Mode::Static, t1).with_affine(
                    b.clone(),
                    Mode::Static,
                    t2,
                );
                let pair_var = Var::new(format!("tensor%{}", self.fresh));
                self.fresh += 1;
                Expr::let_(
                    pair_var.clone(),
                    self.affi(ctx, ren, e1)?,
                    Expr::let_(
                        fresh_a,
                        Expr::fst(Expr::Var(pair_var.clone())),
                        Expr::let_(
                            fresh_b,
                            Expr::snd(Expr::Var(pair_var)),
                            self.affi(&inner_ctx, &ren2, body)?,
                        ),
                    ),
                )
            }
            AffiExpr::Boundary(ml, ty) => {
                let (ml_ty, _) = check_ml(ctx, ml, self.oracle)?;
                let glue = self.emitter.ml_to_affi(&ml_ty, ty).ok_or_else(|| {
                    CompileError::MissingConversion {
                        affi: ty.clone(),
                        ml: ml_ty.clone(),
                    }
                })?;
                Expr::app(glue, self.ml(ctx, ren, ml)?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::NoConversions;
    use lcvm::{Halt, Machine, Value};
    use semint_core::Fuel;

    struct NoGlue;
    impl AffineConversionEmitter for NoGlue {
        fn affi_to_ml(&self, _: &AffiType, _: &MlType) -> Option<Expr> {
            None
        }
        fn ml_to_affi(&self, _: &MlType, _: &AffiType) -> Option<Expr> {
            None
        }
    }

    fn compile_affi(e: &AffiExpr) -> CompileOutput {
        Compiler::new(&NoConversions, &NoGlue)
            .compile_affi_program(e)
            .unwrap()
    }

    fn run(e: Expr) -> Halt {
        Machine::run_expr(e, Fuel::default()).halt
    }

    #[test]
    fn thunk_guard_is_one_shot() {
        // let t = thunk(42) in t () + t ()  — the second force fails Conv.
        let prog = Expr::let_(
            "t",
            thunk_guard(Expr::int(42)),
            Expr::add(
                Expr::app(Expr::var("t"), Expr::unit()),
                Expr::app(Expr::var("t"), Expr::unit()),
            ),
        );
        assert_eq!(run(prog), Halt::Fail(ErrorCode::Conv));

        // A single force succeeds.
        let prog = Expr::let_(
            "t",
            thunk_guard(Expr::int(42)),
            Expr::app(Expr::var("t"), Expr::unit()),
        );
        assert_eq!(run(prog), Halt::Value(Value::Int(42)));
    }

    #[test]
    fn dynamic_application_inserts_a_guard_and_forces_per_use() {
        // (λa◦:int. a) 5  ==> 5, with exactly one guard inserted.
        let e = AffiExpr::app(
            AffiExpr::lam("a", AffiType::Int, AffiExpr::avar("a")),
            AffiExpr::int(5),
        );
        let out = compile_affi(&e);
        assert_eq!(out.dynamic_guards, 1);
        assert!(out.static_binders.is_empty());
        assert_eq!(run(out.expr), Halt::Value(Value::Int(5)));
    }

    #[test]
    fn compiled_dynamic_function_rejects_a_reused_guard() {
        // Apply a compiled dynamic affine function to the *same* guarded
        // argument twice — the behaviour MiniML code that holds on to the
        // guard would exhibit.  The first call succeeds, the second fails
        // Conv.
        let f = AffiExpr::lam("a", AffiType::Int, AffiExpr::avar("a"));
        let out = compile_affi(&f);
        let prog = Expr::let_(
            "f",
            out.expr,
            Expr::let_(
                "t",
                thunk_guard(Expr::int(5)),
                Expr::add(
                    Expr::app(Expr::var("f"), Expr::var("t")),
                    Expr::app(Expr::var("f"), Expr::var("t")),
                ),
            ),
        );
        assert_eq!(run(prog), Halt::Fail(ErrorCode::Conv));
    }

    #[test]
    fn static_application_has_no_guard() {
        // (λa•:int. a) 5 — no guard, no thunk, and the binder is reported.
        let e = AffiExpr::app(
            AffiExpr::lam_static("a", AffiType::Int, AffiExpr::avar_static("a")),
            AffiExpr::int(5),
        );
        let out = compile_affi(&e);
        assert_eq!(out.dynamic_guards, 0);
        assert_eq!(out.static_binders.len(), 1);
        assert_eq!(run(out.expr), Halt::Value(Value::Int(5)));
    }

    #[test]
    fn static_binders_are_alpha_renamed_apart() {
        // Two distinct static binders with the same source name must be
        // reported as two distinct target names.
        let e = AffiExpr::app(
            AffiExpr::lam_static(
                "a",
                AffiType::Int,
                AffiExpr::app(
                    AffiExpr::lam_static("a", AffiType::Int, AffiExpr::avar_static("a")),
                    AffiExpr::avar_static("a"),
                ),
            ),
            AffiExpr::int(9),
        );
        let out = compile_affi(&e);
        assert_eq!(out.static_binders.len(), 2);
        assert_eq!(run(out.expr), Halt::Value(Value::Int(9)));
    }

    #[test]
    fn tensor_let_destructures_and_reports_static_binders() {
        let e = AffiExpr::let_tensor(
            "x",
            "y",
            AffiExpr::tensor(AffiExpr::int(3), AffiExpr::int(4)),
            AffiExpr::tensor(AffiExpr::avar_static("y"), AffiExpr::avar_static("x")),
        );
        let out = compile_affi(&e);
        assert_eq!(out.static_binders.len(), 2);
        assert_eq!(
            run(out.expr),
            Halt::Value(Value::Pair(
                Box::new(Value::Int(4)),
                Box::new(Value::Int(3))
            ))
        );
    }

    #[test]
    fn with_pairs_are_lazy_and_projections_force_one_side() {
        // ⟨1, diverging-free-but-failing⟩.1 must not touch the second side.
        let e = AffiExpr::proj1(AffiExpr::with_pair(
            AffiExpr::int(1),
            AffiExpr::app(
                AffiExpr::lam("z", AffiType::Int, AffiExpr::avar("z")),
                AffiExpr::int(0),
            ),
        ));
        let out = compile_affi(&e);
        assert_eq!(run(out.expr), Halt::Value(Value::Int(1)));
    }

    #[test]
    fn bang_and_let_bang_erase_to_plain_binding() {
        let e = AffiExpr::let_bang(
            "x",
            AffiExpr::bang(AffiExpr::int(6)),
            AffiExpr::tensor(AffiExpr::uvar("x"), AffiExpr::uvar("x")),
        );
        let out = compile_affi(&e);
        assert_eq!(
            run(out.expr),
            Halt::Value(Value::Pair(
                Box::new(Value::Int(6)),
                Box::new(Value::Int(6))
            ))
        );
    }

    #[test]
    fn miniml_compilation_is_standard() {
        let e = MlExpr::app(
            MlExpr::lam(
                "x",
                MlType::Int,
                MlExpr::add(MlExpr::var("x"), MlExpr::int(1)),
            ),
            MlExpr::int(41),
        );
        let out = Compiler::new(&NoConversions, &NoGlue)
            .compile_ml_program(&e)
            .unwrap();
        assert_eq!(run(out.expr), Halt::Value(Value::Int(42)));

        let e = MlExpr::match_(
            MlExpr::inl(MlExpr::int(7), MlType::sum(MlType::Int, MlType::Unit)),
            "x",
            MlExpr::var("x"),
            "y",
            MlExpr::int(0),
        );
        let out = Compiler::new(&NoConversions, &NoGlue)
            .compile_ml_program(&e)
            .unwrap();
        assert_eq!(run(out.expr), Halt::Value(Value::Int(7)));
    }

    #[test]
    fn boundaries_without_glue_are_compile_errors() {
        let e = MlExpr::boundary(AffiExpr::int(1), MlType::Int);
        let err = Compiler::new(&NoConversions, &NoGlue)
            .compile_ml_program(&e)
            .unwrap_err();
        assert!(matches!(err, CompileError::MissingConversion { .. }));
    }
}
