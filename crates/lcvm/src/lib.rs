//! # lcvm
//!
//! The untyped, Scheme-like target language of the paper's second and third
//! case studies (Fig. 6, extended in Fig. 12).  LCVM has functions, pairs,
//! sums, pattern matching, mutable references and dynamic failure `fail c`.
//! The §5 extension adds *manually managed* allocation (`alloc`), explicit
//! deallocation (`free`), a way to hand a manual location over to the garbage
//! collector (`gcmov`), and an instruction to invoke the collector
//! (`callgc`).  GC'd and manual cells share a single pool of locations that
//! are reused after collection or `free`.
//!
//! The interpreter is an environment-based CEK-style abstract machine with an
//! explicit continuation stack, which gives us
//!
//! * precise step counting (for the executable step-indexed models),
//! * precise GC roots (current environment + every saved frame), and
//! * an *augmented* mode implementing the paper's phantom-flag semantics
//!   (§4): `protect(v, f)` values consume a phantom flag when forced, and
//!   bindings of designated "static affine" variables mint fresh flags.
//!
//! ```
//! use lcvm::{Expr, Machine, Value};
//! use semint_core::Fuel;
//!
//! // (λx. x + 1) 41
//! let prog = Expr::app(Expr::lam("x", Expr::add(Expr::var("x"), Expr::int(1))), Expr::int(41));
//! let result = Machine::run_expr(prog, Fuel::default());
//! assert_eq!(result.halt.value(), Some(Value::Int(42)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heap;
pub mod machine;
pub mod phantom;
pub mod syntax;
pub mod value;

pub use heap::{Heap, HeapError, Loc, Slot};
pub use machine::{Halt, Machine, MachineConfig, RunResult};
pub use phantom::{FlagId, PhantomConfig};
pub use syntax::{Expr, PrimOp};
pub use value::{Env, Value};

pub use semint_core::{ErrorCode, Fuel, Var};
