//! The phantom-flag *augmented* semantics of §4.
//!
//! The paper enforces Affi's static affine arrows (`⊸•`) not with runtime
//! checks but with reasoning "that exists only in the model": an augmented
//! operational semantics carrying a set `Φ` of phantom flags.  Binding a
//! static affine variable mints a fresh flag and wraps the bound value in
//! `protect(v, f)`; forcing a protected value consumes the flag; forcing it
//! again finds no flag and the augmented machine is *stuck* (not a dynamic
//! error), which excludes the program from the logical relation by
//! construction.
//!
//! The machine implements this as an optional mode: a [`PhantomConfig`] lists
//! the target variables that came from static affine binders (the Affi
//! compiler reports them), and the machine tracks the flag set `Φ`.
//! Erasing `protect(·)` (see [`crate::syntax::Expr::erase_protect`]) recovers
//! a program of the standard semantics, and the two agree on every program
//! that does not get stuck — exactly the paper's erasure property.

use semint_core::Var;
use std::collections::BTreeSet;
use std::fmt;

/// A phantom flag `f` (only meaningful in the augmented semantics).
pub type FlagId = u64;

/// Configuration for the augmented (phantom-flag) semantics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhantomConfig {
    /// Target variables whose bindings are treated as static-affine binders
    /// (`a•` in the paper): binding them mints a phantom flag and wraps the
    /// value in `protect`.
    pub protected_binders: BTreeSet<Var>,
}

impl PhantomConfig {
    /// A configuration protecting the given binders.
    pub fn protecting(binders: impl IntoIterator<Item = Var>) -> Self {
        PhantomConfig {
            protected_binders: binders.into_iter().collect(),
        }
    }

    /// True if `x` should be protected when bound.
    pub fn protects(&self, x: &Var) -> bool {
        self.protected_binders.contains(x)
    }
}

/// The mutable phantom-flag state `Φ` carried by an augmented machine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhantomState {
    flags: BTreeSet<FlagId>,
    next: FlagId,
    consumed: u64,
}

impl PhantomState {
    /// An empty flag store.
    pub fn new() -> Self {
        PhantomState::default()
    }

    /// Mints a fresh flag, adds it to `Φ`, and returns it.
    pub fn mint(&mut self) -> FlagId {
        let f = self.next;
        self.next += 1;
        self.flags.insert(f);
        f
    }

    /// Attempts to consume flag `f`. Returns `false` (leaving the store
    /// unchanged) if the flag is not present — the augmented machine is then
    /// stuck.
    pub fn consume(&mut self, f: FlagId) -> bool {
        let present = self.flags.remove(&f);
        if present {
            self.consumed += 1;
        }
        present
    }

    /// The currently live flags.
    pub fn live_flags(&self) -> &BTreeSet<FlagId> {
        &self.flags
    }

    /// How many flags have been consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

impl fmt::Display for PhantomState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Φ = {{")?;
        for (i, fl) in self.flags.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fl}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_flags_are_distinct_and_live() {
        let mut st = PhantomState::new();
        let a = st.mint();
        let b = st.mint();
        assert_ne!(a, b);
        assert!(st.live_flags().contains(&a));
        assert!(st.live_flags().contains(&b));
    }

    #[test]
    fn a_flag_can_be_consumed_exactly_once() {
        let mut st = PhantomState::new();
        let f = st.mint();
        assert!(st.consume(f));
        assert!(!st.consume(f), "second consumption is a stuck state");
        assert_eq!(st.consumed(), 1);
    }

    #[test]
    fn config_reports_protected_binders() {
        let cfg = PhantomConfig::protecting([Var::new("a"), Var::new("b")]);
        assert!(cfg.protects(&Var::new("a")));
        assert!(!cfg.protects(&Var::new("x")));
    }

    #[test]
    fn display_lists_live_flags() {
        let mut st = PhantomState::new();
        st.mint();
        st.mint();
        assert_eq!(st.to_string(), "Φ = {0, 1}");
    }
}
