//! LCVM expressions (Fig. 6, plus the Fig. 12 memory-management forms).
//!
//! The only additions relative to the paper's grammar are primitive
//! arithmetic/comparison operators ([`PrimOp`]) — the paper's MiniML has
//! integers and its examples use `x + 1`, so its (elided) full target must
//! have them too — and `seq`, which is sugar for `let _ = e1 in e2` used
//! heavily by the compilers.

use semint_core::{ErrorCode, Var};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Primitive binary operators over integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// `0` (true) if the left operand is strictly less than the right, else `1`.
    Less,
    /// `0` (true) if the operands are equal integers, else `1`.
    Eq,
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Less => "<",
            PrimOp::Eq => "==",
        };
        write!(f, "{s}")
    }
}

/// LCVM expressions.
///
/// Note on booleans: following the paper's compilers (Fig. 8), **0 is true**
/// and any non-zero integer is false; `if e {e1} {e2}` takes the first branch
/// when `e` evaluates to `0`.
///
/// Subexpressions are [`Arc`]-shared, so cloning an expression — which the
/// machine does once per β-reduction when it enters a closure body — is a
/// reference-count bump, not a deep copy.  Expressions are immutable after
/// construction, so the sharing is unobservable.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `()`.
    Unit,
    /// An integer literal `n`.
    Int(i64),
    /// A heap location literal `ℓ` (only appears at runtime / in tests).
    Loc(crate::heap::Loc),
    /// A variable `x`.
    Var(Var),
    /// A pair `(e1, e2)`.
    Pair(Arc<Expr>, Arc<Expr>),
    /// `fst e`.
    Fst(Arc<Expr>),
    /// `snd e`.
    Snd(Arc<Expr>),
    /// `inl e`.
    Inl(Arc<Expr>),
    /// `inr e`.
    Inr(Arc<Expr>),
    /// `if e { e1 } { e2 }` — first branch when `e` is `0`.
    If(Arc<Expr>, Arc<Expr>, Arc<Expr>),
    /// `match e x { e1 } y { e2 }` — case analysis on `inl`/`inr`.
    Match(Arc<Expr>, Var, Arc<Expr>, Var, Arc<Expr>),
    /// `let x = e1 in e2`.
    Let(Var, Arc<Expr>, Arc<Expr>),
    /// `λx { e }`.
    Lam(Var, Arc<Expr>),
    /// Application `e1 e2`.
    App(Arc<Expr>, Arc<Expr>),
    /// `ref e`: allocate a garbage-collected cell.
    Ref(Arc<Expr>),
    /// `!e`: dereference.
    Deref(Arc<Expr>),
    /// `e1 := e2`: assignment; evaluates to `()`.
    Assign(Arc<Expr>, Arc<Expr>),
    /// `fail c`: abort with a dynamic error.
    Fail(ErrorCode),
    /// Primitive operator application `e1 ⊕ e2`.
    Prim(PrimOp, Arc<Expr>, Arc<Expr>),
    /// `alloc e`: allocate a manually-managed cell (Fig. 12).
    Alloc(Arc<Expr>),
    /// `free e`: deallocate a manually-managed cell (Fig. 12).
    Free(Arc<Expr>),
    /// `gcmov e`: hand a manually-managed cell to the garbage collector,
    /// keeping its identity (Fig. 12).
    Gcmov(Arc<Expr>),
    /// `callgc`: explicitly invoke the garbage collector (Fig. 12).
    Callgc,
    /// `protect(e, f)` — **augmented semantics only** (§4): evaluating this
    /// consumes phantom flag `f`; it never appears in compiled code and its
    /// erasure is `e`.
    Protect(Arc<Expr>, crate::phantom::FlagId),
}

impl Expr {
    /// A variable expression.
    pub fn var(x: impl Into<Var>) -> Expr {
        Expr::Var(x.into())
    }

    /// An integer literal.
    pub fn int(n: i64) -> Expr {
        Expr::Int(n)
    }

    /// The unit literal.
    pub fn unit() -> Expr {
        Expr::Unit
    }

    /// `λx { body }`.
    pub fn lam(x: impl Into<Var>, body: Expr) -> Expr {
        Expr::Lam(x.into(), Arc::new(body))
    }

    /// `e1 e2`.
    pub fn app(f: Expr, a: Expr) -> Expr {
        Expr::App(Arc::new(f), Arc::new(a))
    }

    /// `let x = bound in body`.
    pub fn let_(x: impl Into<Var>, bound: Expr, body: Expr) -> Expr {
        Expr::Let(x.into(), Arc::new(bound), Arc::new(body))
    }

    /// `let _ = e1 in e2` (sequencing).
    pub fn seq(e1: Expr, e2: Expr) -> Expr {
        Expr::let_("_", e1, e2)
    }

    /// `(e1, e2)`.
    pub fn pair(e1: Expr, e2: Expr) -> Expr {
        Expr::Pair(Arc::new(e1), Arc::new(e2))
    }

    /// `fst e`.
    pub fn fst(e: Expr) -> Expr {
        Expr::Fst(Arc::new(e))
    }

    /// `snd e`.
    pub fn snd(e: Expr) -> Expr {
        Expr::Snd(Arc::new(e))
    }

    /// `inl e`.
    pub fn inl(e: Expr) -> Expr {
        Expr::Inl(Arc::new(e))
    }

    /// `inr e`.
    pub fn inr(e: Expr) -> Expr {
        Expr::Inr(Arc::new(e))
    }

    /// `if cond { then } { els }` (0 is true).
    pub fn if_(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::If(Arc::new(cond), Arc::new(then), Arc::new(els))
    }

    /// `match e x { left } y { right }`.
    pub fn match_(e: Expr, x: impl Into<Var>, left: Expr, y: impl Into<Var>, right: Expr) -> Expr {
        Expr::Match(
            Arc::new(e),
            x.into(),
            Arc::new(left),
            y.into(),
            Arc::new(right),
        )
    }

    /// `ref e`.
    pub fn ref_(e: Expr) -> Expr {
        Expr::Ref(Arc::new(e))
    }

    /// `!e`.
    pub fn deref(e: Expr) -> Expr {
        Expr::Deref(Arc::new(e))
    }

    /// `e1 := e2`.
    pub fn assign(e1: Expr, e2: Expr) -> Expr {
        Expr::Assign(Arc::new(e1), Arc::new(e2))
    }

    /// `e1 + e2`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(e1: Expr, e2: Expr) -> Expr {
        Expr::Prim(PrimOp::Add, Arc::new(e1), Arc::new(e2))
    }

    /// `e1 - e2`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(e1: Expr, e2: Expr) -> Expr {
        Expr::Prim(PrimOp::Sub, Arc::new(e1), Arc::new(e2))
    }

    /// `e1 * e2`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(e1: Expr, e2: Expr) -> Expr {
        Expr::Prim(PrimOp::Mul, Arc::new(e1), Arc::new(e2))
    }

    /// `e1 < e2` (0 when true).
    pub fn less(e1: Expr, e2: Expr) -> Expr {
        Expr::Prim(PrimOp::Less, Arc::new(e1), Arc::new(e2))
    }

    /// `e1 == e2` (0 when true).
    pub fn eq(e1: Expr, e2: Expr) -> Expr {
        Expr::Prim(PrimOp::Eq, Arc::new(e1), Arc::new(e2))
    }

    /// `alloc e`.
    pub fn alloc(e: Expr) -> Expr {
        Expr::Alloc(Arc::new(e))
    }

    /// `free e`.
    pub fn free(e: Expr) -> Expr {
        Expr::Free(Arc::new(e))
    }

    /// `gcmov e`.
    pub fn gcmov(e: Expr) -> Expr {
        Expr::Gcmov(Arc::new(e))
    }

    /// The compiled representation of a source boolean: 0 for true, 1 for
    /// false (Fig. 8).
    pub fn bool_lit(b: bool) -> Expr {
        Expr::Int(if b { 0 } else { 1 })
    }

    /// The free variables of the expression.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut acc = BTreeSet::new();
        let mut bound = Vec::new();
        free_vars(self, &mut bound, &mut acc);
        acc
    }

    /// True if the expression has no free variables.
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Erases the augmented-semantics `protect(·)` wrappers (the paper's
    /// erasure from the phantom semantics back to the standard one).
    pub fn erase_protect(&self) -> Expr {
        self.map_subexprs(&|e| match e {
            Expr::Protect(inner, _) => inner.erase_protect(),
            other => other.clone(),
        })
    }

    /// Structure-preserving map over immediate subexpressions, applying `f`
    /// at every node bottom-up.
    fn map_subexprs(&self, f: &impl Fn(&Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Unit
            | Expr::Int(_)
            | Expr::Loc(_)
            | Expr::Var(_)
            | Expr::Fail(_)
            | Expr::Callgc => self.clone(),
            Expr::Pair(a, b) => {
                Expr::Pair(Arc::new(a.map_subexprs(f)), Arc::new(b.map_subexprs(f)))
            }
            Expr::Fst(a) => Expr::Fst(Arc::new(a.map_subexprs(f))),
            Expr::Snd(a) => Expr::Snd(Arc::new(a.map_subexprs(f))),
            Expr::Inl(a) => Expr::Inl(Arc::new(a.map_subexprs(f))),
            Expr::Inr(a) => Expr::Inr(Arc::new(a.map_subexprs(f))),
            Expr::If(c, t, e) => Expr::If(
                Arc::new(c.map_subexprs(f)),
                Arc::new(t.map_subexprs(f)),
                Arc::new(e.map_subexprs(f)),
            ),
            Expr::Match(s, x, l, y, r) => Expr::Match(
                Arc::new(s.map_subexprs(f)),
                x.clone(),
                Arc::new(l.map_subexprs(f)),
                y.clone(),
                Arc::new(r.map_subexprs(f)),
            ),
            Expr::Let(x, a, b) => Expr::Let(
                x.clone(),
                Arc::new(a.map_subexprs(f)),
                Arc::new(b.map_subexprs(f)),
            ),
            Expr::Lam(x, b) => Expr::Lam(x.clone(), Arc::new(b.map_subexprs(f))),
            Expr::App(a, b) => Expr::App(Arc::new(a.map_subexprs(f)), Arc::new(b.map_subexprs(f))),
            Expr::Ref(a) => Expr::Ref(Arc::new(a.map_subexprs(f))),
            Expr::Deref(a) => Expr::Deref(Arc::new(a.map_subexprs(f))),
            Expr::Assign(a, b) => {
                Expr::Assign(Arc::new(a.map_subexprs(f)), Arc::new(b.map_subexprs(f)))
            }
            Expr::Prim(op, a, b) => Expr::Prim(
                *op,
                Arc::new(a.map_subexprs(f)),
                Arc::new(b.map_subexprs(f)),
            ),
            Expr::Alloc(a) => Expr::Alloc(Arc::new(a.map_subexprs(f))),
            Expr::Free(a) => Expr::Free(Arc::new(a.map_subexprs(f))),
            Expr::Gcmov(a) => Expr::Gcmov(Arc::new(a.map_subexprs(f))),
            Expr::Protect(a, fl) => Expr::Protect(Arc::new(a.map_subexprs(f)), *fl),
        };
        f(&rebuilt)
    }

    /// Counts AST nodes (used by benches to report program sizes).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unit
            | Expr::Int(_)
            | Expr::Loc(_)
            | Expr::Var(_)
            | Expr::Fail(_)
            | Expr::Callgc => {}
            Expr::Pair(a, b) | Expr::App(a, b) | Expr::Assign(a, b) | Expr::Prim(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Let(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Fst(a)
            | Expr::Snd(a)
            | Expr::Inl(a)
            | Expr::Inr(a)
            | Expr::Lam(_, a)
            | Expr::Ref(a)
            | Expr::Deref(a)
            | Expr::Alloc(a)
            | Expr::Free(a)
            | Expr::Gcmov(a)
            | Expr::Protect(a, _) => a.visit(f),
            Expr::If(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Expr::Match(s, _, l, _, r) => {
                s.visit(f);
                l.visit(f);
                r.visit(f);
            }
        }
    }
}

fn free_vars(e: &Expr, bound: &mut Vec<Var>, acc: &mut BTreeSet<Var>) {
    match e {
        Expr::Var(x) => {
            if !bound.contains(x) {
                acc.insert(x.clone());
            }
        }
        Expr::Unit | Expr::Int(_) | Expr::Loc(_) | Expr::Fail(_) | Expr::Callgc => {}
        Expr::Pair(a, b) | Expr::App(a, b) | Expr::Assign(a, b) | Expr::Prim(_, a, b) => {
            free_vars(a, bound, acc);
            free_vars(b, bound, acc);
        }
        Expr::Fst(a)
        | Expr::Snd(a)
        | Expr::Inl(a)
        | Expr::Inr(a)
        | Expr::Ref(a)
        | Expr::Deref(a)
        | Expr::Alloc(a)
        | Expr::Free(a)
        | Expr::Gcmov(a)
        | Expr::Protect(a, _) => free_vars(a, bound, acc),
        Expr::If(c, t, e2) => {
            free_vars(c, bound, acc);
            free_vars(t, bound, acc);
            free_vars(e2, bound, acc);
        }
        Expr::Match(s, x, l, y, r) => {
            free_vars(s, bound, acc);
            bound.push(x.clone());
            free_vars(l, bound, acc);
            bound.pop();
            bound.push(y.clone());
            free_vars(r, bound, acc);
            bound.pop();
        }
        Expr::Let(x, a, b) => {
            free_vars(a, bound, acc);
            bound.push(x.clone());
            free_vars(b, bound, acc);
            bound.pop();
        }
        Expr::Lam(x, b) => {
            bound.push(x.clone());
            free_vars(b, bound, acc);
            bound.pop();
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Unit => write!(f, "()"),
            Expr::Int(n) => write!(f, "{n}"),
            Expr::Loc(l) => write!(f, "{l}"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Pair(a, b) => write!(f, "({a}, {b})"),
            Expr::Fst(a) => write!(f, "fst {a}"),
            Expr::Snd(a) => write!(f, "snd {a}"),
            Expr::Inl(a) => write!(f, "inl {a}"),
            Expr::Inr(a) => write!(f, "inr {a}"),
            Expr::If(c, t, e) => write!(f, "if {c} {{{t}}} {{{e}}}"),
            Expr::Match(s, x, l, y, r) => write!(f, "match {s} {x}{{{l}}} {y}{{{r}}}"),
            Expr::Let(x, a, b) => write!(f, "let {x} = {a} in {b}"),
            Expr::Lam(x, b) => write!(f, "λ{x}{{{b}}}"),
            Expr::App(a, b) => write!(f, "({a}) ({b})"),
            Expr::Ref(a) => write!(f, "ref {a}"),
            Expr::Deref(a) => write!(f, "!{a}"),
            Expr::Assign(a, b) => write!(f, "{a} := {b}"),
            Expr::Fail(c) => write!(f, "fail {c}"),
            Expr::Prim(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Alloc(a) => write!(f, "alloc {a}"),
            Expr::Free(a) => write!(f, "free {a}"),
            Expr::Gcmov(a) => write!(f, "gcmov {a}"),
            Expr::Callgc => write!(f, "callgc"),
            Expr::Protect(a, fl) => write!(f, "protect({a}, {fl})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_respect_binders() {
        let e = Expr::lam("x", Expr::add(Expr::var("x"), Expr::var("y")));
        let fv = e.free_vars();
        assert!(fv.contains(&Var::new("y")));
        assert!(!fv.contains(&Var::new("x")));
        assert!(!e.is_closed());
        assert!(Expr::lam("x", Expr::var("x")).is_closed());
    }

    #[test]
    fn match_binders_scope_only_their_branch() {
        let e = Expr::match_(
            Expr::inl(Expr::int(1)),
            "a",
            Expr::var("a"),
            "b",
            Expr::var("a"),
        );
        // The second branch's `a` is free: only `b` is bound there.
        assert!(e.free_vars().contains(&Var::new("a")));
    }

    #[test]
    fn erase_protect_removes_wrappers_recursively() {
        let inner = Expr::add(Expr::int(1), Expr::int(2));
        let e = Expr::Protect(
            Arc::new(Expr::pair(
                Expr::Protect(Arc::new(inner.clone()), 7),
                Expr::unit(),
            )),
            3,
        );
        assert_eq!(e.erase_protect(), Expr::pair(inner, Expr::unit()));
    }

    #[test]
    fn bool_literal_encoding_follows_fig8() {
        assert_eq!(Expr::bool_lit(true), Expr::Int(0));
        assert_eq!(Expr::bool_lit(false), Expr::Int(1));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Expr::int(1).size(), 1);
        assert_eq!(Expr::add(Expr::int(1), Expr::int(2)).size(), 3);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::let_("x", Expr::int(1), Expr::add(Expr::var("x"), Expr::int(2)));
        assert_eq!(e.to_string(), "let x = 1 in (x + 2)");
    }
}
