//! The LCVM heap: a single pool of locations holding garbage-collected or
//! manually-managed cells (Fig. 12).
//!
//! The same location names can be used as either GC'd (`ℓ ↦gc v`) or manually
//! managed (`ℓ ↦m v`) and are **re-used** after garbage collection or manual
//! `free` — this re-use is what makes the §5 world-extension relation
//! interesting, so the implementation preserves it faithfully via a free
//! list.
//!
//! # Layout
//!
//! The heap is a `Vec`-backed **slab**: location `ℓi` is index `i`, so
//! allocation is a pointer bump (or a free-list pop), reads and writes are
//! direct indexing, and dangling detection is an index/occupancy check
//! instead of a map lookup.  Freeing a manual cell vacates its slot in
//! place and pushes the location onto the free list; the next allocation
//! pops it (LIFO), which is exactly the re-use order the old map-based heap
//! exhibited.  Each slot carries the **epoch** it was last written in:
//! [`Heap::reset`] just bumps the heap's epoch and rewinds the bump pointer,
//! so a batch-lifetime heap resets in O(1) while retaining its capacity, and
//! slots surviving from a previous epoch read as dangling without ever being
//! scanned.
//!
//! The collector is a simple mark-and-sweep over GC'd cells only; manually
//! managed cells are never collected but are traced (a manual cell keeps the
//! GC'd cells it points to alive).  Mark state lives in a per-heap scratch
//! buffer (a stamp array plus a worklist) that is reused across collections,
//! so a `callgc`-heavy run allocates no transient mark sets.

use crate::value::Value;
use semint_core::ErrorCode;
use std::fmt;

/// A heap location `ℓ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(pub u64);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// How a live cell is managed.
#[derive(Debug, Clone, PartialEq)]
pub enum Slot {
    /// A garbage-collected cell (`ℓ ↦gc v`), created by `ref`.
    Gc(Value),
    /// A manually-managed cell (`ℓ ↦m v`), created by `alloc`.
    Manual(Value),
}

impl Slot {
    /// The stored value, regardless of management discipline.
    pub fn value(&self) -> &Value {
        match self {
            Slot::Gc(v) | Slot::Manual(v) => v,
        }
    }

    /// True for manually-managed cells.
    pub fn is_manual(&self) -> bool {
        matches!(self, Slot::Manual(_))
    }
}

/// Errors raised by heap operations; [`HeapError::code`] maps them onto the
/// target's dynamic error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The location is not currently allocated (freed, collected, or never
    /// allocated).
    Dangling(Loc),
    /// `free` or `gcmov` was applied to a garbage-collected cell.
    NotManual(Loc),
}

impl HeapError {
    /// The dynamic error code the machine raises for this error.
    pub fn code(self) -> ErrorCode {
        ErrorCode::Ptr
    }
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::Dangling(l) => write!(f, "dangling location {l}"),
            HeapError::NotManual(l) => write!(f, "{l} is not manually managed"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Statistics the heap keeps about its own behaviour (used by the E6 / gc
/// pressure experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Number of GC'd allocations performed (`ref`).
    pub gc_allocs: u64,
    /// Number of manual allocations performed (`alloc`).
    pub manual_allocs: u64,
    /// Number of explicit `free`s.
    pub frees: u64,
    /// Number of `gcmov`s.
    pub gcmovs: u64,
    /// Number of collector runs.
    pub gc_runs: u64,
    /// Total number of cells reclaimed by the collector.
    pub collected: u64,
    /// Number of locations re-used from the free list.
    pub reused: u64,
    /// Peak number of simultaneously live cells (GC'd + manual).
    pub peak_live: u64,
}

/// One slab slot: the slot last written at index `i`, tagged with the heap
/// epoch it belongs to.  An entry is live iff its epoch matches the heap's
/// current epoch *and* it holds a slot — vacated (freed/collected) slots
/// keep their epoch but hold `None`.
#[derive(Debug, Clone)]
struct Entry {
    epoch: u64,
    slot: Option<Slot>,
}

/// The LCVM heap.
///
/// Equality compares the *logical* store — live cells in ascending location
/// order, the free list, the bump pointer, and the statistics — so a reset
/// slab with retained capacity is equal to [`Heap::new`], exactly as the old
/// map-based heap was.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    slots: Vec<Entry>,
    free_list: Vec<Loc>,
    /// Lowest never-allocated index of the current epoch (the bump pointer);
    /// every live or vacated current-epoch entry sits below it.
    next: u64,
    epoch: u64,
    live: u64,
    manual_live: u64,
    stats: HeapStats,
    /// Mark scratch for [`Heap::collect`]: `mark[i] == mark_stamp` means
    /// index `i` was marked by the collection in progress.  Reused across
    /// collections; never compared or harvested.
    mark: Vec<u64>,
    mark_stamp: u64,
    worklist: Vec<Loc>,
}

impl PartialEq for Heap {
    fn eq(&self, other: &Heap) -> bool {
        self.next == other.next
            && self.free_list == other.free_list
            && self.stats == other.stats
            && self.live == other.live
            && self.iter().eq(other.iter())
    }
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Clears the heap in place — no live cells, fresh location counter,
    /// zeroed statistics — in O(1): the slab's epoch is bumped and the bump
    /// pointer rewound, so capacity (and the GC scratch buffers) survive
    /// while every stale slot reads as dangling.  A reset heap is
    /// indistinguishable from [`Heap::new`].
    pub fn reset(&mut self) {
        self.epoch += 1;
        self.next = 0;
        self.live = 0;
        self.manual_live = 0;
        self.free_list.clear();
        self.stats = HeapStats::default();
    }

    /// Moves the logical store out into a compact standalone heap — live
    /// cells, free list, bump pointer, statistics — and resets `self` for
    /// the next run.  A batch-lifetime machine hands the harvested heap to
    /// its [`crate::RunResult`] while keeping the slab (and its capacity)
    /// for the rest of the batch; the harvested heap is `==` to the heap
    /// the old move-out design produced.
    pub fn harvest(&mut self) -> Heap {
        let next = self.next as usize;
        let mut slots = Vec::with_capacity(next);
        for entry in self.slots.iter_mut().take(next) {
            slots.push(Entry {
                epoch: 0,
                slot: if entry.epoch == self.epoch {
                    entry.slot.take()
                } else {
                    None
                },
            });
        }
        let harvested = Heap {
            slots,
            free_list: std::mem::take(&mut self.free_list),
            next: self.next,
            epoch: 0,
            live: self.live,
            manual_live: self.manual_live,
            stats: self.stats,
            mark: Vec::new(),
            mark_stamp: 0,
            worklist: Vec::new(),
        };
        self.reset();
        harvested
    }

    /// The slab index of `l` if `l` could name a current-epoch slot.
    #[inline]
    fn index(&self, l: Loc) -> Option<usize> {
        let i = usize::try_from(l.0).ok()?;
        (i < self.next as usize).then_some(i)
    }

    /// The live entry at `l`, if any.
    #[inline]
    fn entry(&self, l: Loc) -> Option<&Slot> {
        let i = self.index(l)?;
        let entry = &self.slots[i];
        if entry.epoch == self.epoch {
            entry.slot.as_ref()
        } else {
            None
        }
    }

    #[inline]
    fn entry_mut(&mut self, l: Loc) -> Option<&mut Slot> {
        let i = self.index(l)?;
        let epoch = self.epoch;
        let entry = &mut self.slots[i];
        if entry.epoch == epoch {
            entry.slot.as_mut()
        } else {
            None
        }
    }

    fn next_loc(&mut self) -> Loc {
        if let Some(l) = self.free_list.pop() {
            self.stats.reused += 1;
            l
        } else {
            let l = Loc(self.next);
            self.next += 1;
            l
        }
    }

    /// Stores `slot` at the (just handed out) location `l`.
    fn place(&mut self, l: Loc, slot: Slot) {
        let i = l.0 as usize;
        let entry = Entry {
            epoch: self.epoch,
            slot: Some(slot),
        };
        if i == self.slots.len() {
            self.slots.push(entry);
        } else {
            self.slots[i] = entry;
        }
    }

    /// Allocates a garbage-collected cell (`ref e`).
    pub fn alloc_gc(&mut self, v: Value) -> Loc {
        let l = self.next_loc();
        self.stats.gc_allocs += 1;
        self.place(l, Slot::Gc(v));
        self.note_live();
        l
    }

    /// Allocates a manually-managed cell (`alloc e`).
    pub fn alloc_manual(&mut self, v: Value) -> Loc {
        let l = self.next_loc();
        self.stats.manual_allocs += 1;
        self.place(l, Slot::Manual(v));
        self.manual_live += 1;
        self.note_live();
        l
    }

    /// Raises the peak-live-cells statistic to the current population.
    fn note_live(&mut self) {
        self.live += 1;
        if self.live > self.stats.peak_live {
            self.stats.peak_live = self.live;
        }
    }

    /// Reads the value stored at `l`.
    pub fn read(&self, l: Loc) -> Result<&Value, HeapError> {
        self.entry(l).map(Slot::value).ok_or(HeapError::Dangling(l))
    }

    /// Writes `v` at `l`, preserving its management discipline.
    pub fn write(&mut self, l: Loc, v: Value) -> Result<(), HeapError> {
        match self.entry_mut(l) {
            Some(Slot::Gc(slot)) | Some(Slot::Manual(slot)) => {
                *slot = v;
                Ok(())
            }
            None => Err(HeapError::Dangling(l)),
        }
    }

    /// Frees a manually-managed cell; fails on GC'd or dangling locations.
    /// The vacated location goes onto the free list for re-use.
    pub fn free(&mut self, l: Loc) -> Result<Value, HeapError> {
        match self.entry(l) {
            Some(Slot::Manual(_)) => {
                let i = l.0 as usize;
                let v = match self.slots[i].slot.take() {
                    Some(Slot::Manual(v)) => v,
                    _ => unreachable!("checked above"),
                };
                self.free_list.push(l);
                self.live -= 1;
                self.manual_live -= 1;
                self.stats.frees += 1;
                Ok(v)
            }
            Some(Slot::Gc(_)) => Err(HeapError::NotManual(l)),
            None => Err(HeapError::Dangling(l)),
        }
    }

    /// Converts a manually-managed cell into a GC'd cell, keeping its
    /// identity and contents (`gcmov e`).
    pub fn gcmov(&mut self, l: Loc) -> Result<(), HeapError> {
        match self.entry(l) {
            Some(Slot::Manual(_)) => {
                let i = l.0 as usize;
                let v = match self.slots[i].slot.take() {
                    Some(Slot::Manual(v)) => v,
                    _ => unreachable!("checked above"),
                };
                self.slots[i].slot = Some(Slot::Gc(v));
                self.manual_live -= 1;
                self.stats.gcmovs += 1;
                Ok(())
            }
            Some(Slot::Gc(_)) => Err(HeapError::NotManual(l)),
            None => Err(HeapError::Dangling(l)),
        }
    }

    /// True if `l` is currently allocated.
    pub fn contains(&self, l: Loc) -> bool {
        self.entry(l).is_some()
    }

    /// The slot at `l`, if allocated (exposes whether it is GC'd or manual).
    pub fn slot(&self, l: Loc) -> Option<&Slot> {
        self.entry(l)
    }

    /// Number of live cells.
    pub fn len(&self) -> usize {
        self.live as usize
    }

    /// True when no cells are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of live manually-managed cells.
    pub fn manual_len(&self) -> usize {
        self.manual_live as usize
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Iterates over live cells in ascending location order.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, &Slot)> {
        let epoch = self.epoch;
        self.slots
            .iter()
            .take(self.next as usize)
            .enumerate()
            .filter_map(move |(i, entry)| {
                if entry.epoch == epoch {
                    entry.slot.as_ref().map(|s| (Loc(i as u64), s))
                } else {
                    None
                }
            })
    }

    /// Runs a mark-and-sweep collection (`callgc`).
    ///
    /// `roots` are the locations directly reachable from the machine state
    /// (environments, continuation frames, pinned locations).  Manual cells
    /// are never reclaimed, but they *are* traced: a GC'd cell referenced
    /// from a live manual cell survives.  Returns the number of reclaimed
    /// cells; reclaimed locations are vacated in place and pushed onto the
    /// free list in ascending order for re-use.
    pub fn collect(&mut self, roots: impl IntoIterator<Item = Loc>) -> usize {
        self.stats.gc_runs += 1;
        let next = self.next as usize;
        self.mark_stamp += 1;
        let stamp = self.mark_stamp;
        if self.mark.len() < next {
            self.mark.resize(next, 0);
        }
        let mut worklist = std::mem::take(&mut self.worklist);
        worklist.clear();
        worklist.extend(roots);
        // Manual cells are unconditional roots: the machine cannot see the
        // "owned heap fragments" the §5 model threads through values, so we
        // conservatively keep everything reachable from manual memory.
        for (i, entry) in self.slots.iter().enumerate().take(next) {
            if entry.epoch == self.epoch && entry.slot.as_ref().is_some_and(Slot::is_manual) {
                worklist.push(Loc(i as u64));
            }
        }
        while let Some(l) = worklist.pop() {
            // Out-of-slab locations (pinned sentinels, stale pointers) have
            // no slot to trace and cannot be swept, so skipping them is the
            // same as the old map's "marked but absent" case.
            let Some(i) = usize::try_from(l.0).ok().filter(|i| *i < next) else {
                continue;
            };
            if self.mark[i] == stamp {
                continue;
            }
            self.mark[i] = stamp;
            let entry = &self.slots[i];
            if entry.epoch == self.epoch {
                if let Some(slot) = &entry.slot {
                    slot.value().collect_locs_into(&mut worklist);
                }
            }
        }
        worklist.clear();
        self.worklist = worklist;
        let mut reclaimed = 0;
        for i in 0..next {
            let entry = &mut self.slots[i];
            if entry.epoch == self.epoch
                && self.mark[i] != stamp
                && entry.slot.as_ref().is_some_and(|s| !s.is_manual())
            {
                entry.slot = None;
                self.free_list.push(Loc(i as u64));
                self.live -= 1;
                reclaimed += 1;
            }
        }
        self.stats.collected += reclaimed;
        reclaimed as usize
    }
}

impl fmt::Display for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (l, s)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match s {
                Slot::Gc(v) => write!(f, "{l} ↦gc {v}")?,
                Slot::Manual(v) => write!(f, "{l} ↦m {v}")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_and_manual_allocation_read_write() {
        let mut h = Heap::new();
        let g = h.alloc_gc(Value::Int(1));
        let m = h.alloc_manual(Value::Int(2));
        assert_eq!(h.read(g).unwrap(), &Value::Int(1));
        assert_eq!(h.read(m).unwrap(), &Value::Int(2));
        h.write(m, Value::Int(5)).unwrap();
        assert_eq!(h.read(m).unwrap(), &Value::Int(5));
        assert_eq!(h.len(), 2);
        assert_eq!(h.manual_len(), 1);
    }

    #[test]
    fn free_only_applies_to_manual_cells() {
        let mut h = Heap::new();
        let g = h.alloc_gc(Value::Int(1));
        let m = h.alloc_manual(Value::Int(2));
        assert_eq!(h.free(g), Err(HeapError::NotManual(g)));
        assert_eq!(h.free(m), Ok(Value::Int(2)));
        assert_eq!(h.read(m), Err(HeapError::Dangling(m)));
        assert_eq!(h.free(m), Err(HeapError::Dangling(m)));
        assert_eq!(h.stats().frees, 1);
    }

    #[test]
    fn freed_locations_are_reused() {
        let mut h = Heap::new();
        let m = h.alloc_manual(Value::Int(2));
        h.free(m).unwrap();
        let m2 = h.alloc_gc(Value::Int(3));
        assert_eq!(m, m2, "the freed location is handed out again");
        assert_eq!(h.stats().reused, 1);
    }

    #[test]
    fn reading_a_reused_location_sees_the_new_cell() {
        // The paper's dangling-pointer hazard: after free + re-allocation a
        // stale pointer to the location observes the *new* cell — location
        // identity is all there is (Fig. 12 re-use).
        let mut h = Heap::new();
        let m = h.alloc_manual(Value::Int(2));
        h.free(m).unwrap();
        let m2 = h.alloc_gc(Value::Int(3));
        assert_eq!(m, m2);
        assert_eq!(h.read(m).unwrap(), &Value::Int(3));
    }

    #[test]
    fn gcmov_turns_manual_into_gc_keeping_identity() {
        let mut h = Heap::new();
        let m = h.alloc_manual(Value::Int(7));
        h.gcmov(m).unwrap();
        assert!(matches!(h.slot(m), Some(Slot::Gc(Value::Int(7)))));
        // A second gcmov (or a free) now fails: it is no longer manual.
        assert_eq!(h.gcmov(m), Err(HeapError::NotManual(m)));
        assert_eq!(h.free(m), Err(HeapError::NotManual(m)));
        assert_eq!(h.manual_len(), 0);
    }

    #[test]
    fn collect_reclaims_unreachable_gc_cells_only() {
        let mut h = Heap::new();
        let live = h.alloc_gc(Value::Int(1));
        let dead = h.alloc_gc(Value::Int(2));
        let manual = h.alloc_manual(Value::Int(3));
        let n = h.collect([live]);
        assert_eq!(n, 1);
        assert!(h.contains(live));
        assert!(!h.contains(dead));
        assert!(h.contains(manual), "manual cells are never collected");
        assert_eq!(h.stats().gc_runs, 1);
        assert_eq!(h.stats().collected, 1);
    }

    #[test]
    fn collect_traces_through_values_and_manual_cells() {
        let mut h = Heap::new();
        let inner = h.alloc_gc(Value::Int(10));
        let outer = h.alloc_gc(Value::Loc(inner));
        let from_manual = h.alloc_gc(Value::Int(20));
        let _manual = h.alloc_manual(Value::Loc(from_manual));
        let unreachable = h.alloc_gc(Value::Int(99));
        let n = h.collect([outer]);
        assert_eq!(n, 1);
        assert!(h.contains(inner), "reachable through a root's value");
        assert!(h.contains(from_manual), "reachable through a manual cell");
        assert!(!h.contains(unreachable));
    }

    #[test]
    fn collect_tolerates_out_of_slab_roots() {
        let mut h = Heap::new();
        let live = h.alloc_gc(Value::Int(1));
        let dead = h.alloc_gc(Value::Int(2));
        // Pinned sentinels (the memgc model uses Loc(u64::MAX)) and stale
        // pointers beyond the slab are ignored, not panics.
        let n = h.collect([live, Loc(u64::MAX), Loc(1_000)]);
        assert_eq!(n, 1);
        assert!(h.contains(live));
        assert!(!h.contains(dead));
    }

    #[test]
    fn reset_heaps_are_indistinguishable_from_fresh_ones() {
        let mut h = Heap::new();
        let g = h.alloc_gc(Value::Int(1));
        let m = h.alloc_manual(Value::Int(2));
        h.free(m).unwrap();
        h.collect([g]);
        h.reset();
        assert_eq!(h, Heap::new(), "reset state equals a fresh heap");
        // Allocation after reset restarts at ℓ0 with zeroed statistics, as
        // on a fresh heap — no stale free-list entry is handed out.
        let l = h.alloc_gc(Value::Int(9));
        assert_eq!(l, Loc(0));
        assert_eq!(h.stats().reused, 0);
        assert_eq!(h.stats().gc_allocs, 1);
    }

    #[test]
    fn stale_slots_from_previous_epochs_read_as_dangling() {
        let mut h = Heap::new();
        h.alloc_gc(Value::Int(1));
        let stale = h.alloc_gc(Value::Int(2));
        h.reset();
        // ℓ0 is re-populated this epoch; ℓ1 survives only as slab capacity.
        let l = h.alloc_gc(Value::Int(9));
        assert_eq!(l, Loc(0));
        assert_eq!(h.read(stale), Err(HeapError::Dangling(stale)));
        assert!(!h.contains(stale));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn harvest_moves_the_logical_store_and_rearms_the_slab() {
        let mut h = Heap::new();
        let g = h.alloc_gc(Value::Int(1));
        let m = h.alloc_manual(Value::Int(2));
        let f = h.alloc_manual(Value::Int(3));
        h.free(f).unwrap();
        let mut reference = Heap::new();
        let rg = reference.alloc_gc(Value::Int(1));
        let rm = reference.alloc_manual(Value::Int(2));
        let rf = reference.alloc_manual(Value::Int(3));
        reference.free(rf).unwrap();
        assert_eq!((g, m), (rg, rm));
        let harvested = h.harvest();
        assert_eq!(harvested, reference, "harvest preserves the logical heap");
        assert_eq!(harvested.read(g).unwrap(), &Value::Int(1));
        assert_eq!(harvested.stats().frees, 1);
        assert_eq!(h, Heap::new(), "the slab is re-armed, logically fresh");
        let l = h.alloc_gc(Value::Int(9));
        assert_eq!(l, Loc(0), "allocation restarts at ℓ0 with no stale reuse");
        assert_eq!(h.stats().reused, 0);
    }

    #[test]
    fn peak_live_tracks_the_high_water_mark_not_the_current_population() {
        let mut h = Heap::new();
        let a = h.alloc_manual(Value::Int(1));
        let b = h.alloc_manual(Value::Int(2));
        h.free(a).unwrap();
        h.free(b).unwrap();
        assert_eq!(h.len(), 0);
        assert_eq!(h.stats().peak_live, 2);
        // Re-allocating one cell does not disturb the recorded peak.
        h.alloc_gc(Value::Int(3));
        assert_eq!(h.stats().peak_live, 2);
    }

    #[test]
    fn dangling_errors_map_to_ptr() {
        assert_eq!(HeapError::Dangling(Loc(0)).code(), ErrorCode::Ptr);
        assert_eq!(HeapError::NotManual(Loc(0)).code(), ErrorCode::Ptr);
    }

    #[test]
    fn display_shows_management_discipline() {
        let mut h = Heap::new();
        h.alloc_gc(Value::Int(1));
        h.alloc_manual(Value::Int(2));
        let s = h.to_string();
        assert!(s.contains("↦gc"));
        assert!(s.contains("↦m"));
    }
}
