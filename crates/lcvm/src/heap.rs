//! The LCVM heap: a single pool of locations holding garbage-collected or
//! manually-managed cells (Fig. 12).
//!
//! The same location names can be used as either GC'd (`ℓ ↦gc v`) or manually
//! managed (`ℓ ↦m v`) and are **re-used** after garbage collection or manual
//! `free` — this re-use is what makes the §5 world-extension relation
//! interesting, so the implementation preserves it faithfully via a free
//! list.
//!
//! The collector is a simple mark-and-sweep over GC'd cells only; manually
//! managed cells are never collected but are traced (a manual cell keeps the
//! GC'd cells it points to alive).

use crate::value::Value;
use semint_core::ErrorCode;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A heap location `ℓ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(pub u64);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// How a live cell is managed.
#[derive(Debug, Clone, PartialEq)]
pub enum Slot {
    /// A garbage-collected cell (`ℓ ↦gc v`), created by `ref`.
    Gc(Value),
    /// A manually-managed cell (`ℓ ↦m v`), created by `alloc`.
    Manual(Value),
}

impl Slot {
    /// The stored value, regardless of management discipline.
    pub fn value(&self) -> &Value {
        match self {
            Slot::Gc(v) | Slot::Manual(v) => v,
        }
    }

    /// True for manually-managed cells.
    pub fn is_manual(&self) -> bool {
        matches!(self, Slot::Manual(_))
    }
}

/// Errors raised by heap operations; [`HeapError::code`] maps them onto the
/// target's dynamic error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The location is not currently allocated (freed, collected, or never
    /// allocated).
    Dangling(Loc),
    /// `free` or `gcmov` was applied to a garbage-collected cell.
    NotManual(Loc),
}

impl HeapError {
    /// The dynamic error code the machine raises for this error.
    pub fn code(self) -> ErrorCode {
        ErrorCode::Ptr
    }
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::Dangling(l) => write!(f, "dangling location {l}"),
            HeapError::NotManual(l) => write!(f, "{l} is not manually managed"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Statistics the heap keeps about its own behaviour (used by the E6 / gc
/// pressure experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Number of GC'd allocations performed (`ref`).
    pub gc_allocs: u64,
    /// Number of manual allocations performed (`alloc`).
    pub manual_allocs: u64,
    /// Number of explicit `free`s.
    pub frees: u64,
    /// Number of `gcmov`s.
    pub gcmovs: u64,
    /// Number of collector runs.
    pub gc_runs: u64,
    /// Total number of cells reclaimed by the collector.
    pub collected: u64,
    /// Number of locations re-used from the free list.
    pub reused: u64,
    /// Peak number of simultaneously live cells (GC'd + manual).
    pub peak_live: u64,
}

/// The LCVM heap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Heap {
    slots: BTreeMap<Loc, Slot>,
    free_list: Vec<Loc>,
    next: u64,
    stats: HeapStats,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Clears the heap in place — no live cells, fresh location counter,
    /// zeroed statistics — retaining the free list's buffer for callers
    /// that reset a heap they keep holding.  (A reused machine's heap moves
    /// into each run's [`crate::RunResult`], so there this mostly re-arms
    /// an already-empty heap.)  A reset heap is indistinguishable from
    /// [`Heap::new`].
    pub fn reset(&mut self) {
        self.slots.clear();
        self.free_list.clear();
        self.next = 0;
        self.stats = HeapStats::default();
    }

    fn next_loc(&mut self) -> Loc {
        if let Some(l) = self.free_list.pop() {
            self.stats.reused += 1;
            l
        } else {
            let l = Loc(self.next);
            self.next += 1;
            l
        }
    }

    /// Allocates a garbage-collected cell (`ref e`).
    pub fn alloc_gc(&mut self, v: Value) -> Loc {
        let l = self.next_loc();
        self.stats.gc_allocs += 1;
        self.slots.insert(l, Slot::Gc(v));
        self.note_live();
        l
    }

    /// Allocates a manually-managed cell (`alloc e`).
    pub fn alloc_manual(&mut self, v: Value) -> Loc {
        let l = self.next_loc();
        self.stats.manual_allocs += 1;
        self.slots.insert(l, Slot::Manual(v));
        self.note_live();
        l
    }

    /// Raises the peak-live-cells statistic to the current population.
    fn note_live(&mut self) {
        let live = self.slots.len() as u64;
        if live > self.stats.peak_live {
            self.stats.peak_live = live;
        }
    }

    /// Reads the value stored at `l`.
    pub fn read(&self, l: Loc) -> Result<&Value, HeapError> {
        self.slots
            .get(&l)
            .map(Slot::value)
            .ok_or(HeapError::Dangling(l))
    }

    /// Writes `v` at `l`, preserving its management discipline.
    pub fn write(&mut self, l: Loc, v: Value) -> Result<(), HeapError> {
        match self.slots.get_mut(&l) {
            Some(Slot::Gc(slot)) | Some(Slot::Manual(slot)) => {
                *slot = v;
                Ok(())
            }
            None => Err(HeapError::Dangling(l)),
        }
    }

    /// Frees a manually-managed cell; fails on GC'd or dangling locations.
    pub fn free(&mut self, l: Loc) -> Result<Value, HeapError> {
        match self.slots.get(&l) {
            Some(Slot::Manual(_)) => {
                let v = match self.slots.remove(&l) {
                    Some(Slot::Manual(v)) => v,
                    _ => unreachable!("checked above"),
                };
                self.free_list.push(l);
                self.stats.frees += 1;
                Ok(v)
            }
            Some(Slot::Gc(_)) => Err(HeapError::NotManual(l)),
            None => Err(HeapError::Dangling(l)),
        }
    }

    /// Converts a manually-managed cell into a GC'd cell, keeping its
    /// identity and contents (`gcmov e`).
    pub fn gcmov(&mut self, l: Loc) -> Result<(), HeapError> {
        match self.slots.get(&l) {
            Some(Slot::Manual(_)) => {
                let v = match self.slots.remove(&l) {
                    Some(Slot::Manual(v)) => v,
                    _ => unreachable!("checked above"),
                };
                self.slots.insert(l, Slot::Gc(v));
                self.stats.gcmovs += 1;
                Ok(())
            }
            Some(Slot::Gc(_)) => Err(HeapError::NotManual(l)),
            None => Err(HeapError::Dangling(l)),
        }
    }

    /// True if `l` is currently allocated.
    pub fn contains(&self, l: Loc) -> bool {
        self.slots.contains_key(&l)
    }

    /// The slot at `l`, if allocated (exposes whether it is GC'd or manual).
    pub fn slot(&self, l: Loc) -> Option<&Slot> {
        self.slots.get(&l)
    }

    /// Number of live cells.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no cells are live.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of live manually-managed cells.
    pub fn manual_len(&self) -> usize {
        self.slots.values().filter(|s| s.is_manual()).count()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Iterates over live cells.
    pub fn iter(&self) -> impl Iterator<Item = (&Loc, &Slot)> {
        self.slots.iter()
    }

    /// Runs a mark-and-sweep collection (`callgc`).
    ///
    /// `roots` are the locations directly reachable from the machine state
    /// (environments, continuation frames, pinned locations).  Manual cells
    /// are never reclaimed, but they *are* traced: a GC'd cell referenced
    /// from a live manual cell survives.  Returns the number of reclaimed
    /// cells; reclaimed locations go onto the free list for re-use.
    pub fn collect(&mut self, roots: impl IntoIterator<Item = Loc>) -> usize {
        self.stats.gc_runs += 1;
        let mut marked: BTreeSet<Loc> = BTreeSet::new();
        let mut worklist: Vec<Loc> = roots.into_iter().collect();
        // Manual cells are unconditional roots: the machine cannot see the
        // "owned heap fragments" the §5 model threads through values, so we
        // conservatively keep everything reachable from manual memory.
        worklist.extend(
            self.slots
                .iter()
                .filter(|(_, s)| s.is_manual())
                .map(|(l, _)| *l),
        );
        while let Some(l) = worklist.pop() {
            if !marked.insert(l) {
                continue;
            }
            if let Some(slot) = self.slots.get(&l) {
                let mut out = BTreeSet::new();
                slot.value().collect_locs(&mut out);
                worklist.extend(out);
            }
        }
        let dead: Vec<Loc> = self
            .slots
            .iter()
            .filter(|(l, s)| !s.is_manual() && !marked.contains(l))
            .map(|(l, _)| *l)
            .collect();
        for l in &dead {
            self.slots.remove(l);
            self.free_list.push(*l);
        }
        self.stats.collected += dead.len() as u64;
        dead.len()
    }
}

impl fmt::Display for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (l, s)) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match s {
                Slot::Gc(v) => write!(f, "{l} ↦gc {v}")?,
                Slot::Manual(v) => write!(f, "{l} ↦m {v}")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_and_manual_allocation_read_write() {
        let mut h = Heap::new();
        let g = h.alloc_gc(Value::Int(1));
        let m = h.alloc_manual(Value::Int(2));
        assert_eq!(h.read(g).unwrap(), &Value::Int(1));
        assert_eq!(h.read(m).unwrap(), &Value::Int(2));
        h.write(m, Value::Int(5)).unwrap();
        assert_eq!(h.read(m).unwrap(), &Value::Int(5));
        assert_eq!(h.len(), 2);
        assert_eq!(h.manual_len(), 1);
    }

    #[test]
    fn free_only_applies_to_manual_cells() {
        let mut h = Heap::new();
        let g = h.alloc_gc(Value::Int(1));
        let m = h.alloc_manual(Value::Int(2));
        assert_eq!(h.free(g), Err(HeapError::NotManual(g)));
        assert_eq!(h.free(m), Ok(Value::Int(2)));
        assert_eq!(h.read(m), Err(HeapError::Dangling(m)));
        assert_eq!(h.free(m), Err(HeapError::Dangling(m)));
        assert_eq!(h.stats().frees, 1);
    }

    #[test]
    fn freed_locations_are_reused() {
        let mut h = Heap::new();
        let m = h.alloc_manual(Value::Int(2));
        h.free(m).unwrap();
        let m2 = h.alloc_gc(Value::Int(3));
        assert_eq!(m, m2, "the freed location is handed out again");
        assert_eq!(h.stats().reused, 1);
    }

    #[test]
    fn gcmov_turns_manual_into_gc_keeping_identity() {
        let mut h = Heap::new();
        let m = h.alloc_manual(Value::Int(7));
        h.gcmov(m).unwrap();
        assert!(matches!(h.slot(m), Some(Slot::Gc(Value::Int(7)))));
        // A second gcmov (or a free) now fails: it is no longer manual.
        assert_eq!(h.gcmov(m), Err(HeapError::NotManual(m)));
        assert_eq!(h.free(m), Err(HeapError::NotManual(m)));
    }

    #[test]
    fn collect_reclaims_unreachable_gc_cells_only() {
        let mut h = Heap::new();
        let live = h.alloc_gc(Value::Int(1));
        let dead = h.alloc_gc(Value::Int(2));
        let manual = h.alloc_manual(Value::Int(3));
        let n = h.collect([live]);
        assert_eq!(n, 1);
        assert!(h.contains(live));
        assert!(!h.contains(dead));
        assert!(h.contains(manual), "manual cells are never collected");
        assert_eq!(h.stats().gc_runs, 1);
        assert_eq!(h.stats().collected, 1);
    }

    #[test]
    fn collect_traces_through_values_and_manual_cells() {
        let mut h = Heap::new();
        let inner = h.alloc_gc(Value::Int(10));
        let outer = h.alloc_gc(Value::Loc(inner));
        let from_manual = h.alloc_gc(Value::Int(20));
        let _manual = h.alloc_manual(Value::Loc(from_manual));
        let unreachable = h.alloc_gc(Value::Int(99));
        let n = h.collect([outer]);
        assert_eq!(n, 1);
        assert!(h.contains(inner), "reachable through a root's value");
        assert!(h.contains(from_manual), "reachable through a manual cell");
        assert!(!h.contains(unreachable));
    }

    #[test]
    fn reset_heaps_are_indistinguishable_from_fresh_ones() {
        let mut h = Heap::new();
        let g = h.alloc_gc(Value::Int(1));
        let m = h.alloc_manual(Value::Int(2));
        h.free(m).unwrap();
        h.collect([g]);
        h.reset();
        assert_eq!(h, Heap::new(), "reset state equals a fresh heap");
        // Allocation after reset restarts at ℓ0 with zeroed statistics, as
        // on a fresh heap — no stale free-list entry is handed out.
        let l = h.alloc_gc(Value::Int(9));
        assert_eq!(l, Loc(0));
        assert_eq!(h.stats().reused, 0);
        assert_eq!(h.stats().gc_allocs, 1);
    }

    #[test]
    fn peak_live_tracks_the_high_water_mark_not_the_current_population() {
        let mut h = Heap::new();
        let a = h.alloc_manual(Value::Int(1));
        let b = h.alloc_manual(Value::Int(2));
        h.free(a).unwrap();
        h.free(b).unwrap();
        assert_eq!(h.len(), 0);
        assert_eq!(h.stats().peak_live, 2);
        // Re-allocating one cell does not disturb the recorded peak.
        h.alloc_gc(Value::Int(3));
        assert_eq!(h.stats().peak_live, 2);
    }

    #[test]
    fn dangling_errors_map_to_ptr() {
        assert_eq!(HeapError::Dangling(Loc(0)).code(), ErrorCode::Ptr);
        assert_eq!(HeapError::NotManual(Loc(0)).code(), ErrorCode::Ptr);
    }

    #[test]
    fn display_shows_management_discipline() {
        let mut h = Heap::new();
        h.alloc_gc(Value::Int(1));
        h.alloc_manual(Value::Int(2));
        let s = h.to_string();
        assert!(s.contains("↦gc"));
        assert!(s.contains("↦m"));
    }
}
