//! LCVM runtime values and environments.
//!
//! The paper presents LCVM with substitution (`[x ↦ v]e`); the machine here
//! uses environments and closures instead, which is observationally
//! equivalent and lets the garbage collector enumerate its roots precisely
//! (every live value is either in the current environment, in a continuation
//! frame, or in the heap).

use crate::heap::Loc;
use crate::phantom::FlagId;
use crate::syntax::Expr;
use semint_core::Var;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// LCVM runtime values.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `()`.
    Unit,
    /// An integer (recall 0 encodes true).
    Int(i64),
    /// A heap location (GC'd or manual).
    Loc(Loc),
    /// A pair of values.
    Pair(Box<Value>, Box<Value>),
    /// A left injection.
    Inl(Box<Value>),
    /// A right injection.
    Inr(Box<Value>),
    /// A function closure.
    Closure {
        /// The parameter.
        param: Var,
        /// The body, shared so cloning closures is cheap.
        body: Arc<Expr>,
        /// The captured environment.
        env: Env,
    },
    /// A value protected by a phantom flag — **augmented semantics only**
    /// (§4). Forcing it (by looking up the variable it is bound to) consumes
    /// the flag; a second forcing makes the augmented machine stuck.
    Protected(Box<Value>, FlagId),
}

impl Value {
    /// The integer carried by an `Int`, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The location carried by a `Loc`, if any.
    pub fn as_loc(&self) -> Option<Loc> {
        match self {
            Value::Loc(l) => Some(*l),
            _ => None,
        }
    }

    /// Interprets the value as a compiled boolean (0 = true).
    pub fn as_bool(&self) -> Option<bool> {
        self.as_int().map(|n| n == 0)
    }

    /// The pair components, if the value is a pair.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// True for values with no internal structure pointing at the heap.
    pub fn is_heap_free(&self) -> bool {
        let mut locs = BTreeSet::new();
        self.collect_locs(&mut locs);
        locs.is_empty()
    }

    /// Collects every heap location reachable from this value (through pairs,
    /// sums, closures' environments and protected wrappers).
    pub fn collect_locs(&self, acc: &mut BTreeSet<Loc>) {
        match self {
            Value::Unit | Value::Int(_) => {}
            Value::Loc(l) => {
                acc.insert(*l);
            }
            Value::Pair(a, b) => {
                a.collect_locs(acc);
                b.collect_locs(acc);
            }
            Value::Inl(v) | Value::Inr(v) | Value::Protected(v, _) => v.collect_locs(acc),
            Value::Closure { env, .. } => env.collect_locs(acc),
        }
    }

    /// Pushes every heap location reachable from this value onto `acc`, with
    /// duplicates.  The allocation-free variant of [`Value::collect_locs`]
    /// used on GC hot paths (the collector's own mark stamps deduplicate).
    pub fn collect_locs_into(&self, acc: &mut Vec<Loc>) {
        match self {
            Value::Unit | Value::Int(_) => {}
            Value::Loc(l) => acc.push(*l),
            Value::Pair(a, b) => {
                a.collect_locs_into(acc);
                b.collect_locs_into(acc);
            }
            Value::Inl(v) | Value::Inr(v) | Value::Protected(v, _) => v.collect_locs_into(acc),
            Value::Closure { env, .. } => env.collect_locs_into(acc),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Loc(l) => write!(f, "{l}"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::Inl(v) => write!(f, "inl {v}"),
            Value::Inr(v) => write!(f, "inr {v}"),
            Value::Closure { param, .. } => write!(f, "λ{param}{{…}}"),
            Value::Protected(v, fl) => write!(f, "protect({v}, {fl})"),
        }
    }
}

/// A persistent environment mapping variables to values.
///
/// Extension is O(1) and shares the tail, which keeps closure capture cheap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Env(Option<Arc<EnvNode>>);

#[derive(Debug, PartialEq)]
struct EnvNode {
    var: Var,
    val: Value,
    parent: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extends the environment with `var ↦ val` (shadowing any previous
    /// binding of `var`).
    pub fn extend(&self, var: Var, val: Value) -> Env {
        Env(Some(Arc::new(EnvNode {
            var,
            val,
            parent: self.clone(),
        })))
    }

    /// Looks a variable up.
    pub fn lookup(&self, var: &Var) -> Option<&Value> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &node.var == var {
                return Some(&node.val);
            }
            cur = &node.parent;
        }
        None
    }

    /// True if the environment has no bindings.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Number of (possibly shadowed) bindings.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Some(node) = &cur.0 {
            n += 1;
            cur = &node.parent;
        }
        n
    }

    /// Collects every heap location reachable from the environment.
    pub fn collect_locs(&self, acc: &mut BTreeSet<Loc>) {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            node.val.collect_locs(acc);
            cur = &node.parent;
        }
    }

    /// Pushes every heap location reachable from the environment onto `acc`,
    /// with duplicates (see [`Value::collect_locs_into`]).
    pub fn collect_locs_into(&self, acc: &mut Vec<Loc>) {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            node.val.collect_locs_into(acc);
            cur = &node.parent;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_lookup_and_shadowing() {
        let env = Env::empty()
            .extend(Var::new("x"), Value::Int(1))
            .extend(Var::new("y"), Value::Int(2))
            .extend(Var::new("x"), Value::Int(3));
        assert_eq!(env.lookup(&Var::new("x")), Some(&Value::Int(3)));
        assert_eq!(env.lookup(&Var::new("y")), Some(&Value::Int(2)));
        assert_eq!(env.lookup(&Var::new("z")), None);
        assert_eq!(env.len(), 3);
        assert!(!env.is_empty());
        assert!(Env::empty().is_empty());
    }

    #[test]
    fn extension_does_not_mutate_the_original() {
        let base = Env::empty().extend(Var::new("x"), Value::Int(1));
        let _ext = base.extend(Var::new("x"), Value::Int(2));
        assert_eq!(base.lookup(&Var::new("x")), Some(&Value::Int(1)));
    }

    #[test]
    fn loc_collection_traverses_structure() {
        let v = Value::Pair(
            Box::new(Value::Loc(Loc(3))),
            Box::new(Value::Inl(Box::new(Value::Loc(Loc(5))))),
        );
        let mut locs = BTreeSet::new();
        v.collect_locs(&mut locs);
        assert_eq!(locs, BTreeSet::from([Loc(3), Loc(5)]));
        assert!(!v.is_heap_free());
        assert!(Value::Int(0).is_heap_free());
    }

    #[test]
    fn closure_roots_include_captured_environment() {
        let env = Env::empty().extend(Var::new("r"), Value::Loc(Loc(9)));
        let clo = Value::Closure {
            param: Var::new("x"),
            body: Arc::new(Expr::unit()),
            env,
        };
        let mut locs = BTreeSet::new();
        clo.collect_locs(&mut locs);
        assert!(locs.contains(&Loc(9)));
    }

    #[test]
    fn bool_view_follows_compiled_encoding() {
        assert_eq!(Value::Int(0).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), Some(false));
        assert_eq!(Value::Int(7).as_bool(), Some(false));
        assert_eq!(Value::Unit.as_bool(), None);
    }
}
