//! The LCVM abstract machine.
//!
//! A CEK-style machine: the state is a control (an expression under an
//! environment, or a value being returned), a continuation stack of frames, a
//! heap and — in augmented mode — a phantom flag store.  One transition of
//! this machine counts as one step for the purposes of the executable
//! step-indexed models.
//!
//! The paper's `⟨H, e⟩ → ⟨H', e'⟩` substitution semantics and this machine
//! agree on observable outcomes (final values up to closure representation,
//! failure codes, divergence); the machine additionally exposes precise GC
//! roots and step counts.

use crate::heap::{Heap, Loc};
use crate::phantom::{PhantomConfig, PhantomState};
use crate::syntax::{Expr, PrimOp};
use crate::value::{Env, Value};
use semint_core::{ErrorCode, Fuel, OpClass, Var, VmCounters};
use std::collections::BTreeSet;
use std::sync::Arc;

/// How a run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Halt {
    /// Terminated with a value.
    Value(Value),
    /// Terminated with a dynamic error `fail c`.
    Fail(ErrorCode),
    /// The fuel budget was exhausted.
    OutOfFuel,
    /// **Augmented semantics only**: a `protect`ed value was forced after its
    /// phantom flag had been consumed.  The standard semantics has no such
    /// state; the logical relation excludes programs that reach it.
    PhantomStuck {
        /// The flag that was no longer available.
        flag: crate::phantom::FlagId,
    },
}

impl Halt {
    /// The final value, if the run produced one.
    pub fn value(self) -> Option<Value> {
        match self {
            Halt::Value(v) => Some(v),
            _ => None,
        }
    }

    /// A reference to the final value, if any.
    pub fn value_ref(&self) -> Option<&Value> {
        match self {
            Halt::Value(v) => Some(v),
            _ => None,
        }
    }

    /// True if the run produced a value.
    pub fn is_value(&self) -> bool {
        matches!(self, Halt::Value(_))
    }

    /// True if the halt is permitted by semantic type safety: values, benign
    /// failures and out-of-fuel are fine; `fail Type` and phantom-stuck are
    /// not.
    pub fn is_safe(&self) -> bool {
        match self {
            Halt::Value(_) | Halt::OutOfFuel => true,
            Halt::Fail(c) => c.is_benign(),
            Halt::PhantomStuck { .. } => false,
        }
    }

    /// True if the halt is `fail code`.
    pub fn is_fail_with(&self, code: ErrorCode) -> bool {
        matches!(self, Halt::Fail(c) if *c == code)
    }
}

/// The result of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// How the machine halted.
    pub halt: Halt,
    /// The final heap.
    pub heap: Heap,
    /// Number of machine steps taken.
    pub steps: u64,
    /// Number of phantom flags consumed (0 outside augmented mode).
    pub flags_consumed: u64,
    /// Deterministic per-run telemetry: instructions retired by opcode
    /// class, allocation totals, and high-water marks.
    pub counters: VmCounters,
}

/// Static configuration of a machine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineConfig {
    /// Enables the augmented (phantom-flag) semantics of §4.
    pub phantom: Option<PhantomConfig>,
    /// Locations the garbage collector must treat as live even if they are
    /// not reachable from the machine state (the §5 model's pinned set `L`).
    pub pinned: BTreeSet<Loc>,
}

/// Continuation frames.
///
/// Pending expressions are held as [`Arc<Expr>`] — the same shared nodes the
/// program AST is built from — so pushing a frame is a reference-count bump,
/// never a copy of the subtree.
#[derive(Debug, Clone)]
enum Frame {
    PairL(Arc<Expr>, Env),
    PairR(Value),
    Fst,
    Snd,
    InlK,
    InrK,
    IfK(Arc<Expr>, Arc<Expr>, Env),
    MatchK(Var, Arc<Expr>, Var, Arc<Expr>, Env),
    LetK(Var, Arc<Expr>, Env),
    AppL(Arc<Expr>, Env),
    AppR(Value),
    RefK,
    DerefK,
    AssignL(Arc<Expr>, Env),
    AssignR(Loc),
    PrimL(PrimOp, Arc<Expr>, Env),
    PrimR(PrimOp, Value),
    AllocK,
    FreeK,
    GcmovK,
}

#[derive(Debug, Clone)]
enum Control {
    Eval(Arc<Expr>, Env),
    Return(Value),
}

/// The LCVM machine.
#[derive(Debug, Clone)]
pub struct Machine {
    heap: Heap,
    control: Control,
    kont: Vec<Frame>,
    config: MachineConfig,
    phantom: PhantomState,
    steps: u64,
    counters: VmCounters,
    halted: Option<Halt>,
}

impl Machine {
    /// A machine evaluating `expr` in the empty environment and empty heap.
    pub fn new(expr: Expr) -> Machine {
        Machine::with_config(expr, MachineConfig::default())
    }

    /// A machine with an explicit configuration.
    pub fn with_config(expr: Expr, config: MachineConfig) -> Machine {
        Machine::with_state(Heap::new(), Env::empty(), expr, config)
    }

    /// A machine starting from an explicit heap and environment — used by the
    /// executable models, which need to run expressions against heaps that
    /// satisfy a given world.
    pub fn with_state(heap: Heap, env: Env, expr: Expr, config: MachineConfig) -> Machine {
        Machine {
            heap,
            control: Control::Eval(Arc::new(expr), env),
            kont: Vec::new(),
            config,
            phantom: PhantomState::new(),
            steps: 0,
            counters: VmCounters::new(),
            halted: None,
        }
    }

    /// Rearms the machine to evaluate `expr` from the empty configuration,
    /// clearing the heap, environment, continuation stack and phantom state
    /// **in place**.  The continuation stack's buffer and the heap slab both
    /// keep the capacity their previous runs grew — the retained allocations
    /// a batch of compiled artifacts shares by reusing one machine (each
    /// run's final *heap* is harvested into its [`RunResult`], so heaps
    /// start over logically while the slab's storage stays; see
    /// [`Machine::run_mut`]).  The static [`MachineConfig`] is retained.
    ///
    /// A reset machine is observationally identical to
    /// [`Machine::with_config`] on the same expression and configuration —
    /// same halt, same final heap, same step count — which the unit tests
    /// below and the `batched_execution` integration suite assert.
    pub fn reset(&mut self, expr: Expr) {
        self.heap.reset();
        self.kont.clear();
        self.control = Control::Eval(Arc::new(expr), Env::empty());
        self.phantom = PhantomState::new();
        self.steps = 0;
        self.counters = VmCounters::new();
        self.halted = None;
    }

    /// The heap (useful mid-run in tests).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// True if the machine can take no further step.
    pub fn is_terminal(&self) -> bool {
        self.halted.is_some()
            || matches!(
                (&self.control, self.kont.is_empty()),
                (Control::Return(_), true)
            )
    }

    fn fail(&mut self, code: ErrorCode) {
        self.halted = Some(Halt::Fail(code));
    }

    fn heap_roots(&self) -> BTreeSet<Loc> {
        let mut roots = self.config.pinned.clone();
        match &self.control {
            Control::Eval(e, env) => {
                env.collect_locs(&mut roots);
                collect_expr_locs(e, &mut roots);
            }
            Control::Return(v) => v.collect_locs(&mut roots),
        }
        for frame in &self.kont {
            match frame {
                Frame::PairL(e, env)
                | Frame::AppL(e, env)
                | Frame::AssignL(e, env)
                | Frame::PrimL(_, e, env) => {
                    env.collect_locs(&mut roots);
                    collect_expr_locs(e, &mut roots);
                }
                Frame::IfK(e1, e2, env) => {
                    env.collect_locs(&mut roots);
                    collect_expr_locs(e1, &mut roots);
                    collect_expr_locs(e2, &mut roots);
                }
                Frame::MatchK(_, e1, _, e2, env) => {
                    env.collect_locs(&mut roots);
                    collect_expr_locs(e1, &mut roots);
                    collect_expr_locs(e2, &mut roots);
                }
                Frame::LetK(_, e1, env) => {
                    env.collect_locs(&mut roots);
                    collect_expr_locs(e1, &mut roots);
                }
                Frame::PairR(v) | Frame::AppR(v) | Frame::PrimR(_, v) => v.collect_locs(&mut roots),
                Frame::AssignR(l) => {
                    roots.insert(*l);
                }
                Frame::Fst
                | Frame::Snd
                | Frame::InlK
                | Frame::InrK
                | Frame::RefK
                | Frame::DerefK
                | Frame::AllocK
                | Frame::FreeK
                | Frame::GcmovK => {}
            }
        }
        roots
    }

    /// Binds `x ↦ v` in `env`, applying the augmented semantics' protection
    /// rule when `x` is a static affine binder.
    ///
    /// The wildcard `_` is not bound at all: under the paper's substitution
    /// semantics `let _ = e1 in e2` discards the value, so keeping it in an
    /// environment would make garbage collection needlessly conservative.
    fn bind(&mut self, env: &Env, x: Var, v: Value) -> Env {
        if x.as_str() == "_" {
            return env.clone();
        }
        if let Some(cfg) = &self.config.phantom {
            if cfg.protects(&x) {
                let f = self.phantom.mint();
                return env.extend(x, Value::Protected(Box::new(v), f));
            }
        }
        env.extend(x, v)
    }

    /// Performs one machine step.
    pub fn step(&mut self) {
        if self.is_terminal() {
            return;
        }
        self.steps += 1;
        let control = std::mem::replace(&mut self.control, Control::Return(Value::Unit));
        match control {
            Control::Eval(e, env) => {
                self.counters.retire(classify_expr(&e));
                self.step_eval(e, env);
            }
            Control::Return(v) => {
                // A non-terminal return step always has a frame to consume;
                // the retired instruction is classified by that frame.
                if let Some(frame) = self.kont.last() {
                    self.counters.retire(classify_frame(frame));
                }
                self.step_return(v);
            }
        }
        self.counters.note_stack_depth(self.kont.len());
    }

    fn step_eval(&mut self, e: Arc<Expr>, env: Env) {
        // Matching through the `Arc` means every child handed to a frame or
        // the next control is a reference-count bump, never a subtree copy.
        match &*e {
            Expr::Unit => self.control = Control::Return(Value::Unit),
            Expr::Int(n) => self.control = Control::Return(Value::Int(*n)),
            Expr::Loc(l) => self.control = Control::Return(Value::Loc(*l)),
            Expr::Var(x) => match env.lookup(x) {
                Some(Value::Protected(inner, f)) => {
                    // Augmented semantics: forcing a protected value consumes
                    // its phantom flag; a missing flag means the variable was
                    // already used and the machine is stuck.
                    let inner = (**inner).clone();
                    let f = *f;
                    if self.phantom.consume(f) {
                        self.control = Control::Return(inner);
                    } else {
                        self.halted = Some(Halt::PhantomStuck { flag: f });
                    }
                }
                Some(v) => self.control = Control::Return(v.clone()),
                None => self.fail(ErrorCode::Type),
            },
            Expr::Pair(e1, e2) => {
                self.kont.push(Frame::PairL(e2.clone(), env.clone()));
                self.control = Control::Eval(e1.clone(), env);
            }
            Expr::Fst(e1) => {
                self.kont.push(Frame::Fst);
                self.control = Control::Eval(e1.clone(), env);
            }
            Expr::Snd(e1) => {
                self.kont.push(Frame::Snd);
                self.control = Control::Eval(e1.clone(), env);
            }
            Expr::Inl(e1) => {
                self.kont.push(Frame::InlK);
                self.control = Control::Eval(e1.clone(), env);
            }
            Expr::Inr(e1) => {
                self.kont.push(Frame::InrK);
                self.control = Control::Eval(e1.clone(), env);
            }
            Expr::If(c, t, f) => {
                self.kont
                    .push(Frame::IfK(t.clone(), f.clone(), env.clone()));
                self.control = Control::Eval(c.clone(), env);
            }
            Expr::Match(s, x, l, y, r) => {
                self.kont.push(Frame::MatchK(
                    x.clone(),
                    l.clone(),
                    y.clone(),
                    r.clone(),
                    env.clone(),
                ));
                self.control = Control::Eval(s.clone(), env);
            }
            Expr::Let(x, bound, body) => {
                self.kont
                    .push(Frame::LetK(x.clone(), body.clone(), env.clone()));
                self.control = Control::Eval(bound.clone(), env);
            }
            Expr::Lam(x, body) => {
                self.control = Control::Return(Value::Closure {
                    param: x.clone(),
                    body: body.clone(),
                    env,
                });
            }
            Expr::App(f, a) => {
                self.kont.push(Frame::AppL(a.clone(), env.clone()));
                self.control = Control::Eval(f.clone(), env);
            }
            Expr::Ref(e1) => {
                self.kont.push(Frame::RefK);
                self.control = Control::Eval(e1.clone(), env);
            }
            Expr::Deref(e1) => {
                self.kont.push(Frame::DerefK);
                self.control = Control::Eval(e1.clone(), env);
            }
            Expr::Assign(e1, e2) => {
                self.kont.push(Frame::AssignL(e2.clone(), env.clone()));
                self.control = Control::Eval(e1.clone(), env);
            }
            Expr::Fail(c) => self.fail(*c),
            Expr::Prim(op, e1, e2) => {
                self.kont.push(Frame::PrimL(*op, e2.clone(), env.clone()));
                self.control = Control::Eval(e1.clone(), env);
            }
            Expr::Alloc(e1) => {
                self.kont.push(Frame::AllocK);
                self.control = Control::Eval(e1.clone(), env);
            }
            Expr::Free(e1) => {
                self.kont.push(Frame::FreeK);
                self.control = Control::Eval(e1.clone(), env);
            }
            Expr::Gcmov(e1) => {
                self.kont.push(Frame::GcmovK);
                self.control = Control::Eval(e1.clone(), env);
            }
            Expr::Callgc => {
                let roots = self.heap_roots();
                self.heap.collect(roots);
                self.control = Control::Return(Value::Unit);
            }
            Expr::Protect(e1, f) => {
                // Evaluating protect(e, f) consumes the flag and continues
                // with e (paper: ⟨Φ ⊎ {f}, H, protect(e,f)⟩ ⇝ ⟨Φ, H, e⟩).
                if self.config.phantom.is_some() {
                    if self.phantom.consume(*f) {
                        self.control = Control::Eval(e1.clone(), env);
                    } else {
                        self.halted = Some(Halt::PhantomStuck { flag: *f });
                    }
                } else {
                    // Outside augmented mode protect is erased on the fly.
                    self.control = Control::Eval(e1.clone(), env);
                }
            }
        }
    }

    fn step_return(&mut self, v: Value) {
        let frame = match self.kont.pop() {
            Some(f) => f,
            None => {
                self.control = Control::Return(v);
                return;
            }
        };
        match frame {
            Frame::PairL(e2, env) => {
                self.kont.push(Frame::PairR(v));
                self.control = Control::Eval(e2, env);
            }
            Frame::PairR(v1) => {
                self.control = Control::Return(Value::Pair(Box::new(v1), Box::new(v)));
            }
            Frame::Fst => match v {
                Value::Pair(a, _) => self.control = Control::Return(*a),
                _ => self.fail(ErrorCode::Type),
            },
            Frame::Snd => match v {
                Value::Pair(_, b) => self.control = Control::Return(*b),
                _ => self.fail(ErrorCode::Type),
            },
            Frame::InlK => self.control = Control::Return(Value::Inl(Box::new(v))),
            Frame::InrK => self.control = Control::Return(Value::Inr(Box::new(v))),
            Frame::IfK(t, f, env) => match v {
                Value::Int(0) => self.control = Control::Eval(t, env),
                Value::Int(_) => self.control = Control::Eval(f, env),
                _ => self.fail(ErrorCode::Type),
            },
            Frame::MatchK(x, l, y, r, env) => match v {
                Value::Inl(inner) => {
                    let env = self.bind(&env, x, *inner);
                    self.control = Control::Eval(l, env);
                }
                Value::Inr(inner) => {
                    let env = self.bind(&env, y, *inner);
                    self.control = Control::Eval(r, env);
                }
                _ => self.fail(ErrorCode::Type),
            },
            Frame::LetK(x, body, env) => {
                let env = self.bind(&env, x, v);
                self.control = Control::Eval(body, env);
            }
            Frame::AppL(arg, env) => {
                self.kont.push(Frame::AppR(v));
                self.control = Control::Eval(arg, env);
            }
            Frame::AppR(fun) => match fun {
                Value::Closure { param, body, env } => {
                    let env = self.bind(&env, param, v);
                    self.control = Control::Eval(body, env);
                }
                _ => self.fail(ErrorCode::Type),
            },
            Frame::RefK => {
                let l = self.heap.alloc_gc(v);
                self.control = Control::Return(Value::Loc(l));
            }
            Frame::DerefK => match v {
                Value::Loc(l) => match self.heap.read(l) {
                    Ok(stored) => self.control = Control::Return(stored.clone()),
                    Err(e) => self.fail(e.code()),
                },
                _ => self.fail(ErrorCode::Type),
            },
            Frame::AssignL(rhs, env) => match v {
                Value::Loc(l) => {
                    self.kont.push(Frame::AssignR(l));
                    self.control = Control::Eval(rhs, env);
                }
                _ => self.fail(ErrorCode::Type),
            },
            Frame::AssignR(l) => match self.heap.write(l, v) {
                Ok(()) => self.control = Control::Return(Value::Unit),
                Err(e) => self.fail(e.code()),
            },
            Frame::PrimL(op, e2, env) => {
                self.kont.push(Frame::PrimR(op, v));
                self.control = Control::Eval(e2, env);
            }
            Frame::PrimR(op, v1) => match (v1, v) {
                (Value::Int(a), Value::Int(b)) => {
                    let r = match op {
                        PrimOp::Add => a.wrapping_add(b),
                        PrimOp::Sub => a.wrapping_sub(b),
                        PrimOp::Mul => a.wrapping_mul(b),
                        PrimOp::Less => {
                            if a < b {
                                0
                            } else {
                                1
                            }
                        }
                        PrimOp::Eq => {
                            if a == b {
                                0
                            } else {
                                1
                            }
                        }
                    };
                    self.control = Control::Return(Value::Int(r));
                }
                _ => self.fail(ErrorCode::Type),
            },
            Frame::AllocK => {
                let l = self.heap.alloc_manual(v);
                self.control = Control::Return(Value::Loc(l));
            }
            Frame::FreeK => match v {
                Value::Loc(l) => match self.heap.free(l) {
                    Ok(_) => self.control = Control::Return(Value::Unit),
                    Err(e) => self.fail(e.code()),
                },
                _ => self.fail(ErrorCode::Type),
            },
            Frame::GcmovK => match v {
                Value::Loc(l) => match self.heap.gcmov(l) {
                    Ok(()) => self.control = Control::Return(Value::Loc(l)),
                    Err(e) => self.fail(e.code()),
                },
                _ => self.fail(ErrorCode::Type),
            },
        }
    }

    /// Runs the machine until it halts or the fuel is exhausted.
    pub fn run(mut self, fuel: Fuel) -> RunResult {
        self.run_mut(fuel)
    }

    /// Like [`Machine::run`], but borrows the machine so it can be
    /// [`Machine::reset`] and reused for the next program of a batch.  The
    /// final heap moves into the returned [`RunResult`] (reports own their
    /// heaps); the machine is left with an empty one, exactly as a reset
    /// would leave it.
    pub fn run_mut(&mut self, mut fuel: Fuel) -> RunResult {
        loop {
            if let Some(halt) = self.halted.take() {
                return self.take_result(halt);
            }
            if let (Control::Return(v), true) = (&self.control, self.kont.is_empty()) {
                let v = v.clone();
                return self.take_result(Halt::Value(v));
            }
            if !fuel.consume() {
                return self.take_result(Halt::OutOfFuel);
            }
            self.step();
        }
    }

    /// Packages the run's outcome, harvesting the final heap out of the
    /// machine's slab so the slab's capacity survives for the next run.
    fn take_result(&mut self, halt: Halt) -> RunResult {
        // Heap-derived counters must be read before the heap is harvested.
        let heap_stats = self.heap.stats();
        let mut counters = self.counters;
        counters.heap_allocs = heap_stats.gc_allocs + heap_stats.manual_allocs;
        counters.heap_frees = heap_stats.frees + heap_stats.collected;
        counters.heap_reuses = heap_stats.reused;
        counters.heap_peak_live = heap_stats.peak_live;
        RunResult {
            halt,
            heap: self.heap.harvest(),
            steps: self.steps,
            flags_consumed: self.phantom.consumed(),
            counters,
        }
    }

    /// Convenience: runs a closed expression from the empty configuration.
    pub fn run_expr(expr: Expr, fuel: Fuel) -> RunResult {
        Machine::new(expr).run(fuel)
    }

    /// Batch counterpart of [`Machine::run_expr`]: runs each closed
    /// expression from the empty configuration on **one** reused machine
    /// ([`Machine::reset`] between programs, so the continuation stack's
    /// grown buffer is shared across the batch), returning results in input
    /// order.  Observationally identical to calling [`Machine::run_expr`]
    /// per expression.
    pub fn run_batch(exprs: impl IntoIterator<Item = Expr>, fuel: Fuel) -> Vec<RunResult> {
        let mut machine = Machine::new(Expr::Unit);
        exprs
            .into_iter()
            .map(|expr| {
                machine.reset(expr);
                machine.run_mut(fuel)
            })
            .collect()
    }

    /// Convenience: runs an expression under the augmented (phantom-flag)
    /// semantics with the given protected binders.
    pub fn run_phantom(expr: Expr, cfg: PhantomConfig, fuel: Fuel) -> RunResult {
        Machine::with_config(
            expr,
            MachineConfig {
                phantom: Some(cfg),
                pinned: BTreeSet::new(),
            },
        )
        .run(fuel)
    }
}

/// The opcode class an eval-mode step retires under (see
/// [`semint_core::telemetry::OpClass`] for the bucket definitions).
fn classify_expr(e: &Expr) -> OpClass {
    match e {
        Expr::Unit
        | Expr::Int(_)
        | Expr::Loc(_)
        | Expr::Var(_)
        | Expr::Pair(..)
        | Expr::Fst(_)
        | Expr::Snd(_)
        | Expr::Inl(_)
        | Expr::Inr(_)
        | Expr::Lam(..)
        | Expr::Prim(..) => OpClass::Data,
        Expr::If(..) | Expr::Match(..) | Expr::Fail(_) | Expr::Protect(..) => OpClass::Control,
        Expr::Let(..) | Expr::App(..) => OpClass::Fun,
        Expr::Ref(_)
        | Expr::Deref(_)
        | Expr::Assign(..)
        | Expr::Alloc(_)
        | Expr::Free(_)
        | Expr::Gcmov(_)
        | Expr::Callgc => OpClass::Heap,
    }
}

/// The opcode class a return-mode step retires under, keyed by the frame it
/// consumes — mirroring [`classify_expr`] on the construct that pushed it.
fn classify_frame(f: &Frame) -> OpClass {
    match f {
        Frame::PairL(..)
        | Frame::PairR(_)
        | Frame::Fst
        | Frame::Snd
        | Frame::InlK
        | Frame::InrK
        | Frame::PrimL(..)
        | Frame::PrimR(..) => OpClass::Data,
        Frame::IfK(..) | Frame::MatchK(..) => OpClass::Control,
        Frame::LetK(..) | Frame::AppL(..) | Frame::AppR(_) => OpClass::Fun,
        Frame::RefK
        | Frame::DerefK
        | Frame::AssignL(..)
        | Frame::AssignR(_)
        | Frame::AllocK
        | Frame::FreeK
        | Frame::GcmovK => OpClass::Heap,
    }
}

fn collect_expr_locs(e: &Expr, acc: &mut BTreeSet<Loc>) {
    if let Expr::Loc(l) = e {
        acc.insert(*l);
    }
    // Walk the expression for embedded location literals (rare outside tests
    // and conversion glue applied to already-evaluated values).
    match e {
        Expr::Pair(a, b)
        | Expr::App(a, b)
        | Expr::Assign(a, b)
        | Expr::Prim(_, a, b)
        | Expr::Let(_, a, b) => {
            collect_expr_locs(a, acc);
            collect_expr_locs(b, acc);
        }
        Expr::Fst(a)
        | Expr::Snd(a)
        | Expr::Inl(a)
        | Expr::Inr(a)
        | Expr::Lam(_, a)
        | Expr::Ref(a)
        | Expr::Deref(a)
        | Expr::Alloc(a)
        | Expr::Free(a)
        | Expr::Gcmov(a)
        | Expr::Protect(a, _) => collect_expr_locs(a, acc),
        Expr::If(c, t, f) => {
            collect_expr_locs(c, acc);
            collect_expr_locs(t, acc);
            collect_expr_locs(f, acc);
        }
        Expr::Match(s, _, l, _, r) => {
            collect_expr_locs(s, acc);
            collect_expr_locs(l, acc);
            collect_expr_locs(r, acc);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(e: Expr) -> Halt {
        Machine::run_expr(e, Fuel::default()).halt
    }

    #[test]
    fn arithmetic_and_booleans() {
        assert_eq!(
            run(Expr::add(Expr::int(2), Expr::int(3))),
            Halt::Value(Value::Int(5))
        );
        assert_eq!(
            run(Expr::sub(Expr::int(2), Expr::int(3))),
            Halt::Value(Value::Int(-1))
        );
        assert_eq!(
            run(Expr::mul(Expr::int(4), Expr::int(3))),
            Halt::Value(Value::Int(12))
        );
        // 0 encodes true.
        assert_eq!(
            run(Expr::less(Expr::int(1), Expr::int(2))),
            Halt::Value(Value::Int(0))
        );
        assert_eq!(
            run(Expr::eq(Expr::int(2), Expr::int(2))),
            Halt::Value(Value::Int(0))
        );
        assert_eq!(
            run(Expr::eq(Expr::int(2), Expr::int(3))),
            Halt::Value(Value::Int(1))
        );
    }

    #[test]
    fn if_takes_first_branch_on_zero() {
        assert_eq!(
            run(Expr::if_(Expr::int(0), Expr::int(10), Expr::int(20))),
            Halt::Value(Value::Int(10))
        );
        assert_eq!(
            run(Expr::if_(Expr::int(5), Expr::int(10), Expr::int(20))),
            Halt::Value(Value::Int(20))
        );
        assert_eq!(
            run(Expr::if_(Expr::unit(), Expr::int(1), Expr::int(2))),
            Halt::Fail(ErrorCode::Type)
        );
    }

    #[test]
    fn functions_close_over_their_environment() {
        // let y = 10 in (λx. x + y) 5  ==> 15
        let e = Expr::let_(
            "y",
            Expr::int(10),
            Expr::app(
                Expr::lam("x", Expr::add(Expr::var("x"), Expr::var("y"))),
                Expr::int(5),
            ),
        );
        assert_eq!(run(e), Halt::Value(Value::Int(15)));
    }

    #[test]
    fn pairs_sums_and_match() {
        let e = Expr::fst(Expr::pair(Expr::int(1), Expr::int(2)));
        assert_eq!(run(e), Halt::Value(Value::Int(1)));
        let e = Expr::snd(Expr::pair(Expr::int(1), Expr::int(2)));
        assert_eq!(run(e), Halt::Value(Value::Int(2)));

        let e = Expr::match_(
            Expr::inl(Expr::int(7)),
            "x",
            Expr::add(Expr::var("x"), Expr::int(1)),
            "y",
            Expr::int(0),
        );
        assert_eq!(run(e), Halt::Value(Value::Int(8)));

        let e = Expr::match_(
            Expr::inr(Expr::int(7)),
            "x",
            Expr::int(0),
            "y",
            Expr::var("y"),
        );
        assert_eq!(run(e), Halt::Value(Value::Int(7)));

        assert_eq!(
            run(Expr::match_(
                Expr::int(3),
                "x",
                Expr::int(0),
                "y",
                Expr::int(1)
            )),
            Halt::Fail(ErrorCode::Type)
        );
        assert_eq!(run(Expr::fst(Expr::int(3))), Halt::Fail(ErrorCode::Type));
    }

    #[test]
    fn gc_references_read_and_write() {
        // let r = ref 1 in (r := 42; !r)
        let e = Expr::let_(
            "r",
            Expr::ref_(Expr::int(1)),
            Expr::seq(
                Expr::assign(Expr::var("r"), Expr::int(42)),
                Expr::deref(Expr::var("r")),
            ),
        );
        assert_eq!(run(e), Halt::Value(Value::Int(42)));
    }

    #[test]
    fn manual_memory_alloc_free_and_use_after_free() {
        // let p = alloc 5 in (free p; !p)  ==> fail Ptr
        let e = Expr::let_(
            "p",
            Expr::alloc(Expr::int(5)),
            Expr::seq(Expr::free(Expr::var("p")), Expr::deref(Expr::var("p"))),
        );
        assert_eq!(run(e), Halt::Fail(ErrorCode::Ptr));

        // free of a GC'd cell fails with Ptr.
        let e = Expr::free(Expr::ref_(Expr::int(1)));
        assert_eq!(run(e), Halt::Fail(ErrorCode::Ptr));

        // alloc / read works like ref / read.
        let e = Expr::deref(Expr::alloc(Expr::int(9)));
        assert_eq!(run(e), Halt::Value(Value::Int(9)));
    }

    #[test]
    fn gcmov_preserves_identity_and_contents() {
        // let p = alloc 3 in let q = gcmov p in !q
        let e = Expr::let_(
            "p",
            Expr::alloc(Expr::int(3)),
            Expr::let_(
                "q",
                Expr::gcmov(Expr::var("p")),
                Expr::deref(Expr::var("q")),
            ),
        );
        let r = Machine::run_expr(e, Fuel::default());
        assert_eq!(r.halt, Halt::Value(Value::Int(3)));
        // After gcmov the cell is GC'd: freeing it would fail.
        let e = Expr::let_(
            "p",
            Expr::alloc(Expr::int(3)),
            Expr::seq(Expr::gcmov(Expr::var("p")), Expr::free(Expr::var("p"))),
        );
        assert_eq!(run(e), Halt::Fail(ErrorCode::Ptr));
    }

    #[test]
    fn callgc_collects_unreachable_cells_but_keeps_reachable_ones() {
        // let live = ref 1 in
        // let _ = ref 2 in          (immediately dead)
        // let _ = callgc in !live
        let e = Expr::let_(
            "live",
            Expr::ref_(Expr::int(1)),
            Expr::seq(
                Expr::ref_(Expr::int(2)),
                Expr::seq(Expr::Callgc, Expr::deref(Expr::var("live"))),
            ),
        );
        let r = Machine::run_expr(e, Fuel::default());
        assert_eq!(r.halt, Halt::Value(Value::Int(1)));
        assert_eq!(r.heap.stats().gc_runs, 1);
        assert_eq!(r.heap.stats().collected, 1);
        assert_eq!(r.heap.len(), 1);
    }

    #[test]
    fn pinned_locations_survive_collection() {
        let mut heap = Heap::new();
        let pinned = heap.alloc_gc(Value::Int(77));
        let cfg = MachineConfig {
            phantom: None,
            pinned: BTreeSet::from([pinned]),
        };
        // The program never mentions the pinned location, but callgc must keep it.
        let m = Machine::with_state(
            heap,
            Env::empty(),
            Expr::seq(Expr::Callgc, Expr::unit()),
            cfg,
        );
        let r = m.run(Fuel::default());
        assert_eq!(r.halt, Halt::Value(Value::Unit));
        assert!(r.heap.contains(pinned));
    }

    #[test]
    fn explicit_fail_reports_its_code() {
        assert_eq!(
            run(Expr::Fail(ErrorCode::Conv)),
            Halt::Fail(ErrorCode::Conv)
        );
        assert!(!Halt::Fail(ErrorCode::Type).is_safe());
        assert!(Halt::Fail(ErrorCode::Conv).is_safe());
    }

    #[test]
    fn out_of_fuel_on_divergence() {
        // Ω = (λx. x x) (λx. x x)
        let omega = Expr::app(
            Expr::lam("x", Expr::app(Expr::var("x"), Expr::var("x"))),
            Expr::lam("x", Expr::app(Expr::var("x"), Expr::var("x"))),
        );
        let r = Machine::run_expr(omega, Fuel::steps(500));
        assert_eq!(r.halt, Halt::OutOfFuel);
        assert_eq!(r.steps, 500);
        assert!(r.halt.is_safe());
    }

    #[test]
    fn unbound_variable_is_a_type_error() {
        assert_eq!(run(Expr::var("nope")), Halt::Fail(ErrorCode::Type));
    }

    #[test]
    fn application_of_non_function_is_a_type_error() {
        assert_eq!(
            run(Expr::app(Expr::int(3), Expr::int(4))),
            Halt::Fail(ErrorCode::Type)
        );
    }

    #[test]
    fn phantom_mode_allows_single_use_of_protected_binder() {
        // let a = 5 in a + 0, with `a` protected: one use is fine.
        let cfg = PhantomConfig::protecting([Var::new("a")]);
        let e = Expr::let_("a", Expr::int(5), Expr::add(Expr::var("a"), Expr::int(0)));
        let r = Machine::run_phantom(e, cfg, Fuel::default());
        assert_eq!(r.halt, Halt::Value(Value::Int(5)));
        assert_eq!(r.flags_consumed, 1);
    }

    #[test]
    fn phantom_mode_sticks_on_second_use() {
        // let a = 5 in a + a, with `a` protected: the second use is stuck.
        let cfg = PhantomConfig::protecting([Var::new("a")]);
        let e = Expr::let_("a", Expr::int(5), Expr::add(Expr::var("a"), Expr::var("a")));
        let r = Machine::run_phantom(e, cfg, Fuel::default());
        assert!(matches!(r.halt, Halt::PhantomStuck { .. }));
        assert!(!r.halt.is_safe());
    }

    #[test]
    fn phantom_mode_ignores_unprotected_binders() {
        let cfg = PhantomConfig::protecting([Var::new("someone_else")]);
        let e = Expr::let_("a", Expr::int(5), Expr::add(Expr::var("a"), Expr::var("a")));
        let r = Machine::run_phantom(e, cfg, Fuel::default());
        assert_eq!(r.halt, Halt::Value(Value::Int(10)));
        assert_eq!(r.flags_consumed, 0);
    }

    #[test]
    fn erased_phantom_program_agrees_with_standard_semantics() {
        // A program that uses its protected binder once: the augmented run and
        // the erased standard run agree (the paper's erasure property).
        let cfg = PhantomConfig::protecting([Var::new("a")]);
        let e = Expr::let_("a", Expr::int(21), Expr::mul(Expr::var("a"), Expr::int(2)));
        let aug = Machine::run_phantom(e.clone(), cfg, Fuel::default());
        let std = Machine::run_expr(e.erase_protect(), Fuel::default());
        assert_eq!(aug.halt.value_ref(), std.halt.value_ref());
    }

    #[test]
    fn protect_expression_consumes_flag_outside_binding() {
        // Directly evaluating protect(e, f) without the flag being live makes
        // the augmented machine stuck.
        let cfg = PhantomConfig::protecting([Var::new("unused")]);
        let e = Expr::Protect(Arc::new(Expr::int(1)), 999);
        let r = Machine::run_phantom(e.clone(), cfg, Fuel::default());
        assert!(matches!(r.halt, Halt::PhantomStuck { flag: 999 }));
        // Outside augmented mode, protect is erased on the fly.
        assert_eq!(run(e), Halt::Value(Value::Int(1)));
    }

    #[test]
    fn step_counting_is_deterministic() {
        let e = Expr::add(Expr::int(1), Expr::int(2));
        let r1 = Machine::run_expr(e.clone(), Fuel::default());
        let r2 = Machine::run_expr(e, Fuel::default());
        assert_eq!(r1.steps, r2.steps);
        assert!(r1.steps > 0);
    }

    #[test]
    fn reset_machine_is_observationally_identical_to_a_fresh_one() {
        // Programs exercising every piece of machine state a reset must
        // clear: heap cells (GC'd and manual), environments, continuation
        // frames, step counters and halt states.
        let programs: Vec<Expr> = vec![
            Expr::add(Expr::int(2), Expr::int(3)),
            Expr::let_(
                "r",
                Expr::ref_(Expr::int(1)),
                Expr::seq(
                    Expr::assign(Expr::var("r"), Expr::int(42)),
                    Expr::deref(Expr::var("r")),
                ),
            ),
            Expr::let_(
                "p",
                Expr::alloc(Expr::int(5)),
                Expr::seq(Expr::free(Expr::var("p")), Expr::deref(Expr::var("p"))),
            ),
            Expr::fst(Expr::int(3)),
            Expr::seq(Expr::ref_(Expr::int(7)), Expr::Callgc),
        ];
        let mut reused = Machine::new(Expr::unit());
        // Dirty the machine before the comparison runs so the reset has
        // something real to clear.
        let _ = reused.run_mut(Fuel::default());
        for e in &programs {
            reused.reset(e.clone());
            let from_reset = reused.run_mut(Fuel::default());
            let from_fresh = Machine::run_expr(e.clone(), Fuel::default());
            assert_eq!(from_reset, from_fresh, "program {e}");
        }
        // Fuel exhaustion mid-run leaves no residue either.
        let omega = Expr::app(
            Expr::lam("x", Expr::app(Expr::var("x"), Expr::var("x"))),
            Expr::lam("x", Expr::app(Expr::var("x"), Expr::var("x"))),
        );
        reused.reset(omega);
        assert_eq!(reused.run_mut(Fuel::steps(100)).halt, Halt::OutOfFuel);
        reused.reset(Expr::int(1));
        assert_eq!(
            reused.run_mut(Fuel::default()),
            Machine::run_expr(Expr::int(1), Fuel::default())
        );
    }

    #[test]
    fn run_batch_matches_per_expression_runs_in_order() {
        let exprs = vec![
            Expr::add(Expr::int(1), Expr::int(2)),
            Expr::fst(Expr::int(3)),
            Expr::deref(Expr::ref_(Expr::int(9))),
        ];
        let singly: Vec<RunResult> = exprs
            .iter()
            .map(|e| Machine::run_expr(e.clone(), Fuel::default()))
            .collect();
        let batched = Machine::run_batch(exprs, Fuel::default());
        assert_eq!(batched, singly);
        assert!(Machine::run_batch(Vec::new(), Fuel::default()).is_empty());
    }

    #[test]
    fn reset_clears_phantom_state_but_keeps_the_config() {
        let cfg = MachineConfig {
            phantom: Some(PhantomConfig::protecting([Var::new("a")])),
            pinned: BTreeSet::new(),
        };
        let once = Expr::let_("a", Expr::int(5), Expr::add(Expr::var("a"), Expr::int(0)));
        let twice = Expr::let_("a", Expr::int(5), Expr::add(Expr::var("a"), Expr::var("a")));
        let mut reused = Machine::with_config(twice.clone(), cfg.clone());
        // First run gets stuck on the double use and consumes a flag…
        assert!(matches!(
            reused.run_mut(Fuel::default()).halt,
            Halt::PhantomStuck { .. }
        ));
        // …but a reset restores the pristine flag store while the config
        // (which binder is protected) survives.
        reused.reset(once.clone());
        let from_reset = reused.run_mut(Fuel::default());
        let from_fresh = Machine::with_config(once, cfg).run(Fuel::default());
        assert_eq!(from_reset, from_fresh);
        assert_eq!(from_reset.flags_consumed, 1);
    }

    #[test]
    fn counters_account_for_every_step_and_track_heap_activity() {
        // let r = ref 1 in (r := 42; !r) — data, fun, and heap steps.
        let e = Expr::let_(
            "r",
            Expr::ref_(Expr::int(1)),
            Expr::seq(
                Expr::assign(Expr::var("r"), Expr::int(42)),
                Expr::deref(Expr::var("r")),
            ),
        );
        let r = Machine::run_expr(e, Fuel::default());
        let c = r.counters;
        assert_eq!(
            c.total_instrs(),
            r.steps,
            "every retired step is classified exactly once"
        );
        assert!(c.instr_heap > 0, "ref/assign/deref are heap steps");
        assert!(c.instr_fun > 0, "let is a fun step");
        assert_eq!(c.heap_allocs, 1);
        assert_eq!(c.heap_peak_live, 1);
        assert!(c.stack_peak > 0);
        // Counters are digest-grade: a second identical run agrees exactly.
        let e2 = Expr::let_(
            "r",
            Expr::ref_(Expr::int(1)),
            Expr::seq(
                Expr::assign(Expr::var("r"), Expr::int(42)),
                Expr::deref(Expr::var("r")),
            ),
        );
        assert_eq!(Machine::run_expr(e2, Fuel::default()).counters, c);
    }

    #[test]
    fn church_boolean_application_shape() {
        // (λ_. λx. λy. y) () 0 1  ==> 1   (the CBOOL↦bool conversion shape)
        let church_false = Expr::lam("_", Expr::lam("x", Expr::lam("y", Expr::var("y"))));
        let e = Expr::app(
            Expr::app(Expr::app(church_false, Expr::unit()), Expr::int(0)),
            Expr::int(1),
        );
        assert_eq!(run(e), Halt::Value(Value::Int(1)));
    }
}
