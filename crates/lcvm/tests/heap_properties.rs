//! Model-based property tests for the LCVM heap (Fig. 12).
//!
//! A simple reference model (a map from locations to `(kind, value)`) is run
//! alongside the real heap over arbitrary operation sequences; the two must
//! agree on every observation.  This pins down the reuse-after-free /
//! reuse-after-collection behaviour the §5 world extension depends on.

use lcvm::{Heap, HeapError, Loc, Slot, Value};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    AllocGc(i64),
    AllocManual(i64),
    Read(usize),
    Write(usize, i64),
    Free(usize),
    Gcmov(usize),
    /// Collect, rooting an arbitrary subset of previously returned locations.
    Collect(Vec<usize>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<i64>().prop_map(Op::AllocGc),
        any::<i64>().prop_map(Op::AllocManual),
        any::<usize>().prop_map(Op::Read),
        (any::<usize>(), any::<i64>()).prop_map(|(i, n)| Op::Write(i, n)),
        any::<usize>().prop_map(Op::Free),
        any::<usize>().prop_map(Op::Gcmov),
        proptest::collection::vec(any::<usize>(), 0..4).prop_map(Op::Collect),
    ]
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Gc,
    Manual,
}

/// The reference model: location → (kind, integer contents).
#[derive(Default)]
struct ModelHeap {
    cells: HashMap<Loc, (Kind, i64)>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn heap_agrees_with_reference_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut heap = Heap::new();
        let mut model = ModelHeap::default();
        // Locations handed out so far, in order, so ops can refer to them by index.
        let mut locs: Vec<Loc> = Vec::new();

        for op in ops {
            match op {
                Op::AllocGc(n) => {
                    let l = heap.alloc_gc(Value::Int(n));
                    prop_assert!(!model.cells.contains_key(&l), "allocator returned a live location");
                    model.cells.insert(l, (Kind::Gc, n));
                    locs.push(l);
                }
                Op::AllocManual(n) => {
                    let l = heap.alloc_manual(Value::Int(n));
                    prop_assert!(!model.cells.contains_key(&l));
                    model.cells.insert(l, (Kind::Manual, n));
                    locs.push(l);
                }
                Op::Read(i) if !locs.is_empty() => {
                    let l = locs[i % locs.len()];
                    match (heap.read(l), model.cells.get(&l)) {
                        (Ok(Value::Int(n)), Some((_, m))) => prop_assert_eq!(n, m),
                        (Err(HeapError::Dangling(_)), None) => {}
                        (real, expected) => prop_assert!(false, "read mismatch: {:?} vs {:?}", real, expected),
                    }
                }
                Op::Write(i, n) if !locs.is_empty() => {
                    let l = locs[i % locs.len()];
                    let real = heap.write(l, Value::Int(n));
                    match model.cells.get_mut(&l) {
                        Some(slot) => {
                            prop_assert!(real.is_ok());
                            slot.1 = n;
                        }
                        None => prop_assert!(real.is_err()),
                    }
                }
                Op::Free(i) if !locs.is_empty() => {
                    let l = locs[i % locs.len()];
                    let real = heap.free(l);
                    match model.cells.get(&l) {
                        Some((Kind::Manual, n)) => {
                            prop_assert_eq!(real, Ok(Value::Int(*n)));
                            model.cells.remove(&l);
                        }
                        Some((Kind::Gc, _)) => prop_assert_eq!(real, Err(HeapError::NotManual(l))),
                        None => prop_assert_eq!(real, Err(HeapError::Dangling(l))),
                    }
                }
                Op::Gcmov(i) if !locs.is_empty() => {
                    let l = locs[i % locs.len()];
                    let real = heap.gcmov(l);
                    match model.cells.get_mut(&l) {
                        Some(slot) if slot.0 == Kind::Manual => {
                            prop_assert!(real.is_ok());
                            slot.0 = Kind::Gc;
                        }
                        Some(_) => prop_assert_eq!(real, Err(HeapError::NotManual(l))),
                        None => prop_assert_eq!(real, Err(HeapError::Dangling(l))),
                    }
                }
                Op::Collect(root_idxs) => {
                    let roots: Vec<Loc> = if locs.is_empty() {
                        Vec::new()
                    } else {
                        root_idxs.iter().map(|i| locs[i % locs.len()]).collect()
                    };
                    heap.collect(roots.clone());
                    // Integers have no outgoing pointers, so exactly the
                    // unrooted GC cells die in the model too.
                    model.cells.retain(|l, (kind, _)| *kind == Kind::Manual || roots.contains(l));
                }
                // Index ops against an empty history are no-ops.
                _ => {}
            }

            // Global invariants after every step.
            prop_assert_eq!(heap.len(), model.cells.len());
            prop_assert_eq!(
                heap.manual_len(),
                model.cells.values().filter(|(k, _)| *k == Kind::Manual).count()
            );
            for (l, (kind, n)) in &model.cells {
                match (kind, heap.slot(*l)) {
                    (Kind::Gc, Some(Slot::Gc(Value::Int(m)))) => prop_assert_eq!(n, m),
                    (Kind::Manual, Some(Slot::Manual(Value::Int(m)))) => prop_assert_eq!(n, m),
                    (k, s) => prop_assert!(false, "slot mismatch at {:?}: model {:?}, heap {:?}", l, k, s),
                }
            }
        }
    }

    #[test]
    fn collection_never_touches_manual_cells(values in proptest::collection::vec(any::<i64>(), 1..20)) {
        let mut heap = Heap::new();
        let manuals: Vec<Loc> = values.iter().map(|n| heap.alloc_manual(Value::Int(*n))).collect();
        let _garbage: Vec<Loc> = values.iter().map(|n| heap.alloc_gc(Value::Int(*n))).collect();
        heap.collect([]);
        for (l, n) in manuals.iter().zip(&values) {
            prop_assert_eq!(heap.read(*l), Ok(&Value::Int(*n)));
        }
        prop_assert_eq!(heap.len(), manuals.len());
    }

    #[test]
    fn freed_locations_are_recycled_before_fresh_ones(n in 1usize..20) {
        let mut heap = Heap::new();
        let locs: Vec<Loc> = (0..n).map(|i| heap.alloc_manual(Value::Int(i as i64))).collect();
        for l in &locs {
            heap.free(*l).unwrap();
        }
        let reused: Vec<Loc> = (0..n).map(|i| heap.alloc_gc(Value::Int(i as i64))).collect();
        for l in &reused {
            prop_assert!(locs.contains(l), "allocation should reuse freed locations first");
        }
        prop_assert_eq!(heap.stats().reused as usize, n);
    }
}
