//! Model-based property tests for the LCVM heap (Fig. 12).
//!
//! A simple reference model (a map from locations to `(kind, value)`) is run
//! alongside the real heap over arbitrary operation sequences; the two must
//! agree on every observation.  This pins down the reuse-after-free /
//! reuse-after-collection behaviour the §5 world extension depends on.

use lcvm::{Heap, HeapError, Loc, Slot, Value};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    AllocGc(i64),
    AllocManual(i64),
    Read(usize),
    Write(usize, i64),
    Free(usize),
    Gcmov(usize),
    /// Collect, rooting an arbitrary subset of previously returned locations.
    Collect(Vec<usize>),
    /// Batch boundary: rewind the slab. Locations from before the reset must
    /// read as dangling until their index is re-allocated.
    Reset,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<i64>().prop_map(Op::AllocGc),
        any::<i64>().prop_map(Op::AllocManual),
        any::<usize>().prop_map(Op::Read),
        (any::<usize>(), any::<i64>()).prop_map(|(i, n)| Op::Write(i, n)),
        any::<usize>().prop_map(Op::Free),
        any::<usize>().prop_map(Op::Gcmov),
        proptest::collection::vec(any::<usize>(), 0..4).prop_map(Op::Collect),
        Just(Op::Reset),
    ]
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Gc,
    Manual,
}

/// The reference model: location → (kind, integer contents).
#[derive(Default)]
struct ModelHeap {
    cells: HashMap<Loc, (Kind, i64)>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn heap_agrees_with_reference_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut heap = Heap::new();
        let mut model = ModelHeap::default();
        // Locations handed out so far, in order, so ops can refer to them by index.
        let mut locs: Vec<Loc> = Vec::new();

        for op in ops {
            match op {
                Op::AllocGc(n) => {
                    let l = heap.alloc_gc(Value::Int(n));
                    prop_assert!(!model.cells.contains_key(&l), "allocator returned a live location");
                    model.cells.insert(l, (Kind::Gc, n));
                    locs.push(l);
                }
                Op::AllocManual(n) => {
                    let l = heap.alloc_manual(Value::Int(n));
                    prop_assert!(!model.cells.contains_key(&l));
                    model.cells.insert(l, (Kind::Manual, n));
                    locs.push(l);
                }
                Op::Read(i) if !locs.is_empty() => {
                    let l = locs[i % locs.len()];
                    match (heap.read(l), model.cells.get(&l)) {
                        (Ok(Value::Int(n)), Some((_, m))) => prop_assert_eq!(n, m),
                        (Err(HeapError::Dangling(_)), None) => {}
                        (real, expected) => prop_assert!(false, "read mismatch: {:?} vs {:?}", real, expected),
                    }
                }
                Op::Write(i, n) if !locs.is_empty() => {
                    let l = locs[i % locs.len()];
                    let real = heap.write(l, Value::Int(n));
                    match model.cells.get_mut(&l) {
                        Some(slot) => {
                            prop_assert!(real.is_ok());
                            slot.1 = n;
                        }
                        None => prop_assert!(real.is_err()),
                    }
                }
                Op::Free(i) if !locs.is_empty() => {
                    let l = locs[i % locs.len()];
                    let real = heap.free(l);
                    match model.cells.get(&l) {
                        Some((Kind::Manual, n)) => {
                            prop_assert_eq!(real, Ok(Value::Int(*n)));
                            model.cells.remove(&l);
                        }
                        Some((Kind::Gc, _)) => prop_assert_eq!(real, Err(HeapError::NotManual(l))),
                        None => prop_assert_eq!(real, Err(HeapError::Dangling(l))),
                    }
                }
                Op::Gcmov(i) if !locs.is_empty() => {
                    let l = locs[i % locs.len()];
                    let real = heap.gcmov(l);
                    match model.cells.get_mut(&l) {
                        Some(slot) if slot.0 == Kind::Manual => {
                            prop_assert!(real.is_ok());
                            slot.0 = Kind::Gc;
                        }
                        Some(_) => prop_assert_eq!(real, Err(HeapError::NotManual(l))),
                        None => prop_assert_eq!(real, Err(HeapError::Dangling(l))),
                    }
                }
                Op::Collect(root_idxs) => {
                    let roots: Vec<Loc> = if locs.is_empty() {
                        Vec::new()
                    } else {
                        root_idxs.iter().map(|i| locs[i % locs.len()]).collect()
                    };
                    heap.collect(roots.clone());
                    // Integers have no outgoing pointers, so exactly the
                    // unrooted GC cells die in the model too.
                    model.cells.retain(|l, (kind, _)| *kind == Kind::Manual || roots.contains(l));
                }
                Op::Reset => {
                    heap.reset();
                    model.cells.clear();
                    // `locs` is deliberately kept: stale pre-reset locations
                    // must read as dangling (the slab's epoch check) until
                    // their index is handed out again, at which point model
                    // and heap agree on the new cell.
                }
                // Index ops against an empty history are no-ops.
                _ => {}
            }

            // Global invariants after every step.
            prop_assert_eq!(heap.len(), model.cells.len());
            prop_assert_eq!(
                heap.manual_len(),
                model.cells.values().filter(|(k, _)| *k == Kind::Manual).count()
            );
            for (l, (kind, n)) in &model.cells {
                match (kind, heap.slot(*l)) {
                    (Kind::Gc, Some(Slot::Gc(Value::Int(m)))) => prop_assert_eq!(n, m),
                    (Kind::Manual, Some(Slot::Manual(Value::Int(m)))) => prop_assert_eq!(n, m),
                    (k, s) => prop_assert!(false, "slot mismatch at {:?}: model {:?}, heap {:?}", l, k, s),
                }
            }
        }
    }

    #[test]
    fn collection_never_touches_manual_cells(values in proptest::collection::vec(any::<i64>(), 1..20)) {
        let mut heap = Heap::new();
        let manuals: Vec<Loc> = values.iter().map(|n| heap.alloc_manual(Value::Int(*n))).collect();
        let _garbage: Vec<Loc> = values.iter().map(|n| heap.alloc_gc(Value::Int(*n))).collect();
        heap.collect([]);
        for (l, n) in manuals.iter().zip(&values) {
            prop_assert_eq!(heap.read(*l), Ok(&Value::Int(*n)));
        }
        prop_assert_eq!(heap.len(), manuals.len());
    }

    #[test]
    fn freed_locations_are_recycled_before_fresh_ones(n in 1usize..20) {
        let mut heap = Heap::new();
        let locs: Vec<Loc> = (0..n).map(|i| heap.alloc_manual(Value::Int(i as i64))).collect();
        for l in &locs {
            heap.free(*l).unwrap();
        }
        let reused: Vec<Loc> = (0..n).map(|i| heap.alloc_gc(Value::Int(i as i64))).collect();
        for l in &reused {
            prop_assert!(locs.contains(l), "allocation should reuse freed locations first");
        }
        prop_assert_eq!(heap.stats().reused as usize, n);
    }

    #[test]
    fn manual_frees_are_recycled_in_lifo_order(raw in proptest::collection::vec(any::<usize>(), 1..12)) {
        // Digest stability across the slab rewrite depends on allocation
        // returning *the same* locations the old map heap returned: the free
        // list is a stack, so allocs recycle the most recently freed
        // location first.
        let mut order: Vec<usize> = Vec::new();
        for i in raw {
            let i = i % 12;
            if !order.contains(&i) {
                order.push(i);
            }
        }
        let mut heap = Heap::new();
        let locs: Vec<Loc> = (0..12).map(|i| heap.alloc_manual(Value::Int(i))).collect();
        let freed: Vec<Loc> = order.iter().map(|i| locs[*i]).collect();
        for l in &freed {
            heap.free(*l).unwrap();
        }
        for expected in freed.iter().rev() {
            prop_assert_eq!(heap.alloc_gc(Value::Int(0)), *expected);
        }
    }

    #[test]
    fn collection_releases_dead_cells_in_descending_location_order(n in 2usize..16) {
        // A sweep pushes dead cells onto the free list in ascending location
        // order (the old BTreeMap iteration order), so subsequent allocs pop
        // them back in *descending* order.
        let mut heap = Heap::new();
        let locs: Vec<Loc> = (0..n).map(|i| heap.alloc_gc(Value::Int(i as i64))).collect();
        heap.collect([]);
        for expected in locs.iter().rev() {
            prop_assert_eq!(heap.alloc_gc(Value::Int(0)), *expected);
        }
    }

    #[test]
    fn reset_slabs_are_observationally_fresh(
        warmup in proptest::collection::vec(op_strategy(), 0..40),
        replay in proptest::collection::vec(op_strategy(), 0..40),
    ) {
        // Run an arbitrary warm-up on one heap, reset it, and drive it and a
        // genuinely fresh heap through the same second sequence: every
        // observation — returned locations included, which is what batch
        // digest stability rests on — must agree, and so must the final
        // heaps under `PartialEq` (which ignores slab capacity).
        let mut warmed = Heap::new();
        let mut locs: Vec<Loc> = Vec::new();
        for op in warmup {
            apply(&mut warmed, &mut locs, &op);
        }
        warmed.reset();
        prop_assert_eq!(&warmed, &Heap::new(), "reset state equals a fresh heap");

        let mut fresh = Heap::new();
        let mut warmed_locs: Vec<Loc> = Vec::new();
        let mut fresh_locs: Vec<Loc> = Vec::new();
        for op in replay {
            let a = apply(&mut warmed, &mut warmed_locs, &op);
            let b = apply(&mut fresh, &mut fresh_locs, &op);
            prop_assert_eq!(a, b, "observation diverged on {:?}", op);
        }
        prop_assert_eq!(&warmed, &fresh);
        prop_assert_eq!(warmed.stats(), fresh.stats());
    }
}

/// Applies one op to `heap`, returning a comparable observation string.
/// Shared by the reset-equivalence property so a warmed-then-reset slab and
/// a fresh heap can be driven through identical traces.
fn apply(heap: &mut Heap, locs: &mut Vec<Loc>, op: &Op) -> String {
    match op {
        Op::AllocGc(n) => {
            let l = heap.alloc_gc(Value::Int(*n));
            locs.push(l);
            format!("alloc_gc -> {l:?}")
        }
        Op::AllocManual(n) => {
            let l = heap.alloc_manual(Value::Int(*n));
            locs.push(l);
            format!("alloc_manual -> {l:?}")
        }
        Op::Read(i) if !locs.is_empty() => {
            let l = locs[i % locs.len()];
            format!("read {l:?} -> {:?}", heap.read(l))
        }
        Op::Write(i, n) if !locs.is_empty() => {
            let l = locs[i % locs.len()];
            format!("write {l:?} -> {:?}", heap.write(l, Value::Int(*n)))
        }
        Op::Free(i) if !locs.is_empty() => {
            let l = locs[i % locs.len()];
            format!("free {l:?} -> {:?}", heap.free(l))
        }
        Op::Gcmov(i) if !locs.is_empty() => {
            let l = locs[i % locs.len()];
            format!("gcmov {l:?} -> {:?}", heap.gcmov(l))
        }
        Op::Collect(root_idxs) => {
            let roots: Vec<Loc> = if locs.is_empty() {
                Vec::new()
            } else {
                root_idxs.iter().map(|i| locs[i % locs.len()]).collect()
            };
            heap.collect(roots);
            format!("collect -> len {}", heap.len())
        }
        Op::Reset => {
            heap.reset();
            locs.clear();
            "reset".into()
        }
        _ => "noop".into(),
    }
}
