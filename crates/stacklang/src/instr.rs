//! StackLang syntax: values, operands, instructions and programs (Fig. 2).
//!
//! The one divergence from the figure's concrete syntax is that `push`
//! operands are split into literal values and variables: compiled code pushes
//! variables (`push x`) which are later replaced by values when an enclosing
//! `lam x. P` performs substitution.  The paper folds variables into the value
//! grammar implicitly; separating them keeps "closed program" a checkable
//! property ([`Program::is_closed`]).

use crate::heap::Loc;
use semint_core::{ErrorCode, Var};
use std::collections::BTreeSet;
use std::fmt;

/// StackLang values `v ::= n | thunk P | ℓ | [v, …]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An integer.
    Num(i64),
    /// A suspended computation, resumed with `call`.
    Thunk(Program),
    /// A heap location.
    Loc(Loc),
    /// An array of values.
    Array(Vec<Value>),
}

impl Value {
    /// The integer carried by a `Num`, if any.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The location carried by a `Loc`, if any.
    pub fn as_loc(&self) -> Option<Loc> {
        match self {
            Value::Loc(l) => Some(*l),
            _ => None,
        }
    }

    /// The elements of an `Array`, if any.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(vs) => Some(vs),
            _ => None,
        }
    }

    /// An array value from an iterator of values.
    pub fn array(vs: impl IntoIterator<Item = Value>) -> Value {
        Value::Array(vs.into_iter().collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Thunk(p) => write!(f, "thunk {{{p}}}"),
            Value::Loc(l) => write!(f, "{l}"),
            Value::Array(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// The operand of a `push`: a literal value, a variable awaiting
/// substitution by an enclosing `lam`, or an array template whose elements
/// are themselves operands.
///
/// Array templates let us write the paper's `push [x₁, x₂]` (Fig. 3): the
/// variables are resolved by `lam` substitution, and by the time the push
/// executes the template must be fully literal (otherwise the program was
/// open and the machine raises `fail Type`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A literal value.
    Lit(Value),
    /// A variable occurrence.
    Var(Var),
    /// An array literal whose elements may mention variables.
    Array(Vec<Operand>),
}

impl Operand {
    /// Resolves a fully-substituted operand into a value.
    ///
    /// Returns `None` if any variable remains (the program was open).
    pub fn resolve(&self) -> Option<Value> {
        match self {
            Operand::Lit(v) => Some(v.clone()),
            Operand::Var(_) => None,
            Operand::Array(ops) => {
                let mut vs = Vec::with_capacity(ops.len());
                for op in ops {
                    vs.push(op.resolve()?);
                }
                Some(Value::Array(vs))
            }
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Lit(v) => write!(f, "{v}"),
            Operand::Var(x) => write!(f, "{x}"),
            Operand::Array(ops) => {
                write!(f, "[")?;
                for (i, o) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{o}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// StackLang instructions (Fig. 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `push v` / `push x`: push a value (or the value bound to a variable).
    Push(Operand),
    /// `add`: pop `n'`, `n`, push `n + n'`.
    Add,
    /// `less?`: pop `n'`, `n`, push `0` if `n < n'` else `1`.
    Less,
    /// `if0 P1 P2`: pop `n`, continue with `P1` if `n = 0`, else `P2`.
    If0(Program, Program),
    /// `lam x₁,…,xₖ. P`: pop one value per binder (leftmost binder takes the
    /// top of the stack) and substitute them into `P`.
    Lam(Vec<Var>, Program),
    /// `call`: pop a thunk and continue with its program.
    Call,
    /// `idx`: pop `n`, an array, push the `n`-th element (`fail Idx` if out of
    /// bounds).
    Idx,
    /// `len`: pop an array, push its length.
    Len,
    /// `alloc`: pop `v`, allocate a fresh location holding `v`, push it.
    Alloc,
    /// `read`: pop a location, push its contents.
    Read,
    /// `write`: pop `v` and a location, store `v` there.
    Write,
    /// `fail c`: abort the machine with error code `c`.
    Fail(ErrorCode),
}

impl Instr {
    /// `push n` for a literal number — the most common instruction in
    /// compiled code, so it gets a shorthand.
    pub fn push_num(n: i64) -> Instr {
        Instr::Push(Operand::Lit(Value::Num(n)))
    }

    /// `push v` for a literal value.
    pub fn push_val(v: Value) -> Instr {
        Instr::Push(Operand::Lit(v))
    }

    /// `push x` for a variable.
    pub fn push_var(x: impl Into<Var>) -> Instr {
        Instr::Push(Operand::Var(x.into()))
    }

    /// `lam x. P` with a single binder.
    pub fn lam1(x: impl Into<Var>, body: Program) -> Instr {
        Instr::Lam(vec![x.into()], body)
    }

    /// `push (thunk P)`.
    pub fn push_thunk(p: Program) -> Instr {
        Instr::Push(Operand::Lit(Value::Thunk(p)))
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Push(o) => write!(f, "push {o}"),
            Instr::Add => write!(f, "add"),
            Instr::Less => write!(f, "less?"),
            Instr::If0(p1, p2) => write!(f, "if0 ({p1}) ({p2})"),
            Instr::Lam(xs, p) => {
                write!(f, "lam ")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ". ({p})")
            }
            Instr::Call => write!(f, "call"),
            Instr::Idx => write!(f, "idx"),
            Instr::Len => write!(f, "len"),
            Instr::Alloc => write!(f, "alloc"),
            Instr::Read => write!(f, "read"),
            Instr::Write => write!(f, "write"),
            Instr::Fail(c) => write!(f, "fail {c}"),
        }
    }
}

/// A StackLang program `P ::= · | i, P`: a sequence of instructions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program(pub Vec<Instr>);

impl Program {
    /// The empty program `·`.
    pub fn empty() -> Program {
        Program(Vec::new())
    }

    /// A single-instruction program.
    pub fn single(i: Instr) -> Program {
        Program(vec![i])
    }

    /// Number of top-level instructions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the program is `·`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Sequences `self` before `other` (`self, other`).
    pub fn then(mut self, other: Program) -> Program {
        self.0.extend(other.0);
        self
    }

    /// Appends a single instruction.
    pub fn then_instr(mut self, i: Instr) -> Program {
        self.0.push(i);
        self
    }

    /// The instructions, in execution order.
    pub fn instrs(&self) -> &[Instr] {
        &self.0
    }

    /// Capture-avoiding substitution `[x ↦ v]P`.
    ///
    /// Replaces free occurrences of `x` (in `push x` operands) with the
    /// literal value `v`, descending into `if0` branches, `lam` bodies (unless
    /// the `lam` rebinds `x`) and `thunk` literals.
    pub fn subst(&self, x: &Var, v: &Value) -> Program {
        Program(self.0.iter().map(|i| subst_instr(i, x, v)).collect())
    }

    /// The set of free variables of the program.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut acc = BTreeSet::new();
        free_vars_prog(self, &mut Vec::new(), &mut acc);
        acc
    }

    /// True if the program has no free variables (safe to run directly).
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }
}

impl From<Vec<Instr>> for Program {
    fn from(v: Vec<Instr>) -> Self {
        Program(v)
    }
}

impl FromIterator<Instr> for Program {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        Program(iter.into_iter().collect())
    }
}

impl Extend<Instr> for Program {
    fn extend<T: IntoIterator<Item = Instr>>(&mut self, iter: T) {
        self.0.extend(iter)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "·");
        }
        for (i, instr) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{instr}")?;
        }
        Ok(())
    }
}

fn subst_instr(i: &Instr, x: &Var, v: &Value) -> Instr {
    match i {
        Instr::Push(op) => Instr::Push(subst_operand(op, x, v)),
        Instr::If0(p1, p2) => Instr::If0(p1.subst(x, v), p2.subst(x, v)),
        Instr::Lam(xs, p) => {
            if xs.contains(x) {
                Instr::Lam(xs.clone(), p.clone())
            } else {
                Instr::Lam(xs.clone(), p.subst(x, v))
            }
        }
        other => other.clone(),
    }
}

fn subst_operand(op: &Operand, x: &Var, v: &Value) -> Operand {
    match op {
        Operand::Var(y) if y == x => Operand::Lit(v.clone()),
        Operand::Var(y) => Operand::Var(y.clone()),
        Operand::Lit(val) => Operand::Lit(subst_value(val, x, v)),
        Operand::Array(ops) => Operand::Array(ops.iter().map(|o| subst_operand(o, x, v)).collect()),
    }
}

fn subst_value(val: &Value, x: &Var, v: &Value) -> Value {
    match val {
        Value::Thunk(p) => Value::Thunk(p.subst(x, v)),
        Value::Array(vs) => Value::Array(vs.iter().map(|w| subst_value(w, x, v)).collect()),
        other => other.clone(),
    }
}

fn free_vars_prog(p: &Program, bound: &mut Vec<Var>, acc: &mut BTreeSet<Var>) {
    for i in &p.0 {
        match i {
            Instr::Push(op) => free_vars_operand(op, bound, acc),
            Instr::If0(p1, p2) => {
                free_vars_prog(p1, bound, acc);
                free_vars_prog(p2, bound, acc);
            }
            Instr::Lam(xs, body) => {
                let n = bound.len();
                bound.extend(xs.iter().cloned());
                free_vars_prog(body, bound, acc);
                bound.truncate(n);
            }
            _ => {}
        }
    }
}

fn free_vars_operand(op: &Operand, bound: &mut Vec<Var>, acc: &mut BTreeSet<Var>) {
    match op {
        Operand::Var(x) => {
            if !bound.contains(x) {
                acc.insert(x.clone());
            }
        }
        Operand::Lit(v) => free_vars_value(v, bound, acc),
        Operand::Array(ops) => {
            for o in ops {
                free_vars_operand(o, bound, acc)
            }
        }
    }
}

fn free_vars_value(v: &Value, bound: &mut Vec<Var>, acc: &mut BTreeSet<Var>) {
    match v {
        Value::Thunk(p) => free_vars_prog(p, bound, acc),
        Value::Array(vs) => {
            for w in vs {
                free_vars_value(w, bound, acc)
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(s: &str) -> Var {
        Var::new(s)
    }

    #[test]
    fn substitution_replaces_free_occurrences() {
        let p = Program::from(vec![Instr::push_var("x"), Instr::push_var("y"), Instr::Add]);
        let q = p.subst(&var("x"), &Value::Num(10));
        assert_eq!(
            q,
            Program::from(vec![Instr::push_num(10), Instr::push_var("y"), Instr::Add])
        );
    }

    #[test]
    fn substitution_respects_lam_shadowing() {
        // lam x. (push x) must not be touched when substituting for x.
        let inner = Program::single(Instr::push_var("x"));
        let p = Program::from(vec![Instr::push_var("x"), Instr::lam1("x", inner.clone())]);
        let q = p.subst(&var("x"), &Value::Num(1));
        assert_eq!(q.0[0], Instr::push_num(1));
        assert_eq!(q.0[1], Instr::lam1("x", inner));
    }

    #[test]
    fn substitution_descends_into_thunks_and_branches() {
        let p = Program::from(vec![
            Instr::push_thunk(Program::single(Instr::push_var("x"))),
            Instr::If0(
                Program::single(Instr::push_var("x")),
                Program::single(Instr::push_var("z")),
            ),
        ]);
        let q = p.subst(&var("x"), &Value::Num(3));
        assert_eq!(
            q.0[0],
            Instr::push_thunk(Program::single(Instr::push_num(3)))
        );
        assert_eq!(
            q.0[1],
            Instr::If0(
                Program::single(Instr::push_num(3)),
                Program::single(Instr::push_var("z")),
            )
        );
    }

    #[test]
    fn free_vars_and_closedness() {
        let p = Program::from(vec![
            Instr::push_var("a"),
            Instr::lam1(
                "b",
                Program::from(vec![Instr::push_var("b"), Instr::push_var("c")]),
            ),
        ]);
        let fv = p.free_vars();
        assert!(fv.contains(&var("a")));
        assert!(fv.contains(&var("c")));
        assert!(!fv.contains(&var("b")));
        assert!(!p.is_closed());
        assert!(Program::single(Instr::push_num(1)).is_closed());
    }

    #[test]
    fn then_concatenates_in_order() {
        let p = Program::single(Instr::push_num(1)).then(Program::single(Instr::push_num(2)));
        assert_eq!(p.len(), 2);
        assert_eq!(p.0[0], Instr::push_num(1));
        let p = p.then_instr(Instr::Add);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn display_round_trips_shape() {
        let p = Program::from(vec![
            Instr::push_num(1),
            Instr::lam1("x", Program::single(Instr::push_var("x"))),
            Instr::Fail(ErrorCode::Conv),
        ]);
        assert_eq!(p.to_string(), "push 1, lam x. (push x), fail Conv");
        assert_eq!(Program::empty().to_string(), "·");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Num(3).as_num(), Some(3));
        assert_eq!(Value::Num(3).as_loc(), None);
        assert_eq!(Value::Loc(Loc(1)).as_loc(), Some(Loc(1)));
        let arr = Value::array([Value::Num(1), Value::Num(2)]);
        assert_eq!(arr.as_array().unwrap().len(), 2);
        assert_eq!(arr.to_string(), "[1, 2]");
    }
}
