//! # stacklang
//!
//! The untyped stack-based target language of the paper's first case study
//! (Fig. 2), inspired by typed concatenative calculi.  Programs are sequences
//! of instructions operating over a configuration `⟨H; S; P⟩` of a heap, a
//! stack of values, and the remaining program.
//!
//! Values are numbers, suspended computations (`thunk P`), heap locations and
//! arrays of values.  `lam x. P` is an *instruction* (not a value) solely
//! responsible for substitution, à la call-by-push-value; `thunk`/`call`
//! suspend and resume computation.
//!
//! Any instruction whose stack precondition is not met steps to `fail Type`;
//! out-of-bounds indexing steps to `fail Idx`; conversion glue code emits
//! `fail Conv`.  The semantic type-soundness theorems of the paper guarantee
//! that programs compiled from well-typed multi-language sources never reach
//! `fail Type`.
//!
//! ```
//! use stacklang::{Instr, Program, Machine, Value};
//! use semint_core::Fuel;
//!
//! // (2 + 3) via the stack machine.
//! let prog = Program::from(vec![
//!     Instr::push_num(2),
//!     Instr::push_num(3),
//!     Instr::Add,
//! ]);
//! let result = Machine::run_program(prog, Fuel::default());
//! assert_eq!(result.outcome.value(), Some(Value::Num(5)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod heap;
pub mod instr;
pub mod machine;

pub use heap::{Heap, Loc};
pub use instr::{Instr, Operand, Program, Value};
pub use machine::{Machine, RunResult, StackState};

pub use semint_core::{ErrorCode, Fuel, Outcome, Var};
