//! The StackLang abstract machine: configurations `⟨H; S; P⟩` and their
//! small-step operational semantics (Fig. 2).
//!
//! Every reduction rule of the figure is implemented by [`Machine::step`];
//! instructions whose stack precondition is not met step to `fail Type`.  The
//! machine is driven by [`Machine::run`] under a [`Fuel`] budget so that the
//! executable logical relation (crate `sharedmem`) can realise the paper's
//! step-indexed expression relation directly.

use crate::heap::Heap;
use crate::instr::{Instr, Program, Value};
use semint_core::{ErrorCode, Fuel, OpClass, Outcome, VmCounters};
use std::fmt;

/// The stack component of a configuration: either a stack of values or the
/// distinguished `Fail c` stack that aborts the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackState {
    /// An ordinary stack of values; the last element is the top.
    Values(Vec<Value>),
    /// The failed stack `Fail c`.
    Fail(ErrorCode),
}

impl StackState {
    /// An empty ordinary stack.
    pub fn empty() -> StackState {
        StackState::Values(Vec::new())
    }

    /// The values, if the stack has not failed.
    pub fn values(&self) -> Option<&[Value]> {
        match self {
            StackState::Values(vs) => Some(vs),
            StackState::Fail(_) => None,
        }
    }
}

impl fmt::Display for StackState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackState::Values(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            StackState::Fail(c) => write!(f, "Fail {c}"),
        }
    }
}

/// What a single machine step produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepStatus {
    /// The machine took a step and may continue.
    Continue,
    /// The program is empty (or the stack failed): the machine is terminal.
    Done,
}

/// The result of running a machine to completion (or until fuel ran out).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The final outcome: a value (top of stack), a well-defined failure, or
    /// out-of-fuel.
    pub outcome: Outcome<Value>,
    /// The final heap.
    pub heap: Heap,
    /// The final stack.
    pub stack: StackState,
    /// How many small steps were taken.
    pub steps: u64,
    /// Deterministic per-run telemetry: instructions retired by opcode
    /// class, allocation totals, and high-water marks.
    pub counters: VmCounters,
}

/// A StackLang machine configuration `⟨H; S; P⟩`.
///
/// The remaining program is stored reversed so "next instruction" is a `pop`.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    heap: Heap,
    stack: StackState,
    /// Remaining instructions, reversed (next instruction is the last element).
    control: Vec<Instr>,
    steps: u64,
    counters: VmCounters,
}

impl Machine {
    /// A machine about to run `program` on an empty stack and empty heap.
    pub fn new(program: Program) -> Machine {
        Machine::with_state(Heap::new(), StackState::empty(), program)
    }

    /// A machine with explicit initial heap and stack.
    pub fn with_state(heap: Heap, stack: StackState, program: Program) -> Machine {
        let mut control = program.0;
        control.reverse();
        Machine {
            heap,
            stack,
            control,
            steps: 0,
            counters: VmCounters::new(),
        }
    }

    /// Rearms the machine to run `program` on an empty stack and empty
    /// heap, adopting the program as the new control by reversing its own
    /// buffer — the same zero-copy move [`Machine::with_state`] performs —
    /// so a batch of compiled artifacts shares one machine instead of
    /// constructing one per program.  (Each run's final heap and stack move
    /// into its [`RunResult`], so those start over; see
    /// [`Machine::run_mut`].)
    ///
    /// A reset machine is observationally identical to [`Machine::new`] on
    /// the same program — same outcome, same final heap and stack, same step
    /// count — which the unit tests below and the `batched_execution`
    /// integration suite assert.
    pub fn reset(&mut self, program: Program) {
        self.heap.reset();
        match &mut self.stack {
            StackState::Values(vs) => vs.clear(),
            failed => *failed = StackState::empty(),
        }
        let mut control = program.0;
        control.reverse();
        self.control = control;
        self.steps = 0;
        self.counters = VmCounters::new();
    }

    /// The current heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// The current stack.
    pub fn stack(&self) -> &StackState {
        &self.stack
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// True if the machine can take no further step.
    pub fn is_terminal(&self) -> bool {
        self.control.is_empty() || matches!(self.stack, StackState::Fail(_))
    }

    /// Remaining program (in execution order) — mostly useful for debugging.
    pub fn remaining_program(&self) -> Program {
        let mut v = self.control.clone();
        v.reverse();
        Program(v)
    }

    fn fail(&mut self, code: ErrorCode) {
        self.stack = StackState::Fail(code);
        self.control.clear();
    }

    fn push_program(&mut self, p: Program) {
        // The program `p` must run before the current continuation, so its
        // instructions go on top of the (reversed) control stack.
        for i in p.0.into_iter().rev() {
            self.control.push(i);
        }
    }

    fn pop_value(&mut self) -> Option<Value> {
        match &mut self.stack {
            StackState::Values(vs) => vs.pop(),
            StackState::Fail(_) => None,
        }
    }

    fn push_value(&mut self, v: Value) {
        if let StackState::Values(vs) = &mut self.stack {
            vs.push(v);
        }
    }

    /// Performs one small step (one reduction of Fig. 2).
    ///
    /// Returns [`StepStatus::Done`] if the machine was already terminal.
    pub fn step(&mut self) -> StepStatus {
        if self.is_terminal() {
            return StepStatus::Done;
        }
        let instr = self
            .control
            .pop()
            .expect("non-terminal machine has an instruction");
        self.steps += 1;
        self.counters.retire(classify_instr(&instr));
        match instr {
            Instr::Push(op) => match op.resolve() {
                Some(v) => self.push_value(v),
                // A free variable reached execution: the program was not
                // closed. This is a dynamic type error.
                None => self.fail(ErrorCode::Type),
            },
            Instr::Add => match (self.pop_value(), self.pop_value()) {
                (Some(Value::Num(n1)), Some(Value::Num(n))) => {
                    self.push_value(Value::Num(n.wrapping_add(n1)))
                }
                _ => self.fail(ErrorCode::Type),
            },
            Instr::Less => match (self.pop_value(), self.pop_value()) {
                (Some(Value::Num(n1)), Some(Value::Num(n))) => {
                    self.push_value(Value::Num(if n < n1 { 0 } else { 1 }))
                }
                _ => self.fail(ErrorCode::Type),
            },
            Instr::If0(p1, p2) => match self.pop_value() {
                Some(Value::Num(n)) => {
                    if n == 0 {
                        self.push_program(p1);
                    } else {
                        self.push_program(p2);
                    }
                }
                _ => self.fail(ErrorCode::Type),
            },
            Instr::Lam(xs, body) => {
                // Pop one value per binder; the leftmost binder receives the
                // top of the stack (Fig. 3 compiles pairs with
                // `lam x2,x1. …` so that x2 is the most recently pushed).
                let mut subst = Vec::with_capacity(xs.len());
                let mut ok = true;
                for x in &xs {
                    match self.pop_value() {
                        Some(v) => subst.push((x.clone(), v)),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    self.fail(ErrorCode::Type);
                } else {
                    let mut body = body;
                    for (x, v) in &subst {
                        body = body.subst(x, v);
                    }
                    self.push_program(body);
                }
            }
            Instr::Call => match self.pop_value() {
                Some(Value::Thunk(p)) => self.push_program(p),
                _ => self.fail(ErrorCode::Type),
            },
            Instr::Idx => match (self.pop_value(), self.pop_value()) {
                (Some(Value::Num(n)), Some(Value::Array(vs))) => {
                    if n >= 0 && (n as usize) < vs.len() {
                        self.push_value(vs[n as usize].clone());
                    } else {
                        self.fail(ErrorCode::Idx);
                    }
                }
                _ => self.fail(ErrorCode::Type),
            },
            Instr::Len => match self.pop_value() {
                Some(Value::Array(vs)) => self.push_value(Value::Num(vs.len() as i64)),
                _ => self.fail(ErrorCode::Type),
            },
            Instr::Alloc => match self.pop_value() {
                Some(v) => {
                    let l = self.heap.alloc(v);
                    self.push_value(Value::Loc(l));
                }
                None => self.fail(ErrorCode::Type),
            },
            Instr::Read => match self.pop_value() {
                Some(Value::Loc(l)) => match self.heap.read(l) {
                    Some(v) => {
                        let v = v.clone();
                        self.push_value(v);
                    }
                    None => self.fail(ErrorCode::Type),
                },
                _ => self.fail(ErrorCode::Type),
            },
            Instr::Write => match (self.pop_value(), self.pop_value()) {
                (Some(v), Some(Value::Loc(l))) => {
                    if !self.heap.write(l, v) {
                        self.fail(ErrorCode::Type);
                    }
                }
                _ => self.fail(ErrorCode::Type),
            },
            Instr::Fail(c) => self.fail(c),
        }
        if let StackState::Values(vs) = &self.stack {
            self.counters.note_stack_depth(vs.len());
        }
        StepStatus::Continue
    }

    /// Runs the machine until it is terminal or the fuel is exhausted,
    /// consuming the machine.
    pub fn run(mut self, fuel: Fuel) -> RunResult {
        self.run_mut(fuel)
    }

    /// Like [`Machine::run`], but borrows the machine so it can be
    /// [`Machine::reset`] and reused for the next program of a batch.  The
    /// final heap and stack move into the returned [`RunResult`] (results
    /// own their final configuration); the machine is left with empty ones,
    /// exactly as a reset would leave it.
    pub fn run_mut(&mut self, mut fuel: Fuel) -> RunResult {
        while !self.is_terminal() {
            if !fuel.consume() {
                return self.take_result(Outcome::OutOfFuel);
            }
            self.step();
        }
        let outcome = match &self.stack {
            StackState::Fail(c) => Outcome::Fail(*c),
            StackState::Values(vs) => match vs.last() {
                Some(v) => Outcome::Value(v.clone()),
                None => Outcome::Fail(ErrorCode::Type),
            },
        };
        self.take_result(outcome)
    }

    /// Packages the run's outcome, moving the final heap and stack out of
    /// the machine.
    fn take_result(&mut self, outcome: Outcome<Value>) -> RunResult {
        // StackLang never frees or reuses locations, so the final population
        // *is* both the allocation total and the live-cell peak; read it
        // before the heap moves out.
        let mut counters = self.counters;
        counters.heap_allocs = self.heap.len() as u64;
        counters.heap_peak_live = self.heap.len() as u64;
        RunResult {
            outcome,
            heap: std::mem::take(&mut self.heap),
            stack: std::mem::replace(&mut self.stack, StackState::empty()),
            steps: self.steps,
            counters,
        }
    }

    /// Convenience: run a closed program from the empty configuration.
    pub fn run_program(program: Program, fuel: Fuel) -> RunResult {
        Machine::new(program).run(fuel)
    }

    /// Batch counterpart of [`Machine::run_program`]: runs each closed
    /// program on **one** reused machine ([`Machine::reset`] between
    /// programs), returning results in input order.  Observationally
    /// identical to calling [`Machine::run_program`] per program.
    pub fn run_batch(programs: impl IntoIterator<Item = Program>, fuel: Fuel) -> Vec<RunResult> {
        let mut machine = Machine::new(Program::empty());
        programs
            .into_iter()
            .map(|program| {
                machine.reset(program);
                machine.run_mut(fuel)
            })
            .collect()
    }
}

/// The opcode class an instruction retires under (see
/// [`semint_core::telemetry::OpClass`] for the bucket definitions).
fn classify_instr(i: &Instr) -> OpClass {
    match i {
        Instr::Push(_) | Instr::Add | Instr::Less | Instr::Idx | Instr::Len => OpClass::Data,
        Instr::If0(..) | Instr::Fail(_) => OpClass::Control,
        Instr::Lam(..) | Instr::Call => OpClass::Fun,
        Instr::Alloc | Instr::Read | Instr::Write => OpClass::Heap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{drop_top, dup, swap};
    use crate::heap::Loc;
    use crate::instr::Operand;
    use semint_core::Var;

    fn run(p: Program) -> RunResult {
        Machine::run_program(p, Fuel::default())
    }

    #[test]
    fn arithmetic_and_comparison() {
        let r = run(Program::from(vec![
            Instr::push_num(4),
            Instr::push_num(5),
            Instr::Add,
        ]));
        assert_eq!(r.outcome, Outcome::Value(Value::Num(9)));

        // less? pushes 0 (true) when n < n'.
        let r = run(Program::from(vec![
            Instr::push_num(3),
            Instr::push_num(8),
            Instr::Less,
        ]));
        assert_eq!(r.outcome, Outcome::Value(Value::Num(0)));
        let r = run(Program::from(vec![
            Instr::push_num(8),
            Instr::push_num(3),
            Instr::Less,
        ]));
        assert_eq!(r.outcome, Outcome::Value(Value::Num(1)));
    }

    #[test]
    fn if0_branches_on_zero() {
        let p = |n| {
            Program::from(vec![
                Instr::push_num(n),
                Instr::If0(
                    Program::single(Instr::push_num(100)),
                    Program::single(Instr::push_num(200)),
                ),
            ])
        };
        assert_eq!(run(p(0)).outcome, Outcome::Value(Value::Num(100)));
        assert_eq!(run(p(7)).outcome, Outcome::Value(Value::Num(200)));
        assert_eq!(run(p(-3)).outcome, Outcome::Value(Value::Num(200)));
    }

    #[test]
    fn if0_on_empty_stack_is_a_type_error() {
        let p = Program::single(Instr::If0(Program::empty(), Program::empty()));
        assert_eq!(run(p).outcome, Outcome::Fail(ErrorCode::Type));
    }

    #[test]
    fn lam_substitutes_and_thunk_call_resumes() {
        // push 21, lam x. (push x, push x, add)  ==>  42
        let p = Program::from(vec![
            Instr::push_num(21),
            Instr::lam1(
                "x",
                Program::from(vec![Instr::push_var("x"), Instr::push_var("x"), Instr::Add]),
            ),
        ]);
        assert_eq!(run(p).outcome, Outcome::Value(Value::Num(42)));

        // thunks suspend: push (thunk (push 1)), call ==> 1
        let p = Program::from(vec![
            Instr::push_thunk(Program::single(Instr::push_num(1))),
            Instr::Call,
        ]);
        assert_eq!(run(p).outcome, Outcome::Value(Value::Num(1)));
    }

    #[test]
    fn multi_binder_lam_pops_top_first() {
        // push 1, push 2, lam x2,x1. (push [x1, x2])  ==> [1, 2]
        let p = Program::from(vec![
            Instr::push_num(1),
            Instr::push_num(2),
            Instr::Lam(
                vec![Var::new("x2"), Var::new("x1")],
                Program::single(Instr::Push(Operand::Lit(Value::Array(vec![])))),
            ),
        ]);
        // Build the body properly: push [x1, x2] is sugar we don't have, so use
        // two pushes and a two-binder lam to array-construct via builder in
        // compile tests; here we only check binding order via arithmetic:
        // lam x2,x1. (push x1) should give 1 (the first pushed value).
        let p2 = Program::from(vec![
            Instr::push_num(1),
            Instr::push_num(2),
            Instr::Lam(
                vec![Var::new("x2"), Var::new("x1")],
                Program::single(Instr::push_var("x1")),
            ),
        ]);
        assert_eq!(run(p2).outcome, Outcome::Value(Value::Num(1)));
        let _ = p;
    }

    #[test]
    fn call_of_non_thunk_fails_type() {
        let p = Program::from(vec![Instr::push_num(0), Instr::Call]);
        assert_eq!(run(p).outcome, Outcome::Fail(ErrorCode::Type));
    }

    #[test]
    fn array_indexing_and_len() {
        let arr = Value::array([Value::Num(10), Value::Num(20), Value::Num(30)]);
        let p = Program::from(vec![
            Instr::push_val(arr.clone()),
            Instr::push_num(1),
            Instr::Idx,
        ]);
        assert_eq!(run(p).outcome, Outcome::Value(Value::Num(20)));

        let p = Program::from(vec![Instr::push_val(arr.clone()), Instr::Len]);
        assert_eq!(run(p).outcome, Outcome::Value(Value::Num(3)));

        let p = Program::from(vec![Instr::push_val(arr), Instr::push_num(5), Instr::Idx]);
        assert_eq!(run(p).outcome, Outcome::Fail(ErrorCode::Idx));
    }

    #[test]
    fn heap_alloc_read_write() {
        // ref 7; !r  ==> 7
        let p = Program::from(vec![Instr::push_num(7), Instr::Alloc, Instr::Read]);
        assert_eq!(run(p).outcome, Outcome::Value(Value::Num(7)));

        // r := 9; !r ==> 9  (keep the location around with dup)
        let p = Program::from(vec![
            Instr::push_num(7),
            Instr::Alloc,
            dup(),
            dup(),
            Instr::push_num(9),
            Instr::Write,
            Instr::Read,
        ]);
        let r = run(p);
        assert_eq!(r.outcome, Outcome::Value(Value::Num(9)));
        assert_eq!(r.heap.read(Loc(0)), Some(&Value::Num(9)));
    }

    #[test]
    fn explicit_fail_aborts_with_code() {
        let p = Program::from(vec![
            Instr::push_num(1),
            Instr::Fail(ErrorCode::Conv),
            Instr::push_num(2),
        ]);
        let r = run(p);
        assert_eq!(r.outcome, Outcome::Fail(ErrorCode::Conv));
        assert_eq!(r.stack, StackState::Fail(ErrorCode::Conv));
    }

    #[test]
    fn fuel_exhaustion_reports_out_of_fuel() {
        // An infinite loop: a thunk that pushes itself and calls itself… we
        // can't easily build a self-referential thunk, so loop via repeated
        // program: push big computation with limited fuel instead.
        let mut instrs = Vec::new();
        for _ in 0..100 {
            instrs.push(Instr::push_num(1));
            instrs.push(Instr::push_num(1));
            instrs.push(Instr::Add);
            instrs.push(drop_top());
        }
        let r = Machine::run_program(Program::from(instrs), Fuel::steps(10));
        assert_eq!(r.outcome, Outcome::OutOfFuel);
        assert_eq!(r.steps, 10);
    }

    #[test]
    fn swap_dup_drop_macros_behave() {
        // swap: push 1, push 2, swap ==> top is 1
        let p = Program::from(vec![Instr::push_num(1), Instr::push_num(2), swap()]);
        assert_eq!(run(p).outcome, Outcome::Value(Value::Num(1)));

        // dup: push 3, dup, add ==> 6
        let p = Program::from(vec![Instr::push_num(3), dup(), Instr::Add]);
        assert_eq!(run(p).outcome, Outcome::Value(Value::Num(6)));

        // drop: push 1, push 2, drop ==> 1
        let p = Program::from(vec![Instr::push_num(1), Instr::push_num(2), drop_top()]);
        assert_eq!(run(p).outcome, Outcome::Value(Value::Num(1)));
    }

    #[test]
    fn empty_program_on_empty_stack_has_no_value() {
        let r = run(Program::empty());
        assert_eq!(r.outcome, Outcome::Fail(ErrorCode::Type));
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn running_an_open_program_is_a_type_error() {
        let r = run(Program::single(Instr::push_var("x")));
        assert_eq!(r.outcome, Outcome::Fail(ErrorCode::Type));
    }

    #[test]
    fn reset_machine_is_observationally_identical_to_a_fresh_one() {
        // Programs exercising every piece of machine state a reset must
        // clear: stack values, heap cells, substitution, failure states.
        let programs: Vec<Program> = vec![
            Program::from(vec![Instr::push_num(4), Instr::push_num(5), Instr::Add]),
            Program::from(vec![Instr::push_num(7), Instr::Alloc, Instr::Read]),
            Program::from(vec![
                Instr::push_num(7),
                Instr::Alloc,
                dup(),
                dup(),
                Instr::push_num(9),
                Instr::Write,
                Instr::Read,
            ]),
            Program::from(vec![Instr::push_num(1), Instr::Fail(ErrorCode::Conv)]),
            Program::single(Instr::lam1(
                "x",
                Program::from(vec![Instr::push_var("x"), Instr::push_var("x")]),
            )),
        ];
        let mut reused = Machine::new(Program::empty());
        // Dirty the machine before the comparison runs so the reset has
        // something real to clear.
        let _ = reused.run_mut(Fuel::default());
        for p in &programs {
            reused.reset(p.clone());
            let from_reset = reused.run_mut(Fuel::default());
            let from_fresh = Machine::run_program(p.clone(), Fuel::default());
            assert_eq!(from_reset, from_fresh, "program {p:?}");
        }
        // Fuel exhaustion mid-run leaves no residue either: a half-run
        // program does not leak stack or heap state into the next one.
        let long: Vec<Instr> = (0..50).map(Instr::push_num).collect();
        reused.reset(Program::from(long));
        assert_eq!(reused.run_mut(Fuel::steps(10)).outcome, Outcome::OutOfFuel);
        let p = Program::from(vec![Instr::push_num(1), Instr::push_num(2), Instr::Add]);
        reused.reset(p.clone());
        assert_eq!(
            reused.run_mut(Fuel::default()),
            Machine::run_program(p, Fuel::default())
        );
    }

    #[test]
    fn run_batch_matches_per_program_runs_in_order() {
        let programs = vec![
            Program::from(vec![Instr::push_num(4), Instr::push_num(5), Instr::Add]),
            Program::single(Instr::Fail(ErrorCode::Conv)),
            Program::from(vec![Instr::push_num(7), Instr::Alloc, Instr::Read]),
        ];
        let singly: Vec<RunResult> = programs
            .iter()
            .map(|p| Machine::run_program(p.clone(), Fuel::default()))
            .collect();
        let batched = Machine::run_batch(programs, Fuel::default());
        assert_eq!(batched, singly);
        assert!(Machine::run_batch(Vec::new(), Fuel::default()).is_empty());
    }

    #[test]
    fn reset_recovers_from_a_failed_stack() {
        // Step (rather than run) to terminality, so the machine still holds
        // the `Fail` stack when the reset happens.
        let mut reused = Machine::new(Program::single(Instr::Fail(ErrorCode::Type)));
        while !reused.is_terminal() {
            reused.step();
        }
        assert!(matches!(reused.stack(), StackState::Fail(_)));
        let p = Program::from(vec![Instr::push_num(21), dup(), Instr::Add]);
        reused.reset(p.clone());
        assert_eq!(
            reused.run_mut(Fuel::default()),
            Machine::run_program(p, Fuel::default())
        );
    }

    #[test]
    fn counters_account_for_every_step_and_track_heap_activity() {
        let p = Program::from(vec![
            Instr::push_num(7),
            Instr::Alloc,
            dup(),
            dup(),
            Instr::push_num(9),
            Instr::Write,
            Instr::Read,
        ]);
        let r = run(p.clone());
        let c = r.counters;
        assert_eq!(
            c.total_instrs(),
            r.steps,
            "every retired step is classified exactly once"
        );
        assert!(c.instr_heap >= 3, "alloc/write/read are heap steps");
        assert!(c.instr_data > 0, "push is a data step");
        assert_eq!(c.heap_allocs, 1);
        assert_eq!(c.heap_peak_live, 1);
        assert!(c.stack_peak >= 3, "dup/dup leaves three entries live");
        // Counters are digest-grade: a second identical run agrees exactly.
        assert_eq!(run(p).counters, c);
    }

    #[test]
    fn step_status_done_when_terminal() {
        let mut m = Machine::new(Program::empty());
        assert!(m.is_terminal());
        assert_eq!(m.step(), StepStatus::Done);
        assert_eq!(m.steps_taken(), 0);
    }

    #[test]
    fn remaining_program_reports_execution_order() {
        let m = Machine::new(Program::from(vec![Instr::push_num(1), Instr::Add]));
        assert_eq!(
            m.remaining_program(),
            Program::from(vec![Instr::push_num(1), Instr::Add])
        );
    }
}
