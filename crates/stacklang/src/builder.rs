//! Stack-shuffling macros and program-building helpers.
//!
//! Fig. 3 defines three macros used pervasively by the compilers and by the
//! conversion glue code:
//!
//! ```text
//! SWAP ≜ lam x. (lam y. push x, push y)
//! DROP ≜ lam x. ()
//! DUP  ≜ lam x. (push x, push x)
//! ```
//!
//! They are provided here as functions returning the corresponding
//! instruction, together with helpers for the array-building `lam` shapes the
//! compilers emit (`lam xₙ,…,x₁. (push [x₁,…,xₙ])`), which are used to encode
//! pairs, sums and RefLL array literals.

use crate::instr::{Instr, Operand, Program};
use semint_core::Var;

/// `SWAP`: exchanges the two topmost stack values.
pub fn swap() -> Instr {
    let x = Var::new("swap%x");
    let y = Var::new("swap%y");
    Instr::Lam(
        vec![x.clone()],
        Program::from(vec![Instr::Lam(
            vec![y.clone()],
            Program::from(vec![
                Instr::Push(Operand::Var(x)),
                Instr::Push(Operand::Var(y)),
            ]),
        )]),
    )
}

/// `DROP`: discards the top stack value.
pub fn drop_top() -> Instr {
    Instr::Lam(vec![Var::new("drop%x")], Program::empty())
}

/// `DUP`: duplicates the top stack value.
pub fn dup() -> Instr {
    let x = Var::new("dup%x");
    Instr::Lam(
        vec![x.clone()],
        Program::from(vec![
            Instr::Push(Operand::Var(x.clone())),
            Instr::Push(Operand::Var(x)),
        ]),
    )
}

/// `lam xₙ,…,x₁. (push [x₁,…,xₙ])`: pops `n` values (the most recently pushed
/// becomes the *last* array element) and pushes the array containing them in
/// push order.  This is the compiled representation of tuples (Fig. 3) and of
/// RefLL array literals.
pub fn pack(n: usize) -> Instr {
    let names: Vec<Var> = (1..=n).map(|i| Var::new(format!("pack%x{i}"))).collect();
    // Binders are listed top-of-stack first, i.e. xₙ, …, x₁.
    let binders: Vec<Var> = names.iter().rev().cloned().collect();
    let template = Operand::Array(names.iter().map(|x| Operand::Var(x.clone())).collect());
    Instr::Lam(binders, Program::single(Instr::Push(template)))
}

/// A program popping two values `v₁` (pushed first) and `v₂` (top) and
/// pushing the pair encoding `[v₁, v₂]`.
pub fn pair() -> Program {
    Program::single(pack(2))
}

/// Projects element `i` out of an array on top of the stack: `push i, idx`.
pub fn project(i: i64) -> Program {
    Program::from(vec![Instr::push_num(i), Instr::Idx])
}

/// Pops a value `v` and pushes the tagged array `[tag, v]` — the compiled
/// representation of `inl`/`inr` with tags 0 and 1 (Fig. 3).
pub fn tagged(tag: i64) -> Program {
    let x = Var::new("tag%x");
    Program::single(Instr::Lam(
        vec![x.clone()],
        Program::single(Instr::Push(Operand::Array(vec![
            Operand::Lit(crate::instr::Value::Num(tag)),
            Operand::Var(x),
        ]))),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::{Fuel, Outcome, Value};

    fn run(p: Program) -> Outcome<Value> {
        Machine::run_program(p, Fuel::default()).outcome
    }

    #[test]
    fn pack_then_project_recovers_elements() {
        let build = Program::from(vec![Instr::push_num(10), Instr::push_num(20), pack(2)]);
        assert_eq!(
            run(build.clone().then(project(0))),
            Outcome::Value(Value::Num(10))
        );
        assert_eq!(
            run(build.clone().then(project(1))),
            Outcome::Value(Value::Num(20))
        );
        assert_eq!(
            run(build),
            Outcome::Value(Value::array([Value::Num(10), Value::Num(20)]))
        );
    }

    #[test]
    fn tagged_values_carry_tag_and_payload() {
        let build = Program::single(Instr::push_num(99)).then(tagged(1));
        assert_eq!(
            run(build),
            Outcome::Value(Value::array([Value::Num(1), Value::Num(99)]))
        );
    }

    #[test]
    fn nullary_pack_pushes_empty_array() {
        let p = Program::from(vec![pack(0), Instr::Len]);
        assert_eq!(run(p), Outcome::Value(Value::Num(0)));
    }

    #[test]
    fn pair_is_binary_pack() {
        let p = Program::from(vec![Instr::push_num(1), Instr::push_num(2)])
            .then(pair())
            .then(Program::single(Instr::Len));
        assert_eq!(run(p), Outcome::Value(Value::Num(2)));
    }

    #[test]
    fn swap_dup_drop_shapes() {
        // Covered behaviourally in machine::tests; here we check they are
        // closed programs (no stray free variables).
        for i in [swap(), dup(), drop_top(), pack(3)] {
            assert!(Program::single(i).is_closed());
        }
    }

    #[test]
    fn pack_underflow_is_a_type_error() {
        // Only one value on the stack but pack(2) needs two.
        let p = Program::from(vec![Instr::push_num(1), pack(2)]);
        assert_eq!(run(p), Outcome::Fail(semint_core::ErrorCode::Type));
    }
}
