//! The StackLang heap: a finite map from locations to values.
//!
//! `alloc` extends the heap with a fresh location (`H ⊎ {ℓ : v}`), `read`
//! looks a location up, and `write` performs a strong update.  Locations are
//! never reused in this target (unlike the §5 target LCVM), which matches the
//! ML-style reference model of case study 1.

use crate::instr::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A heap location `ℓ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(pub u64);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// The StackLang heap `H ::= {ℓ: v, …}`.
///
/// A `BTreeMap` keeps iteration deterministic, which the executable model
/// checkers rely on when comparing heaps against heap typings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Heap {
    cells: BTreeMap<Loc, Value>,
    next: u64,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Clears the heap in place — no live cells, fresh location counter — so
    /// a reused machine ([`crate::Machine::reset`]) starts its next program
    /// from a state indistinguishable from [`Heap::new`].
    pub fn reset(&mut self) {
        self.cells.clear();
        self.next = 0;
    }

    /// Allocates a fresh location holding `v` and returns it.
    pub fn alloc(&mut self, v: Value) -> Loc {
        let loc = Loc(self.next);
        self.next += 1;
        self.cells.insert(loc, v);
        loc
    }

    /// Reads the value at `loc`, if allocated.
    pub fn read(&self, loc: Loc) -> Option<&Value> {
        self.cells.get(&loc)
    }

    /// Writes `v` at `loc`. Returns `false` (and leaves the heap unchanged)
    /// if the location is not allocated.
    pub fn write(&mut self, loc: Loc, v: Value) -> bool {
        match self.cells.get_mut(&loc) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }
    }

    /// True if `loc` is allocated.
    pub fn contains(&self, loc: Loc) -> bool {
        self.cells.contains_key(&loc)
    }

    /// Number of allocated locations.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over the allocated locations and their contents.
    pub fn iter(&self) -> impl Iterator<Item = (&Loc, &Value)> {
        self.cells.iter()
    }
}

impl fmt::Display for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (l, v)) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}: {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut h = Heap::new();
        let l = h.alloc(Value::Num(7));
        assert_eq!(h.read(l), Some(&Value::Num(7)));
        assert!(h.write(l, Value::Num(9)));
        assert_eq!(h.read(l), Some(&Value::Num(9)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn locations_are_never_reused() {
        let mut h = Heap::new();
        let l1 = h.alloc(Value::Num(1));
        let l2 = h.alloc(Value::Num(2));
        assert_ne!(l1, l2);
    }

    #[test]
    fn reset_heaps_are_indistinguishable_from_fresh_ones() {
        let mut h = Heap::new();
        h.alloc(Value::Num(1));
        h.alloc(Value::Num(2));
        h.reset();
        assert_eq!(h, Heap::new(), "reset state equals a fresh heap");
        // Allocation restarts at ℓ0, as on a fresh heap.
        assert_eq!(h.alloc(Value::Num(3)), Loc(0));
    }

    #[test]
    fn write_to_unallocated_location_fails() {
        let mut h = Heap::new();
        assert!(!h.write(Loc(42), Value::Num(0)));
        assert!(!h.contains(Loc(42)));
        assert!(h.is_empty());
    }

    #[test]
    fn display_shows_cells() {
        let mut h = Heap::new();
        h.alloc(Value::Num(3));
        assert_eq!(h.to_string(), "{ℓ0: 3}");
    }
}
