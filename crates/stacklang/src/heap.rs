//! The StackLang heap: a finite map from locations to values.
//!
//! `alloc` extends the heap with a fresh location (`H ⊎ {ℓ : v}`), `read`
//! looks a location up, and `write` performs a strong update.  Locations are
//! never reused in this target (unlike the §5 target LCVM), which matches the
//! ML-style reference model of case study 1.
//!
//! # Layout
//!
//! Because locations are allocated densely (`ℓ0, ℓ1, …`) and never freed,
//! the heap is a plain `Vec<Value>` slab: `Loc(n)` is index `n`, a location
//! is allocated iff its index is below the length, and `alloc` is a push.
//! Reads and writes are direct indexing instead of a tree walk, and
//! [`Heap::reset`] is a `clear` that keeps the buffer's capacity, so a
//! machine reused across a batch ([`crate::Machine::reset`]) stops paying
//! for heap growth after its first program.  Iteration order is ascending
//! by location — the same order the previous `BTreeMap` representation
//! gave — which the executable model checkers rely on when comparing heaps
//! against heap typings.

use crate::instr::Value;
use std::fmt;

/// A heap location `ℓ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(pub u64);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// The StackLang heap `H ::= {ℓ: v, …}`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Heap {
    cells: Vec<Value>,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Clears the heap in place — no live cells, fresh location counter — so
    /// a reused machine ([`crate::Machine::reset`]) starts its next program
    /// from a state indistinguishable from [`Heap::new`].  The slab's
    /// capacity is retained.
    pub fn reset(&mut self) {
        self.cells.clear();
    }

    fn index(loc: Loc) -> Option<usize> {
        usize::try_from(loc.0).ok()
    }

    /// Allocates a fresh location holding `v` and returns it.
    pub fn alloc(&mut self, v: Value) -> Loc {
        let loc = Loc(self.cells.len() as u64);
        self.cells.push(v);
        loc
    }

    /// Reads the value at `loc`, if allocated.
    pub fn read(&self, loc: Loc) -> Option<&Value> {
        self.cells.get(Self::index(loc)?)
    }

    /// Writes `v` at `loc`. Returns `false` (and leaves the heap unchanged)
    /// if the location is not allocated.
    pub fn write(&mut self, loc: Loc, v: Value) -> bool {
        match Self::index(loc).and_then(|i| self.cells.get_mut(i)) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }
    }

    /// True if `loc` is allocated.
    pub fn contains(&self, loc: Loc) -> bool {
        Self::index(loc).is_some_and(|i| i < self.cells.len())
    }

    /// Number of allocated locations.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over the allocated locations and their contents, in
    /// ascending location order.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, &Value)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, v)| (Loc(i as u64), v))
    }
}

impl fmt::Display for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (l, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}: {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut h = Heap::new();
        let l = h.alloc(Value::Num(7));
        assert_eq!(h.read(l), Some(&Value::Num(7)));
        assert!(h.write(l, Value::Num(9)));
        assert_eq!(h.read(l), Some(&Value::Num(9)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn locations_are_never_reused() {
        let mut h = Heap::new();
        let l1 = h.alloc(Value::Num(1));
        let l2 = h.alloc(Value::Num(2));
        assert_ne!(l1, l2);
    }

    #[test]
    fn reset_heaps_are_indistinguishable_from_fresh_ones() {
        let mut h = Heap::new();
        h.alloc(Value::Num(1));
        h.alloc(Value::Num(2));
        h.reset();
        assert_eq!(h, Heap::new(), "reset state equals a fresh heap");
        // Allocation restarts at ℓ0, as on a fresh heap.
        assert_eq!(h.alloc(Value::Num(3)), Loc(0));
    }

    #[test]
    fn write_to_unallocated_location_fails() {
        let mut h = Heap::new();
        assert!(!h.write(Loc(42), Value::Num(0)));
        assert!(!h.contains(Loc(42)));
        assert!(h.is_empty());
        // Out-of-range locations (e.g. from a corrupted trace) are simply
        // unallocated, not a panic.
        assert_eq!(h.read(Loc(u64::MAX)), None);
    }

    #[test]
    fn iteration_is_ascending_by_location() {
        let mut h = Heap::new();
        h.alloc(Value::Num(10));
        h.alloc(Value::Num(20));
        h.alloc(Value::Num(30));
        let locs: Vec<u64> = h.iter().map(|(l, _)| l.0).collect();
        assert_eq!(locs, vec![0, 1, 2]);
    }

    #[test]
    fn display_shows_cells() {
        let mut h = Heap::new();
        h.alloc(Value::Num(3));
        assert_eq!(h.to_string(), "{ℓ0: 3}");
    }
}
