//! Property tests for the StackLang machine (Fig. 2).

use proptest::prelude::*;
use semint_core::{ErrorCode, Fuel, Outcome, Var};
use stacklang::builder::{dup, pack, swap};
use stacklang::{Instr, Machine, Program, Value};

/// A tiny arithmetic-expression language with a reference evaluator, compiled
/// to StackLang the same way the RefLL compiler treats `+`.
#[derive(Debug, Clone)]
enum Arith {
    Lit(i64),
    Add(Box<Arith>, Box<Arith>),
    IfZero(Box<Arith>, Box<Arith>, Box<Arith>),
}

fn arith_strategy() -> impl Strategy<Value = Arith> {
    let leaf = (-100i64..100).prop_map(Arith::Lit);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Arith::IfZero(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn eval(a: &Arith) -> i64 {
    match a {
        Arith::Lit(n) => *n,
        Arith::Add(x, y) => eval(x).wrapping_add(eval(y)),
        Arith::IfZero(c, t, f) => {
            if eval(c) == 0 {
                eval(t)
            } else {
                eval(f)
            }
        }
    }
}

fn compile(a: &Arith) -> Program {
    match a {
        Arith::Lit(n) => Program::single(Instr::push_num(*n)),
        Arith::Add(x, y) => compile(x)
            .then(compile(y))
            .then_instr(swap())
            .then_instr(Instr::Add),
        Arith::IfZero(c, t, f) => compile(c).then_instr(Instr::If0(compile(t), compile(f))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Compiled arithmetic agrees with the reference evaluator.
    #[test]
    fn compiled_arithmetic_agrees_with_reference(a in arith_strategy()) {
        let result = Machine::run_program(compile(&a), Fuel::default());
        prop_assert_eq!(result.outcome, Outcome::Value(Value::Num(eval(&a))));
    }

    /// The machine is deterministic: two runs of the same program agree on
    /// outcome and step count.
    #[test]
    fn machine_is_deterministic(a in arith_strategy()) {
        let p = compile(&a);
        let r1 = Machine::run_program(p.clone(), Fuel::default());
        let r2 = Machine::run_program(p, Fuel::default());
        prop_assert_eq!(r1.outcome, r2.outcome);
        prop_assert_eq!(r1.steps, r2.steps);
    }

    /// Fuel monotonicity: if a program terminates within some budget, any
    /// larger budget gives the same outcome; any smaller budget either gives
    /// the same outcome or OutOfFuel.
    #[test]
    fn fuel_is_monotone(a in arith_strategy(), slack in 0u64..50) {
        let p = compile(&a);
        let full = Machine::run_program(p.clone(), Fuel::default());
        let needed = full.steps;
        let bigger = Machine::run_program(p.clone(), Fuel::steps(needed + slack));
        prop_assert_eq!(bigger.outcome, full.outcome.clone());
        let smaller = Machine::run_program(p, Fuel::steps(needed.saturating_sub(1 + slack)));
        prop_assert!(
            smaller.outcome == Outcome::OutOfFuel || smaller.outcome == full.outcome,
            "truncated run produced {:?}", smaller.outcome
        );
    }

    /// Substitution is capture-avoiding: substituting into a program that
    /// rebinds the same name does not change its behaviour.
    #[test]
    fn substitution_respects_shadowing(n in -50i64..50, m in -50i64..50) {
        // lam x. (push x)  applied twice with different outer substitutions.
        let body = Program::from(vec![Instr::push_var("x")]);
        let shadowing = Program::single(Instr::Lam(vec![Var::new("x")], body));
        let subst = shadowing.subst(&Var::new("x"), &Value::Num(n));
        // Regardless of the outer substitution, pushing m and running the lam
        // yields m (the inner binder wins).
        let p = Program::single(Instr::push_num(m)).then(subst);
        let r = Machine::run_program(p, Fuel::default());
        prop_assert_eq!(r.outcome, Outcome::Value(Value::Num(m)));
    }

    /// pack(k) followed by idx recovers each element in push order.
    #[test]
    fn pack_then_index_recovers_elements(values in proptest::collection::vec(-100i64..100, 1..6)) {
        let mut p = Program::empty();
        for v in &values {
            p = p.then_instr(Instr::push_num(*v));
        }
        p = p.then_instr(pack(values.len()));
        for (i, v) in values.iter().enumerate() {
            let q = p.clone().then_instr(dup()).then_instr(Instr::push_num(i as i64)).then_instr(Instr::Idx);
            let r = Machine::run_program(q, Fuel::default());
            prop_assert_eq!(r.outcome, Outcome::Value(Value::Num(*v)));
        }
        // Out-of-bounds indexing raises Idx, never Type.
        let q = p.then_instr(Instr::push_num(values.len() as i64)).then_instr(Instr::Idx);
        let r = Machine::run_program(q, Fuel::default());
        prop_assert_eq!(r.outcome, Outcome::Fail(ErrorCode::Idx));
    }

    /// The Vec-backed slab heap agrees with the map semantics it replaced:
    /// locations are dense, never reused, reads/writes round-trip, and a
    /// reset heap is observationally a fresh one.
    #[test]
    fn slab_heap_matches_map_semantics(
        values in proptest::collection::vec(-100i64..100, 1..20),
        probe in any::<u64>(),
    ) {
        use stacklang::heap::{Heap, Loc};
        use std::collections::BTreeMap;
        let mut heap = Heap::new();
        let mut model: BTreeMap<Loc, i64> = BTreeMap::new();
        for (i, n) in values.iter().enumerate() {
            let l = heap.alloc(Value::Num(*n));
            prop_assert_eq!(l, Loc(i as u64), "allocation is dense and in order");
            prop_assert!(!model.contains_key(&l), "locations are never reused");
            model.insert(l, *n);
        }
        for (l, n) in &model {
            prop_assert_eq!(heap.read(*l), Some(&Value::Num(*n)));
            prop_assert!(heap.write(*l, Value::Num(n + 1)));
            prop_assert_eq!(heap.read(*l), Some(&Value::Num(n + 1)));
        }
        let stray = Loc(probe.max(values.len() as u64));
        prop_assert!(!heap.contains(stray));
        prop_assert_eq!(heap.read(stray), None);
        prop_assert!(!heap.write(stray, Value::Num(0)));
        prop_assert_eq!(heap.len(), model.len());
        prop_assert_eq!(
            heap.iter().map(|(l, _)| l).collect::<Vec<_>>(),
            model.keys().copied().collect::<Vec<_>>(),
            "iteration order matches the old BTreeMap order"
        );
        heap.reset();
        prop_assert_eq!(&heap, &Heap::new(), "reset equals fresh");
        prop_assert_eq!(heap.alloc(Value::Num(0)), Loc(0), "allocation restarts at l0");
    }

    /// Heap operations: a write through one alias is visible through another.
    #[test]
    fn aliased_writes_are_visible(initial in -100i64..100, updated in -100i64..100) {
        // alloc initial; dup; dup; push updated; write; read
        let p = Program::from(vec![
            Instr::push_num(initial),
            Instr::Alloc,
            dup(),
            dup(),
            Instr::push_num(updated),
            Instr::Write,
            Instr::Read,
        ]);
        let r = Machine::run_program(p, Fuel::default());
        prop_assert_eq!(r.outcome, Outcome::Value(Value::Num(updated)));
    }
}
