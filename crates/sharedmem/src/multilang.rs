//! The multi-language driver for case study 1.
//!
//! [`MultiLang`] bundles the three artifacts a language designer produces in
//! the paper's framework — the convertibility rules (with glue code), the two
//! compilers, and the common target — behind one entry point: type check a
//! RefHL or RefLL program (with boundaries), compile it, and run it on the
//! StackLang machine.

use crate::convert::SharedMemConversions;
use reflang::compile::{compile_hl, compile_ll, MissingConversion};
use reflang::syntax::{HlExpr, HlType, LlExpr, LlType};
use reflang::typecheck::{check_hl, check_ll, TypeCtx, TypeError};
use semint_core::Fuel;
use stacklang::{Machine, Program, RunResult};
use std::fmt;

/// Errors from the multi-language pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MultiLangError {
    /// The program did not type check.
    Type(TypeError),
    /// A boundary had no registered conversion at compile time.
    ///
    /// With the standard rule set this cannot happen for programs that type
    /// check, because the type checker consults the same rules.
    Conversion(MissingConversion),
}

impl fmt::Display for MultiLangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiLangError::Type(e) => write!(f, "type error: {e}"),
            MultiLangError::Conversion(e) => write!(f, "conversion error: {e}"),
        }
    }
}

impl std::error::Error for MultiLangError {}

impl From<TypeError> for MultiLangError {
    fn from(e: TypeError) -> Self {
        MultiLangError::Type(e)
    }
}

impl From<MissingConversion> for MultiLangError {
    fn from(e: MissingConversion) -> Self {
        MultiLangError::Conversion(e)
    }
}

/// A compiled multi-language program, ready to run or inspect.
#[derive(Debug, Clone, PartialEq)]
pub struct Compiled {
    /// The source-level type of the program.
    pub ty: SourceType,
    /// The StackLang program it compiled to.
    pub program: Program,
}

/// Which language the top-level program was written in, with its type.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceType {
    /// A RefHL program of the given type.
    Hl(HlType),
    /// A RefLL program of the given type.
    Ll(LlType),
}

impl fmt::Display for SourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceType::Hl(t) => write!(f, "{t} (RefHL)"),
            SourceType::Ll(t) => write!(f, "{t} (RefLL)"),
        }
    }
}

/// The §3 multi-language system: RefHL + RefLL + the Fig. 4 conversions over
/// StackLang.
#[derive(Debug, Clone, Default)]
pub struct MultiLang {
    conversions: SharedMemConversions,
    fuel: Fuel,
}

impl MultiLang {
    /// A system using the given conversion rule set and the default fuel.
    pub fn new(conversions: SharedMemConversions) -> Self {
        MultiLang {
            conversions,
            fuel: Fuel::default(),
        }
    }

    /// Overrides the fuel used by [`MultiLang::run_hl`] / [`MultiLang::run_ll`].
    pub fn with_fuel(mut self, fuel: Fuel) -> Self {
        self.fuel = fuel;
        self
    }

    /// The conversion rule set in use.
    pub fn conversions(&self) -> &SharedMemConversions {
        &self.conversions
    }

    /// Type checks a closed RefHL program.
    pub fn typecheck_hl(&self, e: &HlExpr) -> Result<HlType, TypeError> {
        check_hl(&TypeCtx::empty(), e, &self.conversions)
    }

    /// Type checks a closed RefLL program.
    pub fn typecheck_ll(&self, e: &LlExpr) -> Result<LlType, TypeError> {
        check_ll(&TypeCtx::empty(), e, &self.conversions)
    }

    /// Type checks and compiles a closed RefHL program.
    pub fn compile_hl(&self, e: &HlExpr) -> Result<Compiled, MultiLangError> {
        let ty = self.typecheck_hl(e)?;
        let program = compile_hl(&TypeCtx::empty(), e, &self.conversions)?;
        Ok(Compiled {
            ty: SourceType::Hl(ty),
            program,
        })
    }

    /// Type checks and compiles a closed RefLL program.
    pub fn compile_ll(&self, e: &LlExpr) -> Result<Compiled, MultiLangError> {
        let ty = self.typecheck_ll(e)?;
        let program = compile_ll(&TypeCtx::empty(), e, &self.conversions)?;
        Ok(Compiled {
            ty: SourceType::Ll(ty),
            program,
        })
    }

    /// Type checks, compiles and runs a closed RefHL program.
    pub fn run_hl(&self, e: &HlExpr) -> Result<RunResult, MultiLangError> {
        let compiled = self.compile_hl(e)?;
        Ok(Machine::run_program(compiled.program, self.fuel))
    }

    /// Type checks, compiles and runs a closed RefLL program.
    pub fn run_ll(&self, e: &LlExpr) -> Result<RunResult, MultiLangError> {
        let compiled = self.compile_ll(e)?;
        Ok(Machine::run_program(compiled.program, self.fuel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semint_core::{ErrorCode, Outcome};
    use stacklang::Value;

    fn ml() -> MultiLang {
        MultiLang::new(SharedMemConversions::standard())
    }

    #[test]
    fn boundary_free_programs_run_as_usual() {
        let e = HlExpr::if_(
            HlExpr::bool_(true),
            HlExpr::bool_(false),
            HlExpr::bool_(true),
        );
        let r = ml().run_hl(&e).unwrap();
        assert_eq!(r.outcome, Outcome::Value(Value::Num(1)));

        let e = LlExpr::add(LlExpr::int(40), LlExpr::int(2));
        let r = ml().run_ll(&e).unwrap();
        assert_eq!(r.outcome, Outcome::Value(Value::Num(2 + 40)));
    }

    #[test]
    fn refll_ints_flow_into_refhl_bools() {
        // if ⦇ 0 ⦈bool then false else true  ==> false is taken as 0 = true.
        let e = HlExpr::if_(
            HlExpr::boundary(LlExpr::int(0), HlType::Bool),
            HlExpr::bool_(false),
            HlExpr::bool_(true),
        );
        assert_eq!(
            ml().run_hl(&e).unwrap().outcome,
            Outcome::Value(Value::Num(1))
        );

        // Any non-zero int behaves as false on the RefHL side.
        let e = HlExpr::if_(
            HlExpr::boundary(LlExpr::int(33), HlType::Bool),
            HlExpr::bool_(false),
            HlExpr::bool_(true),
        );
        assert_eq!(
            ml().run_hl(&e).unwrap().outcome,
            Outcome::Value(Value::Num(0))
        );
    }

    #[test]
    fn refhl_bools_flow_into_refll_ints() {
        // ⦇ true ⦈int + 5  ==> 0 + 5 = 5.
        let e = LlExpr::add(
            LlExpr::boundary(HlExpr::bool_(true), LlType::Int),
            LlExpr::int(5),
        );
        assert_eq!(
            ml().run_ll(&e).unwrap().outcome,
            Outcome::Value(Value::Num(5))
        );
    }

    #[test]
    fn shared_reference_aliases_across_the_boundary() {
        // A RefHL function writes through a reference it received from RefLL,
        // and RefLL observes the write through its own alias:
        //   let r = ref 1 in  (⦇ (λs:ref bool. s := false) ⦈(ref int → int)) r ; !r
        // written as a RefLL program.
        let hl_writer = HlExpr::lam(
            "s",
            HlType::ref_(HlType::Bool),
            HlExpr::boundary(
                LlExpr::boundary(
                    HlExpr::assign(HlExpr::var("s"), HlExpr::bool_(false)),
                    LlType::Int,
                ),
                HlType::Bool,
            ),
        );
        // Give the writer the RefLL type ref int → int via the function-free
        // route: apply it inside RefHL instead, but to a RefLL-created ref.
        // let r = ref 7 in ⦇ (λs. s := false) ⦇r⦈ref bool ⦈int + !r
        let program = LlExpr::app(
            LlExpr::lam(
                "r",
                LlType::ref_(LlType::Int),
                LlExpr::add(
                    LlExpr::boundary(
                        HlExpr::app(
                            hl_writer,
                            HlExpr::boundary(LlExpr::var("r"), HlType::ref_(HlType::Bool)),
                        ),
                        LlType::Int,
                    ),
                    LlExpr::deref(LlExpr::var("r")),
                ),
            ),
            LlExpr::ref_(LlExpr::int(7)),
        );
        let r = ml().run_ll(&program).unwrap();
        // The write of `false` (= 1) lands in the shared cell; the result is
        // the assignment's unit (0, converted to int) plus the new contents 1.
        assert_eq!(r.outcome, Outcome::Value(Value::Num(1)));
    }

    #[test]
    fn sums_cross_as_int_arrays_with_dynamic_checks() {
        let sum_ty = HlType::sum(HlType::Bool, HlType::Bool);
        // A well-formed array becomes a sum.
        let e = HlExpr::match_(
            HlExpr::boundary(
                LlExpr::array([LlExpr::int(1), LlExpr::int(0)], LlType::Int),
                sum_ty.clone(),
            ),
            "x",
            HlExpr::bool_(false),
            "y",
            HlExpr::var("y"),
        );
        assert_eq!(
            ml().run_hl(&e).unwrap().outcome,
            Outcome::Value(Value::Num(0))
        );

        // A malformed tag produces the well-defined Conv failure.
        let e = HlExpr::match_(
            HlExpr::boundary(
                LlExpr::array([LlExpr::int(9), LlExpr::int(0)], LlType::Int),
                sum_ty,
            ),
            "x",
            HlExpr::bool_(false),
            "y",
            HlExpr::var("y"),
        );
        assert_eq!(
            ml().run_hl(&e).unwrap().outcome,
            Outcome::Fail(ErrorCode::Conv)
        );
    }

    #[test]
    fn ill_typed_boundaries_are_rejected_statically() {
        // ref (bool+bool) ∼ ref [int] is not derivable under pointer sharing.
        let e = HlExpr::boundary(
            LlExpr::ref_(LlExpr::array([LlExpr::int(0)], LlType::Int)),
            HlType::ref_(HlType::sum(HlType::Bool, HlType::Bool)),
        );
        let err = ml().run_hl(&e).unwrap_err();
        assert!(matches!(
            err,
            MultiLangError::Type(TypeError::NotConvertible { .. })
        ));
    }

    #[test]
    fn well_typed_multi_language_programs_never_fail_type() {
        // Theorem 3.3/3.4 smoke test over the crate's own examples.
        let programs: Vec<HlExpr> = vec![
            HlExpr::boundary(LlExpr::add(LlExpr::int(1), LlExpr::int(2)), HlType::Bool),
            HlExpr::pair(
                HlExpr::boundary(LlExpr::int(0), HlType::Bool),
                HlExpr::deref(HlExpr::ref_(HlExpr::bool_(true))),
            ),
            HlExpr::boundary(
                LlExpr::index(
                    LlExpr::array([LlExpr::int(3), LlExpr::int(4)], LlType::Int),
                    LlExpr::int(1),
                ),
                HlType::Bool,
            ),
        ];
        for e in programs {
            let r = ml().run_hl(&e).unwrap();
            assert!(r.outcome.is_safe(), "{e} produced {:?}", r.outcome);
        }
    }

    #[test]
    fn compiled_reports_source_type() {
        let c = ml().compile_hl(&HlExpr::bool_(true)).unwrap();
        assert_eq!(c.ty, SourceType::Hl(HlType::Bool));
        assert!(c.ty.to_string().contains("RefHL"));
        let c = ml().compile_ll(&LlExpr::int(1)).unwrap();
        assert_eq!(c.ty, SourceType::Ll(LlType::Int));
    }
}
