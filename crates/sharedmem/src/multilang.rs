//! The multi-language driver for case study 1.
//!
//! [`MultiLang`] bundles the three artifacts a language designer produces in
//! the paper's framework — the convertibility rules (with glue code), the two
//! compilers, and the common target — behind one entry point.  Since PR 2 the
//! driver itself is the *shared* [`InteropPipeline`] from `semint-core`
//! (typecheck → compile-with-glue → run under fuel); this module only
//! supplies the §3 instantiation ([`SharedMemSystem`]) and the per-language
//! convenience API.

use crate::convert::SharedMemConversions;
use reflang::compile::{compile_hl, compile_ll, MissingConversion};
use reflang::syntax::{HlExpr, HlType, LlExpr, LlType};
use reflang::typecheck::{check_hl, check_ll, TypeCtx, TypeError};
use semint_core::pipeline::{InteropPipeline, InteropSystem, PipelineError};
use semint_core::Fuel;
use stacklang::{Machine, Program, RunResult};
use std::fmt;

/// Errors from the multi-language pipeline: the shared [`PipelineError`]
/// shape instantiated at the §3 stage errors.
pub type MultiLangError = PipelineError<TypeError, MissingConversion>;

/// A closed §3 multi-language program, hosted in either language.
#[derive(Debug, Clone, PartialEq)]
pub enum SmProgram {
    /// A RefHL-hosted program.
    Hl(HlExpr),
    /// A RefLL-hosted program.
    Ll(LlExpr),
}

impl fmt::Display for SmProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmProgram::Hl(e) => write!(f, "{e}"),
            SmProgram::Ll(e) => write!(f, "{e}"),
        }
    }
}

/// A compiled multi-language program, ready to run or inspect.
#[derive(Debug, Clone, PartialEq)]
pub struct Compiled {
    /// The source-level type of the program.
    pub ty: SourceType,
    /// The StackLang program it compiled to.
    pub program: Program,
}

/// Which language the top-level program was written in, with its type.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceType {
    /// A RefHL program of the given type.
    Hl(HlType),
    /// A RefLL program of the given type.
    Ll(LlType),
}

impl fmt::Display for SourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceType::Hl(t) => write!(f, "{t} (RefHL)"),
            SourceType::Ll(t) => write!(f, "{t} (RefLL)"),
        }
    }
}

/// The §3 instantiation of [`InteropSystem`]: RefHL + RefLL compiled (with
/// Fig. 4 glue) to StackLang.
#[derive(Debug, Clone, Default)]
pub struct SharedMemSystem {
    conversions: SharedMemConversions,
}

impl SharedMemSystem {
    /// A system over the given (memoizing) rule set.
    pub fn new(conversions: SharedMemConversions) -> Self {
        SharedMemSystem { conversions }
    }

    /// The conversion rule set in use.
    pub fn conversions(&self) -> &SharedMemConversions {
        &self.conversions
    }
}

impl InteropSystem for SharedMemSystem {
    type Program = SmProgram;
    type Ty = SourceType;
    type Artifact = Program;
    type TypeError = TypeError;
    type CompileError = MissingConversion;
    type Exec = RunResult;

    fn typecheck(&self, program: &SmProgram) -> Result<SourceType, TypeError> {
        match program {
            SmProgram::Hl(e) => {
                check_hl(&TypeCtx::empty(), e, &self.conversions).map(SourceType::Hl)
            }
            SmProgram::Ll(e) => {
                check_ll(&TypeCtx::empty(), e, &self.conversions).map(SourceType::Ll)
            }
        }
    }

    fn compile(&self, program: &SmProgram) -> Result<Program, MissingConversion> {
        match program {
            SmProgram::Hl(e) => compile_hl(&TypeCtx::empty(), e, &self.conversions),
            SmProgram::Ll(e) => compile_ll(&TypeCtx::empty(), e, &self.conversions),
        }
    }

    fn execute(&self, artifact: Program, fuel: Fuel) -> RunResult {
        Machine::run_program(artifact, fuel)
    }

    /// Drives the whole batch through **one** StackLang machine, reset
    /// between programs (each reset adopts the next program's buffer
    /// zero-copy; no state survives a reset), instead of constructing a
    /// machine per artifact.
    fn execute_batch(&self, artifacts: Vec<Program>, fuel: Fuel) -> Vec<RunResult> {
        Machine::run_batch(artifacts, fuel)
    }
}

/// The §3 multi-language system: RefHL + RefLL + the Fig. 4 conversions over
/// StackLang, driven by the shared [`InteropPipeline`].
#[derive(Debug, Clone, Default)]
pub struct MultiLang {
    pipeline: InteropPipeline<SharedMemSystem>,
}

impl MultiLang {
    /// A system using the given conversion rule set and the default fuel.
    pub fn new(conversions: SharedMemConversions) -> Self {
        MultiLang {
            pipeline: InteropPipeline::new(SharedMemSystem::new(conversions)),
        }
    }

    /// Overrides the fuel used by [`MultiLang::run_hl`] / [`MultiLang::run_ll`].
    pub fn with_fuel(mut self, fuel: Fuel) -> Self {
        self.pipeline = self.pipeline.with_fuel(fuel);
        self
    }

    /// The conversion rule set in use.
    pub fn conversions(&self) -> &SharedMemConversions {
        self.pipeline.system().conversions()
    }

    /// The shared pipeline driving this system.
    pub fn pipeline(&self) -> &InteropPipeline<SharedMemSystem> {
        &self.pipeline
    }

    /// Type checks a closed multi-language program (either host language).
    pub fn typecheck(&self, program: &SmProgram) -> Result<SourceType, TypeError> {
        self.pipeline.typecheck(program)
    }

    /// Type checks a closed RefHL program.
    pub fn typecheck_hl(&self, e: &HlExpr) -> Result<HlType, TypeError> {
        check_hl(&TypeCtx::empty(), e, self.conversions())
    }

    /// Type checks a closed RefLL program.
    pub fn typecheck_ll(&self, e: &LlExpr) -> Result<LlType, TypeError> {
        check_ll(&TypeCtx::empty(), e, self.conversions())
    }

    /// Type checks and compiles a closed multi-language program.
    pub fn compile(&self, program: &SmProgram) -> Result<Compiled, MultiLangError> {
        let compiled = self.pipeline.check_and_compile(program)?;
        Ok(Compiled {
            ty: compiled.ty,
            program: compiled.artifact,
        })
    }

    /// Compiles a program already known to type check, skipping the
    /// pipeline's typecheck stage.  This is the sweep engine's entry: it
    /// re-checks the generator's type claim once up front, so its compile
    /// stage must not pay for a second typecheck.
    pub fn compile_only(&self, program: &SmProgram) -> Result<Program, MissingConversion> {
        self.pipeline.system().compile(program)
    }

    /// Runs an already-compiled StackLang program under an explicit fuel
    /// budget, consuming the artifact (no clone — the compile-once flow).
    pub fn execute_with_fuel(&self, program: Program, fuel: Fuel) -> RunResult {
        self.pipeline.execute_with_fuel(program, fuel)
    }

    /// Runs a batch of already-compiled StackLang programs under one fuel
    /// budget through a single reused machine (see
    /// [`InteropSystem::execute_batch`] on [`SharedMemSystem`]), returning
    /// results in input order.
    pub fn execute_batch_with_fuel(&self, programs: Vec<Program>, fuel: Fuel) -> Vec<RunResult> {
        self.pipeline.execute_batch(programs, fuel)
    }

    /// Type checks and compiles a closed RefHL program.
    pub fn compile_hl(&self, e: &HlExpr) -> Result<Compiled, MultiLangError> {
        self.compile(&SmProgram::Hl(e.clone()))
    }

    /// Type checks and compiles a closed RefLL program.
    pub fn compile_ll(&self, e: &LlExpr) -> Result<Compiled, MultiLangError> {
        self.compile(&SmProgram::Ll(e.clone()))
    }

    /// Runs a closed multi-language program under the given fuel budget.
    pub fn run_with_fuel(
        &self,
        program: &SmProgram,
        fuel: Fuel,
    ) -> Result<RunResult, MultiLangError> {
        self.pipeline.run_with_fuel(program, fuel)
    }

    /// Type checks, compiles and runs a closed RefHL program.
    pub fn run_hl(&self, e: &HlExpr) -> Result<RunResult, MultiLangError> {
        self.pipeline.run(&SmProgram::Hl(e.clone()))
    }

    /// Type checks, compiles and runs a closed RefLL program.
    pub fn run_ll(&self, e: &LlExpr) -> Result<RunResult, MultiLangError> {
        self.pipeline.run(&SmProgram::Ll(e.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semint_core::{ErrorCode, Outcome};
    use stacklang::Value;

    fn ml() -> MultiLang {
        MultiLang::new(SharedMemConversions::standard())
    }

    #[test]
    fn boundary_free_programs_run_as_usual() {
        let e = HlExpr::if_(
            HlExpr::bool_(true),
            HlExpr::bool_(false),
            HlExpr::bool_(true),
        );
        let r = ml().run_hl(&e).unwrap();
        assert_eq!(r.outcome, Outcome::Value(Value::Num(1)));

        let e = LlExpr::add(LlExpr::int(40), LlExpr::int(2));
        let r = ml().run_ll(&e).unwrap();
        assert_eq!(r.outcome, Outcome::Value(Value::Num(2 + 40)));
    }

    #[test]
    fn refll_ints_flow_into_refhl_bools() {
        // if ⦇ 0 ⦈bool then false else true  ==> false is taken as 0 = true.
        let e = HlExpr::if_(
            HlExpr::boundary(LlExpr::int(0), HlType::Bool),
            HlExpr::bool_(false),
            HlExpr::bool_(true),
        );
        assert_eq!(
            ml().run_hl(&e).unwrap().outcome,
            Outcome::Value(Value::Num(1))
        );

        // Any non-zero int behaves as false on the RefHL side.
        let e = HlExpr::if_(
            HlExpr::boundary(LlExpr::int(33), HlType::Bool),
            HlExpr::bool_(false),
            HlExpr::bool_(true),
        );
        assert_eq!(
            ml().run_hl(&e).unwrap().outcome,
            Outcome::Value(Value::Num(0))
        );
    }

    #[test]
    fn refhl_bools_flow_into_refll_ints() {
        // ⦇ true ⦈int + 5  ==> 0 + 5 = 5.
        let e = LlExpr::add(
            LlExpr::boundary(HlExpr::bool_(true), LlType::Int),
            LlExpr::int(5),
        );
        assert_eq!(
            ml().run_ll(&e).unwrap().outcome,
            Outcome::Value(Value::Num(5))
        );
    }

    #[test]
    fn shared_reference_aliases_across_the_boundary() {
        // A RefHL function writes through a reference it received from RefLL,
        // and RefLL observes the write through its own alias:
        //   let r = ref 1 in  (⦇ (λs:ref bool. s := false) ⦈(ref int → int)) r ; !r
        // written as a RefLL program.
        let hl_writer = HlExpr::lam(
            "s",
            HlType::ref_(HlType::Bool),
            HlExpr::boundary(
                LlExpr::boundary(
                    HlExpr::assign(HlExpr::var("s"), HlExpr::bool_(false)),
                    LlType::Int,
                ),
                HlType::Bool,
            ),
        );
        // Give the writer the RefLL type ref int → int via the function-free
        // route: apply it inside RefHL instead, but to a RefLL-created ref.
        // let r = ref 7 in ⦇ (λs. s := false) ⦇r⦈ref bool ⦈int + !r
        let program = LlExpr::app(
            LlExpr::lam(
                "r",
                LlType::ref_(LlType::Int),
                LlExpr::add(
                    LlExpr::boundary(
                        HlExpr::app(
                            hl_writer,
                            HlExpr::boundary(LlExpr::var("r"), HlType::ref_(HlType::Bool)),
                        ),
                        LlType::Int,
                    ),
                    LlExpr::deref(LlExpr::var("r")),
                ),
            ),
            LlExpr::ref_(LlExpr::int(7)),
        );
        let r = ml().run_ll(&program).unwrap();
        // The write of `false` (= 1) lands in the shared cell; the result is
        // the assignment's unit (0, converted to int) plus the new contents 1.
        assert_eq!(r.outcome, Outcome::Value(Value::Num(1)));
    }

    #[test]
    fn sums_cross_as_int_arrays_with_dynamic_checks() {
        let sum_ty = HlType::sum(HlType::Bool, HlType::Bool);
        // A well-formed array becomes a sum.
        let e = HlExpr::match_(
            HlExpr::boundary(
                LlExpr::array([LlExpr::int(1), LlExpr::int(0)], LlType::Int),
                sum_ty.clone(),
            ),
            "x",
            HlExpr::bool_(false),
            "y",
            HlExpr::var("y"),
        );
        assert_eq!(
            ml().run_hl(&e).unwrap().outcome,
            Outcome::Value(Value::Num(0))
        );

        // A malformed tag produces the well-defined Conv failure.
        let e = HlExpr::match_(
            HlExpr::boundary(
                LlExpr::array([LlExpr::int(9), LlExpr::int(0)], LlType::Int),
                sum_ty,
            ),
            "x",
            HlExpr::bool_(false),
            "y",
            HlExpr::var("y"),
        );
        assert_eq!(
            ml().run_hl(&e).unwrap().outcome,
            Outcome::Fail(ErrorCode::Conv)
        );
    }

    #[test]
    fn ill_typed_boundaries_are_rejected_statically() {
        // ref (bool+bool) ∼ ref [int] is not derivable under pointer sharing.
        let e = HlExpr::boundary(
            LlExpr::ref_(LlExpr::array([LlExpr::int(0)], LlType::Int)),
            HlType::ref_(HlType::sum(HlType::Bool, HlType::Bool)),
        );
        let err = ml().run_hl(&e).unwrap_err();
        assert!(matches!(
            err,
            MultiLangError::Type(TypeError::NotConvertible { .. })
        ));
    }

    #[test]
    fn well_typed_multi_language_programs_never_fail_type() {
        // Theorem 3.3/3.4 smoke test over the crate's own examples.
        let programs: Vec<HlExpr> = vec![
            HlExpr::boundary(LlExpr::add(LlExpr::int(1), LlExpr::int(2)), HlType::Bool),
            HlExpr::pair(
                HlExpr::boundary(LlExpr::int(0), HlType::Bool),
                HlExpr::deref(HlExpr::ref_(HlExpr::bool_(true))),
            ),
            HlExpr::boundary(
                LlExpr::index(
                    LlExpr::array([LlExpr::int(3), LlExpr::int(4)], LlType::Int),
                    LlExpr::int(1),
                ),
                HlType::Bool,
            ),
        ];
        for e in programs {
            let r = ml().run_hl(&e).unwrap();
            assert!(r.outcome.is_safe(), "{e} produced {:?}", r.outcome);
        }
    }

    #[test]
    fn compiled_reports_source_type() {
        let c = ml().compile_hl(&HlExpr::bool_(true)).unwrap();
        assert_eq!(c.ty, SourceType::Hl(HlType::Bool));
        assert!(c.ty.to_string().contains("RefHL"));
        let c = ml().compile_ll(&LlExpr::int(1)).unwrap();
        assert_eq!(c.ty, SourceType::Ll(LlType::Int));
    }
}
