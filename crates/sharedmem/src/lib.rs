//! # sharedmem
//!
//! Case study 1 of the paper (§3): **shared-memory interoperability** between
//! RefHL and RefLL, compiled to StackLang.
//!
//! The crate provides
//!
//! * [`convert`] — the convertibility rules of Fig. 4 together with their
//!   StackLang glue code, plus the two alternative strategies the paper's
//!   Discussion describes (copy-convert and per-access conversion), used by
//!   the benchmark ablations;
//! * [`multilang`] — a driver that type checks a multi-language program
//!   (both environments, boundaries), compiles it with the registered glue
//!   code and runs it on the StackLang machine;
//! * [`model`] — an executable approximation of the Fig. 5 realizability
//!   model: step-indexed worlds over heap typings, value and expression
//!   relations for both languages' types, and checkers for Convertibility
//!   Soundness (Lemma 3.1) and type safety (Theorems 3.3/3.4);
//! * [`gen`] — random well-typed multi-language program generation used by
//!   the property-test suites (the operational content of the Fundamental
//!   Property).
//!
//! ```
//! use sharedmem::convert::SharedMemConversions;
//! use sharedmem::multilang::MultiLang;
//! use reflang::syntax::{HlExpr, HlType, LlExpr};
//! use stacklang::Value;
//!
//! // ⦇ 1 + 1 ⦈bool : RefLL arithmetic used as a RefHL boolean (non-zero = false).
//! let prog = HlExpr::boundary(LlExpr::add(LlExpr::int(1), LlExpr::int(1)), HlType::Bool);
//! let ml = MultiLang::new(SharedMemConversions::standard());
//! let out = ml.run_hl(&prog).unwrap();
//! assert_eq!(out.outcome.value(), Some(Value::Num(2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod gen;
pub mod harness;
pub mod model;
pub mod multilang;

pub use convert::{RefStrategy, SharedMemConversions};
pub use harness::{SharedMemCase, SmProgram};
pub use multilang::{MultiLang, MultiLangError};
