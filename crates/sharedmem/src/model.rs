//! An executable approximation of the §3 realizability model (Fig. 5).
//!
//! The paper interprets each source type `τ` as a set `V⟦τ⟧` of pairs
//! `(W, v)` of a step-indexed world and a *StackLang* value, and each world
//! as a step budget plus a heap typing mapping locations to type
//! interpretations.  This module makes that model executable:
//!
//! * worlds are concrete ([`World`]): a step index plus a heap typing that
//!   maps locations to *source types of either language* ([`SemType`]) —
//!   sufficient because every interpretation the §3 system ever stores in a
//!   heap typing is the interpretation of some source type;
//! * membership `(W, v) ∈ V⟦τ⟧` is decided by [`ModelChecker::value_in`];
//!   the universal quantification over future worlds/arguments in the
//!   function case is approximated by a finite suite of canonical arguments
//!   and a bounded recursion depth;
//! * membership `(W, P) ∈ E⟦τ⟧` ([`ModelChecker::expr_in`]) runs the machine
//!   for at most `W.k` steps and checks the escape clauses of the expression
//!   relation exactly as written (benign failure, out of budget, or a value
//!   in `V⟦τ⟧` under an extended world);
//! * [`ModelChecker::check_convertibility`] is the executable content of
//!   Lemma 3.1 (Convertibility Soundness), and
//!   [`ModelChecker::check_type_safety`] of Theorem 3.4.
//!
//! The positive direction (a term *is* in the relation) is approximate —
//! quantifiers are sampled — but the negative direction is exact: when the
//! checker reports a counterexample, the corresponding paper lemma is
//! genuinely violated for that rule set.  The test suite exercises both
//! directions, including deliberately unsound conversions that must be
//! rejected.

use crate::convert::SharedMemConversions;
use reflang::syntax::{HlType, LlType};
use semint_core::{ErrorCode, Fuel, Outcome, StepIndex};
use stacklang::{Heap, Instr, Loc, Machine, Program, StackState, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A source type of either language — the index set of the unified logical
/// relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SemType {
    /// A RefHL type.
    Hl(HlType),
    /// A RefLL type.
    Ll(LlType),
}

impl fmt::Display for SemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemType::Hl(t) => write!(f, "{t}"),
            SemType::Ll(t) => write!(f, "{t}"),
        }
    }
}

impl From<HlType> for SemType {
    fn from(t: HlType) -> Self {
        SemType::Hl(t)
    }
}

impl From<LlType> for SemType {
    fn from(t: LlType) -> Self {
        SemType::Ll(t)
    }
}

/// Decides whether two type interpretations are *the same set of target
/// values* — the question the paper highlights as newly expressible in a
/// unified realizability model ("we can ask if V⟦bool⟧ = V⟦int⟧").
///
/// The equality is decided structurally with the §3 base facts:
/// `V⟦bool⟧ = V⟦int⟧` (both are all integers) and `V⟦ref τ⟧ = V⟦ref 𝜏⟧` iff
/// the payload interpretations are equal.  Sums, products, arrays, unit and
/// functions of non-equal components are never equal to each other.
pub fn interp_equal(a: &SemType, b: &SemType) -> bool {
    use SemType::{Hl, Ll};
    match (a, b) {
        // Reflexivity.
        _ if a == b => true,
        // bool and int are both "all target integers".
        (Hl(HlType::Bool), Ll(LlType::Int)) | (Ll(LlType::Int), Hl(HlType::Bool)) => true,
        // References are equal exactly when their payload interpretations are.
        (Hl(HlType::Ref(t)), Ll(LlType::Ref(u))) | (Ll(LlType::Ref(u)), Hl(HlType::Ref(t))) => {
            interp_equal(&Hl((**t).clone()), &Ll((**u).clone()))
        }
        (Hl(HlType::Ref(t)), Hl(HlType::Ref(u))) => {
            interp_equal(&Hl((**t).clone()), &Hl((**u).clone()))
        }
        (Ll(LlType::Ref(t)), Ll(LlType::Ref(u))) => {
            interp_equal(&Ll((**t).clone()), &Ll((**u).clone()))
        }
        // Functions are equal when both domain and codomain interpretations
        // are equal (the relation is the same set of thunks).
        (Hl(HlType::Fun(a1, b1)), Ll(LlType::Fun(a2, b2)))
        | (Ll(LlType::Fun(a2, b2)), Hl(HlType::Fun(a1, b1))) => {
            interp_equal(&Hl((**a1).clone()), &Ll((**a2).clone()))
                && interp_equal(&Hl((**b1).clone()), &Ll((**b2).clone()))
        }
        _ => false,
    }
}

/// A step-indexed world `W = (k, Ψ)` (Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    /// The step budget `W.k`.
    pub k: StepIndex,
    /// The heap typing `W.Ψ`, mapping locations to the (source) type whose
    /// interpretation they must hold.
    pub heap_typing: BTreeMap<Loc, SemType>,
}

impl World {
    /// A world with the given budget and empty heap typing.
    pub fn new(k: u64) -> World {
        World {
            k: StepIndex::new(k),
            heap_typing: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a heap-typing entry.
    pub fn with_loc(mut self, l: Loc, ty: impl Into<SemType>) -> World {
        self.heap_typing.insert(l, ty.into());
        self
    }

    /// `W' ⊒ W`: the future world may have a smaller budget and must preserve
    /// every existing heap-typing entry at an equal interpretation.
    pub fn extended_by(&self, future: &World) -> bool {
        if future.k.get() > self.k.get() {
            return false;
        }
        self.heap_typing.iter().all(|(l, ty)| {
            future
                .heap_typing
                .get(l)
                .map(|ty2| interp_equal(ty, ty2))
                .unwrap_or(false)
        })
    }
}

impl semint_core::world::World for World {
    fn step_index(&self) -> StepIndex {
        self.k
    }
    fn extended_by(&self, future: &Self) -> bool {
        World::extended_by(self, future)
    }
    fn with_step_index(&self, k: StepIndex) -> Self {
        World {
            k,
            heap_typing: self.heap_typing.clone(),
        }
    }
}

/// A counterexample found by one of the checkers.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterExample {
    /// What was being checked.
    pub claim: String,
    /// The offending value or program, rendered.
    pub witness: String,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for CounterExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} — {}", self.claim, self.witness, self.reason)
    }
}

/// The executable model checker for case study 1.
#[derive(Debug, Clone)]
pub struct ModelChecker {
    conversions: SharedMemConversions,
    /// Recursion depth for the function case of the value relation.
    pub fun_depth: usize,
}

impl Default for ModelChecker {
    fn default() -> Self {
        ModelChecker::new(SharedMemConversions::standard())
    }
}

impl ModelChecker {
    /// A checker over the given conversion rule set.
    pub fn new(conversions: SharedMemConversions) -> Self {
        ModelChecker {
            conversions,
            fun_depth: 2,
        }
    }

    /// `(W, v) ∈ V⟦ty⟧` under heap `heap` (needed to chase references that
    /// the world has not yet been told about — see module docs).
    pub fn value_in(&self, world: &World, heap: &Heap, v: &Value, ty: &SemType) -> bool {
        self.value_in_depth(world, heap, v, ty, self.fun_depth)
    }

    fn value_in_depth(
        &self,
        world: &World,
        heap: &Heap,
        v: &Value,
        ty: &SemType,
        depth: usize,
    ) -> bool {
        match ty {
            SemType::Hl(t) => self.value_in_hl(world, heap, v, t, depth),
            SemType::Ll(t) => self.value_in_ll(world, heap, v, t, depth),
        }
    }

    fn value_in_hl(
        &self,
        world: &World,
        heap: &Heap,
        v: &Value,
        ty: &HlType,
        depth: usize,
    ) -> bool {
        match ty {
            // V⟦unit⟧ = {(W, 0)}
            HlType::Unit => matches!(v, Value::Num(0)),
            // V⟦bool⟧ = {(W, n)} — all integers.
            HlType::Bool => matches!(v, Value::Num(_)),
            // V⟦τ1 + τ2⟧ = {[0, v]} ∪ {[1, v]} with payload in the component.
            HlType::Sum(t1, t2) => match v {
                Value::Array(parts) if parts.len() == 2 => match &parts[0] {
                    Value::Num(0) => self.value_in_hl(world, heap, &parts[1], t1, depth),
                    Value::Num(1) => self.value_in_hl(world, heap, &parts[1], t2, depth),
                    _ => false,
                },
                _ => false,
            },
            HlType::Prod(t1, t2) => match v {
                Value::Array(parts) if parts.len() == 2 => {
                    self.value_in_hl(world, heap, &parts[0], t1, depth)
                        && self.value_in_hl(world, heap, &parts[1], t2, depth)
                }
                _ => false,
            },
            HlType::Fun(t1, t2) => self.fun_value_in(
                world,
                heap,
                v,
                &SemType::Hl((**t1).clone()),
                &SemType::Hl((**t2).clone()),
                depth,
            ),
            HlType::Ref(t) => self.ref_value_in(world, heap, v, &SemType::Hl((**t).clone()), depth),
        }
    }

    fn value_in_ll(
        &self,
        world: &World,
        heap: &Heap,
        v: &Value,
        ty: &LlType,
        depth: usize,
    ) -> bool {
        match ty {
            // V⟦int⟧ = {(W, n)}
            LlType::Int => matches!(v, Value::Num(_)),
            // V⟦[𝜏]⟧: every element is in V⟦𝜏⟧ (any length).
            LlType::Array(elem) => match v {
                Value::Array(parts) => parts
                    .iter()
                    .all(|p| self.value_in_ll(world, heap, p, elem, depth)),
                _ => false,
            },
            LlType::Fun(t1, t2) => self.fun_value_in(
                world,
                heap,
                v,
                &SemType::Ll((**t1).clone()),
                &SemType::Ll((**t2).clone()),
                depth,
            ),
            LlType::Ref(t) => self.ref_value_in(world, heap, v, &SemType::Ll((**t).clone()), depth),
        }
    }

    /// The reference case: `(W, ℓ) ∈ V⟦ref τ⟧` iff `W.Ψ(ℓ)` is (extensionally)
    /// the interpretation of `τ`.  For locations the world does not mention,
    /// the checker falls back to verifying the current heap contents — the
    /// "inferred extension" approximation described in the module docs.
    fn ref_value_in(
        &self,
        world: &World,
        heap: &Heap,
        v: &Value,
        payload: &SemType,
        depth: usize,
    ) -> bool {
        let l = match v {
            Value::Loc(l) => *l,
            _ => return false,
        };
        match world.heap_typing.get(&l) {
            Some(assigned) => interp_equal(assigned, payload),
            None => match heap.read(l) {
                Some(stored) => self.value_in_depth(world, heap, stored, payload, depth),
                None => false,
            },
        }
    }

    /// The function case: the value must be a `thunk (lam x. P)` and, for a
    /// suite of canonical arguments in the domain, running the application
    /// must land in the expression relation at the codomain.
    fn fun_value_in(
        &self,
        world: &World,
        heap: &Heap,
        v: &Value,
        dom: &SemType,
        cod: &SemType,
        depth: usize,
    ) -> bool {
        let thunk_prog = match v {
            Value::Thunk(p) => p.clone(),
            _ => return false,
        };
        if depth == 0 {
            // Budget for nested function exploration exhausted: accept the
            // shape (this is the approximate positive direction).
            return true;
        }
        for arg in self.sample_values(dom, depth - 1) {
            // Application protocol (Fig. 3): argument below the thunk, `call`.
            let program = Program::from(vec![
                Instr::push_val(arg.clone()),
                Instr::push_val(Value::Thunk(thunk_prog.clone())),
                Instr::Call,
            ]);
            if !self.expr_in_with_depth(world, heap.clone(), &program, cod, depth - 1) {
                return false;
            }
        }
        true
    }

    /// `(W, P) ∈ E⟦ty⟧`, starting from a heap that satisfies `W`.
    pub fn expr_in(&self, world: &World, heap: Heap, program: &Program, ty: &SemType) -> bool {
        self.expr_in_with_depth(world, heap, program, ty, self.fun_depth)
    }

    fn expr_in_with_depth(
        &self,
        world: &World,
        heap: Heap,
        program: &Program,
        ty: &SemType,
        depth: usize,
    ) -> bool {
        let machine = Machine::with_state(heap, StackState::empty(), program.clone());
        let result = machine.run(Fuel::steps(world.k.get()));
        match result.outcome {
            // Ran longer than the step budget: no constraint (escape clause).
            Outcome::OutOfFuel => true,
            // Well-defined errors are allowed by the §3 expression relation.
            Outcome::Fail(ErrorCode::Conv) | Outcome::Fail(ErrorCode::Idx) => true,
            Outcome::Fail(_) => false,
            Outcome::Value(v) => {
                // Build the future world: the budget shrinks by the steps
                // taken; existing heap-typing entries persist.
                let k_left = world.k.get().saturating_sub(result.steps);
                let future = World {
                    k: StepIndex::new(k_left),
                    heap_typing: world.heap_typing.clone(),
                };
                self.value_in_depth(&future, &result.heap, &v, ty, depth)
            }
        }
    }

    /// Does `heap` satisfy `world` (`H : W`)?  Every location the heap typing
    /// mentions must exist and hold a value in the assigned interpretation.
    pub fn heap_satisfies(&self, world: &World, heap: &Heap) -> bool {
        world.heap_typing.iter().all(|(l, ty)| match heap.read(*l) {
            Some(v) => self.value_in(world, heap, v, ty),
            None => false,
        })
    }

    /// Canonical inhabitants of `V⟦ty⟧`, used to instantiate the universally
    /// quantified argument of the function case and to seed convertibility
    /// checks.
    #[allow(clippy::only_used_in_recursion)]
    pub fn sample_values(&self, ty: &SemType, depth: usize) -> Vec<Value> {
        match ty {
            SemType::Hl(HlType::Unit) => vec![Value::Num(0)],
            SemType::Hl(HlType::Bool) => vec![Value::Num(0), Value::Num(1), Value::Num(42)],
            SemType::Ll(LlType::Int) => vec![Value::Num(0), Value::Num(1), Value::Num(-7)],
            SemType::Hl(HlType::Sum(a, b)) => {
                let mut out = Vec::new();
                for v in self.sample_values(&SemType::Hl((**a).clone()), depth) {
                    out.push(Value::array([Value::Num(0), v]));
                }
                for v in self.sample_values(&SemType::Hl((**b).clone()), depth) {
                    out.push(Value::array([Value::Num(1), v]));
                }
                out
            }
            SemType::Hl(HlType::Prod(a, b)) => {
                let xs = self.sample_values(&SemType::Hl((**a).clone()), depth);
                let ys = self.sample_values(&SemType::Hl((**b).clone()), depth);
                xs.into_iter()
                    .flat_map(|x| ys.iter().map(move |y| Value::array([x.clone(), y.clone()])))
                    .take(4)
                    .collect()
            }
            SemType::Ll(LlType::Array(elem)) => {
                let es = self.sample_values(&SemType::Ll((**elem).clone()), depth);
                vec![
                    Value::Array(vec![]),
                    Value::Array(es.iter().take(2).cloned().collect()),
                    Value::Array(es.into_iter().take(3).collect()),
                ]
            }
            SemType::Hl(HlType::Fun(_, b)) => {
                // Constant functions returning canonical codomain values.
                self.sample_values(&SemType::Hl((**b).clone()), depth)
                    .into_iter()
                    .take(2)
                    .map(|v| {
                        Value::Thunk(Program::single(Instr::Lam(
                            vec![semint_core::Var::new("ignored")],
                            Program::single(Instr::push_val(v)),
                        )))
                    })
                    .collect()
            }
            SemType::Ll(LlType::Fun(_, b)) => self
                .sample_values(&SemType::Ll((**b).clone()), depth)
                .into_iter()
                .take(2)
                .map(|v| {
                    Value::Thunk(Program::single(Instr::Lam(
                        vec![semint_core::Var::new("ignored")],
                        Program::single(Instr::push_val(v)),
                    )))
                })
                .collect(),
            // Reference samples require a heap; convertibility checks build
            // them explicitly (see `check_convertibility`), so none here.
            SemType::Hl(HlType::Ref(_)) | SemType::Ll(LlType::Ref(_)) => vec![],
        }
    }

    /// The executable content of **Lemma 3.1 (Convertibility Soundness)** for
    /// one rule: for every sampled `(W, v) ∈ V⟦hl⟧`, pushing `v` and running
    /// `C_{hl↦ll}` must land in `E⟦ll⟧`, and symmetrically.
    pub fn check_convertibility(&self, hl: &HlType, ll: &LlType) -> Result<(), CounterExample> {
        let (to_ll, to_hl) = match self.conversions.derive(hl, ll) {
            Some(pair) => pair,
            None => {
                return Err(CounterExample {
                    claim: format!("{hl} ∼ {ll}"),
                    witness: "-".into(),
                    reason: "rule not derivable".into(),
                })
            }
        };
        self.check_direction(&SemType::Hl(hl.clone()), &SemType::Ll(ll.clone()), &to_ll)?;
        self.check_direction(&SemType::Ll(ll.clone()), &SemType::Hl(hl.clone()), &to_hl)?;
        Ok(())
    }

    /// Checks one direction of a conversion against an explicit glue program —
    /// also usable for *candidate* (possibly unsound) conversions in tests.
    pub fn check_direction(
        &self,
        from: &SemType,
        to: &SemType,
        glue: &Program,
    ) -> Result<(), CounterExample> {
        let world = World::new(10_000);
        for v in self.sample_values(from, self.fun_depth) {
            let program = Program::single(Instr::push_val(v.clone())).then(glue.clone());
            if !self.expr_in(&world, Heap::new(), &program, to) {
                return Err(CounterExample {
                    claim: format!("C_{{{from} ↦ {to}}} sound"),
                    witness: v.to_string(),
                    reason: format!("conversion output is not in E⟦{to}⟧"),
                });
            }
        }
        // Reference samples need a heap: build one per payload sample.
        if let Some(payload) = ref_payload(from) {
            for pv in self.sample_values(&payload, self.fun_depth) {
                let mut heap = Heap::new();
                let l = heap.alloc(pv.clone());
                let world = World::new(10_000).with_loc(l, payload.clone());
                let program = Program::single(Instr::push_val(Value::Loc(l))).then(glue.clone());
                if !self.expr_in(&world, heap, &program, to) {
                    return Err(CounterExample {
                        claim: format!("C_{{{from} ↦ {to}}} sound"),
                        witness: format!("ℓ ↦ {pv}"),
                        reason: format!("converted reference is not in E⟦{to}⟧"),
                    });
                }
            }
        }
        Ok(())
    }

    /// The executable content of **Theorems 3.3/3.4 (type safety)** for one
    /// compiled program: it must run to a value, a benign failure, or out of
    /// fuel — never a dynamic type error.
    pub fn check_type_safety(&self, program: &Program, fuel: Fuel) -> Result<(), CounterExample> {
        let result = Machine::run_program(program.clone(), fuel);
        if result.outcome.is_safe() {
            Ok(())
        } else {
            Err(CounterExample {
                claim: "type safety".into(),
                witness: program.to_string(),
                reason: format!("outcome {:?}", result.outcome),
            })
        }
    }
}

fn ref_payload(ty: &SemType) -> Option<SemType> {
    match ty {
        SemType::Hl(HlType::Ref(t)) => Some(SemType::Hl((**t).clone())),
        SemType::Ll(LlType::Ref(t)) => Some(SemType::Ll((**t).clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> ModelChecker {
        ModelChecker::default()
    }

    #[test]
    fn bool_and_int_have_the_same_interpretation() {
        assert!(interp_equal(
            &SemType::Hl(HlType::Bool),
            &SemType::Ll(LlType::Int)
        ));
        assert!(interp_equal(
            &SemType::Hl(HlType::ref_(HlType::Bool)),
            &SemType::Ll(LlType::ref_(LlType::Int))
        ));
        assert!(!interp_equal(
            &SemType::Hl(HlType::Unit),
            &SemType::Ll(LlType::Int)
        ));
        assert!(!interp_equal(
            &SemType::Hl(HlType::sum(HlType::Bool, HlType::Bool)),
            &SemType::Ll(LlType::array(LlType::Int))
        ));
    }

    #[test]
    fn value_relation_base_cases() {
        let c = checker();
        let w = World::new(100);
        let h = Heap::new();
        // unit: only 0.
        assert!(c.value_in(&w, &h, &Value::Num(0), &SemType::Hl(HlType::Unit)));
        assert!(!c.value_in(&w, &h, &Value::Num(3), &SemType::Hl(HlType::Unit)));
        // bool: every integer, nothing else.
        assert!(c.value_in(&w, &h, &Value::Num(17), &SemType::Hl(HlType::Bool)));
        assert!(!c.value_in(&w, &h, &Value::Array(vec![]), &SemType::Hl(HlType::Bool)));
        // int likewise.
        assert!(c.value_in(&w, &h, &Value::Num(-4), &SemType::Ll(LlType::Int)));
    }

    #[test]
    fn sums_products_and_arrays() {
        let c = checker();
        let w = World::new(100);
        let h = Heap::new();
        let sum = SemType::Hl(HlType::sum(HlType::Bool, HlType::Unit));
        assert!(c.value_in(&w, &h, &Value::array([Value::Num(0), Value::Num(9)]), &sum));
        assert!(c.value_in(&w, &h, &Value::array([Value::Num(1), Value::Num(0)]), &sum));
        // inr payload must be unit (0).
        assert!(!c.value_in(&w, &h, &Value::array([Value::Num(1), Value::Num(9)]), &sum));
        // bad tag.
        assert!(!c.value_in(&w, &h, &Value::array([Value::Num(2), Value::Num(0)]), &sum));

        let arr = SemType::Ll(LlType::array(LlType::Int));
        assert!(c.value_in(&w, &h, &Value::Array(vec![]), &arr));
        assert!(c.value_in(
            &w,
            &h,
            &Value::array([Value::Num(1), Value::Num(2), Value::Num(3)]),
            &arr
        ));
        assert!(!c.value_in(&w, &h, &Value::array([Value::Array(vec![])]), &arr));
    }

    #[test]
    fn reference_membership_uses_the_heap_typing() {
        let c = checker();
        let mut h = Heap::new();
        let l = h.alloc(Value::Num(1));
        // With ℓ : bool in the world, ℓ inhabits both ref bool and ref int —
        // the crux of the §3 case study.
        let w = World::new(100).with_loc(l, HlType::Bool);
        assert!(c.value_in(
            &w,
            &h,
            &Value::Loc(l),
            &SemType::Hl(HlType::ref_(HlType::Bool))
        ));
        assert!(c.value_in(
            &w,
            &h,
            &Value::Loc(l),
            &SemType::Ll(LlType::ref_(LlType::Int))
        ));
        // But not ref unit: V⟦unit⟧ ≠ V⟦bool⟧.
        assert!(!c.value_in(
            &w,
            &h,
            &Value::Loc(l),
            &SemType::Hl(HlType::ref_(HlType::Unit))
        ));
        // A location the world does not know falls back to the heap contents.
        let w0 = World::new(100);
        assert!(c.value_in(
            &w0,
            &h,
            &Value::Loc(l),
            &SemType::Hl(HlType::ref_(HlType::Bool))
        ));
        // Dangling locations are never in the relation.
        assert!(!c.value_in(
            &w0,
            &h,
            &Value::Loc(Loc(99)),
            &SemType::Hl(HlType::ref_(HlType::Bool))
        ));
    }

    #[test]
    fn function_values_are_checked_on_canonical_arguments() {
        let c = checker();
        let w = World::new(10_000);
        let h = Heap::new();
        // thunk (lam x. push x) : bool → bool (the identity).
        let ident = Value::Thunk(Program::single(Instr::Lam(
            vec![semint_core::Var::new("x")],
            Program::single(Instr::push_var("x")),
        )));
        let ty = SemType::Hl(HlType::fun(HlType::Bool, HlType::Bool));
        assert!(c.value_in(&w, &h, &ident, &ty));
        // A function that ignores its argument and returns an array is not a
        // bool → bool.
        let bad = Value::Thunk(Program::single(Instr::Lam(
            vec![semint_core::Var::new("x")],
            Program::single(Instr::push_val(Value::Array(vec![]))),
        )));
        assert!(!c.value_in(&w, &h, &bad, &ty));
        // But it *is* a bool → [int].
        assert!(c.value_in(
            &w,
            &h,
            &bad,
            &SemType::Ll(LlType::fun(LlType::Int, LlType::array(LlType::Int)))
        ));
        // Non-thunks are never functions.
        assert!(!c.value_in(&w, &h, &Value::Num(3), &ty));
    }

    #[test]
    fn expression_relation_allows_benign_failures_and_divergence() {
        let c = checker();
        let w = World::new(1_000);
        let ty = SemType::Hl(HlType::Bool);
        // A program that fails Conv is in every E⟦τ⟧.
        let p = Program::single(Instr::Fail(ErrorCode::Conv));
        assert!(c.expr_in(&w, Heap::new(), &p, &ty));
        // A program that fails Type is in none.
        let p = Program::single(Instr::Add);
        assert!(!c.expr_in(&w, Heap::new(), &p, &ty));
        // A value of the wrong shape is rejected.
        let p = Program::single(Instr::push_val(Value::Array(vec![])));
        assert!(!c.expr_in(&w, Heap::new(), &p, &ty));
        // A long-running program exhausts the budget and is accepted.
        let mut instrs = vec![Instr::push_num(0)];
        for _ in 0..2_000 {
            instrs.push(Instr::push_num(1));
            instrs.push(Instr::Add);
        }
        let w_small = World::new(50);
        assert!(c.expr_in(&w_small, Heap::new(), &Program::from(instrs), &ty));
    }

    #[test]
    fn heap_satisfaction() {
        let c = checker();
        let mut h = Heap::new();
        let l = h.alloc(Value::Num(5));
        let w = World::new(100).with_loc(l, HlType::Bool);
        assert!(c.heap_satisfies(&w, &h));
        // unit demands exactly 0.
        let w_bad = World::new(100).with_loc(l, HlType::Unit);
        assert!(!c.heap_satisfies(&w_bad, &h));
        // Missing locations violate satisfaction.
        let w_missing = World::new(100).with_loc(Loc(77), HlType::Bool);
        assert!(!c.heap_satisfies(&w_missing, &h));
    }

    #[test]
    fn lemma_3_1_convertibility_soundness_for_the_registered_rules() {
        let c = checker();
        let rules = vec![
            (HlType::Bool, LlType::Int),
            (HlType::Unit, LlType::Int),
            (HlType::ref_(HlType::Bool), LlType::ref_(LlType::Int)),
            (
                HlType::sum(HlType::Bool, HlType::Bool),
                LlType::array(LlType::Int),
            ),
            (
                HlType::sum(HlType::Unit, HlType::Bool),
                LlType::array(LlType::Int),
            ),
            (
                HlType::prod(HlType::Bool, HlType::Bool),
                LlType::array(LlType::Int),
            ),
        ];
        for (hl, ll) in rules {
            c.check_convertibility(&hl, &ll)
                .unwrap_or_else(|ce| panic!("convertibility soundness failed: {ce}"));
        }
    }

    #[test]
    fn unsound_candidate_conversions_are_rejected() {
        let c = checker();
        // Claim: int converts to unit by doing nothing. False: 7 is not in
        // V⟦unit⟧.
        let err = c
            .check_direction(
                &SemType::Ll(LlType::Int),
                &SemType::Hl(HlType::Unit),
                &Program::empty(),
            )
            .unwrap_err();
        assert!(err.reason.contains("not in"));

        // Claim: int converts to bool+bool by tagging without checking: wrong,
        // arbitrary ints are not valid payload-carrying sums.
        let bogus = Program::single(Instr::push_num(5));
        let err = c
            .check_direction(
                &SemType::Ll(LlType::Int),
                &SemType::Hl(HlType::sum(HlType::Bool, HlType::Bool)),
                &bogus,
            )
            .unwrap_err();
        assert_eq!(err.claim, "C_{int ↦ (bool + bool)} sound");

        // Claim: ref [int] converts to ref (bool×bool) with a no-op (pointer
        // sharing): unsound because an empty array can be stored there.
        let err = c
            .check_direction(
                &SemType::Ll(LlType::ref_(LlType::array(LlType::Int))),
                &SemType::Hl(HlType::ref_(HlType::prod(HlType::Bool, HlType::Bool))),
                &Program::empty(),
            )
            .unwrap_err();
        assert!(err.witness.contains("ℓ"));
    }

    #[test]
    fn unregistered_rules_report_not_derivable() {
        let c = checker();
        let err = c
            .check_convertibility(&HlType::Bool, &LlType::array(LlType::Int))
            .unwrap_err();
        assert_eq!(err.reason, "rule not derivable");
    }

    #[test]
    fn world_extension_laws() {
        let w = World::new(10).with_loc(Loc(0), HlType::Bool);
        semint_core::world::check_world_laws(&w).unwrap();
        // Forgetting a location is not an extension; relabelling bool as int is.
        let forgot = World::new(5);
        assert!(!w.extended_by(&forgot));
        let relabelled = World {
            k: StepIndex::new(5),
            heap_typing: BTreeMap::from([(Loc(0), SemType::Ll(LlType::Int))]),
        };
        assert!(w.extended_by(&relabelled));
        // Raising the budget is not an extension.
        let raised = World {
            k: StepIndex::new(50),
            heap_typing: w.heap_typing.clone(),
        };
        assert!(!w.extended_by(&raised));
    }

    #[test]
    fn type_safety_checker_flags_type_failures_only() {
        let c = checker();
        assert!(c
            .check_type_safety(&Program::single(Instr::push_num(1)), Fuel::default())
            .is_ok());
        assert!(c
            .check_type_safety(
                &Program::single(Instr::Fail(ErrorCode::Conv)),
                Fuel::default()
            )
            .is_ok());
        assert!(c
            .check_type_safety(&Program::single(Instr::Call), Fuel::default())
            .is_err());
    }
}
