//! The §3 convertibility rules and their StackLang glue code (Fig. 4).
//!
//! The rule set is *derivation based*: a query `τ ∼ 𝜏` is answered by
//! recursively deriving it from the base rules, mirroring the inference-rule
//! presentation of the paper:
//!
//! * `bool ∼ int` — both compile to target integers, so both conversions are
//!   no-ops (empty instruction sequences);
//! * `unit ∼ int` — `unit` compiles to `0`; converting an `int` back to
//!   `unit` collapses it to `0` (a designer choice the framework permits);
//! * `ref bool ∼ ref int` — no-ops, justified because `V⟦bool⟧ = V⟦int⟧`;
//!   more generally `ref τ ∼ ref 𝜏` is admitted **only** when the `τ ∼ 𝜏`
//!   conversions are themselves no-ops (the paper's "inhabited by the very
//!   same set of target terms" requirement);
//! * `τ1 + τ2 ∼ [int]` when `τ1 ∼ int` and `τ2 ∼ int` — tag-and-payload
//!   encoding with a dynamic `Conv` failure for malformed arrays;
//! * `τ1 × τ2 ∼ [𝜏]` when `τ1 ∼ 𝜏` and `τ2 ∼ 𝜏` (elided in the paper's
//!   figure) — component-wise conversion with a length check.
//!
//! The alternative strategies from the paper's Discussion are provided for
//! the E1 benchmark ablation: [`RefStrategy::Copy`] converts reference
//! contents into a *fresh* location on every crossing (no aliasing), and the
//! per-access cost of guard/proxy-style interoperation is measured by the
//! benchmark harness by inserting a payload conversion around every access.

use reflang::compile::ConversionEmitter;
use reflang::syntax::{HlType, LlType};
use reflang::typecheck::ConvertOracle;
use semint_core::convert::{ConversionPair, ConversionScheme, GlueCache};
use semint_core::ErrorCode;
use stacklang::builder::{dup, pack, swap};
use stacklang::{Instr, Program};

/// How reference types are converted across the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefStrategy {
    /// Pass the pointer itself (the paper's chosen strategy): requires the
    /// pointed-to types to have identical interpretations, costs nothing, and
    /// preserves aliasing.
    #[default]
    Share,
    /// Copy the contents into a fresh location, converting them: allows more
    /// type pairs but breaks aliasing (paper §3 Discussion, option 1).
    Copy,
}

/// The §3 conversion rule set, memoized through a shared
/// [`GlueCache`] (clones share the cache, so the type checker, compiler and
/// model checker of one system all reuse each other's derivations).
#[derive(Debug, Clone, Default)]
pub struct SharedMemConversions {
    ref_strategy: RefStrategy,
    cache: GlueCache<HlType, LlType, Program>,
}

impl SharedMemConversions {
    /// The paper's rule set: pointer-sharing references.
    pub fn standard() -> Self {
        SharedMemConversions::with_ref_strategy(RefStrategy::Share)
    }

    /// The copy-convert ablation from the Discussion.
    pub fn with_ref_strategy(strategy: RefStrategy) -> Self {
        SharedMemConversions {
            ref_strategy: strategy,
            cache: GlueCache::new(),
        }
    }

    /// The configured reference strategy.
    pub fn ref_strategy(&self) -> RefStrategy {
        self.ref_strategy
    }

    /// The memoization cache behind [`SharedMemConversions::derive`].
    pub fn cache(&self) -> &GlueCache<HlType, LlType, Program> {
        &self.cache
    }

    /// Derives `τ ∼ 𝜏` (memoized) and returns the conversion pair
    /// `(C_{τ↦𝜏}, C_{𝜏↦τ})`, or `None` if the judgment is not derivable.
    pub fn derive(&self, hl: &HlType, ll: &LlType) -> Option<(Program, Program)> {
        self.derive_pair(hl, ll)
            .map(|p| (p.a_to_b.clone(), p.b_to_a.clone()))
    }
}

impl ConversionScheme for SharedMemConversions {
    type TyA = HlType;
    type TyB = LlType;
    type Glue = Program;

    fn glue_cache(&self) -> &GlueCache<HlType, LlType, Program> {
        &self.cache
    }

    /// One Fig. 4 derivation step; sub-derivations recurse through the
    /// memoized [`SharedMemConversions::derive`].
    fn derive_uncached(&self, hl: &HlType, ll: &LlType) -> Option<ConversionPair<Program>> {
        let pair = match (hl, ll) {
            // bool ∼ int: both are target integers already.
            (HlType::Bool, LlType::Int) => Some((Program::empty(), Program::empty())),
            // unit ∼ int: unit compiles to 0; the other direction collapses
            // every integer to 0 (the canonical inhabitant of V⟦unit⟧).
            (HlType::Unit, LlType::Int) => Some((
                Program::empty(),
                Program::from(vec![stacklang::builder::drop_top(), Instr::push_num(0)]),
            )),
            // ref τ ∼ ref 𝜏: only when the payload conversions are no-ops, in
            // which case the pointer can be passed directly.
            (HlType::Ref(t), LlType::Ref(u)) => {
                let sub = self.derive_pair(t, u)?;
                match self.ref_strategy {
                    RefStrategy::Share => {
                        if sub.a_to_b.is_empty() && sub.b_to_a.is_empty() {
                            Some((Program::empty(), Program::empty()))
                        } else {
                            None
                        }
                    }
                    RefStrategy::Copy => Some((copy_ref(&sub.a_to_b), copy_ref(&sub.b_to_a))),
                }
            }
            // τ1 + τ2 ∼ [int] when τ1 ∼ int and τ2 ∼ int.
            (HlType::Sum(t1, t2), LlType::Array(elem)) if **elem == LlType::Int => {
                let c1 = self.derive_pair(t1, &LlType::Int)?;
                let c2 = self.derive_pair(t2, &LlType::Int)?;
                Some((
                    sum_to_array(&c1.a_to_b, &c2.a_to_b),
                    array_to_sum(&c1.b_to_a, &c2.b_to_a),
                ))
            }
            // τ1 × τ2 ∼ [𝜏] when τ1 ∼ 𝜏 and τ2 ∼ 𝜏 (elided in Fig. 4).
            (HlType::Prod(t1, t2), LlType::Array(elem)) => {
                let c1 = self.derive_pair(t1, elem)?;
                let c2 = self.derive_pair(t2, elem)?;
                Some((
                    prod_to_array(&c1.a_to_b, &c2.a_to_b),
                    array_to_prod(&c1.b_to_a, &c2.b_to_a),
                ))
            }
            _ => None,
        };
        pair.map(|(to_ll, from_ll)| ConversionPair::new(to_ll, from_ll))
    }
}

impl ConvertOracle for SharedMemConversions {
    fn convertible(&self, hl: &HlType, ll: &LlType) -> bool {
        self.derivable(hl, ll)
    }
}

impl ConversionEmitter for SharedMemConversions {
    fn ll_to_hl(&self, ll: &LlType, hl: &HlType) -> Option<Program> {
        self.derive_pair(hl, ll).map(|p| p.b_to_a.clone())
    }

    fn hl_to_ll(&self, hl: &HlType, ll: &LlType) -> Option<Program> {
        self.derive_pair(hl, ll).map(|p| p.a_to_b.clone())
    }
}

/// `C_{τ1+τ2 ↦ [int]}` (Fig. 4): convert the payload with the appropriate
/// component conversion and rebuild the `[tag, payload]` array.
fn sum_to_array(c1: &Program, c2: &Program) -> Program {
    // Stack: [s] with s = [tag, payload].
    Program::from(vec![
        dup(),
        Instr::push_num(1),
        Instr::Idx, // [s, payload]
        swap(),
        Instr::push_num(0),
        Instr::Idx, // [payload, tag]
        dup(),      // [payload, tag, tag]
        Instr::If0(
            Program::single(swap()).then(c1.clone()), // [tag, payload']
            Program::single(swap()).then(c2.clone()),
        ),
    ])
    .then_instr(repack_tagged())
}

/// `C_{[int] ↦ τ1+τ2}` (Fig. 4): check the array is long enough, check the
/// tag is 0 or 1 (else `fail Conv`), convert the payload.
fn array_to_sum(c1: &Program, c2: &Program) -> Program {
    Program::from(vec![
        // Length check: fail Conv unless len ≥ 2.
        dup(),
        Instr::Len,
        Instr::push_num(2),
        Instr::Less, // pops 2, len: 0 (true) iff len < 2
        Instr::If0(
            Program::single(Instr::Fail(ErrorCode::Conv)),
            Program::from(vec![
                dup(),
                Instr::push_num(1),
                Instr::Idx, // [a, payload]
                swap(),
                Instr::push_num(0),
                Instr::Idx, // [payload, tag]
                dup(),
                Instr::If0(
                    Program::single(swap()).then(c1.clone()),
                    Program::from(vec![
                        dup(),
                        Instr::push_num(-1),
                        Instr::Add,
                        Instr::If0(
                            Program::single(swap()).then(c2.clone()),
                            Program::single(Instr::Fail(ErrorCode::Conv)),
                        ),
                    ]),
                ),
                repack_tagged(),
            ]),
        ),
    ])
}

/// `lam xv, xt. push [xt, xv]`: rebuilds a `[tag, payload]` array from a
/// stack holding `tag` below `payload`.
fn repack_tagged() -> Instr {
    let xv = semint_core::Var::new("conv%xv");
    let xt = semint_core::Var::new("conv%xt");
    Instr::Lam(
        vec![xv.clone(), xt.clone()],
        Program::single(Instr::Push(stacklang::Operand::Array(vec![
            stacklang::Operand::Var(xt),
            stacklang::Operand::Var(xv),
        ]))),
    )
}

/// `C_{τ1×τ2 ↦ [𝜏]}`: convert both components.
fn prod_to_array(c1: &Program, c2: &Program) -> Program {
    convert_two_elements(c1, c2)
}

/// `C_{[𝜏] ↦ τ1×τ2}`: length-check, then convert both components.
fn array_to_prod(c1: &Program, c2: &Program) -> Program {
    Program::from(vec![
        dup(),
        Instr::Len,
        Instr::push_num(2),
        Instr::Less,
        Instr::If0(
            Program::single(Instr::Fail(ErrorCode::Conv)),
            convert_two_elements(c1, c2),
        ),
    ])
}

/// Shared shape of the binary-array conversions: apply `c1` to element 0 and
/// `c2` to element 1, rebuilding a two-element array.
fn convert_two_elements(c1: &Program, c2: &Program) -> Program {
    // Stack: [p] with p a 2-element array.
    Program::from(vec![dup(), Instr::push_num(0), Instr::Idx]) // [p, v1]
        .then(c1.clone()) // [p, v1']
        .then_instr(swap()) // [v1', p]
        .then_instr(Instr::push_num(1))
        .then_instr(Instr::Idx) // [v1', v2]
        .then(c2.clone()) // [v1', v2']
        .then_instr(pack(2)) // [[v1', v2']]
}

/// The copy-convert reference strategy: read the contents, convert them with
/// `payload_conv`, and allocate a fresh location (paper §3 Discussion).
fn copy_ref(payload_conv: &Program) -> Program {
    Program::single(Instr::Read)
        .then(payload_conv.clone())
        .then_instr(Instr::Alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semint_core::Fuel;
    use stacklang::{Machine, Outcome, Value};

    fn run_conv(value: Value, conv: &Program) -> Outcome<Value> {
        let p = Program::single(Instr::push_val(value)).then(conv.clone());
        Machine::run_program(p, Fuel::default()).outcome
    }

    #[test]
    fn bool_int_conversions_are_noops() {
        let c = SharedMemConversions::standard();
        let (to_ll, from_ll) = c.derive(&HlType::Bool, &LlType::Int).unwrap();
        assert!(to_ll.is_empty());
        assert!(from_ll.is_empty());
        assert!(c.convertible(&HlType::Bool, &LlType::Int));
    }

    #[test]
    fn ref_bool_ref_int_shares_the_pointer() {
        let c = SharedMemConversions::standard();
        let (to_ll, from_ll) = c
            .derive(&HlType::ref_(HlType::Bool), &LlType::ref_(LlType::Int))
            .unwrap();
        assert!(to_ll.is_empty(), "sharing a pointer must be free");
        assert!(from_ll.is_empty());
    }

    #[test]
    fn ref_of_non_identical_types_is_rejected_under_sharing() {
        let c = SharedMemConversions::standard();
        // ref (bool + bool) ∼ ref [int] would let RefLL write arbitrary-length
        // arrays into a location RefHL still reads at a sum type: unsound, so
        // the derivation must fail.
        let hl = HlType::ref_(HlType::sum(HlType::Bool, HlType::Bool));
        let ll = LlType::ref_(LlType::array(LlType::Int));
        assert!(c.derive(&hl, &ll).is_none());
        assert!(!c.convertible(&hl, &ll));
        // The copy strategy, which breaks aliasing, does allow it.
        let copy = SharedMemConversions::with_ref_strategy(RefStrategy::Copy);
        assert!(copy.convertible(&hl, &ll));
    }

    #[test]
    fn nested_ref_of_identical_types_is_allowed() {
        let c = SharedMemConversions::standard();
        let hl = HlType::ref_(HlType::ref_(HlType::Bool));
        let ll = LlType::ref_(LlType::ref_(LlType::Int));
        let (a, b) = c.derive(&hl, &ll).unwrap();
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn sum_to_int_array_and_back() {
        let c = SharedMemConversions::standard();
        let hl = HlType::sum(HlType::Bool, HlType::Bool);
        let ll = LlType::array(LlType::Int);
        let (to_ll, from_ll) = c.derive(&hl, &ll).unwrap();

        // Compiled inl true = [0, 0]; converting to [int] keeps the shape.
        let inl_true = Value::array([Value::Num(0), Value::Num(0)]);
        assert_eq!(
            run_conv(inl_true.clone(), &to_ll),
            Outcome::Value(inl_true.clone())
        );

        // Converting back succeeds on well-formed arrays…
        assert_eq!(
            run_conv(inl_true.clone(), &from_ll),
            Outcome::Value(inl_true)
        );
        let inr_x = Value::array([Value::Num(1), Value::Num(42)]);
        assert_eq!(run_conv(inr_x.clone(), &from_ll), Outcome::Value(inr_x));

        // …fails Conv on a tag outside {0, 1}…
        let bad_tag = Value::array([Value::Num(7), Value::Num(42)]);
        assert_eq!(run_conv(bad_tag, &from_ll), Outcome::Fail(ErrorCode::Conv));

        // …and fails Conv on arrays that are too short.
        let too_short = Value::array([Value::Num(0)]);
        assert_eq!(
            run_conv(too_short, &from_ll),
            Outcome::Fail(ErrorCode::Conv)
        );
    }

    #[test]
    fn prod_to_array_converts_componentwise() {
        let c = SharedMemConversions::standard();
        let hl = HlType::prod(HlType::Unit, HlType::Bool);
        let ll = LlType::array(LlType::Int);
        let (to_ll, from_ll) = c.derive(&hl, &ll).unwrap();

        let pair = Value::array([Value::Num(0), Value::Num(1)]);
        assert_eq!(run_conv(pair.clone(), &to_ll), Outcome::Value(pair));

        // Converting [7, 9] to unit × bool collapses the unit component to 0.
        let arr = Value::array([Value::Num(7), Value::Num(9)]);
        assert_eq!(
            run_conv(arr, &from_ll),
            Outcome::Value(Value::array([Value::Num(0), Value::Num(9)]))
        );

        let short = Value::array([Value::Num(7)]);
        assert_eq!(run_conv(short, &from_ll), Outcome::Fail(ErrorCode::Conv));
    }

    #[test]
    fn unit_int_collapses_to_zero() {
        let c = SharedMemConversions::standard();
        let (_, from_ll) = c.derive(&HlType::Unit, &LlType::Int).unwrap();
        assert_eq!(
            run_conv(Value::Num(17), &from_ll),
            Outcome::Value(Value::Num(0))
        );
    }

    #[test]
    fn copy_strategy_creates_a_fresh_location() {
        let c = SharedMemConversions::with_ref_strategy(RefStrategy::Copy);
        let hl = HlType::ref_(HlType::Bool);
        let ll = LlType::ref_(LlType::Int);
        let (to_ll, _) = c.derive(&hl, &ll).unwrap();
        // Allocate a location holding 1, then convert it: the result must be
        // a *different* location with the same contents.
        let p = Program::from(vec![Instr::push_num(1), Instr::Alloc]).then(to_ll);
        let r = Machine::run_program(p, Fuel::default());
        let loc = r
            .outcome
            .value()
            .and_then(|v| v.as_loc())
            .expect("a location");
        assert_eq!(r.heap.read(loc), Some(&Value::Num(1)));
        assert_eq!(r.heap.len(), 2, "copying allocates a second cell");
    }

    #[test]
    fn repeated_derivations_hit_the_glue_cache() {
        let c = SharedMemConversions::standard();
        let hl = HlType::prod(
            HlType::sum(HlType::Bool, HlType::Unit),
            HlType::sum(HlType::Unit, HlType::Bool),
        );
        let ll = LlType::array(LlType::array(LlType::Int));
        let first = c.derive(&hl, &ll);
        let after_first = c.cache().stats();
        assert!(
            after_first.misses > 0,
            "first derivation populates the cache"
        );
        let second = c.derive(&hl, &ll);
        assert_eq!(first, second, "cached result is observably identical");
        let after_second = c.cache().stats();
        assert_eq!(
            after_second.misses, after_first.misses,
            "second derivation derives nothing"
        );
        assert_eq!(after_second.hits, after_first.hits + 1);
        // A fresh (cold-cache) rule set derives the very same glue.
        let fresh = SharedMemConversions::standard().derive(&hl, &ll);
        assert_eq!(first, fresh);
    }

    #[test]
    fn unrelated_types_are_not_convertible() {
        let c = SharedMemConversions::standard();
        assert!(!c.convertible(&HlType::Bool, &LlType::array(LlType::Int)));
        assert!(!c.convertible(&HlType::fun(HlType::Bool, HlType::Bool), &LlType::Int));
        assert!(!c.convertible(&HlType::Unit, &LlType::fun(LlType::Int, LlType::Int)));
    }

    #[test]
    fn emitter_and_oracle_views_agree() {
        let c = SharedMemConversions::standard();
        let hl = HlType::sum(HlType::Bool, HlType::Unit);
        let ll = LlType::array(LlType::Int);
        assert_eq!(c.convertible(&hl, &ll), c.hl_to_ll(&hl, &ll).is_some());
        assert_eq!(c.convertible(&hl, &ll), c.ll_to_hl(&ll, &hl).is_some());
    }
}
