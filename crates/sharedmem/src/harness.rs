//! The [`CaseStudy`] instance for case study 1 (shared-memory
//! interoperability), consumed by the `semint-harness` engine.

use crate::convert::SharedMemConversions;
use crate::gen::{GenConfig, ProgramGen};
use crate::model::{ModelChecker, SemType, World};
use crate::multilang::{MultiLang, SourceType};
use reflang::syntax::{HlExpr, HlType, LlExpr, LlType};
use semint_core::case::{CaseStudy, CheckFailure, GenProfile, Scenario};
use semint_core::stats::{OutcomeClass, RunStats};
use semint_core::{Fuel, GlueCacheStats, Outcome};
use stacklang::{Heap, Program, RunResult};

pub use crate::multilang::SmProgram;

/// Case study 1 packaged for the harness engine.
///
/// The `broken` flag simulates a designer error: an extra convertibility
/// rule `bool ∼ [int]` whose glue is the identity.  The rule is unsound —
/// booleans compile to bare integers, which are not array values — so every
/// `bool`-typed scenario fails model checking, which is exactly the failure
/// the engine's counterexample shrinker is exercised on.
#[derive(Debug, Clone)]
pub struct SharedMemCase {
    system: MultiLang,
    checker: ModelChecker,
    broken: bool,
}

impl SharedMemCase {
    /// The standard (sound) rule set.
    pub fn standard() -> Self {
        SharedMemCase {
            system: MultiLang::new(SharedMemConversions::standard()),
            checker: ModelChecker::default(),
            broken: false,
        }
    }

    /// The deliberately broken rule set (see the type-level docs).
    pub fn broken() -> Self {
        SharedMemCase {
            broken: true,
            ..SharedMemCase::standard()
        }
    }

    /// The claimed model type of a scenario, with the broken rule applied.
    fn claimed_sem_type(&self, ty: &SourceType) -> SemType {
        match ty {
            SourceType::Hl(HlType::Bool) if self.broken => SemType::Ll(LlType::array(LlType::Int)),
            SourceType::Hl(t) => SemType::Hl(t.clone()),
            SourceType::Ll(t) => SemType::Ll(t.clone()),
        }
    }
}

impl Default for SharedMemCase {
    fn default() -> Self {
        SharedMemCase::standard()
    }
}

fn push_hl(out: &mut Vec<SmProgram>, e: &HlExpr) {
    out.push(SmProgram::Hl(e.clone()));
}

fn push_ll(out: &mut Vec<SmProgram>, e: &LlExpr) {
    out.push(SmProgram::Ll(e.clone()));
}

/// Immediate subterms of a RefHL expression, as candidate shrinks.
fn hl_children(e: &HlExpr, out: &mut Vec<SmProgram>) {
    match e {
        HlExpr::Unit | HlExpr::Bool(_) | HlExpr::Var(_) => {}
        HlExpr::Inl(a, _)
        | HlExpr::Inr(a, _)
        | HlExpr::Fst(a)
        | HlExpr::Snd(a)
        | HlExpr::Ref(a)
        | HlExpr::Deref(a)
        | HlExpr::Lam(_, _, a) => push_hl(out, a),
        HlExpr::Pair(a, b) | HlExpr::App(a, b) | HlExpr::Assign(a, b) => {
            push_hl(out, a);
            push_hl(out, b);
        }
        HlExpr::If(c, t, f) => {
            push_hl(out, c);
            push_hl(out, t);
            push_hl(out, f);
        }
        HlExpr::Match(s, _, l, _, r) => {
            push_hl(out, s);
            push_hl(out, l);
            push_hl(out, r);
        }
        HlExpr::Boundary(ll, _) => push_ll(out, ll),
    }
}

/// Immediate subterms of a RefLL expression, as candidate shrinks.
fn ll_children(e: &LlExpr, out: &mut Vec<SmProgram>) {
    match e {
        LlExpr::Int(_) | LlExpr::Var(_) => {}
        LlExpr::Array(es, _) => {
            for elem in es {
                push_ll(out, elem);
            }
        }
        LlExpr::Lam(_, _, a) | LlExpr::Ref(a) | LlExpr::Deref(a) => push_ll(out, a),
        LlExpr::Index(a, b) | LlExpr::App(a, b) | LlExpr::Add(a, b) | LlExpr::Assign(a, b) => {
            push_ll(out, a);
            push_ll(out, b);
        }
        LlExpr::If0(c, t, f) => {
            push_ll(out, c);
            push_ll(out, t);
            push_ll(out, f);
        }
        LlExpr::Boundary(hl, _) => push_hl(out, hl),
    }
}

impl CaseStudy for SharedMemCase {
    type Program = SmProgram;
    type Ty = SourceType;
    type Report = RunResult;
    type Compiled = Program;

    fn name(&self) -> &'static str {
        "sharedmem"
    }

    fn generate(&self, seed: u64, profile: &GenProfile) -> Scenario<SmProgram, SourceType> {
        let mut gen = ProgramGen::with_config(seed, GenConfig::from(profile));
        // Every fourth scenario is RefLL-hosted so both directions of the
        // boundary get swept.
        if seed % 4 == 3 {
            let ty = gen.gen_ll_type(profile.type_depth);
            let program = gen.gen_ll(&ty);
            Scenario {
                seed,
                program: SmProgram::Ll(program),
                ty: SourceType::Ll(ty),
            }
        } else {
            let ty = gen.gen_goal_hl_type();
            let program = gen.gen_hl(&ty);
            Scenario {
                seed,
                program: SmProgram::Hl(program),
                ty: SourceType::Hl(ty),
            }
        }
    }

    fn typecheck(&self, program: &SmProgram) -> Result<SourceType, String> {
        self.system.typecheck(program).map_err(|e| e.to_string())
    }

    fn compile(&self, program: &SmProgram) -> Result<Program, String> {
        self.system.compile_only(program).map_err(|e| e.to_string())
    }

    fn execute(&self, compiled: Program, fuel: Fuel) -> RunResult {
        self.system.execute_with_fuel(compiled, fuel)
    }

    fn execute_batch(&self, batch: Vec<Program>, fuel: Fuel) -> Vec<RunResult> {
        self.system.execute_batch_with_fuel(batch, fuel)
    }

    fn stats(&self, report: &RunResult) -> RunStats {
        let outcome = match &report.outcome {
            Outcome::Value(_) => OutcomeClass::Value,
            Outcome::Fail(c) => OutcomeClass::Fail(*c),
            Outcome::OutOfFuel => OutcomeClass::OutOfFuel,
        };
        RunStats {
            outcome,
            steps: report.steps,
            counters: report.counters,
        }
    }

    fn model_check_compiled(
        &self,
        program: &SmProgram,
        ty: &SourceType,
        compiled: &Program,
    ) -> Result<(), CheckFailure> {
        // Theorems 3.3/3.4: no dynamic type errors.
        self.checker
            .check_type_safety(compiled, Fuel::steps(200_000))
            .map_err(|ce| CheckFailure {
                claim: ce.claim,
                witness: program.to_string(),
                reason: ce.reason,
            })?;

        // The Fundamental Property: the compiled program inhabits E⟦τ⟧ at
        // its claimed type (the *broken* rule set claims bool-typed programs
        // at [int], which is where the sabotage surfaces).
        let sem_ty = self.claimed_sem_type(ty);
        let world = World::new(20_000);
        if !self.checker.expr_in(&world, Heap::new(), compiled, &sem_ty) {
            return Err(CheckFailure {
                claim: format!("compiled program ∈ E⟦{sem_ty}⟧"),
                witness: program.to_string(),
                reason: "run result is not in the expression relation".into(),
            });
        }
        Ok(())
    }

    fn shrink(&self, program: &SmProgram) -> Vec<SmProgram> {
        let mut out = Vec::new();
        match program {
            SmProgram::Hl(e) => hl_children(e, &mut out),
            SmProgram::Ll(e) => ll_children(e, &mut out),
        }
        out
    }

    fn boundary_count(&self, program: &SmProgram) -> usize {
        match program {
            SmProgram::Hl(e) => e.boundary_count(),
            SmProgram::Ll(e) => e.boundary_count(),
        }
    }

    fn check_conversions(&self) -> Result<(), CheckFailure> {
        let hl_types = [
            HlType::Bool,
            HlType::Unit,
            HlType::ref_(HlType::Bool),
            HlType::sum(HlType::Bool, HlType::Bool),
            HlType::prod(HlType::Bool, HlType::Unit),
        ];
        let ll_types = [
            LlType::Int,
            LlType::ref_(LlType::Int),
            LlType::array(LlType::Int),
        ];
        for hl in &hl_types {
            for ll in &ll_types {
                if self.system.conversions().derive(hl, ll).is_some() {
                    self.checker
                        .check_convertibility(hl, ll)
                        .map_err(|ce| CheckFailure {
                            claim: ce.claim,
                            witness: ce.witness,
                            reason: ce.reason,
                        })?;
                }
            }
        }
        if self.broken {
            // The sabotaged rule: bool ∼ [int] with identity glue. Lemma 3.1
            // refutes it with a concrete witness.
            self.checker
                .check_direction(
                    &SemType::Hl(HlType::Bool),
                    &SemType::Ll(LlType::array(LlType::Int)),
                    &Program::empty(),
                )
                .map_err(|ce| CheckFailure {
                    claim: format!("deliberately broken rule: {}", ce.claim),
                    witness: ce.witness,
                    reason: ce.reason,
                })?;
        }
        Ok(())
    }

    fn glue_cache_stats(&self) -> Option<GlueCacheStats> {
        Some(self.system.conversions().cache().stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_typecheck_at_their_claimed_type() {
        let case = SharedMemCase::standard();
        let cfg = GenProfile::standard();
        for seed in 0..40 {
            let scen = case.generate(seed, &cfg);
            let checked = case
                .typecheck(&scen.program)
                .expect("well-typed by construction");
            assert_eq!(checked, scen.ty, "seed {seed}");
        }
    }

    #[test]
    fn standard_catalogue_is_sound_and_broken_catalogue_is_refuted() {
        assert!(SharedMemCase::standard().check_conversions().is_ok());
        let err = SharedMemCase::broken().check_conversions().unwrap_err();
        assert!(
            err.claim.contains("broken"),
            "unexpected claim: {}",
            err.claim
        );
    }

    #[test]
    fn model_check_accepts_sound_scenarios() {
        let case = SharedMemCase::standard();
        let cfg = GenProfile::standard();
        for seed in 0..12 {
            let scen = case.generate(seed, &cfg);
            case.model_check(&scen.program, &scen.ty)
                .unwrap_or_else(|f| {
                    panic!("seed {seed}: {f}");
                });
        }
    }

    #[test]
    fn shrink_yields_immediate_subterms() {
        let case = SharedMemCase::standard();
        let p = SmProgram::Hl(HlExpr::if_(
            HlExpr::bool_(true),
            HlExpr::bool_(false),
            HlExpr::boundary(LlExpr::int(1), HlType::Bool),
        ));
        let shrinks = case.shrink(&p);
        assert_eq!(shrinks.len(), 3);
        assert!(shrinks
            .iter()
            .any(|s| matches!(s, SmProgram::Hl(HlExpr::Bool(true)))));
    }

    #[test]
    fn boundary_count_counts_boundaries() {
        let case = SharedMemCase::standard();
        let p = SmProgram::Hl(HlExpr::boundary(
            LlExpr::add(
                LlExpr::boundary(HlExpr::bool_(true), LlType::Int),
                LlExpr::int(0),
            ),
            HlType::Bool,
        ));
        assert_eq!(case.boundary_count(&p), 2);
    }
}
