//! Random generation of well-typed multi-language programs.
//!
//! The fundamental property (Theorem 3.2) and the type-safety theorems
//! (3.3/3.4) quantify over *all* well-typed programs; the executable test
//! suite instantiates them over a large randomized sample.  The generator is
//! type-directed: [`ProgramGen::gen_hl`] produces a RefHL expression of a requested type,
//! [`ProgramGen::gen_ll`] a RefLL expression, and both freely insert boundaries at
//! convertible types so the generated programs exercise the glue code.

use crate::convert::SharedMemConversions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reflang::syntax::{HlExpr, HlType, LlExpr, LlType};
use semint_core::case::{ConstructorClass, ConstructorWeights, GenProfile};

/// Tuning knobs for the generator.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum expression depth.
    pub max_depth: usize,
    /// Maximum goal-type depth (used by [`ProgramGen::gen_hl_type`] /
    /// [`ProgramGen::gen_ll_type`] callers that follow the config).
    pub type_depth: usize,
    /// Probability (0–100) of inserting a boundary when one is possible.
    pub boundary_bias: u32,
    /// Constructor-class weights for goal-type generation.
    pub weights: ConstructorWeights,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 5,
            type_depth: 2,
            boundary_bias: 35,
            weights: ConstructorWeights::STANDARD,
        }
    }
}

impl From<&GenProfile> for GenConfig {
    fn from(profile: &GenProfile) -> Self {
        GenConfig {
            max_depth: profile.max_depth,
            type_depth: profile.type_depth,
            boundary_bias: profile.boundary_bias,
            weights: profile.weights,
        }
    }
}

/// A deterministic program generator seeded by a `u64`, so property tests can
/// shrink on the seed.
#[derive(Debug)]
pub struct ProgramGen {
    rng: StdRng,
    config: GenConfig,
    conversions: SharedMemConversions,
}

impl ProgramGen {
    /// A generator with the standard conversions and default configuration.
    pub fn new(seed: u64) -> Self {
        ProgramGen::with_config(seed, GenConfig::default())
    }

    /// A generator with an explicit configuration.
    pub fn with_config(seed: u64, config: GenConfig) -> Self {
        ProgramGen {
            rng: StdRng::seed_from_u64(seed),
            config,
            conversions: SharedMemConversions::standard(),
        }
    }

    /// Generates a closed, well-typed RefHL expression of type `ty`.
    pub fn gen_hl(&mut self, ty: &HlType) -> HlExpr {
        self.hl(ty, self.config.max_depth)
    }

    /// Generates a closed, well-typed RefLL expression of type `ty`.
    pub fn gen_ll(&mut self, ty: &LlType) -> LlExpr {
        self.ll(ty, self.config.max_depth)
    }

    /// Generates a random RefHL type of bounded size (used to vary the goal
    /// type itself in property tests and by [`ProgramGen::gen_goal_hl_type`]
    /// at the configured type depth).  Constructor classes are drawn from
    /// the configured [`ConstructorWeights`], so branch-heavy profiles
    /// recurse most of the time and reach their full depth budget.
    pub fn gen_hl_type(&mut self, depth: usize) -> HlType {
        if depth == 0 {
            return if self.rng.gen_bool(0.5) {
                HlType::Bool
            } else {
                HlType::Unit
            };
        }
        match self.pick_class() {
            ConstructorClass::Leaf => {
                if self.rng.gen_bool(0.5) {
                    HlType::Bool
                } else {
                    HlType::Unit
                }
            }
            ConstructorClass::Branch => match self.rng.gen_range(0..3) {
                0 => HlType::sum(self.gen_hl_type(depth - 1), self.gen_hl_type(depth - 1)),
                1 => HlType::prod(self.gen_hl_type(depth - 1), self.gen_hl_type(depth - 1)),
                _ => HlType::fun(self.gen_hl_type(depth - 1), self.gen_hl_type(depth - 1)),
            },
            ConstructorClass::Wrap => HlType::ref_(self.gen_hl_type(depth - 1)),
        }
    }

    /// A goal type at the configured type depth.
    pub fn gen_goal_hl_type(&mut self) -> HlType {
        self.gen_hl_type(self.config.type_depth)
    }

    /// Generates a random RefLL goal type of bounded size (deep arrays and
    /// shared references for the RefLL-hosted scenarios).
    pub fn gen_ll_type(&mut self, depth: usize) -> LlType {
        if depth == 0 {
            return LlType::Int;
        }
        match self.pick_class() {
            ConstructorClass::Leaf => LlType::Int,
            ConstructorClass::Branch => LlType::array(self.gen_ll_type(depth - 1)),
            ConstructorClass::Wrap => LlType::ref_(self.gen_ll_type(depth - 1)),
        }
    }

    fn pick_class(&mut self) -> ConstructorClass {
        let total = self.config.weights.total().max(1);
        self.config.weights.class_for(self.rng.gen_range(0..total))
    }

    fn boundary_here(&mut self) -> bool {
        self.rng.gen_range(0u32..100) < self.config.boundary_bias
    }

    fn hl(&mut self, ty: &HlType, depth: usize) -> HlExpr {
        // Possibly detour through RefLL when a conversion exists.
        if depth > 0 && self.boundary_here() {
            if let Some(ll_ty) = self.convertible_ll_for(ty) {
                let inner = self.ll(&ll_ty, depth - 1);
                return HlExpr::boundary(inner, ty.clone());
            }
        }
        if depth == 0 {
            return self.hl_leaf(ty);
        }
        match self.rng.gen_range(0..4) {
            // A leaf / canonical constructor.
            0 => self.hl_leaf_deep(ty, depth),
            // if
            1 => HlExpr::if_(
                self.hl(&HlType::Bool, depth - 1),
                self.hl(ty, depth - 1),
                self.hl(ty, depth - 1),
            ),
            // Projection from a pair containing the goal type.
            2 => {
                if self.rng.gen_bool(0.5) {
                    HlExpr::fst(HlExpr::pair(
                        self.hl(ty, depth - 1),
                        self.hl(&HlType::Unit, 0),
                    ))
                } else {
                    HlExpr::snd(HlExpr::pair(
                        self.hl(&HlType::Bool, 0),
                        self.hl(ty, depth - 1),
                    ))
                }
            }
            // Immediate application of a lambda.
            _ => {
                let arg_ty = if self.rng.gen_bool(0.5) {
                    HlType::Bool
                } else {
                    HlType::Unit
                };
                let var = format!("x{}", self.rng.gen_range(0..1000));
                HlExpr::app(
                    HlExpr::lam(var.as_str(), arg_ty.clone(), self.hl(ty, depth - 1)),
                    self.hl(&arg_ty, depth - 1),
                )
            }
        }
    }

    fn hl_leaf(&mut self, ty: &HlType) -> HlExpr {
        self.hl_leaf_deep(ty, 1)
    }

    fn hl_leaf_deep(&mut self, ty: &HlType, depth: usize) -> HlExpr {
        let d = depth.saturating_sub(1);
        match ty {
            HlType::Unit => HlExpr::unit(),
            HlType::Bool => HlExpr::bool_(self.rng.gen_bool(0.5)),
            HlType::Sum(a, b) => {
                if self.rng.gen_bool(0.5) {
                    HlExpr::inl(self.hl(a, d), ty.clone())
                } else {
                    HlExpr::inr(self.hl(b, d), ty.clone())
                }
            }
            HlType::Prod(a, b) => HlExpr::pair(self.hl(a, d), self.hl(b, d)),
            HlType::Fun(a, b) => {
                let var = format!("f{}", self.rng.gen_range(0..1000));
                let _ = a;
                HlExpr::lam(var.as_str(), (**a).clone(), self.hl(b, d))
            }
            HlType::Ref(a) => HlExpr::ref_(self.hl(a, d)),
        }
    }

    fn ll(&mut self, ty: &LlType, depth: usize) -> LlExpr {
        if depth > 0 && self.boundary_here() {
            if let Some(hl_ty) = self.convertible_hl_for(ty) {
                let inner = self.hl(&hl_ty, depth - 1);
                return LlExpr::boundary(inner, ty.clone());
            }
        }
        if depth == 0 {
            return self.ll_leaf(ty);
        }
        match ty {
            LlType::Int => match self.rng.gen_range(0..4) {
                0 => LlExpr::int(self.rng.gen_range(-5..50)),
                1 => LlExpr::add(
                    self.ll(&LlType::Int, depth - 1),
                    self.ll(&LlType::Int, depth - 1),
                ),
                2 => LlExpr::if0(
                    self.ll(&LlType::Int, depth - 1),
                    self.ll(&LlType::Int, depth - 1),
                    self.ll(&LlType::Int, depth - 1),
                ),
                _ => LlExpr::index(
                    LlExpr::array(
                        (0..self.rng.gen_range(1..4))
                            .map(|_| self.ll(&LlType::Int, 0))
                            .collect::<Vec<_>>(),
                        LlType::Int,
                    ),
                    LlExpr::int(0),
                ),
            },
            LlType::Array(elem) => LlExpr::array(
                (0..self.rng.gen_range(0..4))
                    .map(|_| self.ll(elem, depth - 1))
                    .collect::<Vec<_>>(),
                (**elem).clone(),
            ),
            LlType::Fun(a, b) => {
                let var = format!("g{}", self.rng.gen_range(0..1000));
                LlExpr::lam(var.as_str(), (**a).clone(), self.ll(b, depth - 1))
            }
            LlType::Ref(a) => LlExpr::ref_(self.ll(a, depth - 1)),
        }
    }

    fn ll_leaf(&mut self, ty: &LlType) -> LlExpr {
        match ty {
            LlType::Int => LlExpr::int(self.rng.gen_range(-5..50)),
            LlType::Array(elem) => LlExpr::array(
                (0..self.rng.gen_range(0..3))
                    .map(|_| self.ll_leaf(elem))
                    .collect::<Vec<_>>(),
                (**elem).clone(),
            ),
            LlType::Fun(a, b) => {
                let var = format!("g{}", self.rng.gen_range(0..1000));
                let body = self.ll_leaf(b);
                LlExpr::lam(var.as_str(), (**a).clone(), body)
            }
            LlType::Ref(a) => LlExpr::ref_(self.ll_leaf(a)),
        }
    }

    /// Picks a RefLL type convertible with `ty`, if the rule set has one.
    /// The candidate is built structurally (recursing into products, sums
    /// and references) so boundaries appear under *deep* compound types,
    /// not just at the depth-≤-2 pairs the original generator handled; the
    /// final `derive` call remains the source of truth.
    fn convertible_ll_for(&mut self, ty: &HlType) -> Option<LlType> {
        let candidate = ll_candidate_for(ty)?;
        self.conversions.derive(ty, &candidate).map(|_| candidate)
    }

    /// Picks a RefHL type convertible with `ty`, if the rule set has one.
    fn convertible_hl_for(&mut self, ty: &LlType) -> Option<HlType> {
        let candidates: Vec<HlType> = match ty {
            LlType::Int => {
                if self.rng.gen_bool(0.5) {
                    vec![HlType::Bool, HlType::Unit]
                } else {
                    vec![HlType::Unit, HlType::Bool]
                }
            }
            // Pointer sharing needs no-op payload glue, so the payload
            // candidate chain bottoms out at `bool ∼ int`.
            LlType::Ref(inner) => match hl_ref_payload_for(inner) {
                Some(payload) => vec![HlType::ref_(payload)],
                None => vec![],
            },
            LlType::Array(inner) => match inner.as_ref() {
                LlType::Int => {
                    let sum = HlType::sum(HlType::Bool, HlType::Bool);
                    let prod = HlType::prod(HlType::Bool, HlType::Unit);
                    if self.rng.gen_bool(0.5) {
                        vec![sum, prod]
                    } else {
                        vec![prod, sum]
                    }
                }
                // Deep arrays become nested products whose components all
                // convert to the element type.
                elem => match self.convertible_hl_for(elem) {
                    Some(c) => vec![HlType::prod(c.clone(), c)],
                    None => vec![],
                },
            },
            _ => vec![],
        };
        candidates
            .into_iter()
            .find(|hl| self.conversions.derive(hl, ty).is_some())
    }
}

/// The structural RefLL candidate for a RefHL type: `bool`/`unit` go to
/// `int`, sums of int-convertible arms go to `[int]`, products go to an
/// array of their (shared) component candidate, and reference chains pass
/// the pointer when the payload glue is a no-op.
fn ll_candidate_for(ty: &HlType) -> Option<LlType> {
    match ty {
        HlType::Bool | HlType::Unit => Some(LlType::Int),
        HlType::Ref(inner) => ll_ref_payload_for(inner).map(LlType::ref_),
        HlType::Sum(_, _) => Some(LlType::array(LlType::Int)),
        HlType::Prod(t1, t2) => {
            let c1 = ll_candidate_for(t1)?;
            let c2 = ll_candidate_for(t2)?;
            (c1 == c2).then(|| LlType::array(c1))
        }
        HlType::Fun(_, _) => None,
    }
}

/// The RefLL payload for a shared reference: only no-op glue chains
/// (`bool ∼ int` under any number of `ref`s) qualify under the paper's
/// pointer-sharing strategy.
fn ll_ref_payload_for(ty: &HlType) -> Option<LlType> {
    match ty {
        HlType::Bool => Some(LlType::Int),
        HlType::Ref(inner) => ll_ref_payload_for(inner).map(LlType::ref_),
        _ => None,
    }
}

/// The RefHL payload candidate for a RefLL reference, mirroring
/// [`ll_ref_payload_for`].
fn hl_ref_payload_for(ty: &LlType) -> Option<HlType> {
    match ty {
        LlType::Int => Some(HlType::Bool),
        LlType::Ref(inner) => hl_ref_payload_for(inner).map(HlType::ref_),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilang::MultiLang;

    #[test]
    fn generated_hl_programs_typecheck_at_the_requested_type() {
        let ml = MultiLang::new(SharedMemConversions::standard());
        for seed in 0..60 {
            let mut gen = ProgramGen::new(seed);
            let ty = gen.gen_hl_type(2);
            let e = gen.gen_hl(&ty);
            let checked = ml.typecheck_hl(&e).unwrap_or_else(|err| {
                panic!("seed {seed}: generated program {e} does not typecheck: {err}")
            });
            assert_eq!(checked, ty, "seed {seed}");
        }
    }

    #[test]
    fn generated_ll_programs_typecheck() {
        let ml = MultiLang::new(SharedMemConversions::standard());
        for seed in 0..60 {
            let mut gen = ProgramGen::new(seed);
            let e = gen.gen_ll(&LlType::Int);
            let ty = ml
                .typecheck_ll(&e)
                .expect("generated RefLL program typechecks");
            assert_eq!(ty, LlType::Int);
        }
    }

    #[test]
    fn generator_is_deterministic_in_its_seed() {
        let mut a = ProgramGen::new(7);
        let mut b = ProgramGen::new(7);
        assert_eq!(a.gen_hl(&HlType::Bool), b.gen_hl(&HlType::Bool));
    }

    #[test]
    fn boundary_bias_zero_generates_single_language_programs() {
        let cfg = GenConfig {
            max_depth: 4,
            boundary_bias: 0,
            ..GenConfig::default()
        };
        for seed in 0..20 {
            let mut gen = ProgramGen::with_config(seed, cfg);
            let e = gen.gen_hl(&HlType::Bool);
            assert!(!format!("{e}").contains('⦇'), "no boundaries expected: {e}");
        }
    }

    fn hl_type_depth(ty: &HlType) -> usize {
        match ty {
            HlType::Bool | HlType::Unit => 0,
            HlType::Sum(a, b) | HlType::Prod(a, b) | HlType::Fun(a, b) => {
                1 + hl_type_depth(a).max(hl_type_depth(b))
            }
            HlType::Ref(a) => 1 + hl_type_depth(a),
        }
    }

    #[test]
    fn deep_profile_types_reach_depth_four_and_programs_typecheck() {
        use semint_core::case::GenProfile;
        let ml = MultiLang::new(SharedMemConversions::standard());
        let cfg = GenConfig::from(&GenProfile::deep());
        let mut max_depth_seen = 0;
        for seed in 0..40 {
            let mut gen = ProgramGen::with_config(seed, cfg);
            let ty = gen.gen_goal_hl_type();
            max_depth_seen = max_depth_seen.max(hl_type_depth(&ty));
            let e = gen.gen_hl(&ty);
            let checked = ml
                .typecheck_hl(&e)
                .unwrap_or_else(|err| panic!("seed {seed}: {e} does not typecheck: {err}"));
            assert_eq!(checked, ty, "seed {seed}");
        }
        assert!(
            max_depth_seen >= 4,
            "deep profile never generated a depth-4 goal type (max {max_depth_seen})"
        );
    }

    #[test]
    fn deep_compound_types_still_get_boundaries() {
        // A depth-3 all-products type converts to nested int arrays, so the
        // recursive candidate construction must find glue for it.
        let ty = HlType::prod(
            HlType::prod(HlType::Bool, HlType::Bool),
            HlType::prod(HlType::Bool, HlType::Bool),
        );
        let cfg = GenConfig {
            boundary_bias: 100,
            ..GenConfig::default()
        };
        let mut gen = ProgramGen::with_config(11, cfg);
        let e = gen.gen_hl(&ty);
        assert!(
            format!("{e}").contains('⦇'),
            "bias 100 over a convertible deep type must cross a boundary: {e}"
        );
    }
}
