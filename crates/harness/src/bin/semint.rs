//! The `semint` command-line interface.
//!
//! One entry point over all three case studies:
//!
//! ```text
//! semint run   --case sharedmem --seed 42        # one scenario, verbose
//! semint check --case all --seeds 0..50          # model-check a seed range
//! semint sweep --seeds 0..200 --jobs 4           # parallel sweep, aggregate report
//! semint sweep --seeds 0..50 --broken            # sabotaged conversions → shrunk counterexamples
//! semint report sweep.tsv                        # re-render a saved report
//! ```
//!
//! Argument parsing is hand-rolled (the workspace is offline; no clap).

use semint_core::case::{CaseStudy, ScenarioConfig};
use semint_core::stats::SweepReport;
use semint_core::Fuel;
use semint_harness::cases::AnyCase;
use semint_harness::engine::{run_generated, sweep_all, SweepConfig, MAX_SEEDS_PER_SWEEP};
use semint_harness::report::render_sweep;
use std::process::ExitCode;

const USAGE: &str = "\
semint — unified scenario engine for the PLDI 2022 interoperability case studies

USAGE:
    semint run   [--case NAME] --seed N [options]     run one scenario, verbosely
    semint check [--case NAME] [--seeds A..B] [options]
                                                      Lemma 3.1 catalogue + model-check a seed range
    semint sweep [--case NAME] [--seeds A..B] [--jobs J] [--save PATH] [options]
                                                      parallel sweep with aggregate statistics
    semint report [PATH]                              render a report saved by `sweep --save`
    semint help                                       this text

OPTIONS:
    --case NAME      sharedmem | affine | memgc | all        (default: all)
    --seeds A..B     half-open seed range                    (default: 0..100)
    --seed N         single seed (run only)
    --jobs J         worker threads                          (default: 4)
    --depth D        max generated-program depth             (default: 4)
    --boundary-bias P  boundary probability 0-100            (default: 35)
    --fuel N         step budget per run                     (default: 200000)
    --no-model-check skip the realizability-model stage (sweep only)
    --time           collect per-stage wall-clock totals
                     (generate/typecheck/compile/run/model-check)
    --broken         sabotage a conversion rule per case study; failing
                     scenarios are reported with shrunk counterexamples

EXIT STATUS: 0 on success, 1 if any scenario or conversion check failed, 2 on usage errors.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "check" => cmd_check(rest),
        "sweep" => cmd_sweep(rest),
        "report" => cmd_report(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`; try `semint help`")),
    };
    match result {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

/// Options shared by the scenario-driven subcommands.
#[derive(Debug)]
struct Options {
    case: String,
    seed_start: u64,
    seed_end: u64,
    seed: Option<u64>,
    jobs: usize,
    scenario: ScenarioConfig,
    model_check: bool,
    time: bool,
    broken: bool,
    save: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            case: "all".into(),
            seed_start: 0,
            seed_end: 100,
            seed: None,
            jobs: 4,
            scenario: ScenarioConfig::default(),
            model_check: true,
            time: false,
            broken: false,
            save: None,
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--case" => opts.case = value("--case")?.to_string(),
            "--seeds" => {
                let spec = value("--seeds")?;
                let (a, b) = spec
                    .split_once("..")
                    .ok_or_else(|| format!("--seeds expects A..B, got `{spec}`"))?;
                opts.seed_start = a.parse().map_err(|e| format!("--seeds start: {e}"))?;
                opts.seed_end = b.parse().map_err(|e| format!("--seeds end: {e}"))?;
                if opts.seed_end < opts.seed_start {
                    return Err(format!(
                        "--seeds range `{spec}` is reversed: the end ({}) is smaller than \
                         the start ({}); expected a half-open range A..B with A < B",
                        opts.seed_end, opts.seed_start
                    ));
                }
                if opts.seed_end == opts.seed_start {
                    return Err(format!(
                        "--seeds range `{spec}` is empty; expected a half-open range A..B \
                         with A < B"
                    ));
                }
                if opts.seed_end.saturating_sub(opts.seed_start) > MAX_SEEDS_PER_SWEEP {
                    return Err(format!(
                        "--seeds range `{spec}` has more than {MAX_SEEDS_PER_SWEEP} seeds"
                    ));
                }
            }
            "--seed" => {
                opts.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--jobs" => {
                opts.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--depth" => {
                opts.scenario.max_depth = value("--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?
            }
            "--boundary-bias" => {
                opts.scenario.boundary_bias = value("--boundary-bias")?
                    .parse()
                    .map_err(|e| format!("--boundary-bias: {e}"))?;
                if opts.scenario.boundary_bias > 100 {
                    return Err("--boundary-bias must be 0-100".into());
                }
            }
            "--fuel" => {
                let steps: u64 = value("--fuel")?
                    .parse()
                    .map_err(|e| format!("--fuel: {e}"))?;
                opts.scenario.fuel = Fuel::steps(steps);
            }
            "--no-model-check" => opts.model_check = false,
            "--time" => opts.time = true,
            "--broken" => opts.broken = true,
            "--save" => opts.save = Some(value("--save")?.to_string()),
            other => return Err(format!("unknown option `{other}`; try `semint help`")),
        }
    }
    Ok(opts)
}

fn selected_cases(opts: &Options) -> Result<Vec<AnyCase>, String> {
    if opts.case == "all" {
        Ok(AnyCase::all(opts.broken))
    } else {
        AnyCase::by_name(&opts.case, opts.broken)
            .map(|c| vec![c])
            .ok_or_else(|| {
                format!(
                    "unknown case study `{}` (sharedmem | affine | memgc | all)",
                    opts.case
                )
            })
    }
}

fn sweep_config(opts: &Options) -> SweepConfig {
    SweepConfig {
        seed_start: opts.seed_start,
        seed_end: opts.seed_end,
        jobs: opts.jobs,
        scenario: opts.scenario,
        model_check: opts.model_check,
        time: opts.time,
    }
}

/// `semint run`: one scenario, spelled out.
fn cmd_run(args: &[String]) -> Result<bool, String> {
    let opts = parse_options(args)?;
    let seed = opts.seed.ok_or("`semint run` needs --seed N")?;
    let cases = selected_cases(&opts)?;
    let cfg = sweep_config(&opts);
    let mut clean = true;
    for case in &cases {
        let scenario = case.generate(seed, &opts.scenario);
        println!("case {}", case.name());
        println!("  seed    {seed}");
        println!("  type    {}", scenario.ty);
        println!("  program {}", scenario.program);
        let record = run_generated(case, &scenario, &cfg);
        if let Some(stats) = &record.stats {
            println!("  outcome {} after {} steps", stats.outcome, stats.steps);
        }
        println!("  boundaries {}", record.boundaries);
        if let Some(timings) = &record.timings {
            for (label, ns) in timings.stages() {
                println!("  {label:<11} {:.3} ms", ns as f64 / 1_000_000.0);
            }
        }
        match &record.failure {
            None => println!("  verdict OK"),
            Some(failure) => {
                clean = false;
                println!("  verdict FAILED [{}] {}", failure.stage, failure.reason);
                println!(
                    "  shrunk counterexample ({} steps): {}",
                    failure.shrink_steps, failure.shrunk
                );
            }
        }
    }
    Ok(clean)
}

/// `semint check`: the conversion catalogue (Lemma 3.1) plus a model-checked
/// seed range.
fn cmd_check(args: &[String]) -> Result<bool, String> {
    let opts = parse_options(args)?;
    let cases = selected_cases(&opts)?;
    let mut cfg = sweep_config(&opts);
    cfg.model_check = true;
    let mut clean = true;
    for case in &cases {
        match case.check_conversions() {
            Ok(()) => println!("case {}: conversion catalogue OK", case.name()),
            Err(failure) => {
                clean = false;
                println!("case {}: conversion catalogue FAILED", case.name());
                println!("  {failure}");
            }
        }
    }
    let report = sweep_all(&cases, &cfg);
    print!("{}", render_sweep(&report));
    Ok(clean && report.failure_count() == 0)
}

/// `semint sweep`: the parallel batch run.
fn cmd_sweep(args: &[String]) -> Result<bool, String> {
    let opts = parse_options(args)?;
    let cases = selected_cases(&opts)?;
    let cfg = sweep_config(&opts);
    let report = sweep_all(&cases, &cfg);
    print!("{}", render_sweep(&report));
    for case in &report.cases {
        println!("digest: {}", case.digest());
    }
    if let Some(path) = &opts.save {
        std::fs::write(path, report.to_tsv()).map_err(|e| format!("saving {path}: {e}"))?;
        println!("saved: {path}");
    }
    Ok(report.failure_count() == 0)
}

/// `semint report`: render a saved sweep.
fn cmd_report(args: &[String]) -> Result<bool, String> {
    let path = match args {
        [] => return Err("`semint report` needs a PATH saved by `semint sweep --save`".into()),
        [path] => path,
        _ => return Err("`semint report` takes exactly one PATH".into()),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let report = SweepReport::from_tsv(&text)?;
    print!("{}", render_sweep(&report));
    Ok(report.failure_count() == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_options(&owned)
    }

    #[test]
    fn reversed_seed_ranges_are_rejected_with_a_friendly_error() {
        let err = parse(&["--seeds", "50..10"]).unwrap_err();
        assert!(err.contains("reversed"), "{err}");
        assert!(err.contains("50..10"), "{err}");
        // No panic (debug-build underflow) either way round.
        let err = parse(&["--seeds", "7..7"]).unwrap_err();
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn well_formed_seed_ranges_parse() {
        let opts = parse(&["--seeds", "3..9"]).unwrap();
        assert_eq!((opts.seed_start, opts.seed_end), (3, 9));
    }

    #[test]
    fn time_flag_enables_stage_timing() {
        assert!(!parse(&[]).unwrap().time);
        let opts = parse(&["--time"]).unwrap();
        assert!(opts.time);
        assert!(sweep_config(&opts).time);
    }

    #[test]
    fn unknown_options_are_rejected() {
        assert!(parse(&["--nope"]).unwrap_err().contains("--nope"));
    }
}
